//! Integration tests of the code-generation layer: every generated kernel
//! must lower to machine code that decodes back to the identical instruction
//! stream, and the emitted code must contain the structures described by the
//! paper's listings.

use proptest::prelude::*;
use sme_gemm::{generate, kernel_stats, BLayout, GemmConfig};
use sme_isa::decode::decode_bytes;
use sme_isa::inst::{Inst, SmeInst, SveInst};

#[test]
fn generated_kernels_roundtrip_through_machine_code() {
    for cfg in [
        GemmConfig::abt(32, 32, 8),
        GemmConfig::abt(80, 80, 4),
        GemmConfig::ab(48, 40, 16),
        GemmConfig::abt(17, 3, 5),
    ] {
        let kernel = generate(&cfg).unwrap();
        let bytes = kernel.machine_code();
        let decoded =
            decode_bytes(&bytes).unwrap_or_else(|| panic!("{cfg}: every emitted word must decode"));
        assert_eq!(decoded, kernel.program().insts(), "{cfg}");
    }
}

#[test]
fn kernels_contain_the_listing_four_structure() {
    let kernel = generate(&GemmConfig::abt(32, 32, 64)).unwrap();
    let listing = kernel.disassembly();
    // Operand loads, outer products and the loop back-edge of Lst. 4.
    assert!(listing.contains("ld1w { z0.s - z1.s }, pn8/z"));
    assert!(listing.contains("ld1w { z4.s - z5.s }, pn9/z"));
    assert!(listing.contains("fmopa za0.s"));
    assert!(listing.contains("fmopa za3.s"));
    assert!(listing.contains("cbnz"));
    assert!(listing.contains("smstart"));
    assert!(listing.contains("smstop"));
}

#[test]
fn column_major_kernels_contain_the_listing_five_transpose() {
    let kernel = generate(&GemmConfig::ab(32, 32, 32)).unwrap();
    let listing = kernel.disassembly();
    // The Lst. 5 idiom: horizontal MOVA in, vertical MOVA out.
    assert!(listing.contains("mov za0h.s[w12, 0:3]"));
    assert!(listing.contains("za0v.s[w12, 0:3]"));
    // Row-major kernels do not transpose.
    let abt = generate(&GemmConfig::abt(32, 32, 32)).unwrap();
    assert!(!abt.disassembly().contains("za0v.s"));
}

#[test]
fn fmopa_count_matches_the_plan() {
    // Static FMOPA sites = 4 per full 32x32 block (they sit inside the K
    // loop), independent of K.
    let kernel = generate(&GemmConfig::abt(64, 64, 128)).unwrap();
    let stats = kernel_stats(&kernel);
    assert_eq!(stats.microkernels, 4);
    assert_eq!(stats.fmopa_count, 16);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Machine-code round-trip holds for arbitrary generated kernels.
    #[test]
    fn roundtrip_holds_for_random_shapes(
        m in 1usize..=96,
        n in 1usize..=96,
        k in 1usize..=32,
        col_major_b in any::<bool>(),
    ) {
        let cfg = if col_major_b { GemmConfig::ab(m, n, k) } else { GemmConfig::abt(m, n, k) };
        let kernel = generate(&cfg).unwrap();
        let decoded = decode_bytes(&kernel.machine_code()).expect("decodable");
        prop_assert_eq!(decoded, kernel.program().insts());
    }

    /// Structural invariants: every kernel enables and disables streaming
    /// mode, contains at least one outer product, and the number of
    /// multi-vector loads per contraction step matches the block plan.
    #[test]
    fn structural_invariants(
        m in 1usize..=96,
        n in 1usize..=96,
        k in 1usize..=32,
    ) {
        let cfg = GemmConfig::abt(m, n, k);
        let kernel = generate(&cfg).unwrap();
        let program = kernel.program();
        let starts = program.count_matching(|i| matches!(i, Inst::Sme(SmeInst::Smstart { .. })));
        let stops = program.count_matching(|i| matches!(i, Inst::Sme(SmeInst::Smstop { .. })));
        prop_assert_eq!(starts, 1);
        prop_assert_eq!(stops, 1);
        let fmopas = program.count_matching(|i| matches!(i, Inst::Sme(SmeInst::Fmopa { .. })));
        prop_assert!(fmopas > 0);
        // Predicate setup exists whenever masking is needed.
        if !m.is_multiple_of(32) || !n.is_multiple_of(32) {
            let whilelts = program.count_matching(|i| matches!(i, Inst::Sve(SveInst::Whilelt { .. })));
            prop_assert!(whilelts > 0, "masked kernels must set up partial predicates");
        }
        // The layout of B never leaks vertical-view MOVAs into row-major
        // kernels.
        prop_assert_eq!(
            program.count_matching(|i| matches!(
                i,
                Inst::Sme(SmeInst::MovaFromTile { dir: sme_isa::regs::TileSliceDir::Vertical, .. })
            )),
            0
        );
        prop_assert_eq!(kernel.config().b_layout, BLayout::RowMajor);
    }
}
