//! Integration tests of the cycle-attribution profiler: for every kernel
//! either generator can produce, the per-class cycle profile must
//! partition the kernel's total simulated cycles — the invariant that
//! makes the breakdown trustworthy as a *where did the time go* answer
//! rather than a sampling estimate.

use proptest::prelude::*;
use sme_gemm::{generate_any_backend, AnyGemmConfig, Backend, GemmConfig, WideningGemmConfig};

/// Simulate `cfg` on `backend` (if the generator supports the shape) and
/// assert the profile invariants on the resulting stats.
fn assert_profile_partitions(cfg: &AnyGemmConfig, backend: Backend) {
    let Ok(kernel) = generate_any_backend(cfg, backend) else {
        return;
    };
    let stats = kernel.model_stats();
    assert!(
        stats.cycles > 0.0,
        "{cfg} on {backend:?}: kernels take time"
    );
    assert!(
        !stats.profile.is_empty(),
        "{cfg} on {backend:?}: timed runs attribute their cycles"
    );
    assert!(
        stats.profile.sums_to(stats.cycles),
        "{cfg} on {backend:?}: profile {} must partition {} cycles",
        stats.profile.total(),
        stats.cycles
    );
    // No class is negative and every class name is a known stream or its
    // stall twin.
    for (class, cycles) in &stats.profile.classes {
        assert!(*cycles > 0.0, "{cfg}: class {class} holds positive cycles");
        let stream = class.strip_prefix("stall:").unwrap_or(class);
        assert!(
            sme_machine::Stream::all()
                .iter()
                .any(|s| s.name() == stream),
            "{cfg}: unknown attribution class {class}"
        );
    }
}

#[test]
fn sme_and_neon_profiles_partition_cycles_on_the_paper_shapes() {
    for cfg in [
        GemmConfig::abt(64, 64, 32),
        GemmConfig::abt(16, 4, 16),
        GemmConfig::abt(18, 6, 5),
        GemmConfig::ab(48, 40, 16),
    ] {
        let cfg = AnyGemmConfig::from(cfg);
        assert_profile_partitions(&cfg, Backend::Sme);
        assert_profile_partitions(&cfg, Backend::Neon);
    }
    let widening =
        AnyGemmConfig::from(WideningGemmConfig::new(32, 32, 32).expect("valid widening shape"));
    assert_profile_partitions(&widening, Backend::Sme);
    assert_profile_partitions(&widening, Backend::Neon);
}

#[test]
fn dense_sme_kernels_are_attributed_to_the_outer_product_pipeline() {
    let kernel = generate_any_backend(&GemmConfig::abt(128, 128, 64).into(), Backend::Sme)
        .expect("dense FP32 is SME territory");
    let stats = kernel.model_stats();
    let (class, cycles) = stats.profile.dominant().expect("non-empty profile");
    assert!(
        class == "outer-product" || class == "stall:outer-product",
        "dense SME kernels live in the FMOPA pipeline, got {class}"
    );
    assert!(cycles > 0.5 * stats.cycles, "{}", stats.profile);
}

#[test]
fn neon_kernels_are_attributed_to_the_neon_pipeline() {
    let kernel = generate_any_backend(&GemmConfig::abt(16, 4, 64).into(), Backend::Neon)
        .expect("thin FP32 is Neon territory");
    let stats = kernel.model_stats();
    let share = |class| stats.profile.share(class, stats.cycles);
    assert!(
        share("neon-arith") + share("stall:neon-arith") > 0.0,
        "Neon kernels spend cycles in the Neon pipeline: {}",
        stats.profile
    );
    // And nothing lands on the SME-only streams a Neon kernel never uses.
    assert_eq!(share("outer-product"), 0.0);
    assert_eq!(share("za-transfer"), 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The sum-to-total invariant holds over random shapes on both
    /// backends, edge tiles and all.
    #[test]
    fn profiles_partition_cycles_over_random_shapes(
        m in 1usize..80,
        n in 1usize..80,
        k in 1usize..48,
        transposed in any::<bool>(),
    ) {
        let cfg = if transposed {
            GemmConfig::abt(m, n, k)
        } else {
            GemmConfig::ab(m, n, k)
        };
        let cfg = AnyGemmConfig::from(cfg);
        assert_profile_partitions(&cfg, Backend::Sme);
        assert_profile_partitions(&cfg, Backend::Neon);
    }
}
