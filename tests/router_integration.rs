//! End-to-end test of the `sme-router` subsystem, covering the acceptance
//! properties of the router PR:
//!
//! (a) across a shape sweep straddling the SME/Neon crossover, the router
//!     picks Neon for at least one shape and SME for at least one, and
//!     every routed result is **bit-identical** to the scalar reference
//!     oracle (both engines accumulate each C element in k-order with
//!     unfused multiply-adds, exactly like the reference);
//! (b) the cross-backend autotuner's winner lands on whichever backend
//!     simulates fewer cycles, for every swept shape;
//! (c) the per-shape telemetry counts match the dispatched traffic
//!     exactly, and pre-tuning the hottest shapes installs winners that
//!     subsequent routing follows.

use hello_sme::sme_gemm::reference::{fill_matrix, gemm_reference};
use hello_sme::sme_gemm::{
    generate_any_backend, generate_backend, widening_reference, widening_rel_error, AnyGemmConfig,
    Backend, GemmConfig, WideningGemmConfig, WIDENING_REL_TOL,
};
use hello_sme::sme_router::{Router, RoutingPolicy};
use hello_sme::sme_runtime::{GemmRequest, TunerOptions};

/// The C buffer the scalar reference produces for one request (mirrors the
/// kernel handles' seeding scheme).
fn reference_output(cfg: &GemmConfig, seed: u64) -> Vec<f32> {
    let mut a = vec![0.0f32; cfg.a_len()];
    let mut b = vec![0.0f32; cfg.b_len()];
    let mut c = vec![0.0f32; cfg.c_len()];
    fill_matrix(seed, &mut a);
    fill_matrix(seed ^ 0x1111_1111, &mut b);
    fill_matrix(seed ^ 0x2222_2222, &mut c);
    gemm_reference(cfg, &a, &b, &mut c);
    c
}

/// Shapes straddling the modelled crossover: thin/shallow shapes where the
/// SME kernel's streaming-mode and ZA-transfer overhead dominates (Neon
/// territory) through dense shapes where the outer-product units win by an
/// order of magnitude.
fn crossover_sweep() -> Vec<GemmConfig> {
    vec![
        GemmConfig::abt(16, 4, 4),
        GemmConfig::abt(16, 4, 16),
        GemmConfig::abt(16, 8, 8),
        GemmConfig::abt(16, 16, 16),
        GemmConfig::abt(32, 16, 16),
        GemmConfig::abt(32, 32, 32),
        GemmConfig::abt(64, 16, 16),
        GemmConfig::abt(64, 64, 64),
        GemmConfig::abt(96, 96, 32),
    ]
}

#[test]
fn routed_dispatch_straddles_the_crossover_bit_identically() {
    let router = Router::with_policy(64, RoutingPolicy::Measured);
    let requests: Vec<GemmRequest> = crossover_sweep()
        .into_iter()
        .enumerate()
        .map(|(i, config)| GemmRequest::fp32(config, 7000 + i as u64))
        .collect();
    let report = router.dispatch(&requests).expect("valid batch");

    let mut neon_routed = 0;
    let mut sme_routed = 0;
    for group in &report.batch.per_config {
        match group.backend {
            Backend::Neon => neon_routed += 1,
            Backend::Sme => sme_routed += 1,
        }
    }
    assert!(
        neon_routed > 0,
        "the sweep must contain at least one Neon-routed shape"
    );
    assert!(
        sme_routed > 0,
        "the sweep must contain at least one SME-routed shape"
    );

    // Both engines accumulate per element in contraction order with
    // unfused multiply-adds — exactly the reference's arithmetic — so the
    // routed outputs must match the oracle bit for bit, whichever engine
    // served them.
    for (request, output) in requests.iter().zip(&report.batch.outputs) {
        let oracle = reference_output(request.config.as_fp32().expect("FP32 sweep"), request.seed);
        assert_eq!(
            output, &oracle,
            "{}: routed output diverged from the reference oracle",
            request.config
        );
    }
}

#[test]
fn cross_backend_tuner_matches_the_simulated_argmin_on_every_shape() {
    let router = Router::new(64);
    for cfg in crossover_sweep() {
        let sme_cycles = generate_backend(&cfg, Backend::Sme)
            .expect("SME compiles every swept shape")
            .model_stats()
            .cycles;
        let neon_cycles = generate_backend(&cfg, Backend::Neon)
            .expect("swept shapes sit on the Neon 16x4 grid")
            .model_stats()
            .cycles;
        let outcome = router
            .tune(&cfg, &TunerOptions::default())
            .expect("tunable configuration");
        // The best the SME engine can do for this shape (tuned plans, no
        // backend sweep): the cross-backend winner must sit on whichever
        // engine's best score is lower (ties stay on SME, the default).
        let sme_only = TunerOptions {
            sweep_backends: false,
            ..TunerOptions::default()
        };
        let best_sme_cycles = hello_sme::sme_runtime::tune(&cfg, &sme_only)
            .expect("tunable configuration")
            .tuned_cycles;
        let expected = if neon_cycles < best_sme_cycles {
            Backend::Neon
        } else {
            Backend::Sme
        };
        assert_eq!(
            outcome.winner.backend, expected,
            "{cfg}: winner backend ({}) does not match the simulated argmin \
             (sme default {sme_cycles:.0}, best sme {best_sme_cycles:.0}, \
             neon {neon_cycles:.0})",
            outcome.winner.backend
        );
        let argmin = best_sme_cycles.min(neon_cycles);
        assert!(
            (outcome.tuned_cycles - argmin).abs() <= 1e-9 * argmin.max(1.0),
            "{cfg}: tuned score {:.1} must equal the cheaper engine's best \
             ({argmin:.1})",
            outcome.tuned_cycles
        );
        assert!(
            outcome.tuned_cycles <= sme_cycles.min(neon_cycles) + 1e-9,
            "{cfg}: tuned score must not lose to either default engine"
        );
        // Routing now follows the installed winner.
        assert_eq!(router.route(&cfg), outcome.winner.backend);
    }
}

#[test]
fn telemetry_counts_match_dispatched_traffic_exactly() {
    let router = Router::new(64);
    let hot = GemmConfig::abt(16, 4, 16);
    let warm = GemmConfig::abt(32, 32, 32);
    let cold = GemmConfig::abt(64, 64, 16);

    // Traffic: 6× hot, 3× warm, 1× cold, over two batches.
    let batch1: Vec<GemmRequest> = (0..5)
        .map(|i| GemmRequest::fp32(if i < 4 { hot } else { warm }, i))
        .collect();
    let batch2: Vec<GemmRequest> = (0..5)
        .map(|i| {
            GemmRequest::fp32(
                match i {
                    0 | 1 => hot,
                    2 | 3 => warm,
                    _ => cold,
                },
                100 + i,
            )
        })
        .collect();
    router.dispatch(&batch1).expect("valid batch");
    router.dispatch(&batch2).expect("valid batch");

    assert_eq!(router.telemetry().total_requests(), 10);
    // Per-shape counts match the dispatched traffic exactly.
    let shape = |cfg: &GemmConfig| router.telemetry().shape(&(*cfg).into()).unwrap();
    assert_eq!(shape(&hot).requests, 6);
    assert_eq!(shape(&warm).requests, 3);
    assert_eq!(shape(&cold).requests, 1);
    // Ranking is by decayed cumulative cycles (cost), not request count:
    // the chatty 16×4×16 shape burns far fewer cycles than either dense
    // shape, so it ranks last despite 6× the requests.
    let top = router.top_shapes(3);
    assert_eq!(top.len(), 3);
    assert!(top[0].decayed_cycles >= top[1].decayed_cycles);
    assert!(top[1].decayed_cycles >= top[2].decayed_cycles);
    assert_eq!((top[2].config, top[2].requests), (hot.into(), 6));
    // Each shape fetches its kernel once per batch it appears in. Under
    // the Measured policy the routing probe already compiled both
    // backends through the cache, so every execute-time fetch is a hit.
    assert_eq!((shape(&hot).cache_hits, shape(&hot).cache_misses), (2, 0));
    assert_eq!((shape(&warm).cache_hits, shape(&warm).cache_misses), (2, 0));
    assert_eq!((shape(&cold).cache_hits, shape(&cold).cache_misses), (1, 0));
    // Cycles aggregate exactly what the reports said.
    let recorded: f64 = top.iter().map(|s| s.cycles).sum();
    assert!(recorded > 0.0);

    // The telemetry JSON snapshot carries the same counts.
    let json = router.telemetry().to_json();
    assert!(json.contains("\"total_requests\": 10"));
    assert!(json.contains("\"requests\": 6"));

    // Pre-tune the two hottest shapes; their winners are installed and
    // routing follows them — and the chatty-but-cheap shape does not make
    // the cut.
    let outcomes = router
        .pretune_hot(2, &TunerOptions::quick())
        .expect("hot shapes are tunable");
    assert_eq!(outcomes.len(), 2);
    assert_eq!(outcomes[0].key.m(), top[0].config.m());
    assert!(router.cache().lookup_tuned(&warm).is_some());
    assert!(router.cache().lookup_tuned(&cold).is_some());
    assert!(router.cache().lookup_tuned(&hot).is_none());
    match top[0].config {
        AnyGemmConfig::Fp32(c) => assert_eq!(router.route(&c), outcomes[0].winner.backend),
        _ => unreachable!("all traffic was FP32"),
    }
}

#[test]
fn off_grid_bf16_shapes_now_route_to_sme() {
    // The headline payoff of the predicated edge tiles: dense-but-
    // misaligned BF16 shapes used to be a *support* decision (the SME
    // widening path rejected anything off the 32x32 grid, so they always
    // ran on the ~8x narrower Neon BFMMLA baseline) and are now a
    // *performance* decision the router settles on simulated cycles.
    use hello_sme::sme_router::RoutingPolicy;
    let measured = Router::with_policy(64, RoutingPolicy::Measured);
    let heuristic = Router::with_policy(64, RoutingPolicy::Heuristic);
    let off_grid = [
        (48, 40, 64),
        (40, 40, 32),
        (96, 72, 48),
        (104, 96, 128), // the ISSUE's 100x96-class shape, on the envelope
    ];
    for (m, n, k) in off_grid {
        let cfg = WideningGemmConfig::new(m, n, k).expect("envelope shape");
        assert!(
            !cfg.m.is_multiple_of(32) || !cfg.n.is_multiple_of(32),
            "{cfg}: the probe must sit off the old 32-grid"
        );
        let any = AnyGemmConfig::WideningBf16(cfg);
        let sme_cycles = generate_any_backend(&any, Backend::Sme)
            .expect("masked SME edges compile the shape")
            .model_stats()
            .cycles;
        let neon_cycles = generate_any_backend(&any, Backend::Neon)
            .expect("Neon widening is total")
            .model_stats()
            .cycles;
        assert!(
            sme_cycles < neon_cycles,
            "{cfg}: masked SME edges ({sme_cycles:.0} cycles) must beat the \
             Neon BFMMLA baseline ({neon_cycles:.0})"
        );
        // A multi-x win, not a rounding-error one: this is the simulated
        // speed-up the shapes forfeited under the old support boundary.
        assert!(
            neon_cycles > 2.0 * sme_cycles,
            "{cfg}: expected a multi-x win, got {:.2}x",
            neon_cycles / sme_cycles
        );
        // Both adaptive policies route the shape to SME, and the tuner's
        // cross-backend argmin lands there too.
        assert_eq!(measured.route_any(&any), Backend::Sme, "{cfg}");
        assert_eq!(heuristic.route_any(&any), Backend::Sme, "{cfg}");
        let outcome = measured
            .tune_any(&any, &TunerOptions::quick())
            .expect("tunable shape");
        assert_eq!(outcome.winner.backend, Backend::Sme, "{cfg}");
        assert!(outcome.tuned_cycles <= sme_cycles + 1e-9);
    }
}

/// Widening shapes straddling the engine split: shallow/thin shapes where
/// the streaming-mode entry dominates (Neon `BFMMLA` territory) through
/// dense shapes — 32-aligned or masked — where the widening outer products
/// win outright.
fn bf16_crossover_sweep() -> Vec<WideningGemmConfig> {
    [
        (8, 2, 2),
        (16, 4, 8),
        (16, 4, 64),
        (16, 16, 16),
        (32, 32, 8),
        (32, 32, 32),
        (40, 40, 16), // masked SME edges on both dimensions
        (48, 40, 8),  // dense but misaligned
        (64, 32, 16),
        (64, 64, 64),
    ]
    .into_iter()
    .map(|(m, n, k)| WideningGemmConfig::new(m, n, k).expect("valid widening shape"))
    .collect()
}

/// The scalar BF16-rounded oracle for one widening request (mirrors the
/// kernel handles' seeding scheme).
fn widening_oracle(cfg: &WideningGemmConfig, seed: u64) -> Vec<f32> {
    let mut a = vec![0.0f32; cfg.m * cfg.k];
    let mut b = vec![0.0f32; cfg.k * cfg.n];
    let mut c = vec![0.0f32; cfg.c_len()];
    fill_matrix(seed, &mut a);
    fill_matrix(seed ^ 0x1111_1111, &mut b);
    fill_matrix(seed ^ 0x2222_2222, &mut c);
    widening_reference(cfg, &a, &b, &mut c);
    c
}

#[test]
fn bf16_dispatch_straddles_the_crossover_within_tolerance() {
    let router = Router::with_policy(64, RoutingPolicy::Measured);
    let shapes = bf16_crossover_sweep();
    let requests: Vec<GemmRequest> = shapes
        .iter()
        .enumerate()
        .map(|(i, cfg)| GemmRequest::widening(*cfg, 8000 + i as u64))
        .collect();
    let report = router.dispatch(&requests).expect("valid batch");

    let mut neon_routed = 0;
    let mut sme_routed = 0;
    for group in &report.batch.per_config {
        assert_eq!(group.dtype, hello_sme::sme_gemm::Dtype::WideningBf16);
        match group.backend {
            Backend::Neon => neon_routed += 1,
            Backend::Sme => sme_routed += 1,
        }
    }
    assert!(
        neon_routed > 0,
        "the BF16 sweep must contain at least one Neon-routed widening shape"
    );
    assert!(
        sme_routed > 0,
        "the BF16 sweep must contain at least one SME-routed widening shape"
    );

    // Every routed output stays within the widening validation bound of the
    // scalar BF16-rounded oracle, whichever engine served it.
    for (request, output) in requests.iter().zip(&report.batch.outputs) {
        let cfg = request.config.as_widening().expect("widening sweep");
        let oracle = widening_oracle(cfg, request.seed);
        let err = widening_rel_error(output, &oracle);
        assert!(
            err < WIDENING_REL_TOL,
            "{cfg}: routed output error {err} exceeds {WIDENING_REL_TOL}"
        );
    }

    // Telemetry counts equal the dispatched traffic, keyed per widening
    // config.
    assert_eq!(router.telemetry().total_requests(), requests.len() as u64);
    assert_eq!(router.telemetry().len(), shapes.len());
    for cfg in &shapes {
        let stats = router
            .telemetry()
            .shape(&AnyGemmConfig::WideningBf16(*cfg))
            .expect("every dispatched shape is counted");
        assert_eq!(stats.requests, 1);
        assert_eq!(
            stats.sme_requests + stats.neon_requests,
            1,
            "{cfg}: backend counts must partition the traffic"
        );
    }

    // The cross-backend tuner's argmin lands on the cheaper engine for
    // every swept shape: the winner sits on whichever engine's *best*
    // score is lower (the SME side may tune its edge-bearing block plans,
    // so the default 32x32 kernel is only a lower bound on its side).
    for cfg in &shapes {
        let any = AnyGemmConfig::WideningBf16(*cfg);
        let sme_cycles = generate_any_backend(&any, Backend::Sme)
            .expect("SME widening is total on the envelope grid")
            .model_stats()
            .cycles;
        let neon_cycles = generate_any_backend(&any, Backend::Neon)
            .expect("Neon widening is total on the envelope grid")
            .model_stats()
            .cycles;
        let outcome = router
            .tune_any(&any, &TunerOptions::default())
            .expect("tunable widening configuration");
        let sme_only = TunerOptions {
            sweep_backends: false,
            ..TunerOptions::default()
        };
        let best_sme_cycles = hello_sme::sme_runtime::tune_any(&any, &sme_only)
            .expect("tunable widening configuration")
            .tuned_cycles;
        let expected = if neon_cycles < best_sme_cycles {
            Backend::Neon
        } else {
            Backend::Sme
        };
        assert_eq!(
            outcome.winner.backend, expected,
            "{cfg}: winner backend does not match the simulated argmin \
             (sme default {sme_cycles:.0}, best sme {best_sme_cycles:.0}, \
             neon {neon_cycles:.0})"
        );
        // The tuned score equals the cheaper engine's best and can only
        // improve on both engines' default kernels.
        let argmin = best_sme_cycles.min(neon_cycles);
        assert!(
            (outcome.tuned_cycles - argmin).abs() <= 1e-9 * argmin.max(1.0),
            "{cfg}: tuned score {:.1} must equal the cheaper engine's best \
             ({argmin:.1})",
            outcome.tuned_cycles
        );
        assert!(
            outcome.tuned_cycles <= sme_cycles.min(neon_cycles) + 1e-9,
            "{cfg}: tuned score must not lose to either default engine"
        );
        // Routing now follows the installed winner.
        assert_eq!(router.route_any(&any), outcome.winner.backend);
    }
}
