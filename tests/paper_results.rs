//! End-to-end checks of the paper's headline results, spanning every crate:
//! the microbenchmark tables, the bandwidth observations, the multi-core
//! scaling and the Fig. 8 / Fig. 9 conclusion that the generated kernels
//! outperform the vendor baseline.
//!
//! These use coarse parameter grids so that they stay fast enough for the
//! regular test suite; the `sme-bench` binaries regenerate the full tables
//! and figures.

use accel_ref::AccelerateSgemm;
use sme_gemm::{generate, GemmConfig};
use sme_machine::MachineConfig;
use sme_microbench::bandwidth::{figure_2_or_3, plateau};
use sme_microbench::scaling::figure1;
use sme_microbench::throughput::{table_one, table_one_reference};

#[test]
fn table_one_reproduces_within_eight_percent() {
    let rows = table_one(&MachineConfig::apple_m4());
    let reference = table_one_reference();
    for (row, (instr, dtype, p_ref, e_ref)) in rows.iter().zip(reference) {
        let p_err = (row.p_core_gops - p_ref).abs() / p_ref;
        let e_err = (row.e_core_gops - e_ref).abs() / e_ref;
        assert!(
            p_err < 0.08,
            "{instr} {dtype} P-core: {} vs {p_ref}",
            row.p_core_gops
        );
        assert!(
            e_err < 0.08,
            "{instr} {dtype} E-core: {} vs {e_ref}",
            row.e_core_gops
        );
    }
}

#[test]
fn sme_is_fp32_centric() {
    // §V: FP32 outer products reach > 2.3 TFLOPS with both units; the other
    // data types are comparatively slow, except I8 with a ~2x gain.
    let rows = table_one(&MachineConfig::apple_m4());
    let get = |instr: &str, dtype: &str| {
        rows.iter()
            .find(|r| r.instruction == instr && r.dtype_in == dtype)
            .map(|r| r.p_core_gops)
            .unwrap()
    };
    let fp32 = get("FMOPA (SME)", "FP32");
    assert!(get("FMOPA (SME)", "FP64") < 0.3 * fp32);
    assert!((get("SMOPA (SME)", "I8") / fp32 - 2.0).abs() < 0.1);
    assert!((get("BFMOPA (SME)", "BF16") - fp32).abs() / fp32 < 0.02);
}

#[test]
fn figure1_shape_and_discussion_speedups() {
    let fig = figure1(&MachineConfig::apple_m4(), 10);
    // A single SME thread beats all ten Neon threads by about 3.1x; both
    // units together reach about 3.6x and > 2.3 TFLOPS.
    assert!(fig.single_thread_sme_speedup() > 2.8);
    assert!(fig.dual_unit_sme_speedup() > 3.3);
    assert!(fig.fmopa_peak() > 2300.0);
    // SME throughput is flat over the P-cluster, then steps up once.
    assert!(fig.fmopa[3].gflops <= fig.fmopa[0].gflops);
    assert!(fig.fmopa[4].gflops > fig.fmopa[3].gflops + 250.0);
}

#[test]
fn bandwidth_conclusions_hold() {
    let config = MachineConfig::apple_m4();
    let sizes = vec![64 << 10, 1 << 20, 4 << 20];
    let loads = figure_2_or_3(&config, false, &sizes);
    let stores = figure_2_or_3(&config, true, &sizes);
    let load_plateau = |name: &str| plateau(loads.iter().find(|c| c.strategy == name).unwrap());
    let store_plateau = |name: &str| plateau(stores.iter().find(|c| c.strategy == name).unwrap());
    // §V: two-step loads improve read bandwidth by ~2.6x over direct loads.
    let speedup = load_plateau("LD1W 4VR") / load_plateau("LDR");
    assert!(
        (speedup - 2.6).abs() < 0.4,
        "two-step load speedup {speedup}"
    );
    // Stores see no such improvement.
    assert!(store_plateau("ST1W 4VR") < store_plateau("STR") * 1.25);
}

#[test]
fn generated_kernels_beat_the_vendor_baseline() {
    // Coarse Fig. 8 / Fig. 9 grid (K reduced to keep the test fast). The
    // generated kernels must win everywhere on this grid, and by a clear
    // margin at small sizes.
    let k = 160;
    for col_major_b in [false, true] {
        for mn in [32usize, 96, 160, 256] {
            let cfg = if col_major_b {
                GemmConfig::ab(mn, mn, k)
            } else {
                GemmConfig::abt(mn, mn, k)
            };
            let ours = generate(&cfg).unwrap().model_gflops();
            let vendor = AccelerateSgemm::new(cfg).model_gflops().unwrap();
            assert!(
                ours > vendor,
                "mn={mn} col_major_b={col_major_b}: generated {ours} vs vendor {vendor}"
            );
        }
    }
}

#[test]
fn in_kernel_transposition_costs_but_does_not_break_the_win() {
    // Fig. 8 vs Fig. 9: the column-major-B kernels are somewhat slower than
    // the row-major-B kernels (they do extra work), but remain competitive.
    let abt = generate(&GemmConfig::abt(128, 128, 256))
        .unwrap()
        .model_gflops();
    let ab = generate(&GemmConfig::ab(128, 128, 256))
        .unwrap()
        .model_gflops();
    assert!(ab < abt);
    assert!(
        ab > 0.6 * abt,
        "transposition overhead too large: {ab} vs {abt}"
    );
}
