//! Workspace-level fault-tolerance integration: the three degradation
//! ladders — poisoned locks recovered with data intact, corrupt snapshots
//! restored from the previous `.bak` generation, and a panicking dispatch
//! group retried on the fallback backend — exercised end-to-end across
//! crate boundaries.
//!
//! The injector-driven test is the only one here that dispatches through
//! `GemmService`; the fault rules target SME dispatch sites only, so the
//! other tests' snapshot I/O never matches a rule even though the
//! process-global injector is armed while they run.

use std::sync::{Arc, Mutex};

use sme_gemm::{Backend, GemmConfig};
use sme_machine::MachineConfig;
use sme_router::TelemetryRegistry;
use sme_runtime::fault::{self, FaultKind, FaultPlan, FaultRule, SitePattern};
use sme_runtime::{GemmRequest, GemmService, PlanStore};

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sme_fault_tol_{}_{}", name, std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Truncate a snapshot to half its bytes: the checksum trailer (or the
/// JSON parse) must reject it.
fn tear(path: &std::path::Path) {
    let bytes = std::fs::read(path).expect("read snapshot");
    std::fs::write(path, &bytes[..bytes.len() / 2]).expect("tear snapshot");
}

const PLAN_DOC: &str = r#"{"version": 2, "entries": [{"m": 48, "n": 48, "k": 16,
    "lda": 48, "ldb": 48, "ldc": 48, "b_layout": "RowMajor", "beta": "One",
    "backend": "Sme", "plan": "Homogeneous16x64", "c_transfer": "Direct",
    "k_unroll": 2, "tuned_cycles": 100, "default_cycles": 150}]}"#;

#[test]
fn poisoned_lock_recovers_with_data_intact() {
    let shared = Arc::new(Mutex::new(vec![1, 2, 3]));
    let clone = Arc::clone(&shared);
    let _ = std::thread::spawn(move || {
        let _guard = clone.lock().unwrap();
        panic!("poison the shared state");
    })
    .join();
    assert!(shared.is_poisoned(), "the panicking thread must poison");

    let before = sme_runtime::poison::recovered_total();
    let guard = sme_runtime::poison::lock(&shared, "integration shared state");
    assert_eq!(*guard, vec![1, 2, 3], "recovery must keep the data");
    drop(guard);
    assert!(!shared.is_poisoned(), "recovery must clear the poison flag");
    assert!(
        sme_runtime::poison::recovered_total() > before,
        "the recovery must be counted"
    );
}

#[test]
fn corrupt_plan_store_recovers_previous_generation() {
    let dir = scratch_dir("plans");
    let path = dir.join("plans.json");
    let machine = MachineConfig::apple_m4();

    let generation_one = PlanStore::from_json(PLAN_DOC).expect("fixture parses");
    generation_one.save(&path).expect("first save");
    let generation_two =
        PlanStore::from_json(&PLAN_DOC.replace("\"tuned_cycles\": 100", "\"tuned_cycles\": 90"))
            .expect("fixture parses");
    generation_two.save(&path).expect("second save");

    tear(&path);
    let (recovered, _check) =
        PlanStore::load_checked(&path, &machine).expect("backup generation recovers");
    assert_eq!(
        recovered, generation_one,
        "recovery must restore the previous generation, not an empty store"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_telemetry_recovers_previous_generation() {
    let dir = scratch_dir("telemetry");
    let path = dir.join("telemetry.json");
    let machine = MachineConfig::apple_m4();

    let registry = TelemetryRegistry::for_machine(&machine);
    registry.record_group(
        &GemmConfig::abt(64, 64, 32).into(),
        Backend::Sme,
        4,
        1000.0,
        true,
    );
    registry.advance_epoch();
    registry.save(&path).expect("first save");
    registry.record_group(
        &GemmConfig::abt(48, 48, 16).into(),
        Backend::Neon,
        2,
        500.0,
        true,
    );
    registry.advance_epoch();
    registry.save(&path).expect("second save");

    tear(&path);
    let (recovered, _check) =
        TelemetryRegistry::load_checked(&path, &machine).expect("backup generation recovers");
    assert_eq!(
        recovered.len(),
        1,
        "recovery must restore the one-shape previous generation"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_group_degrades_to_fallback_without_dropping_the_batch() {
    let plan = Arc::new(FaultPlan::with_rules(
        0,
        vec![FaultRule {
            kind: FaultKind::GroupPanic,
            pattern: SitePattern::Contains(":Sme:".to_string()),
            occurrence: 1,
        }],
    ));
    fault::install_injector(plan.clone());

    let service = GemmService::new(64);
    let sme_shape = GemmConfig::abt(64, 64, 32);
    let neon_shape = GemmConfig::abt(16, 4, 16);
    let requests: Vec<GemmRequest> = vec![
        GemmRequest {
            config: sme_shape.into(),
            seed: 11,
        },
        GemmRequest {
            config: neon_shape.into(),
            seed: 12,
        },
    ];
    let route = |config: &sme_gemm::AnyGemmConfig| {
        if *config == sme_shape.into() {
            Backend::Sme
        } else {
            Backend::Neon
        }
    };
    let report = service
        .dispatch_routed(&requests, route)
        .expect("batch dispatches");
    fault::clear_injector();

    assert!(
        report.failures.is_empty(),
        "the panicking group must not drop any request: {:?}",
        report.failures
    );
    assert_eq!(report.outputs.len(), 2);
    assert!(report.outputs.iter().all(|o| !o.is_empty()));

    let degraded: Vec<_> = report
        .per_config
        .iter()
        .filter(|c| c.fallback_from.is_some())
        .collect();
    assert_eq!(degraded.len(), 1, "exactly the SME group degrades");
    assert_eq!(degraded[0].fallback_from, Some(Backend::Sme));
    assert_eq!(degraded[0].backend, Backend::Neon);
    assert_eq!(
        plan.events().len(),
        1,
        "the schedule fired exactly its one rule"
    );

    // The degraded output is bit-identical to a clean Neon dispatch of the
    // same request — fallback is a routing change, not a numeric one.
    let clean = service
        .dispatch_routed(&requests[..1], |_| Backend::Neon)
        .expect("clean reference dispatches");
    assert_eq!(report.outputs[0], clean.outputs[0]);
}
