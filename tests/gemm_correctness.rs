//! Cross-crate integration tests: generated SME kernels must compute the
//! same results as the scalar reference for arbitrary shapes, layouts and
//! kernel options.

use proptest::prelude::*;
use sme_gemm::{
    generate, generate_with_plan, plan_homogeneous, Beta, GemmConfig, RegisterBlocking,
    ZaTransferStrategy,
};

/// Shapes used by the deterministic spot checks (kept small so the
/// functional simulation stays fast in debug builds).
const SPOT_SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (16, 16, 16),
    (32, 32, 32),
    (33, 31, 7),
    (47, 21, 13),
    (64, 16, 24),
    (16, 64, 24),
    (80, 80, 8),
    (100, 36, 5),
];

#[test]
fn abt_kernels_match_the_reference() {
    for &(m, n, k) in SPOT_SHAPES {
        let cfg = GemmConfig::abt(m, n, k);
        let kernel = generate(&cfg).expect("generation");
        let err = kernel.validate(0xC0FFEE);
        assert!(err < 1e-4, "({m},{n},{k}): {err}");
    }
}

#[test]
fn ab_kernels_match_the_reference() {
    for &(m, n, k) in SPOT_SHAPES {
        let cfg = GemmConfig::ab(m, n, k);
        let kernel = generate(&cfg).expect("generation");
        let err = kernel.validate(0xBEEF);
        assert!(err < 1e-4, "AB ({m},{n},{k}): {err}");
    }
}

#[test]
fn all_register_blockings_produce_the_same_numbers() {
    let cfg = GemmConfig::abt(64, 64, 16);
    for blocking in [
        RegisterBlocking::B32x32,
        RegisterBlocking::B16x64,
        RegisterBlocking::B64x16,
    ] {
        let plan = plan_homogeneous(64, 64, blocking);
        let kernel = generate_with_plan(&cfg, Some(plan)).expect("generation");
        let err = kernel.validate(99);
        assert!(err < 1e-4, "{blocking:?}: {err}");
    }
}

#[test]
fn transfer_strategies_and_beta_modes_agree() {
    for strategy in [ZaTransferStrategy::TwoStep, ZaTransferStrategy::Direct] {
        for beta in [Beta::One, Beta::Zero] {
            let cfg = GemmConfig::abt(48, 48, 12)
                .with_c_transfer(strategy)
                .with_beta(beta);
            let kernel = generate(&cfg).expect("generation");
            let err = kernel.validate(7);
            assert!(err < 1e-4, "{strategy:?} {beta:?}: {err}");
        }
    }
}

#[test]
fn padded_leading_dimensions_do_not_corrupt_neighbours() {
    // Leading dimensions larger than the extents leave padding rows that the
    // kernel must not touch; validate() reads the whole padded buffer, so a
    // stray write would show up as an error.
    let cfg = GemmConfig::abt(30, 18, 9).with_leading_dims(40, 32, 37);
    let kernel = generate(&cfg).expect("generation");
    assert!(kernel.validate(3) < 1e-4);
    let cfg = GemmConfig::ab(30, 18, 9).with_leading_dims(40, 16, 37);
    let kernel = generate(&cfg).expect("generation");
    assert!(kernel.validate(3) < 1e-4);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random shapes, both B layouts: the generated kernel agrees with the
    /// reference GEMM.
    #[test]
    fn random_shapes_validate(
        m in 1usize..=80,
        n in 1usize..=80,
        k in 1usize..=40,
        col_major_b in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let cfg = if col_major_b {
            GemmConfig::ab(m, n, k)
        } else {
            GemmConfig::abt(m, n, k)
        };
        let kernel = generate(&cfg).expect("generation must succeed for valid shapes");
        let err = kernel.validate(seed);
        prop_assert!(err < 1e-3, "({m},{n},{k},col_major_b={col_major_b}): {err}");
    }

    /// Random padded leading dimensions validate as well.
    #[test]
    fn random_leading_dimensions_validate(
        m in 1usize..=48,
        n in 1usize..=48,
        k in 1usize..=24,
        pad_a in 0usize..8,
        pad_b in 0usize..8,
        pad_c in 0usize..8,
    ) {
        let cfg = GemmConfig::abt(m, n, k).with_leading_dims(m + pad_a, n + pad_b, m + pad_c);
        let kernel = generate(&cfg).expect("generation must succeed");
        prop_assert!(kernel.validate(11) < 1e-3);
    }
}
