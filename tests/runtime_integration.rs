//! End-to-end test of the `sme-runtime` subsystem, covering the three
//! acceptance properties of the runtime PR:
//!
//! (a) a second request for the same `GemmConfig` is served from the cache
//!     without invoking the generator (counter-verified);
//! (b) the autotuned plan's simulated cycle count is never above the
//!     default heterogeneous plan's across a representative shape sweep;
//! (c) batched mixed-configuration dispatch results bit-match the
//!     per-config reference executions.

use hello_sme::sme_gemm::reference::{fill_matrix, gemm_reference, max_abs_diff};
use hello_sme::sme_gemm::{generate, GemmConfig};
use hello_sme::sme_machine::exec::{RunOptions, Simulator};
use hello_sme::sme_runtime::{GemmRequest, GemmService, KernelCache, PlanStore, TunerOptions};

#[test]
fn cache_serves_repeats_without_regenerating() {
    let cache = KernelCache::new(32);
    let cfg = GemmConfig::abt(48, 48, 32);

    let first = cache.get_or_compile(&cfg).expect("valid configuration");
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses), (0, 1), "first request compiles");

    // The second request must be a pure cache hit: the miss counter (which
    // counts exactly the generator invocations) stays put, and the very
    // same Arc'd kernel object comes back.
    let second = cache.get_or_compile(&cfg).expect("valid configuration");
    let stats = cache.stats();
    assert_eq!(
        (stats.hits, stats.misses),
        (1, 1),
        "second request is a hit"
    );
    assert!(std::sync::Arc::ptr_eq(&first, &second));

    // A different configuration is an independent miss.
    cache
        .get_or_compile(&GemmConfig::abt(48, 48, 33))
        .expect("valid configuration");
    assert_eq!(cache.stats().misses, 2);
}

#[test]
fn autotuned_plans_never_model_slower_than_the_default() {
    // A representative sweep: square, wide, tall, thin-strip and
    // non-multiple-of-16 shapes, plus a column-major case.
    let shapes: Vec<GemmConfig> = vec![
        GemmConfig::abt(16, 16, 64),
        GemmConfig::abt(32, 32, 64),
        GemmConfig::abt(48, 48, 64),
        GemmConfig::abt(64, 64, 64),
        GemmConfig::abt(80, 80, 64),
        GemmConfig::abt(33, 47, 64),
        GemmConfig::abt(64, 16, 64),
        GemmConfig::abt(16, 64, 64),
        GemmConfig::abt(96, 32, 64),
        GemmConfig::ab(48, 48, 64),
    ];
    let mut store = PlanStore::new();
    for cfg in &shapes {
        let outcome =
            hello_sme::sme_runtime::tune_into_store(cfg, &TunerOptions::default(), &mut store)
                .expect("tunable configuration");
        assert!(
            outcome.tuned_cycles <= outcome.default_cycles,
            "{cfg}: tuned {} cycles > default {} cycles",
            outcome.tuned_cycles,
            outcome.default_cycles
        );
        // The reported default really is the default kernel's cycle count.
        let default_cycles = generate(cfg).expect("valid").model_stats().cycles;
        assert!(
            (outcome.default_cycles - default_cycles).abs() < 1e-9 * default_cycles.max(1.0),
            "{cfg}: tuner's default score drifted"
        );
    }
    // Winners survive a JSON round trip and drive a cache.
    let reloaded = PlanStore::from_json(&store.to_json()).expect("well-formed document");
    assert_eq!(reloaded.len(), shapes.len());
    let cache = KernelCache::with_store(64, reloaded);
    for cfg in &shapes {
        cache.get_or_compile(cfg).expect("valid configuration");
    }
    assert_eq!(cache.stats().tuned_compiles, shapes.len() as u64);
}

#[test]
fn batched_mixed_dispatch_bit_matches_per_config_execution() {
    let service = GemmService::new(32);
    // Mixed traffic: three distinct configurations, interleaved, with
    // repeats, covering both B layouts.
    let configs = [
        GemmConfig::abt(20, 12, 6),
        GemmConfig::ab(16, 16, 8),
        GemmConfig::abt(33, 17, 5),
    ];
    let requests: Vec<GemmRequest> = (0..9)
        .map(|i| GemmRequest::fp32(configs[i % 3], 1000 + i as u64))
        .collect();
    let report = service.dispatch(&requests).expect("valid batch");
    assert_eq!(report.outputs.len(), requests.len());
    assert_eq!(report.per_config.len(), 3);

    for (request, output) in requests.iter().zip(&report.outputs) {
        let cfg = request.config.as_fp32().expect("FP32 request");
        // Reference 1 (bit-match): the same kernel executed standalone on a
        // fresh simulator must produce the identical bits — grouping,
        // caching and host-thread fan-out may not perturb results.
        let kernel = generate(cfg).expect("valid configuration");
        let mut sim = Simulator::m4_performance();
        let bufs = kernel.allocate_buffers(&mut sim, Some(request.seed));
        kernel.run(&mut sim, bufs, &RunOptions::functional_only());
        let standalone = sim.mem.read_f32_slice(bufs.c, cfg.c_len());
        assert_eq!(
            output, &standalone,
            "{cfg}: dispatch output diverged from standalone execution"
        );

        // Reference 2 (numerical): the scalar reference GEMM agrees within
        // the usual FP32 reassociation tolerance.
        let mut a = vec![0.0f32; cfg.a_len()];
        let mut b = vec![0.0f32; cfg.b_len()];
        let mut c = vec![0.0f32; cfg.c_len()];
        fill_matrix(request.seed, &mut a);
        fill_matrix(request.seed ^ 0x1111_1111, &mut b);
        fill_matrix(request.seed ^ 0x2222_2222, &mut c);
        gemm_reference(cfg, &a, &b, &mut c);
        let err = max_abs_diff(output, &c);
        assert!(err < 1e-4, "{cfg}: max abs error vs reference {err}");
    }

    // Per-config aggregation covers the whole batch exactly once.
    let total_requests: usize = report.per_config.iter().map(|c| c.requests).sum();
    assert_eq!(total_requests, requests.len());
    let summed_cycles: f64 = report.per_config.iter().map(|c| c.stats.cycles).sum();
    assert!((report.total.cycles - summed_cycles).abs() < 1e-6 * summed_cycles.max(1.0));
}

#[test]
fn tuned_dispatch_preserves_results_and_cycles() {
    // The full loop: dispatch untuned, tune, dispatch again — same bits,
    // no more simulated cycles, and the tuned compile is counter-visible.
    let service = GemmService::new(32);
    let cfg = GemmConfig::abt(64, 64, 32);
    let requests: Vec<GemmRequest> = (0..3).map(|seed| GemmRequest::fp32(cfg, seed)).collect();
    let untuned = service.dispatch(&requests).expect("valid batch");
    let outcome = service
        .tune(&cfg, &TunerOptions::default())
        .expect("tunable configuration");
    assert!(outcome.tuned_cycles <= outcome.default_cycles);
    let tuned = service.dispatch(&requests).expect("valid batch");
    assert_eq!(
        untuned.outputs, tuned.outputs,
        "tuning must not change results"
    );
    assert!(tuned.total.cycles <= untuned.total.cycles * (1.0 + 1e-9));
    assert_eq!(service.cache().stats().tuned_compiles, 1);
}

#[test]
fn mixed_dtype_routed_dispatch_with_tuned_winners() {
    // The PR 4 acceptance property: one batch mixing FP32 and BF16
    // widening requests through `dispatch_routed`, with FP32 outputs
    // bit-identical to the scalar reference and BF16 outputs within the
    // widening tolerance of the BF16-rounded oracle; cache hits, tuned
    // winners and per-dtype reporting all keyed on `AnyGemmConfig`.
    use hello_sme::sme_gemm::{
        widening_reference, widening_rel_error, AnyGemmConfig, Dtype, WideningGemmConfig,
        WIDENING_REL_TOL,
    };

    let service = GemmService::new(32);
    let fp32 = GemmConfig::abt(32, 32, 16);
    let wide = WideningGemmConfig::new(32, 32, 16).unwrap();
    let requests = [
        GemmRequest::fp32(fp32, 11),
        GemmRequest::widening(wide, 12),
        GemmRequest::fp32(fp32, 13),
        GemmRequest::widening(wide, 14),
    ];

    // Tune both families first: winners are recorded under the unified key
    // and drive the compile of each group's kernel.
    let fp32_outcome = service
        .tune_any(&AnyGemmConfig::Fp32(fp32), &TunerOptions::default())
        .expect("tunable FP32 shape");
    let wide_outcome = service
        .tune_any(&AnyGemmConfig::WideningBf16(wide), &TunerOptions::default())
        .expect("tunable widening shape");
    assert!(fp32_outcome.tuned_cycles <= fp32_outcome.default_cycles);
    assert!(wide_outcome.tuned_cycles <= wide_outcome.default_cycles);

    // Dispatch with an explicit per-config route following the winners.
    let cache = service.cache();
    let report = service
        .dispatch_routed(&requests, |cfg| cache.preferred_backend_any(cfg))
        .expect("valid mixed batch");
    assert_eq!(report.per_config.len(), 2);
    assert_eq!(report.per_config[0].dtype, Dtype::Fp32);
    assert_eq!(report.per_config[1].dtype, Dtype::WideningBf16);
    assert_eq!(report.per_config[0].backend, fp32_outcome.winner.backend);
    assert_eq!(report.per_config[1].backend, wide_outcome.winner.backend);
    assert_eq!(
        service.cache().stats().tuned_compiles,
        2,
        "both groups compiled from their tuned records"
    );

    for (request, output) in requests.iter().zip(&report.outputs) {
        match request.config {
            AnyGemmConfig::Fp32(cfg) => {
                // Bit-identical to the scalar reference path.
                let mut a = vec![0.0f32; cfg.a_len()];
                let mut b = vec![0.0f32; cfg.b_len()];
                let mut c = vec![0.0f32; cfg.c_len()];
                fill_matrix(request.seed, &mut a);
                fill_matrix(request.seed ^ 0x1111_1111, &mut b);
                fill_matrix(request.seed ^ 0x2222_2222, &mut c);
                gemm_reference(&cfg, &a, &b, &mut c);
                assert_eq!(output, &c, "{cfg}: FP32 output must bit-match");
            }
            AnyGemmConfig::WideningBf16(cfg) => {
                // Within the widening tolerance of the BF16-rounded oracle.
                let mut a = vec![0.0f32; cfg.m * cfg.k];
                let mut b = vec![0.0f32; cfg.k * cfg.n];
                let mut c = vec![0.0f32; cfg.c_len()];
                fill_matrix(request.seed, &mut a);
                fill_matrix(request.seed ^ 0x1111_1111, &mut b);
                fill_matrix(request.seed ^ 0x2222_2222, &mut c);
                widening_reference(&cfg, &a, &b, &mut c);
                let err = widening_rel_error(output, &c);
                assert!(err < WIDENING_REL_TOL, "{cfg}: widening error {err}");
            }
        }
    }

    // A repeat batch is served entirely from the backend- and dtype-keyed
    // cache.
    let again = service
        .dispatch_routed(&requests, |cfg| cache.preferred_backend_any(cfg))
        .expect("valid mixed batch");
    assert!(again.per_config.iter().all(|c| c.cache_hit));
    assert_eq!(report.outputs, again.outputs);
}
