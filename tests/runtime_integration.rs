//! End-to-end test of the `sme-runtime` subsystem, covering the three
//! acceptance properties of the runtime PR:
//!
//! (a) a second request for the same `GemmConfig` is served from the cache
//!     without invoking the generator (counter-verified);
//! (b) the autotuned plan's simulated cycle count is never above the
//!     default heterogeneous plan's across a representative shape sweep;
//! (c) batched mixed-configuration dispatch results bit-match the
//!     per-config reference executions.

use hello_sme::sme_gemm::reference::{fill_matrix, gemm_reference, max_abs_diff};
use hello_sme::sme_gemm::{generate, GemmConfig};
use hello_sme::sme_machine::exec::{RunOptions, Simulator};
use hello_sme::sme_runtime::{GemmRequest, GemmService, KernelCache, PlanStore, TunerOptions};

#[test]
fn cache_serves_repeats_without_regenerating() {
    let cache = KernelCache::new(32);
    let cfg = GemmConfig::abt(48, 48, 32);

    let first = cache.get_or_compile(&cfg).expect("valid configuration");
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses), (0, 1), "first request compiles");

    // The second request must be a pure cache hit: the miss counter (which
    // counts exactly the generator invocations) stays put, and the very
    // same Arc'd kernel object comes back.
    let second = cache.get_or_compile(&cfg).expect("valid configuration");
    let stats = cache.stats();
    assert_eq!(
        (stats.hits, stats.misses),
        (1, 1),
        "second request is a hit"
    );
    assert!(std::sync::Arc::ptr_eq(&first, &second));

    // A different configuration is an independent miss.
    cache
        .get_or_compile(&GemmConfig::abt(48, 48, 33))
        .expect("valid configuration");
    assert_eq!(cache.stats().misses, 2);
}

#[test]
fn autotuned_plans_never_model_slower_than_the_default() {
    // A representative sweep: square, wide, tall, thin-strip and
    // non-multiple-of-16 shapes, plus a column-major case.
    let shapes: Vec<GemmConfig> = vec![
        GemmConfig::abt(16, 16, 64),
        GemmConfig::abt(32, 32, 64),
        GemmConfig::abt(48, 48, 64),
        GemmConfig::abt(64, 64, 64),
        GemmConfig::abt(80, 80, 64),
        GemmConfig::abt(33, 47, 64),
        GemmConfig::abt(64, 16, 64),
        GemmConfig::abt(16, 64, 64),
        GemmConfig::abt(96, 32, 64),
        GemmConfig::ab(48, 48, 64),
    ];
    let mut store = PlanStore::new();
    for cfg in &shapes {
        let outcome =
            hello_sme::sme_runtime::tune_into_store(cfg, &TunerOptions::default(), &mut store)
                .expect("tunable configuration");
        assert!(
            outcome.tuned_cycles <= outcome.default_cycles,
            "{cfg}: tuned {} cycles > default {} cycles",
            outcome.tuned_cycles,
            outcome.default_cycles
        );
        // The reported default really is the default kernel's cycle count.
        let default_cycles = generate(cfg).expect("valid").model_stats().cycles;
        assert!(
            (outcome.default_cycles - default_cycles).abs() < 1e-9 * default_cycles.max(1.0),
            "{cfg}: tuner's default score drifted"
        );
    }
    // Winners survive a JSON round trip and drive a cache.
    let reloaded = PlanStore::from_json(&store.to_json()).expect("well-formed document");
    assert_eq!(reloaded.len(), shapes.len());
    let cache = KernelCache::with_store(64, reloaded);
    for cfg in &shapes {
        cache.get_or_compile(cfg).expect("valid configuration");
    }
    assert_eq!(cache.stats().tuned_compiles, shapes.len() as u64);
}

#[test]
fn batched_mixed_dispatch_bit_matches_per_config_execution() {
    let service = GemmService::new(32);
    // Mixed traffic: three distinct configurations, interleaved, with
    // repeats, covering both B layouts.
    let configs = [
        GemmConfig::abt(20, 12, 6),
        GemmConfig::ab(16, 16, 8),
        GemmConfig::abt(33, 17, 5),
    ];
    let requests: Vec<GemmRequest> = (0..9)
        .map(|i| GemmRequest {
            config: configs[i % 3],
            seed: 1000 + i as u64,
        })
        .collect();
    let report = service.dispatch(&requests).expect("valid batch");
    assert_eq!(report.outputs.len(), requests.len());
    assert_eq!(report.per_config.len(), 3);

    for (request, output) in requests.iter().zip(&report.outputs) {
        let cfg = &request.config;
        // Reference 1 (bit-match): the same kernel executed standalone on a
        // fresh simulator must produce the identical bits — grouping,
        // caching and host-thread fan-out may not perturb results.
        let kernel = generate(cfg).expect("valid configuration");
        let mut sim = Simulator::m4_performance();
        let bufs = kernel.allocate_buffers(&mut sim, Some(request.seed));
        kernel.run(&mut sim, bufs, &RunOptions::functional_only());
        let standalone = sim.mem.read_f32_slice(bufs.c, cfg.c_len());
        assert_eq!(
            output, &standalone,
            "{cfg}: dispatch output diverged from standalone execution"
        );

        // Reference 2 (numerical): the scalar reference GEMM agrees within
        // the usual FP32 reassociation tolerance.
        let mut a = vec![0.0f32; cfg.a_len()];
        let mut b = vec![0.0f32; cfg.b_len()];
        let mut c = vec![0.0f32; cfg.c_len()];
        fill_matrix(request.seed, &mut a);
        fill_matrix(request.seed ^ 0x1111_1111, &mut b);
        fill_matrix(request.seed ^ 0x2222_2222, &mut c);
        gemm_reference(cfg, &a, &b, &mut c);
        let err = max_abs_diff(output, &c);
        assert!(err < 1e-4, "{cfg}: max abs error vs reference {err}");
    }

    // Per-config aggregation covers the whole batch exactly once.
    let total_requests: usize = report.per_config.iter().map(|c| c.requests).sum();
    assert_eq!(total_requests, requests.len());
    let summed_cycles: f64 = report.per_config.iter().map(|c| c.stats.cycles).sum();
    assert!((report.total.cycles - summed_cycles).abs() < 1e-6 * summed_cycles.max(1.0));
}

#[test]
fn tuned_dispatch_preserves_results_and_cycles() {
    // The full loop: dispatch untuned, tune, dispatch again — same bits,
    // no more simulated cycles, and the tuned compile is counter-visible.
    let service = GemmService::new(32);
    let cfg = GemmConfig::abt(64, 64, 32);
    let requests: Vec<GemmRequest> = (0..3)
        .map(|seed| GemmRequest { config: cfg, seed })
        .collect();
    let untuned = service.dispatch(&requests).expect("valid batch");
    let outcome = service
        .tune(&cfg, &TunerOptions::default())
        .expect("tunable configuration");
    assert!(outcome.tuned_cycles <= outcome.default_cycles);
    let tuned = service.dispatch(&requests).expect("valid batch");
    assert_eq!(
        untuned.outputs, tuned.outputs,
        "tuning must not change results"
    );
    assert!(tuned.total.cycles <= untuned.total.cycles * (1.0 + 1e-9));
    assert_eq!(service.cache().stats().tuned_compiles, 1);
}
