//! Correctness sweep of the BF16 → FP32 widening kernels on both engines.
//!
//! Every shape is checked against the **scalar BF16-rounded oracle**: the
//! FP32 operands are rounded to BF16 exactly as the packing functions round
//! them (pack → bf16-truncate), then accumulated in FP32 sequentially in
//! contraction order ([`widening_reference`]). Both backends must stay
//! within the relative-error bound their `validate` methods assert
//! ([`WIDENING_REL_TOL`]); the SME BFMOPA kernel additionally matches the
//! oracle **bit for bit** (its ZA accumulation is the oracle's arithmetic),
//! while the Neon `BFMMLA` kernel reassociates four products per
//! instruction and is held to the tolerance only.

use hello_sme::sme_gemm::reference::fill_matrix;
use hello_sme::sme_gemm::{
    generate_any_backend, sme_widening_supports, widening_reference, widening_rel_error,
    AnyGemmConfig, Backend, RoutedKernel, WideningGemmConfig, WIDENING_REL_TOL,
};
use hello_sme::sme_machine::exec::{RunOptions, Simulator};

/// The oracle C buffer for one seeded request (mirrors the kernel handles'
/// seeding scheme).
fn oracle_output(cfg: &WideningGemmConfig, seed: u64) -> Vec<f32> {
    let mut a = vec![0.0f32; cfg.m * cfg.k];
    let mut b = vec![0.0f32; cfg.k * cfg.n];
    let mut c = vec![0.0f32; cfg.c_len()];
    fill_matrix(seed, &mut a);
    fill_matrix(seed ^ 0x1111_1111, &mut b);
    fill_matrix(seed ^ 0x2222_2222, &mut c);
    widening_reference(cfg, &a, &b, &mut c);
    c
}

/// Run `kernel` functionally on its own packed seeded operands and read C.
fn kernel_output(kernel: &RoutedKernel, seed: u64) -> Vec<f32> {
    let mut sim = Simulator::m4_performance();
    let bufs = kernel.allocate_buffers(&mut sim, Some(seed));
    kernel.run(&mut sim, bufs, &RunOptions::functional_only());
    sim.mem.read_f32_slice(bufs.c, kernel.c_len())
}

/// The sweep: 32-grid shapes (full SME tiles) and envelope-grid shapes
/// (masked SME edge tiles), square, wide, tall, thin, shallow and deep,
/// including `k % 4 == 2` depths that exercise the BFMMLA zero-padded quad.
/// Since the predicated edge-tile work, **both** engines compile every
/// shape here.
fn sweep() -> Vec<WideningGemmConfig> {
    [
        (32, 32, 2),
        (32, 32, 16),
        (32, 64, 12),
        (64, 32, 8),
        (64, 64, 24),
        (96, 32, 10), // k % 4 == 2
        (32, 96, 64),
        (8, 2, 2),    // smallest envelope shape, one heavily masked tile
        (16, 4, 8),   // the thin crossover shape
        (16, 4, 64),  // deep and thin
        (40, 6, 14),  // off both the 32-grid and the quad boundary
        (16, 16, 32), // partial row and column groups in one block
        (48, 40, 64), // dense but misaligned: masked edge strips
        (96, 72, 12), // multiple full blocks plus masked edges
    ]
    .into_iter()
    .map(|(m, n, k)| WideningGemmConfig::new(m, n, k).expect("sweep shapes are on the grid"))
    .collect()
}

#[test]
fn widening_kernels_match_the_scalar_oracle_on_both_engines() {
    let mut off_grid_checked = 0;
    for cfg in sweep() {
        let any = AnyGemmConfig::WideningBf16(cfg);
        let seed = 9000 + cfg.m as u64 + cfg.k as u64;
        let oracle = oracle_output(&cfg, seed);

        // The Neon BFMMLA baseline compiles every valid widening shape.
        let neon = generate_any_backend(&any, Backend::Neon).expect("Neon widening is total");
        assert_eq!(neon.backend(), Backend::Neon);
        let err = widening_rel_error(&kernel_output(&neon, seed), &oracle);
        assert!(
            err < WIDENING_REL_TOL,
            "{cfg}: Neon widening error {err} exceeds {WIDENING_REL_TOL}"
        );
        // The handle's own validation asserts the same bound.
        let err = neon.validate(seed);
        assert!(err < WIDENING_REL_TOL, "{cfg}: Neon validate() {err}");

        // The SME path is total over the envelope grid and matches the
        // oracle bit for bit everywhere: masked edge tiles accumulate each
        // active element in contraction order with unfused multiply-adds,
        // exactly like the full tiles.
        assert!(sme_widening_supports(&cfg).is_ok(), "{cfg}: SME is total");
        let sme = generate_any_backend(&any, Backend::Sme).expect("SME widening is total");
        assert_eq!(sme.backend(), Backend::Sme);
        assert_eq!(
            kernel_output(&sme, seed),
            oracle,
            "{cfg}: SME widening output diverged from the sequential oracle"
        );
        assert_eq!(sme.validate(seed), 0.0, "{cfg}: bit-identical");
        if !cfg.m.is_multiple_of(32) || !cfg.n.is_multiple_of(32) {
            off_grid_checked += 1;
        }
    }
    assert!(
        off_grid_checked >= 5,
        "the sweep must exercise masked SME edge tiles"
    );
}

#[test]
fn widening_backends_agree_with_each_other_within_tolerance() {
    // Both engines compile every envelope shape and their outputs agree to
    // the shared bound — the property that makes routing a widening shape
    // between engines numerically safe, now on the whole envelope grid.
    for cfg in sweep() {
        let any = AnyGemmConfig::WideningBf16(cfg);
        let seed = 77;
        let sme = kernel_output(&generate_any_backend(&any, Backend::Sme).unwrap(), seed);
        let neon = kernel_output(&generate_any_backend(&any, Backend::Neon).unwrap(), seed);
        let err = widening_rel_error(&sme, &neon);
        assert!(err < WIDENING_REL_TOL, "{cfg}: cross-engine error {err}");
    }
}
