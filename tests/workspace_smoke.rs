//! Fast smoke test of the umbrella crate's re-exports.
//!
//! A manifest regression (missing member, renamed package, broken path
//! dependency) should be caught here in a couple of seconds, not only by
//! the full property suites. Every workspace member is touched once through
//! the `hello_sme::*` paths.

use hello_sme::{accel_ref, sme_gemm, sme_isa, sme_machine, sme_microbench, sme_runtime};

#[test]
fn umbrella_reaches_every_crate() {
    // sme-gemm: generate and numerically validate a small kernel.
    let cfg = sme_gemm::GemmConfig::abt(16, 16, 8);
    let kernel = sme_gemm::generate(&cfg).expect("small config generates");
    assert!(kernel.validate(7) < 1e-4);

    // sme-isa: the kernel's machine code decodes back to its program.
    let decoded =
        sme_isa::decode::decode_bytes(&kernel.machine_code()).expect("emitted words decode");
    assert_eq!(decoded.len(), kernel.program().insts().len());

    // sme-machine: the machine model resolves and describes an M4.
    let machine = sme_machine::MachineConfig::apple_m4();
    assert!(machine.multicore.p_cores >= 1);

    // accel-ref: the baseline produces a finite positive throughput.
    let vendor = accel_ref::AccelerateSgemm::new(cfg);
    let gflops = vendor.model_gflops().expect("valid baseline config");
    assert!(gflops.is_finite() && gflops > 0.0);

    // sme-runtime: a cache hit after one compile, counter-verified.
    let cache = sme_runtime::KernelCache::new(4);
    cache.get_or_compile(&cfg).expect("small config compiles");
    cache.get_or_compile(&cfg).expect("small config compiles");
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));

    // sme-microbench: one bandwidth measurement comes out positive.
    let bw = sme_microbench::bandwidth::measure(
        &machine,
        sme_microbench::TransferStrategy::FourVectors,
        false,
        64 << 10,
        128,
    );
    assert!(bw > 0.0);
}

#[test]
fn umbrella_kernel_beats_the_baseline_on_the_paper_shape() {
    // The one-line headline claim, reachable purely through re-exports.
    let cfg = sme_gemm::GemmConfig::abt(96, 96, 96);
    let ours = sme_gemm::generate(&cfg).unwrap().model_gflops();
    let vendor = accel_ref::AccelerateSgemm::new(cfg).model_gflops().unwrap();
    assert!(ours > vendor, "generated {ours} vs vendor {vendor}");
}
