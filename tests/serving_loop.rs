//! End-to-end test of the serving loop — the acceptance test of the
//! "close the serving loop" PR:
//!
//! (a) a **saturated mixed batch** (many SME-preferring groups, two shared
//!     SME units) is placed strictly better than route-in-isolation
//!     dispatch, by an asserted margin, and the spilled groups really
//!     execute on Neon;
//! (b) the loop survives a **simulated restart**: telemetry and tuned
//!     plans persist to disk, a brand-new router restores them, one
//!     pretune-daemon tick re-warms the kernel cache, and yesterday's hot
//!     shapes are then served without a single compile — proven via the
//!     kernel cache's hit/miss counters.

use hello_sme::sme_gemm::{Backend, GemmConfig, WideningGemmConfig};
use hello_sme::sme_router::{PretuneDaemon, PretuneDaemonConfig, Router};
use hello_sme::sme_runtime::GemmRequest;

/// A saturated mixed batch: twelve distinct SME-preferring widening groups
/// (only two shared SME units exist) plus FP32 traffic on both sides of
/// the crossover.
fn saturated_batch() -> Vec<GemmRequest> {
    let mut requests: Vec<GemmRequest> = (0..12)
        .map(|i| {
            GemmRequest::widening(
                WideningGemmConfig::new(32, 32, 8 * (i + 1)).expect("valid widening shape"),
                i as u64,
            )
        })
        .collect();
    requests.push(GemmRequest::fp32(GemmConfig::abt(64, 64, 32), 100));
    requests.push(GemmRequest::fp32(GemmConfig::abt(16, 4, 16), 101));
    requests
}

#[test]
fn saturated_batch_placement_beats_isolation_by_margin() {
    let router = Router::new(64);
    let requests = saturated_batch();
    let report = router.dispatch(&requests).expect("valid batch");

    assert!(
        !report.rerouted.is_empty(),
        "a saturated SME class must spill marginal groups"
    );
    let placed = report.placement.makespan_cycles();
    let isolated = report.isolated.makespan_cycles();
    // The spill must buy a real improvement, not a rounding artifact: at
    // least 10% off the isolated projection (the observed improvement on
    // this batch is well above that).
    assert!(
        placed <= 0.90 * isolated,
        "placed {placed} must beat isolated {isolated} by ≥10%"
    );
    assert_eq!(
        report.makespan_improvement_cycles(),
        isolated - placed,
        "the report's improvement accessor matches the projections"
    );
    // The executed report follows the placement: every spilled group ran
    // on Neon, and the outputs are per-request complete.
    for config in &report.rerouted {
        let group = report
            .batch
            .per_config
            .iter()
            .find(|g| g.config == *config)
            .expect("rerouted shape was dispatched");
        assert_eq!(group.backend, Backend::Neon);
    }
    assert_eq!(report.batch.outputs.len(), requests.len());
}

#[test]
fn restart_serves_yesterdays_hot_shapes_from_warm_cache() {
    let dir = std::env::temp_dir().join(format!(
        "sme_serving_loop_test_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let mut config = PretuneDaemonConfig::in_dir(&dir);
    config.top_n = 16; // cover the whole working set
    let daemon = PretuneDaemon::new(config);
    let requests = saturated_batch();

    // --- Yesterday's process: serve traffic, tick the daemon. -----------
    let yesterday = Router::new(64);
    daemon
        .restore(&yesterday)
        .expect("fresh start restores nothing");
    for _ in 0..3 {
        yesterday.dispatch(&requests).expect("valid batch");
    }
    let total_before = yesterday.telemetry().total_requests();
    let hot_before: Vec<_> = yesterday
        .top_shapes(usize::MAX)
        .into_iter()
        .map(|s| s.config)
        .collect();
    let tick = daemon.tick(&yesterday).expect("tick succeeds");
    assert!(tick.persisted, "the tick persisted telemetry and plans");
    assert!(
        !tick.tuned.is_empty() || tick.already_tuned > 0,
        "the tick tuned the hot shapes"
    );

    // --- Today's process: restore, re-warm, serve without compiling. ----
    let today = Router::new(64);
    let restore = daemon.restore(&today).expect("restore succeeds");
    assert_eq!(
        restore.telemetry_shapes,
        hot_before.len(),
        "every hot shape survived the restart"
    );
    assert!(restore.plans > 0, "tuned plans survived the restart");
    assert_eq!(
        today.telemetry().total_requests(),
        total_before,
        "telemetry totals carried over"
    );
    let hot_after: Vec<_> = today
        .top_shapes(usize::MAX)
        .into_iter()
        .map(|s| s.config)
        .collect();
    assert_eq!(hot_before, hot_after, "the decayed ranking carried over");

    let tick = daemon.tick(&today).expect("tick succeeds");
    assert!(tick.tuned.is_empty(), "nothing left to tune after restore");
    assert!(tick.warmed > 0, "the tick compiled the hot shapes' kernels");

    // Yesterday's traffic is now a pure cache hit: dispatch compiles
    // nothing, measured at the kernel cache itself (routing probes and
    // placement alternatives included).
    let before = today.cache().stats();
    let report = today.dispatch(&requests).expect("valid batch");
    let after = today.cache().stats();
    assert_eq!(
        after.misses, before.misses,
        "the warm cache served every kernel without compiling"
    );
    assert!(
        after.hits > before.hits,
        "dispatch actually went through the cache"
    );
    for group in &report.batch.per_config {
        assert!(group.cache_hit, "every executed group was a cache hit");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
