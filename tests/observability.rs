//! End-to-end test of the causal-tracing and flight-recorder surfaces —
//! the acceptance test of the observability PR:
//!
//! (a) one dispatched batch produces a **connected span graph**: the
//!     `router.dispatch` root, a `router.place` child, `service.group`
//!     children parented *across the rayon thread hop*, and every cold
//!     compile recorded as a `cache.compile` child of the span that
//!     caused it — and the Chrome export validates with flow arrows for
//!     the cross-thread edges;
//! (b) a daemon tick roots its own trace with its warm compiles as
//!     children, on a named thread lane;
//! (c) an injected SLO breach produces a postmortem bundle carrying the
//!     breaching rule plus all four snapshots.

use hello_sme::sme_gemm::{GemmConfig, WideningGemmConfig};
use hello_sme::sme_obs::{postmortem_bundle, ObsHub, Sentinel, SpanRecord};
use hello_sme::sme_router::{PretuneDaemon, PretuneDaemonConfig, Router};
use hello_sme::sme_runtime::GemmRequest;
use serde::json::Value;

/// A mixed batch: four distinct widening shapes plus FP32 traffic, enough
/// to fan out over multiple rayon workers and compile several kernels.
fn mixed_batch() -> Vec<GemmRequest> {
    let mut requests: Vec<GemmRequest> = (0..4)
        .map(|i| {
            GemmRequest::widening(
                WideningGemmConfig::new(32, 32, 16 * (i + 1)).expect("valid widening shape"),
                i as u64,
            )
        })
        .collect();
    requests.push(GemmRequest::fp32(GemmConfig::abt(64, 64, 32), 100));
    requests
}

fn spans_named<'a>(spans: &'a [SpanRecord], name: &str) -> Vec<&'a SpanRecord> {
    spans.iter().filter(|s| s.name == name).collect()
}

#[test]
fn dispatch_produces_a_connected_cross_thread_span_graph() {
    let router = Router::new(64);
    let hub = ObsHub::shared(4096);
    router.attach_obs(hub.clone());
    let requests = mixed_batch();
    router.dispatch(&requests).expect("valid batch");

    let spans = hub.trace.snapshot();
    assert!(!spans.is_empty(), "dispatch recorded spans");
    for span in &spans {
        assert!(span.trace_id > 0, "{}: spans carry a trace id", span.name);
        assert!(span.span_id > 0, "{}: spans carry a span id", span.name);
    }

    // Exactly one batch root, and it is a root.
    let dispatch = spans_named(&spans, "router.dispatch");
    assert_eq!(dispatch.len(), 1, "one dispatch root per batch");
    let root = dispatch[0];
    assert_eq!(root.parent_id, None, "the dispatch span is a trace root");

    // Placement is a direct child of the root, in the same trace.
    let place = spans_named(&spans, "router.place");
    assert_eq!(place.len(), 1);
    assert_eq!(place[0].parent_id, Some(root.span_id));
    assert_eq!(place[0].trace_id, root.trace_id);

    // Every executed group parents to the root across the thread hop.
    let groups = spans_named(&spans, "service.group");
    assert!(!groups.is_empty(), "group execution recorded spans");
    for group in &groups {
        assert_eq!(
            group.parent_id,
            Some(root.span_id),
            "group spans parent to the batch root"
        );
        assert_eq!(group.trace_id, root.trace_id);
    }
    assert!(
        groups.iter().any(|g| g.tid != root.tid),
        "at least one group executed on a different thread than the root"
    );

    // Cold compiles are children of the span that caused them — a group
    // execution or the placement cost probe — never orphan roots.
    let compiles = spans_named(&spans, "cache.compile");
    assert!(!compiles.is_empty(), "a cold cache compiled kernels");
    let by_id: std::collections::HashMap<u64, &SpanRecord> =
        spans.iter().map(|s| (s.span_id, s)).collect();
    for compile in &compiles {
        let parent_id = compile.parent_id.expect("compiles are never roots");
        let parent = by_id[&parent_id];
        assert!(
            parent.name == "service.group" || parent.name == "router.place",
            "compile parented under {} — expected a group or placement span",
            parent.name
        );
        assert_eq!(compile.trace_id, parent.trace_id);
    }

    // Span ids are unique across the whole graph.
    assert_eq!(by_id.len(), spans.len(), "span ids are unique");

    // The Chrome export validates and draws the cross-thread arrows.
    let json = hub.trace.to_chrome_trace();
    let exported = hello_sme::sme_obs::validate_chrome_trace(&json).expect("valid Chrome trace");
    assert_eq!(exported, spans.len());
    let doc = serde_json::from_str(&json).expect("export parses");
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    let flow_starts = events
        .iter()
        .filter(|e| e.get("ph").unwrap().as_str() == Some("s"))
        .count();
    let flow_finishes = events
        .iter()
        .filter(|e| e.get("ph").unwrap().as_str() == Some("f"))
        .count();
    assert!(flow_starts > 0, "cross-thread edges draw flow arrows");
    assert_eq!(flow_starts, flow_finishes, "flow events come in pairs");
    assert!(
        events
            .iter()
            .any(|e| e.get("ph").unwrap().as_str() == Some("M")),
        "worker lanes carry thread-name metadata"
    );
}

#[test]
fn daemon_ticks_root_their_own_traces() {
    let dir = std::env::temp_dir().join(format!(
        "sme_obs_test_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let router = Router::new(64);
    let hub = ObsHub::shared(4096);
    router.attach_obs(hub.clone());
    router.dispatch(&mixed_batch()).expect("valid batch");

    let mut config = PretuneDaemonConfig::in_dir(&dir);
    config.top_n = 8;
    let daemon = PretuneDaemon::new(config);
    let tick = daemon.tick(&router).expect("tick succeeds");
    assert!(tick.warmed > 0 || !tick.tuned.is_empty(), "the tick worked");

    let spans = hub.trace.snapshot();
    let ticks = spans_named(&spans, "daemon.tick");
    assert_eq!(ticks.len(), 1, "one span per tick");
    let tick_span = ticks[0];
    assert_eq!(tick_span.parent_id, None, "a tick roots its own trace");
    // The tick's warm compiles are its children (the batch already
    // compiled the preferred kernels, but warming covers the alternates).
    let warm_children: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "cache.compile" && s.parent_id == Some(tick_span.span_id))
        .collect();
    for child in &warm_children {
        assert_eq!(child.trace_id, tick_span.trace_id);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_slo_breach_yields_a_full_postmortem_bundle() {
    let router = Router::new(64);
    let hub = ObsHub::shared(4096);
    router.attach_obs(hub.clone());
    router.dispatch(&mixed_batch()).expect("valid batch");

    // An impossible contract: sub-cycle makespans, perfect hit rate on a
    // cold cache, and a daemon tick that never happened.
    let sentinel = Sentinel::serving_defaults(1.0, 1.0);
    let breaches = sentinel.evaluate(&hub.metrics);
    assert!(!breaches.is_empty(), "the strict contract must breach");
    assert!(
        breaches
            .iter()
            .any(|b| b.metric == "sme_batch_makespan_cycles"),
        "the makespan ceiling is among the breaches"
    );

    let telemetry = Value::Array(
        router
            .top_shapes(8)
            .iter()
            .map(|s| s.to_json_value())
            .collect(),
    );
    let shards = Value::Array(
        router
            .cache()
            .shard_stats()
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("hits".to_string(), Value::Number(s.hits as f64)),
                    ("misses".to_string(), Value::Number(s.misses as f64)),
                ])
            })
            .collect(),
    );
    let bundle = postmortem_bundle(&hub, &breaches[0], telemetry, shards);

    assert_eq!(bundle.get("version").unwrap().as_u64(), Some(1));
    assert_eq!(
        bundle.get("breach").unwrap().get("rule").unwrap().as_str(),
        Some(breaches[0].rule.as_str()),
        "the bundle names the breaching rule"
    );
    let trace_events = bundle
        .get("trace")
        .unwrap()
        .get("traceEvents")
        .unwrap()
        .as_array()
        .unwrap();
    assert!(!trace_events.is_empty(), "the trace snapshot is present");
    assert!(
        bundle
            .get("metrics")
            .unwrap()
            .get("counters")
            .unwrap()
            .get("sme_router_batches_total")
            .is_some(),
        "the metrics snapshot is present"
    );
    assert!(
        !bundle
            .get("telemetry_top_shapes")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty(),
        "the telemetry snapshot is present"
    );
    assert!(
        !bundle
            .get("cache_shards")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty(),
        "the cache snapshot is present"
    );
}
