//! The Fig. 7 scenario in detail: how the generator tiles an 80×80 output
//! with a mix of 32×32, 16×64 and 64×16 register blockings, and what that
//! buys compared to a homogeneous tiling.
//!
//! Run with: `cargo run --release --example heterogeneous_blocking`

use sme_gemm::{
    generate, generate_with_plan, plan_heterogeneous, plan_homogeneous, GemmConfig,
    RegisterBlocking,
};

fn print_plan(name: &str, plan: &sme_gemm::BlockPlan) {
    println!(
        "{name}: {} microkernel executions, {} A/B elements loaded per k step",
        plan.num_microkernels(),
        plan.loads_per_k_step()
    );
    for (i, b) in plan.blocks.iter().enumerate() {
        println!(
            "  #{i}: rows {:3}..{:3}  cols {:3}..{:3}  {:?}{}",
            b.row0,
            b.row0 + b.rows,
            b.col0,
            b.col0 + b.cols,
            b.blocking,
            if b.is_full() { "" } else { "  (masked)" }
        );
    }
}

fn main() {
    let (m, n, k) = (80usize, 80usize, 512usize);

    let het = plan_heterogeneous(m, n);
    let hom = plan_homogeneous(m, n, RegisterBlocking::B32x32);
    print_plan("heterogeneous plan", &het);
    println!();
    print_plan("homogeneous 32x32 plan", &hom);

    // Both plans cover C exactly once; the heterogeneous one needs fewer
    // microkernel executions (7 vs 9-10 in the paper's Fig. 7).
    assert!(het.covers_exactly_once());
    assert!(hom.covers_exactly_once());
    assert!(het.num_microkernels() < hom.num_microkernels());

    // Generate kernels for both plans and compare their modelled throughput
    // and their numerical results.
    let cfg = GemmConfig::abt(m, n, k);
    let het_kernel = generate(&cfg).expect("heterogeneous kernel");
    let hom_kernel = generate_with_plan(&cfg, Some(hom)).expect("homogeneous kernel");

    let het_err = het_kernel.validate(1);
    let hom_err = hom_kernel.validate(1);
    println!(
        "\nnumerical error vs reference: heterogeneous {het_err:.2e}, homogeneous {hom_err:.2e}"
    );
    assert!(het_err < 1e-4 && hom_err < 1e-4);

    println!(
        "modelled throughput: heterogeneous {:.0} GFLOPS, homogeneous {:.0} GFLOPS",
        het_kernel.model_gflops(),
        hom_kernel.model_gflops()
    );
}
