//! Quickstart: generate one SME small-GEMM kernel, inspect it, validate it
//! numerically and model its performance.
//!
//! Run with: `cargo run --release --example quickstart`

use sme_gemm::{generate, kernel_stats, GemmConfig};

fn main() {
    // The paper's canonical setting: C += A * B^T with column-major A and C,
    // row-major B, and a deep contraction dimension.
    let cfg = GemmConfig::abt(80, 80, 512);
    println!("generating kernel for {cfg}");

    let kernel = generate(&cfg).expect("configuration is valid");
    let stats = kernel_stats(&kernel);
    println!(
        "generated {} instructions ({} bytes of machine code), {} FMOPA sites, {} microkernel executions",
        stats.instructions, stats.code_bytes, stats.fmopa_count, stats.microkernels
    );

    // The block plan shows the heterogeneous register blocking of Fig. 7.
    let hist = kernel.plan().strategy_histogram();
    println!(
        "block plan: {}x 32x32, {}x 16x64, {}x 64x16",
        hist[0].1, hist[1].1, hist[2].1
    );

    // A short excerpt of the generated code (the Lst. 4 inner loop is in
    // there — look for the fmopa instructions).
    let listing = kernel.disassembly();
    println!("\nfirst 18 lines of the generated kernel:");
    for line in listing.lines().take(18) {
        println!("  {line}");
    }

    // Numerical validation against a scalar reference GEMM.
    let max_err = kernel.validate(42);
    println!("\nmax |generated - reference| on random operands: {max_err:.2e}");
    assert!(max_err < 1e-4);

    // Modelled performance on one M4 performance core.
    println!(
        "modelled throughput: {:.0} FP32 GFLOPS",
        kernel.model_gflops()
    );
}
