//! Run the paper's Table I microbenchmarks on the simulated M4 and print
//! the modelled throughput next to the published measurements, plus the
//! Fig. 1 scaling summary.
//!
//! Run with: `cargo run --release --example microbenchmark`

use sme_machine::MachineConfig;
use sme_microbench::report::{render_scaling, render_table_one};
use sme_microbench::scaling::figure1;
use sme_microbench::throughput::{table_one, table_one_reference};

fn main() {
    let config = MachineConfig::apple_m4();

    println!("Table I (modelled vs paper):\n");
    let rows = table_one(&config);
    println!("{}", render_table_one(&rows, Some(&table_one_reference())));

    // Largest relative deviation from the paper across all rows.
    let mut worst = 0.0f64;
    for (row, (_, _, p_ref, e_ref)) in rows.iter().zip(table_one_reference()) {
        worst = worst
            .max((row.p_core_gops - p_ref).abs() / p_ref)
            .max((row.e_core_gops - e_ref).abs() / e_ref);
    }
    println!(
        "largest deviation from the paper across Table I: {:.1}%\n",
        worst * 100.0
    );

    println!("Fig. 1 (multi-core scaling, GFLOPS):\n");
    let fig = figure1(&config, 10);
    println!("{}", render_scaling(&fig.neon, &fig.fmopa));
    println!(
        "SME speed-ups over 10-thread Neon: {:.1}x (one unit), {:.1}x (both units)",
        fig.single_thread_sme_speedup(),
        fig.dual_unit_sme_speedup()
    );
}
