//! Explore the ZA-array transfer strategies of §III-G interactively: for a
//! handful of working-set sizes and alignments, print the modelled load and
//! store bandwidth of every strategy and highlight the paper's two central
//! observations (two-step loads are ~2.6× faster; stores do not benefit).
//!
//! Run with: `cargo run --release --example bandwidth_explorer`

use sme_machine::MachineConfig;
use sme_microbench::bandwidth::measure;
use sme_microbench::TransferStrategy;

fn main() {
    let config = MachineConfig::apple_m4();
    let sizes: [(u64, &str); 4] = [
        (64 << 10, "64 KiB"),
        (4 << 20, "4 MiB"),
        (16 << 20, "16 MiB"),
        (1 << 30, "1 GiB"),
    ];

    for store in [false, true] {
        println!(
            "\n=== {} bandwidth (GiB/s), 128-byte aligned ===",
            if store {
                "ZA -> memory store"
            } else {
                "memory -> ZA load"
            }
        );
        print!("{:>22}", "strategy \\ size");
        for (_, label) in &sizes {
            print!(" {label:>10}");
        }
        println!();
        for strategy in TransferStrategy::all() {
            print!("{:>22}", strategy.label(store));
            for (bytes, _) in &sizes {
                let bw = measure(&config, strategy, store, *bytes, 128);
                print!(" {bw:>10.0}");
            }
            println!();
        }
    }

    // The two headline observations of §III-G.
    let direct = measure(&config, TransferStrategy::Direct, false, 4 << 20, 128);
    let two_step = measure(&config, TransferStrategy::FourVectors, false, 4 << 20, 128);
    println!(
        "\ntwo-step loads vs direct loads from L2: {:.1}x (paper: 2.6x, 925 vs 375 GiB/s)",
        two_step / direct
    );

    let direct_store = measure(&config, TransferStrategy::Direct, true, 4 << 20, 128);
    let two_step_store = measure(&config, TransferStrategy::FourVectors, true, 4 << 20, 128);
    println!(
        "two-step stores vs direct stores        : {:.2}x (paper: no significant improvement)",
        two_step_store / direct_store
    );

    // Alignment sensitivity of the fastest load path.
    println!("\nLD1W 4VR load bandwidth by alignment (4 MiB working set):");
    for align in [16u64, 32, 64, 128] {
        let bw = measure(
            &config,
            TransferStrategy::FourVectors,
            false,
            4 << 20,
            align,
        );
        println!("  {align:>3}-byte aligned: {bw:6.0} GiB/s");
    }
}
