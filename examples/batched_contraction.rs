//! Batched small GEMMs: the workload that motivates LIBXSMM-style JIT
//! kernels. A high-order finite-element or tensor-contraction code executes
//! the same small matrix multiplication once per element, thousands of
//! times per time step — so one generated kernel is reused across a batch of
//! operand triples.
//!
//! Run with: `cargo run --release --example batched_contraction`

use sme_gemm::batch::BatchedGemm;
use sme_gemm::reference::{gemm_reference, max_abs_diff};
use sme_gemm::{Beta, GemmConfig};
use sme_machine::exec::{RunOptions, Simulator};

fn main() {
    // A typical high-order element-local operator size: 35 basis functions,
    // 9 quantities, 56 quadrature points (not multiples of the tile size —
    // the generator masks the remainders).
    let cfg = GemmConfig::abt(35, 9, 56).with_beta(Beta::One);
    let batch_size = 64;

    let batch = BatchedGemm::new(&cfg).expect("valid configuration");
    println!(
        "kernel for {} reused over a batch of {batch_size} element contractions",
        batch.kernel().config()
    );

    // Allocate and fill the whole batch in simulated memory.
    let mut sim = Simulator::m4_performance();
    let triples = batch.allocate_batch(&mut sim, batch_size, 2024);

    // Keep host-side copies to verify the results afterwards.
    let inputs: Vec<_> = triples
        .iter()
        .map(|t| {
            (
                sim.mem.read_f32_slice(t.a, cfg.a_len()),
                sim.mem.read_f32_slice(t.b, cfg.b_len()),
                sim.mem.read_f32_slice(t.c, cfg.c_len()),
            )
        })
        .collect();

    // Execute the batch functionally and check every element against the
    // reference.
    let stats = batch.execute(&mut sim, &triples, &RunOptions::functional_only());
    let mut worst = 0f32;
    for (t, (a, b, c0)) in triples.iter().zip(&inputs) {
        let mut c_ref = c0.clone();
        gemm_reference(&cfg, a, b, &mut c_ref);
        let c_out = sim.mem.read_f32_slice(t.c, cfg.c_len());
        worst = worst.max(max_abs_diff(&c_out, &c_ref));
    }
    println!(
        "batch executed: {} simulated instructions, max |error| = {worst:.2e}",
        stats.instructions
    );
    assert!(worst < 1e-4);

    // Modelled throughput of the batch on one performance core.
    println!(
        "modelled batch throughput: {:.0} FP32 GFLOPS ({} flops per element)",
        batch.model_batch_gflops(batch_size),
        cfg.flops()
    );
}
