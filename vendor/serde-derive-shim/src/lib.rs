//! Offline stand-in for `serde_derive`.
//!
//! The real `serde_derive` parses the item with `syn` and emits impls of
//! serde's generic `Serialize`/`Deserialize` traits. Neither `syn` nor a
//! registry to fetch it from is available here, so this crate parses the
//! derive input directly from the `proc_macro` token stream and emits an
//! impl of the shim trait `serde::Serialize` (`fn to_json_value`), which is
//! all `serde_json::to_string_pretty` needs.
//!
//! Supported shapes — exactly what this workspace derives on:
//! non-generic structs (named, tuple, unit) and non-generic enums with
//! unit, tuple and struct variants. Generic items produce a compile error
//! naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the shim trait) for a non-generic item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => emit_serialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

/// Accept `#[derive(Deserialize)]` and emit the marker impl. Nothing in the
/// workspace deserializes, so no code is generated beyond the marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => format!("impl ::serde::Deserialize for {} {{}}", item.name)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attributes(tokens: &mut Tokens) {
    while let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() != '#' {
            break;
        }
        tokens.next();
        // The bracketed attribute body (and `!` for inner attributes, which
        // cannot occur in derive input anyway).
        if let Some(TokenTree::Group(_)) = tokens.peek() {
            tokens.next();
        }
    }
}

fn skip_visibility(tokens: &mut Tokens) {
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Consume tokens of a type (or discriminant expression) up to a top-level
/// comma, tracking angle-bracket depth so commas inside `Vec<(A, B)>` or
/// `Option<Foo<T>>` do not end the field early. Parenthesised and bracketed
/// subtrees arrive as single groups, so only `<`/`>` need explicit depth.
fn skip_type(tokens: &mut Tokens) {
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    while let Some(tt) = tokens.peek() {
        match tt {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && angle_depth == 0 {
                    return;
                }
                if c == '<' {
                    angle_depth += 1;
                } else if c == '>' && !prev_dash && angle_depth > 0 {
                    angle_depth -= 1;
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
        tokens.next();
    }
}

fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let mut tokens: Tokens = group.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            None => return Ok(names),
            Some(other) => return Err(format!("unexpected token in fields: {other}")),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, got {other:?}")),
        }
        skip_type(&mut tokens);
        // The separating comma (absent after the last field).
        tokens.next();
    }
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut tokens: Tokens = group.into_iter().peekable();
    let mut count = 0;
    while tokens.peek().is_some() {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        count += 1;
        skip_type(&mut tokens);
        tokens.next();
    }
    count
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let mut tokens: Tokens = group.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return Ok(variants),
            Some(other) => return Err(format!("unexpected token in enum body: {other}")),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                tokens.next();
                Fields::Named(parse_named_fields(inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                tokens.next();
                Fields::Tuple(count_tuple_fields(inner))
            }
            _ => Fields::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '=' {
                tokens.next();
                skip_type(&mut tokens);
            }
        }
        // The separating comma.
        tokens.next();
        variants.push(Variant { name, fields });
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens: Tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);
    let kind_word = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde-derive-shim: generic item `{name}` is not supported; \
                 extend vendor/serde-derive-shim if one is ever needed"
            ));
        }
    }
    let kind = match kind_word.as_str() {
        "struct" => match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            _ => ItemKind::Struct(Fields::Unit),
        },
        "enum" => match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body, got {other:?}")),
        },
        other => Err(format!(
            "serde-derive-shim: cannot derive for `{other}` items"
        ))?,
    };
    Ok(Item { name, kind })
}

const VALUE: &str = "::serde::json::Value";

fn object_literal(pairs: &[(String, String)]) -> String {
    let entries: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("(::std::string::String::from({k:?}), {v})"))
        .collect();
    format!("{VALUE}::Object(::std::vec![{}])", entries.join(", "))
}

/// JSON for a set of fields, given an expression prefix producing each field
/// (`&self.` for structs, `` for bound match-arm identifiers).
fn named_fields_value(names: &[String], access: impl Fn(&str) -> String) -> String {
    let pairs: Vec<(String, String)> = names
        .iter()
        .map(|n| {
            (
                n.clone(),
                format!("::serde::Serialize::to_json_value({})", access(n)),
            )
        })
        .collect();
    object_literal(&pairs)
}

fn emit_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Unit) => format!("{VALUE}::Null"),
        ItemKind::Struct(Fields::Tuple(1)) => {
            "::serde::Serialize::to_json_value(&self.0)".to_string()
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                .collect();
            format!("{VALUE}::Array(::std::vec![{}])", elems.join(", "))
        }
        ItemKind::Struct(Fields::Named(names)) => {
            named_fields_value(names, |n| format!("&self.{n}"))
        }
        ItemKind::Enum(variants) if variants.is_empty() => "match *self {}".to_string(),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => {VALUE}::String(\
                             ::std::string::String::from({vname:?}))"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_json_value(f0)".to_string()
                            } else {
                                let elems: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                    .collect();
                                format!("{VALUE}::Array(::std::vec![{}])", elems.join(", "))
                            };
                            format!(
                                "{name}::{vname}({}) => {}",
                                binds.join(", "),
                                object_literal(&[(vname.clone(), inner)])
                            )
                        }
                        Fields::Named(fields) => {
                            let inner = named_fields_value(fields, |n| n.to_string());
                            format!(
                                "{name}::{vname} {{ {} }} => {}",
                                fields.join(", "),
                                object_literal(&[(vname.clone(), inner)])
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> {VALUE} {{ {body} }}\n\
         }}"
    )
}
