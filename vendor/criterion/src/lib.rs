//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Provides the measurement API surface the `sme-bench` benches use and a
//! plain wall-clock harness behind it: per benchmark it warms up once, picks
//! an iteration count targeting a fixed measurement window, and prints the
//! mean time per iteration (plus throughput when configured). No statistics,
//! no HTML reports, no baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock spent measuring one benchmark.
const MEASUREMENT_WINDOW: Duration = Duration::from_millis(300);

/// Measures closures and prints results; the hub type of the API.
#[derive(Debug)]
pub struct Criterion {
    /// Nominal sample count (kept for API parity; the shim only uses it to
    /// scale the measurement window down for expensive benches).
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function_name/parameter`, like criterion renders it.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function_name, self.parameter)
    }
}

/// Passed to the bench closure; runs the workload.
#[derive(Debug)]
pub struct Bencher {
    iters_hint: u64,
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `f`, repeatedly.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // One untimed call to warm caches and find the rough cost.
        let probe_start = Instant::now();
        std::hint::black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(20));
        let iters = (MEASUREMENT_WINDOW.as_nanos() / probe.as_nanos())
            .clamp(1, self.iters_hint as u128) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.result = Some((start.elapsed(), iters));
    }
}

fn render_duration(d: Duration) -> String {
    let nanos = d.as_nanos() as f64;
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        iters_hint: sample_size.max(1) as u64 * 100,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((total, iters)) if iters > 0 => {
            let per_iter = total / iters as u32;
            let mut line = format!(
                "{label:<50} {:>12}/iter ({iters} iters)",
                render_duration(per_iter)
            );
            if let Some(tp) = throughput {
                let per_sec = |count: u64| count as f64 / per_iter.as_secs_f64().max(1e-12);
                match tp {
                    Throughput::Elements(n) => {
                        line.push_str(&format!("  {:.2e} elem/s", per_sec(n)))
                    }
                    Throughput::Bytes(n) => line.push_str(&format!("  {:.2e} B/s", per_sec(n))),
                }
            }
            println!("{line}");
        }
        _ => println!("{label:<50} (no measurement: bencher.iter was not called)"),
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size: None,
        }
    }

    /// Measure one standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, None, f);
        self
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the nominal sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Measure a benchmark in this group.
    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{name}", self.name);
        run_one(&label, self.effective_sample_size(), self.throughput, f);
        self
    }

    /// Measure a parameterized benchmark.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        run_one(&label, self.effective_sample_size(), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (printing is incremental; nothing left to flush).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;
