//! The JSON value tree produced by [`crate::Serialize`] and its renderer.
//!
//! Lives in the `serde` shim (rather than `serde_json`) so the derive can
//! reference one canonical path; `serde_json` re-exports it.

/// A JSON value.
///
/// Object members are an ordered `Vec` so that serialized output preserves
/// declaration order, like serde_json does for derived structs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number. All workspace numerics fit f64 exactly except huge
    /// u64 counters, which round — acceptable for result export.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with ordered members.
    Object(Vec<(String, Value)>),
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(n: f64) -> String {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 9.0e15 {
            format!("{}", n as i64)
        } else {
            format!("{n}")
        }
    } else {
        // JSON has no Inf/NaN; serde_json errors here, the shim writes null.
        "null".to_string()
    }
}

impl Value {
    /// Member lookup on an object (`None` for other variants or missing
    /// keys). The first member wins if a key is duplicated; shim-produced
    /// documents never duplicate keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.trunc() == *n && *n <= 9.0e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element vector, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The ordered members, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Render compactly (no whitespace).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation, like `serde_json::to_string_pretty`.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some("  "), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<&str>, level: usize) {
        let (nl, pad, pad_close, colon) = match indent {
            Some(unit) => ("\n", unit.repeat(level + 1), unit.repeat(level), ": "),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&number_to_string(*n)),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Value::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    escape_into(out, key);
                    out.push_str(colon);
                    value.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }
}
