//! Offline stand-in for the `serde` crate.
//!
//! The real serde separates data structures from data formats through the
//! `Serializer`/`Deserializer` visitor machinery. This workspace only ever
//! serializes to JSON (the `--json` flag of the `sme-bench` binaries), so
//! the shim collapses the design: [`Serialize`] produces a [`json::Value`]
//! tree directly and `serde_json` renders it. The public *names* match the
//! real crate (`serde::Serialize`, `serde::Deserialize`, `#[derive(..)]`)
//! so sources keep compiling unchanged if the real crates ever replace the
//! shims (see `vendor/README.md`).

pub use serde_derive_shim::{Deserialize, Serialize};

pub mod json;

/// A type that can render itself as a [`json::Value`] tree.
///
/// Implemented by `#[derive(Serialize)]` (via `serde-derive-shim`) and
/// provided here for the primitive, string and container types the
/// workspace serializes.
pub trait Serialize {
    /// Convert `self` into a JSON value tree.
    fn to_json_value(&self) -> json::Value;
}

/// Marker accepted by `#[derive(Deserialize)]`.
///
/// Nothing in this workspace deserializes; the trait exists so that
/// `use serde::{Deserialize, Serialize}` resolves both names.
pub trait Deserialize {}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> json::Value {
                json::Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for String {
    fn to_json_value(&self) -> json::Value {
        json::Value::String(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_json_value(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}
impl Deserialize for char {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> json::Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> json::Value {
        match self {
            Some(v) => v.to_json_value(),
            None => json::Value::Null,
        }
    }
}
impl<T> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T, const N: usize> Deserialize for [T; N] {}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> json::Value {
        json::Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_json_value() {
                        // JSON object keys must be strings; unit-enum and
                        // string keys map directly, anything else renders
                        // compactly (like serde_json's map keys do not, but
                        // nothing here relies on round-tripping them).
                        json::Value::String(s) => s,
                        other => other.render_compact(),
                    };
                    (key, v.to_json_value())
                })
                .collect(),
        )
    }
}
impl<K, V> Deserialize for std::collections::BTreeMap<K, V> {}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json_value(&self) -> json::Value {
        (**self).to_json_value()
    }
}
impl<T> Deserialize for Box<T> {}

macro_rules! impl_serialize_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> json::Value {
                json::Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name),+> Deserialize for ($($name,)+) {}
    };
}

impl_serialize_tuple!(A: 0);
impl_serialize_tuple!(A: 0, B: 1);
impl_serialize_tuple!(A: 0, B: 1, C: 2);
impl_serialize_tuple!(A: 0, B: 1, C: 2, D: 3);
