//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply draws a fresh value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then use it to pick a follow-up strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Filter generated values; used through `prop_filter` in real proptest.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Erase the concrete type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// The result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive values: {}",
            self.whence
        );
    }
}

/// Weighted union of boxed strategies — the engine behind `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! requires a positive total weight"
        );
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strat) in &self.arms {
            if pick < *weight as u64 {
                return strat.new_value(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights covered the draw")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_their_bounds() {
        let mut rng = TestRng::from_seed(3);
        let strat = 0u8..4;
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.new_value(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 4]);

        let signed = -8i8..8;
        for _ in 0..100 {
            let v = signed.new_value(&mut rng);
            assert!((-8..8).contains(&v));
        }

        let incl = 1usize..=96;
        for _ in 0..100 {
            let v = incl.new_value(&mut rng);
            assert!((1..=96).contains(&v));
        }
    }

    #[test]
    fn map_tuple_and_union_compose() {
        let mut rng = TestRng::from_seed(11);
        let strat = crate::prop_oneof![
            (0u8..4, 0u8..4).prop_map(|(a, b)| (a + b) as u32),
            Just(100u32),
        ];
        let mut saw_small = false;
        let mut saw_hundred = false;
        for _ in 0..100 {
            match strat.new_value(&mut rng) {
                100 => saw_hundred = true,
                v if v < 8 => saw_small = true,
                v => panic!("unexpected value {v}"),
            }
        }
        assert!(saw_small && saw_hundred);
    }
}
