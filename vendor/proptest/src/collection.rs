//! Strategies for collections (`proptest::collection`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::{Range, RangeInclusive};

/// Length bounds accepted by [`vec()`], mirroring proptest's `SizeRange`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            max_inclusive: len,
        }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate a `Vec` whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;
    use crate::rng::TestRng;

    #[test]
    fn lengths_stay_in_bounds() {
        let strat = vec(any::<u8>(), 0..16);
        let mut rng = TestRng::from_seed(5);
        let mut saw_empty = false;
        let mut saw_long = false;
        for _ in 0..300 {
            let v = strat.new_value(&mut rng);
            assert!(v.len() < 16);
            saw_empty |= v.is_empty();
            saw_long |= v.len() >= 12;
        }
        assert!(saw_empty && saw_long);
    }

    #[test]
    fn fixed_length_form() {
        let strat = vec(0u8..10, 4usize);
        let mut rng = TestRng::from_seed(6);
        assert_eq!(strat.new_value(&mut rng).len(), 4);
    }
}
