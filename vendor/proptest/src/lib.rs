//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset this workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, implemented for integer
//!   ranges, tuples of strategies (arity ≤ 8), [`strategy::Just`] and boxed strategies;
//! * [`arbitrary::any`] for the primitive types;
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`), and the
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!` macros.
//!
//! Differences from the real crate: value generation is driven by a
//! deterministic xorshift RNG seeded per test function, and failing cases
//! are **not shrunk** — the failure message prints the generated values
//! via `Debug` instead.

pub mod arbitrary;
pub mod collection;
pub mod rng;
pub mod strategy;

/// The aggregate prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRunner};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Test-runner types referenced by the macros.
pub mod test_runner {
    /// Why a single generated case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assert*` failed with this message.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// Construct a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "inputs rejected: {m}"),
            }
        }
    }

    /// Placeholder for API parity; the `proptest!` macro drives everything.
    #[derive(Debug, Default)]
    pub struct TestRunner {}
}

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Upper bound on consecutive `prop_assume!` rejections before the
    /// property errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 1024,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases, otherwise default.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Select one of several strategies with equal probability.
///
/// Weighted arms (`weight => strategy`) are accepted and the weights
/// respected.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// `assert!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` in `prop_assert!` form.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l, r, format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` in `prop_assert!` form.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            l, format!($($fmt)*)
        );
    }};
}

/// Skip the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Define property test functions.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, flag in any::<bool>()) { .. }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    (@fns ($config:expr)) => {};
    (@fns ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::rng::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut rejects: u32 = 0;
            let mut case: u32 = 0;
            // Bind each strategy expression once (under its argument's
            // name), so per-case generation below only draws values instead
            // of rebuilding strategy trees; the inner `let` shadows the
            // strategy with the drawn value for the body's scope.
            $(let $arg = $strat;)+
            while case < config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&$arg, &mut rng);)+
                // Capture Debug renderings before the body may move values.
                let rendered_inputs = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str("\n    ");
                        s.push_str(stringify!($arg));
                        s.push_str(" = ");
                        s.push_str(&format!("{:?}", &$arg));
                    )+
                    s
                };
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => case += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejects += 1;
                        if rejects > config.max_global_rejects {
                            panic!(
                                "proptest: too many prop_assume! rejections in {}",
                                stringify!($name)
                            );
                        }
                    }
                    Err(e) => panic!(
                        "proptest case {case} of {} failed: {e}\n  inputs:{rendered_inputs}",
                        stringify!($name)
                    ),
                }
            }
        }
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()) $($rest)*);
    };
}
