//! `any::<T>()` for the primitive types.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draw a uniformly distributed value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        // Uniform over the scalar-value space, skewed to ASCII like real
        // proptest's default.
        if rng.next_u64() & 3 != 0 {
            (0x20 + rng.below(0x5F) as u32) as u8 as char
        } else {
            char::from_u32(rng.below(0x11_0000 - 0x800) as u32).unwrap_or('\u{FFFD}')
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}
