//! Deterministic pseudo-random source for value generation.

/// A splitmix64/xorshift-style generator, seeded from the test's name so
/// each property draws an independent but reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (the `proptest!` macro passes the fully
    /// qualified test-function path).
    pub fn for_test(name: &str) -> Self {
        let mut seed: u64 = 0x9E37_79B9_7F4A_7C15;
        for b in name.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        TestRng { state: seed | 1 }
    }

    /// Seed directly.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping is fine for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("x::z");
        let _ = c.next_u64();
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_seed(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }
}
