//! Offline stand-in for `rayon` (see `vendor/README.md`).
//!
//! Implements the one pattern the workspace uses —
//! `slice.par_iter().map(f).collect()` — with real parallelism from
//! `std::thread::scope`: worker threads pull item indices from a shared
//! atomic counter and write results back into their slots, so `collect`
//! preserves input order exactly like rayon.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The traits to import, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Types whose contents can be iterated in parallel by reference.
pub trait IntoParallelRefIterator<'a> {
    /// The item type, `&'a T`.
    type Item: 'a;
    /// Begin a parallel pipeline over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// A parallel iterator over borrowed items.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I> ParIter<I> {
    /// Map each item through `f` in parallel.
    pub fn map<F, R>(self, f: F) -> ParMap<I, F>
    where
        F: Fn(I) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The mapped pipeline; terminated by [`ParMap::collect`].
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send, F> ParMap<I, F> {
    /// Run the pipeline and collect results in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(I) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.items.len();
        let workers = std::thread::available_parallelism()
            .map_or(1, |p| p.get())
            .min(n.max(1));
        let f = &self.f;
        // Move items into per-slot cells so workers can take them by index.
        let items: Vec<Mutex<Option<I>>> = self
            .items
            .into_iter()
            .map(|i| Mutex::new(Some(i)))
            .collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = items[i]
                        .lock()
                        .unwrap()
                        .take()
                        .expect("each slot taken once");
                    let r = f(item);
                    *results[i].lock().unwrap() = Some(r);
                });
            }
        });
        results
            .into_iter()
            .map(|cell| cell.into_inner().unwrap().expect("each slot filled once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_empty_input() {
        let input: Vec<u8> = Vec::new();
        let out: Vec<u8> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
