//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Provides the serialization entry points the workspace calls; the value
//! tree itself lives in the `serde` shim.

pub use serde::json::Value;

/// The error type of serialization.
///
/// The shim's renderer is total (non-finite numbers become `null`), so this
/// is never actually constructed; it exists to keep the `Result` signatures
/// of the real crate.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render_compact())
}

/// Serialize `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render_pretty())
}

/// Parse a JSON document into a [`Value`] tree.
///
/// The real `serde_json::from_str` deserializes into an arbitrary
/// `Deserialize` type; the shim stops at the value tree and callers extract
/// fields with the [`Value`] accessors (`get`, `as_f64`, `as_str`, …).
/// The parser covers the RFC 8259 grammar (objects, arrays, strings with
/// escapes including surrogate pairs, numbers, literals) with a slightly
/// lenient number syntax (leading zeros are accepted).
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the top-level value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Combine a surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(ch) => out.push(ch),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                _ if c < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Copy the full UTF-8 sequence starting at `c`.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Length of the UTF-8 sequence whose first byte is `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("fig8".into())),
            ("k".into(), Value::Number(512.0)),
            (
                "points".into(),
                Value::Array(vec![Value::Number(1.5), Value::Bool(true), Value::Null]),
            ),
        ]);
        assert_eq!(
            v.render_compact(),
            r#"{"name":"fig8","k":512,"points":[1.5,true,null]}"#
        );
        let pretty = v.render_pretty();
        assert!(pretty.contains("\n  \"points\": [\n    1.5,\n    true,\n    null\n  ]\n"));
    }

    #[test]
    fn escapes_strings() {
        let v = Value::String("a\"b\\c\nd".into());
        assert_eq!(v.render_compact(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn parser_round_trips_rendered_documents() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("plan \"x\"\n".into())),
            ("k".into(), Value::Number(512.0)),
            ("frac".into(), Value::Number(-0.125)),
            (
                "points".into(),
                Value::Array(vec![Value::Number(1.5e3), Value::Bool(false), Value::Null]),
            ),
            ("empty_obj".into(), Value::Object(vec![])),
            ("empty_arr".into(), Value::Array(vec![])),
        ]);
        assert_eq!(from_str(&v.render_compact()).unwrap(), v);
        assert_eq!(from_str(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = from_str(r#"{"s": "tab\t quote\" slash\/ \u00e9 \ud83d\ude00"}"#).unwrap();
        assert_eq!(
            v.get("s").unwrap().as_str(),
            Some("tab\t quote\" slash/ é 😀")
        );
        let raw = from_str("\"héllo — ✓\"").unwrap();
        assert_eq!(raw.as_str(), Some("héllo — ✓"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\": 1,}x",
            "tru",
            "\"unterminated",
            "\"bad \\q escape\"",
            "1 2",
            "nan",
            "--5",
            "{\"lone\": \"\\ud800\"}",
        ] {
            assert!(from_str(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn value_accessors() {
        let v = from_str(r#"{"n": 3, "f": 2.5, "s": "x", "b": true, "a": [1], "o": {"k": 1}}"#)
            .unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.get("o").unwrap().as_object().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
        assert!(v.get("n").unwrap().get("nested").is_none());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::Number(42.0).render_compact(), "42");
        assert_eq!(Value::Number(-0.25).render_compact(), "-0.25");
        assert_eq!(Value::Number(f64::NAN).render_compact(), "null");
    }
}
