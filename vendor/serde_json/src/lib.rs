//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Provides the serialization entry points the workspace calls; the value
//! tree itself lives in the `serde` shim.

pub use serde::json::Value;

/// The error type of serialization.
///
/// The shim's renderer is total (non-finite numbers become `null`), so this
/// is never actually constructed; it exists to keep the `Result` signatures
/// of the real crate.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render_compact())
}

/// Serialize `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("fig8".into())),
            ("k".into(), Value::Number(512.0)),
            (
                "points".into(),
                Value::Array(vec![Value::Number(1.5), Value::Bool(true), Value::Null]),
            ),
        ]);
        assert_eq!(
            v.render_compact(),
            r#"{"name":"fig8","k":512,"points":[1.5,true,null]}"#
        );
        let pretty = v.render_pretty();
        assert!(pretty.contains("\n  \"points\": [\n    1.5,\n    true,\n    null\n  ]\n"));
    }

    #[test]
    fn escapes_strings() {
        let v = Value::String("a\"b\\c\nd".into());
        assert_eq!(v.render_compact(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::Number(42.0).render_compact(), "42");
        assert_eq!(Value::Number(-0.25).render_compact(), "-0.25");
        assert_eq!(Value::Number(f64::NAN).render_compact(), "null");
    }
}
