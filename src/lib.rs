//! Umbrella crate for the *Hello SME!* reproduction.
//!
//! This crate re-exports the workspace members so that the examples and
//! integration tests under the repository root can use a single dependency.
//! Library users should normally depend on the individual crates:
//!
//! * [`sme_isa`] — AArch64 SME/SVE/Neon instruction model, encoder and assembler.
//! * [`sme_machine`] — functional + timing simulator of an Apple-M4-like core.
//! * [`sme_gemm`] — the paper's contribution: a JIT generator for small GEMM kernels.
//! * [`sme_runtime`] — the serving layer: autotuning kernel cache and batched dispatch.
//! * [`sme_router`] — traffic-aware SME/Neon dispatch with per-shape telemetry.
//! * [`sme_obs`] — causal tracing, metrics and the SLO flight recorder.
//! * [`sme_microbench`] — the paper's microbenchmarks (Table I, Figs. 1–5).
//! * [`accel_ref`] — an Accelerate-BLAS stand-in used as the evaluation baseline.

pub use accel_ref;
pub use sme_gemm;
pub use sme_isa;
pub use sme_machine;
pub use sme_microbench;
pub use sme_obs;
pub use sme_router;
pub use sme_runtime;
