//! Crash-safety fuzz for every snapshot loader in the workspace: the plan
//! store (document versions 1–4), the telemetry snapshot, the perf
//! baseline, and the postmortem bundle. Random truncation, bit flips,
//! spliced garbage and outright non-JSON bytes must surface as `Err` (or a
//! recovered/empty store) — never as a panic. A corrupt file on disk may
//! cost tuned state; it must not take down the process that finds it.

use proptest::collection::vec;
use proptest::prelude::*;
use sme_bench::BaselineStore;
use sme_gemm::{Backend, GemmConfig};
use sme_machine::MachineConfig;
use sme_router::TelemetryRegistry;
use sme_runtime::PlanStore;
use std::path::PathBuf;

/// Hand-written documents for the three legacy plan-store formats (v1 has
/// no backend field, v2 no dtype, v3 no schedule), plus the current v4
/// produced by round-tripping v2 through the store itself.
fn plan_docs() -> Vec<String> {
    let v1 = r#"{"version": 1, "entries": [{"m": 48, "n": 48, "k": 16, "lda": 48,
        "ldb": 48, "ldc": 48, "b_layout": "RowMajor", "beta": "One",
        "plan": "Homogeneous16x64", "c_transfer": "Direct",
        "k_unroll": 2, "tuned_cycles": 100, "default_cycles": 150}]}"#;
    let v2 = r#"{"version": 2, "entries": [{"m": 48, "n": 48, "k": 16, "lda": 48,
        "ldb": 48, "ldc": 48, "b_layout": "RowMajor", "beta": "One",
        "backend": "Sme", "plan": "Homogeneous16x64", "c_transfer": "Direct",
        "k_unroll": 2, "tuned_cycles": 100, "default_cycles": 150}]}"#;
    let v3 = r#"{"version": 3, "entries": [{"m": 48, "n": 48, "k": 16, "lda": 48,
        "ldb": 48, "ldc": 48, "b_layout": "RowMajor", "beta": "One",
        "dtype": "Fp32", "backend": "Sme", "plan": "Homogeneous16x64",
        "c_transfer": "Direct", "k_unroll": 2, "tuned_cycles": 100,
        "default_cycles": 150}]}"#;
    let v4 = PlanStore::from_json(v2)
        .expect("v2 fixture parses")
        .to_json();
    vec![v1.to_string(), v2.to_string(), v3.to_string(), v4]
}

fn telemetry_doc() -> String {
    let registry = TelemetryRegistry::for_machine(&MachineConfig::apple_m4());
    registry.record_group(
        &GemmConfig::abt(64, 64, 32).into(),
        Backend::Sme,
        4,
        1000.0,
        true,
    );
    registry.advance_epoch();
    registry.to_json()
}

fn baseline_doc() -> String {
    let mut store = BaselineStore::for_machine(&MachineConfig::apple_m4());
    store.set_metric("restart_hit_rate", 1.0);
    store.set_shape_cycles("Fp32 64x64x32", 123.0);
    store.to_json()
}

/// One way of damaging a document on disk.
#[derive(Debug, Clone)]
enum Damage {
    /// Torn write: only a prefix reached the disk.
    Truncate(usize),
    /// Silent media corruption: one bit flipped somewhere.
    FlipBit { byte: usize, bit: u8 },
    /// Interleaved write from another process: bytes spliced in.
    Splice { at: usize, bytes: Vec<u8> },
    /// The file is not ours at all.
    Garbage(Vec<u8>),
}

fn damage_strategy() -> impl Strategy<Value = Damage> {
    prop_oneof![
        (0usize..4096).prop_map(Damage::Truncate).boxed(),
        (0usize..4096, 0u8..8)
            .prop_map(|(byte, bit)| Damage::FlipBit { byte, bit })
            .boxed(),
        (0usize..4096, vec(0u8..255, 1..64))
            .prop_map(|(at, bytes)| Damage::Splice { at, bytes })
            .boxed(),
        vec(0u8..255, 0..256).prop_map(Damage::Garbage).boxed(),
    ]
}

fn apply(doc: &str, damage: &Damage) -> Vec<u8> {
    let mut bytes = doc.as_bytes().to_vec();
    match damage {
        Damage::Truncate(n) => {
            let cut = n % bytes.len().max(1);
            bytes.truncate(cut);
        }
        Damage::FlipBit { byte, bit } => {
            if !bytes.is_empty() {
                let i = byte % bytes.len();
                bytes[i] ^= 1 << bit;
            }
        }
        Damage::Splice { at, bytes: extra } => {
            let i = at % (bytes.len() + 1);
            for (j, b) in extra.iter().enumerate() {
                bytes.insert(i + j, *b);
            }
        }
        Damage::Garbage(raw) => bytes = raw.clone(),
    }
    bytes
}

/// Write the damaged bytes as both the primary and its `.bak` generation,
/// so the recovery ladder's backup branch chews on damaged input too.
fn write_damaged(name: &str, bytes: &[u8]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sme_snapfuzz_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join(name);
    std::fs::write(&path, bytes).expect("write primary");
    std::fs::write(sme_runtime::backup_path(&path), bytes).expect("write backup");
    path
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn plan_store_loaders_never_panic(pick in 0usize..4, damage in damage_strategy()) {
        let docs = plan_docs();
        let bytes = apply(&docs[pick], &damage);
        let path = write_damaged("plans.json", &bytes);
        let machine = MachineConfig::apple_m4();
        let _ = PlanStore::load(&path);
        let _ = PlanStore::load_checked(&path, &machine);
        let _ = PlanStore::load_recovered(&path, &machine);
    }

    #[test]
    fn telemetry_loaders_never_panic(damage in damage_strategy()) {
        let bytes = apply(&telemetry_doc(), &damage);
        let path = write_damaged("telemetry.json", &bytes);
        let machine = MachineConfig::apple_m4();
        let _ = TelemetryRegistry::load(&path);
        let _ = TelemetryRegistry::load_checked(&path, &machine);
        let _ = TelemetryRegistry::load_recovered(&path, &machine);
    }

    #[test]
    fn baseline_loaders_never_panic(damage in damage_strategy()) {
        let bytes = apply(&baseline_doc(), &damage);
        let path = write_damaged("baseline.json", &bytes);
        let _ = BaselineStore::load(&path);
        let _ = BaselineStore::load_checked(&path, &MachineConfig::apple_m4());
    }

    #[test]
    fn postmortem_loader_never_panics(damage in damage_strategy()) {
        let doc = r#"{"breaches": [{"rule": "makespan-p99", "observed": 2.5,
            "threshold": 2.0}], "spans": [], "metrics": {}}"#;
        let bytes = apply(doc, &damage);
        let path = write_damaged("postmortem.json", &bytes);
        // The postmortem "loader" is the verifying snapshot reader plus a
        // JSON parse — the same pair the serving binary runs after writing
        // a bundle.
        if let Ok(text) = sme_runtime::read_snapshot(&path) {
            let _ = serde_json::from_str(&text);
        }
    }
}
