//! End-to-end chaos smoke: the CI serving trace under the seeded fault
//! schedule, asserted in-process.
//!
//! This test deliberately lives alone in its own integration-test binary:
//! the fault injector is process-global, so nothing else in the same
//! process may dispatch through `GemmService` while the schedule is
//! armed. Keep it that way — a second `#[test]` here would race the
//! occurrence counters and turn the schedule nondeterministic.

use sme_bench::{chaos_run, ServingTraceOptions};

#[test]
fn chaos_smoke_trace_completes_bit_correct() {
    let args = ["--smoke", "--chaos", "--chaos-seed", "5"]
        .iter()
        .map(|s| s.to_string());
    let opts = ServingTraceOptions::parse(args).expect("chaos flags parse");
    let dir = std::env::temp_dir().join(format!("sme_chaos_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let run = chaos_run(&opts, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    let report = run.expect("chaos run completes").report;

    assert_eq!(
        report.failed_requests, 0,
        "no request may be dropped under the chaos schedule: {report:?}"
    );
    assert!(report.bit_correct, "degraded outputs diverged: {report:?}");
    assert!(
        report.distinct_fault_kinds >= 4,
        "schedule only exercised {} fault kind(s): {:?}",
        report.distinct_fault_kinds,
        report.fault_events
    );
    assert!(
        report.plans_recovered > 0 && report.plan_restore_source.as_deref() == Some("backup"),
        "restart must restore tuned plans from the previous generation: {report:?}"
    );
    assert!(report.tick_failures > 0, "daemon faults never fired");
    assert!(report.passed, "overall verdict failed: {report:?}");
}
