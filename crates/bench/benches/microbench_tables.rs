//! Host-side cost of regenerating the paper's microbenchmark tables and
//! figures (Table I, Fig. 1, one bandwidth curve).

use criterion::{criterion_group, criterion_main, Criterion};
use sme_machine::MachineConfig;
use sme_microbench::bandwidth::figure_2_or_3;
use sme_microbench::scaling::figure1;
use sme_microbench::throughput::table_one;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let config = MachineConfig::apple_m4();
    let mut group = c.benchmark_group("microbench_regeneration");
    group.sample_size(10);
    group.bench_function("table1", |b| b.iter(|| black_box(table_one(&config))));
    group.bench_function("fig1", |b| b.iter(|| black_box(figure1(&config, 10))));
    let sizes = vec![1 << 12, 1 << 16, 1 << 20, 1 << 24, 1 << 28];
    group.bench_function("fig2_coarse", |b| {
        b.iter(|| black_box(figure_2_or_3(&config, false, &sizes)))
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
