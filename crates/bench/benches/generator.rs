//! Host-side cost of just-in-time kernel generation.
//!
//! LIBXSMM-style libraries generate kernels at runtime, so generation
//! latency matters: it must be amortisable over a handful of kernel calls.
//! These benches measure the full path (planning, emission, branch
//! resolution) and the machine-code lowering for representative shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sme_gemm::{generate, GemmConfig};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_generation");
    for &mn in &[16usize, 64, 128, 256] {
        let cfg = GemmConfig::abt(mn, mn, 512);
        group.bench_with_input(BenchmarkId::new("abt", mn), &cfg, |b, cfg| {
            b.iter(|| generate(black_box(cfg)).unwrap())
        });
        let cfg_ab = GemmConfig::ab(mn, mn, 512);
        group.bench_with_input(BenchmarkId::new("ab", mn), &cfg_ab, |b, cfg| {
            b.iter(|| generate(black_box(cfg)).unwrap())
        });
    }
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let kernel = generate(&GemmConfig::abt(128, 128, 512)).unwrap();
    c.bench_function("machine_code_lowering_128x128x512", |b| {
        b.iter(|| black_box(kernel.machine_code()))
    });
}

fn bench_planning(c: &mut Criterion) {
    c.bench_function("heterogeneous_plan_512x512", |b| {
        b.iter(|| sme_gemm::plan_heterogeneous(black_box(512), black_box(512)))
    });
}

criterion_group!(benches, bench_generation, bench_encoding, bench_planning);
criterion_main!(benches);
