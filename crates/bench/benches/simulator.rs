//! Host-side throughput of the machine simulator (simulated instructions
//! per second), functionally and in timing-only mode.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sme_gemm::{generate, GemmConfig};
use sme_machine::exec::{RunOptions, Simulator};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let cfg = GemmConfig::abt(64, 64, 64);
    let kernel = generate(&cfg).unwrap();
    let mut sim = Simulator::m4_performance();
    let bufs = kernel.allocate_buffers(&mut sim, Some(1));
    let insts = {
        let mut probe = sim.clone();
        kernel
            .run(&mut probe, bufs, &RunOptions::functional_only())
            .stats
            .instructions
    };

    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(insts));
    group.bench_function("functional_64x64x64", |b| {
        b.iter(|| {
            let mut s = sim.clone();
            black_box(kernel.run(&mut s, bufs, &RunOptions::functional_only()))
        })
    });
    group.bench_function("functional_plus_timing_64x64x64", |b| {
        b.iter(|| {
            let mut s = sim.clone();
            black_box(kernel.run(&mut s, bufs, &RunOptions::default()))
        })
    });
    group.bench_function("timing_only_64x64x64", |b| {
        b.iter(|| {
            let mut s = sim.clone();
            black_box(kernel.run(&mut s, bufs, &RunOptions::timing_only()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
