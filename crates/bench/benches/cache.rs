//! Host-side cost of the runtime's kernel cache.
//!
//! The cache exists so that steady-state traffic pays a hash lookup plus an
//! `Arc` clone instead of a full JIT generation. These benches measure both
//! sides of that trade for a representative shape, plus the cost of a
//! mixed-batch dispatch grouping.

use criterion::{criterion_group, criterion_main, Criterion};
use sme_gemm::{generate, GemmConfig};
use sme_runtime::{GemmRequest, GemmService, KernelCache};
use std::hint::black_box;

fn bench_hit_vs_generation(c: &mut Criterion) {
    let cfg = GemmConfig::abt(128, 128, 512);

    let cache = KernelCache::new(16);
    cache.get_or_compile(&cfg).unwrap();
    c.bench_function("cache_hit_128x128x512", |b| {
        b.iter(|| cache.get_or_compile(black_box(&cfg)).unwrap())
    });

    c.bench_function("fresh_generation_128x128x512", |b| {
        b.iter(|| generate(black_box(&cfg)).unwrap())
    });
}

fn bench_dispatch_grouping(c: &mut Criterion) {
    // Dispatch overhead on a warm cache: small kernels so the simulated
    // execution does not drown out the grouping/fan-out being measured.
    let service = GemmService::new(16);
    let requests: Vec<GemmRequest> = (0..32)
        .map(|i| GemmRequest::fp32(GemmConfig::abt(16 + 16 * (i % 4), 16, 8), i as u64))
        .collect();
    service.dispatch(&requests).unwrap();
    c.bench_function("dispatch_32_requests_4_configs_warm", |b| {
        b.iter(|| service.dispatch(black_box(&requests)).unwrap())
    });
}

criterion_group!(benches, bench_hit_vs_generation, bench_dispatch_grouping);
criterion_main!(benches);
