//! Host-side cost of evaluating one Fig. 8 / Fig. 9 sweep point
//! (generation + timing-only simulation + vendor baseline), which bounds the
//! wall-clock cost of the full figure sweeps.

use accel_ref::AccelerateSgemm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sme_gemm::{generate, GemmConfig};
use std::hint::black_box;

fn bench_sweep_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure8_sweep_point");
    group.sample_size(10);
    for &mn in &[32usize, 96, 160] {
        group.bench_with_input(BenchmarkId::new("libxsmm_model", mn), &mn, |b, &mn| {
            b.iter(|| {
                let cfg = GemmConfig::abt(mn, mn, 512);
                black_box(generate(&cfg).unwrap().model_gflops())
            })
        });
        group.bench_with_input(BenchmarkId::new("accelerate_model", mn), &mn, |b, &mn| {
            b.iter(|| {
                let cfg = GemmConfig::abt(mn, mn, 512);
                black_box(AccelerateSgemm::new(cfg).model_gflops().unwrap())
            })
        });
    }
    group.finish();
}

fn bench_validation(c: &mut Criterion) {
    let kernel = generate(&GemmConfig::abt(48, 48, 32)).unwrap();
    c.bench_function("functional_validation_48x48x32", |b| {
        b.iter(|| black_box(kernel.validate(11)))
    });
}

criterion_group!(benches, bench_sweep_point, bench_validation);
criterion_main!(benches);
