//! Regenerates Fig. 5: ZA store bandwidth per strategy for 16/32/64/128-byte
//! aligned data.

use sme_bench::{maybe_write_json, SweepOptions};
use sme_machine::MachineConfig;
use sme_microbench::bandwidth::{default_sizes, figure_4_or_5};
use sme_microbench::report::render_bandwidth;
use sme_microbench::TransferStrategy;

fn main() {
    let opts = SweepOptions::parse_or_exit(std::env::args().skip(1));
    let config = MachineConfig::apple_m4();
    let curves = figure_4_or_5(&config, true, &default_sizes());
    println!("Fig. 5 — ZA store bandwidth by alignment (GiB/s)\n");
    for strategy in TransferStrategy::all() {
        let label = strategy.label(true);
        let subset: Vec<_> = curves
            .iter()
            .filter(|c| c.strategy == label)
            .cloned()
            .collect();
        println!("({label})");
        println!("{}", render_bandwidth(&subset));
    }
    maybe_write_json(&opts.json, &curves);
}
