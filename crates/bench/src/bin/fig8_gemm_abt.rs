//! Regenerates Fig. 8: FP32 performance of the generated kernels versus the
//! vendor-BLAS baseline for `C += A·Bᵀ` (column-major A and C, row-major
//! B), M = N ∈ [1 … 512], K = 512.
//!
//! The default sweep uses a step of 16 to stay fast; pass `--step 1` for the
//! paper's full per-size sweep.

use sme_bench::{gemm_sweep, maybe_write_json, render_gemm_sweep, SweepOptions};

fn main() {
    let opts = SweepOptions::parse_or_exit(std::env::args().skip(1));
    println!(
        "Fig. 8 — C += A*B^T, K = {}, M = N swept to {} in steps of {} (FP32 GFLOPS)\n",
        opts.k, opts.max, opts.step
    );
    let sweep = gemm_sweep(true, &opts);
    println!("{}", render_gemm_sweep(&sweep));
    maybe_write_json(&opts.json, &sweep);
}
