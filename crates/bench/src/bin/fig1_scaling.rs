//! Regenerates Fig. 1: multi-core scaling of the FP32 Neon FMLA and SME
//! FMOPA microbenchmarks over 1–10 user-interactive threads.

use sme_bench::{maybe_write_json, SweepOptions};
use sme_machine::MachineConfig;
use sme_microbench::report::render_scaling;
use sme_microbench::scaling::{figure1, mixed_thread_experiment};

fn main() {
    let opts = SweepOptions::parse_or_exit(std::env::args().skip(1));
    let config = MachineConfig::apple_m4();
    let fig = figure1(&config, 10);
    println!("Fig. 1 — FP32 multi-core scaling, user-interactive threads (GFLOPS)\n");
    println!("{}", render_scaling(&fig.neon, &fig.fmopa));
    println!(
        "single-thread SME vs 10-thread Neon : {:.1}x (paper: up to 3.1x)",
        fig.single_thread_sme_speedup()
    );
    println!(
        "both SME units vs 10-thread Neon    : {:.1}x (paper: up to 3.6x)",
        fig.dual_unit_sme_speedup()
    );
    println!(
        "1 user-interactive + 1 utility thread: {:.0} GFLOPS (paper: 2371 measured, 2366 expected)",
        mixed_thread_experiment(&config)
    );
    maybe_write_json(&opts.json, &fig);
}
