//! Router sweep: reproduce the Fig. 1 SME/Neon crossover *through the
//! dispatch layer*, then show what a mixed batch looks like on the
//! machine's real engine classes.
//!
//! For every swept size the binary probes a thin `16×4×s` shape (Neon's
//! side of the crossover at small depth) and a dense `s×s×k` shape (SME's
//! side), prints both engines' simulated cycles next to the router's
//! choice, and exits non-zero if the router ever picks the slower engine —
//! the routing analogue of the tuner binary's never-slower guarantee. A
//! second section dispatches the whole sweep as one mixed batch and prints
//! the batch planner's placement: SME groups on the two shared units, Neon
//! groups on the ten private cores, plus the per-shape telemetry the
//! router collected. `--smoke` runs the tiny CI preset; `--profile PATH`
//! writes every kernel's cycle-attribution breakdown (the binary also
//! exits non-zero if any breakdown fails to partition its kernel's total
//! simulated cycles).

use sme_bench::{
    maybe_write_json, render_router_sweep, router_sweep, sweep_profile_report, RouterSweepOptions,
};
use sme_router::{Router, RoutingPolicy};
use sme_runtime::GemmRequest;

fn main() {
    let opts = RouterSweepOptions::parse_or_exit(std::env::args().skip(1));
    println!(
        "Router sweep — thin 16x4xS and dense SxSx{} shapes, S up to {} in steps of {}\n",
        opts.sweep.k, opts.sweep.max, opts.sweep.step
    );

    let router = Router::with_policy(64, RoutingPolicy::Measured);
    let sweep = router_sweep(&opts, &router);
    println!("{}", render_router_sweep(&sweep));
    maybe_write_json(&opts.sweep.json, &sweep);
    maybe_write_json(&opts.profile, &sweep_profile_report(&sweep));

    // Dispatch the swept shapes as one mixed batch and show the placement.
    let requests: Vec<GemmRequest> = opts
        .shapes()
        .into_iter()
        .enumerate()
        .flat_map(|(i, config)| {
            (0..3).map(move |r| GemmRequest {
                config,
                seed: (i * 10 + r) as u64,
            })
        })
        .collect();
    match router.dispatch(&requests) {
        Ok(report) => {
            let placement = &report.placement;
            let (sme_load, neon_load) = placement.class_load_cycles();
            println!(
                "mixed batch: {} requests over {} shapes\n\
                 SME class load  {:10.0} cycles over {} shared unit(s), finish {:10.0}\n\
                 Neon class load {:10.0} cycles over {} private core(s), finish {:10.0}\n\
                 projected makespan (engine classes overlap): {:.0} cycles\n\
                 identical-cores LPT projection for comparison: {:.0} cycles\n",
                requests.len(),
                report.batch.per_config.len(),
                sme_load,
                placement.sme_engines.len(),
                placement.sme_makespan_cycles(),
                neon_load,
                placement.neon_engines.len(),
                placement.neon_makespan_cycles(),
                placement.makespan_cycles(),
                report.batch.makespan_cycles(10),
            );
            println!("hottest shapes by recorded traffic:");
            for stats in router.top_shapes(5) {
                println!(
                    "  {:>12} {:>4}x{:<4} k={:<5} requests {:3}  cycles {:10.0}  \
                     backend {:>4}  hit-rate {:.0}%",
                    stats.config.dtype(),
                    stats.config.m(),
                    stats.config.n(),
                    stats.config.k(),
                    stats.requests,
                    stats.cycles,
                    stats.dominant_backend().name(),
                    100.0 * stats.cache_hit_rate()
                );
            }
        }
        Err(e) => {
            eprintln!("error: mixed batch dispatch failed: {e}");
            std::process::exit(1);
        }
    }

    if !sweep.routing_matches_model() {
        eprintln!("error: the router chose a slower backend than the model's argmin");
        std::process::exit(1);
    }
    if !sweep.crossover_present() {
        eprintln!("error: the sweep never crossed the SME/Neon boundary");
        std::process::exit(1);
    }
    if !sweep.profiles_sum_to_cycles() {
        eprintln!("error: a kernel's cycle profile does not partition its simulated cycles");
        std::process::exit(1);
    }
}
