//! Regenerates Fig. 9: FP32 performance of the generated kernels versus the
//! vendor-BLAS baseline for `C += A·B` with a column-major B (the kernel
//! transposes B panels through the ZA array), M = N ∈ [1 … 512], K = 512.

use sme_bench::{gemm_sweep, maybe_write_json, render_gemm_sweep, SweepOptions};

fn main() {
    let opts = SweepOptions::parse_or_exit(std::env::args().skip(1));
    println!(
        "Fig. 9 — C += A*B (column-major B), K = {}, M = N swept to {} in steps of {} (FP32 GFLOPS)\n",
        opts.k, opts.max, opts.step
    );
    let sweep = gemm_sweep(false, &opts);
    println!("{}", render_gemm_sweep(&sweep));
    maybe_write_json(&opts.json, &sweep);
}
