//! Regenerates Table I: per-instruction throughput (GOPS) on one
//! performance core and one efficiency core, next to the paper's published
//! numbers.

use sme_bench::{maybe_write_json, SweepOptions};
use sme_machine::MachineConfig;
use sme_microbench::report::render_table_one;
use sme_microbench::throughput::{fmopa_single_tile_gops, table_one, table_one_reference};

fn main() {
    let opts = SweepOptions::parse_or_exit(std::env::args().skip(1));
    let config = MachineConfig::apple_m4();
    let rows = table_one(&config);
    println!("Table I — Apple M4 per-instruction throughput (modelled vs. paper)\n");
    println!("{}", render_table_one(&rows, Some(&table_one_reference())));
    println!(
        "FP32 FMOPA restricted to a single ZA tile: {:.0} GOPS (paper: 502, §III-C)",
        fmopa_single_tile_gops(&config)
    );
    maybe_write_json(&opts.json, &rows);
}
