//! Regenerates Fig. 2: bandwidth of the four strategies for loading data
//! from memory into the ZA array (128-byte aligned data, 2 KiB – 2 GiB).

use sme_bench::{maybe_write_json, SweepOptions};
use sme_machine::MachineConfig;
use sme_microbench::bandwidth::{default_sizes, figure_2_or_3};
use sme_microbench::report::{bandwidth_csv, render_bandwidth};

fn main() {
    let opts = SweepOptions::parse_or_exit(std::env::args().skip(1));
    let config = MachineConfig::apple_m4();
    let curves = figure_2_or_3(&config, false, &default_sizes());
    println!("Fig. 2 — ZA load bandwidth by strategy, 128-byte aligned (GiB/s)\n");
    println!("{}", render_bandwidth(&curves));
    println!("CSV:\n{}", bandwidth_csv(&curves));
    maybe_write_json(&opts.json, &curves);
}
