//! Serving-loop trace: drive a synthetic shifting-traffic workload through
//! the full loop — placement-aware dispatch, decayed telemetry, the
//! pretune daemon's tune/warm/persist tick — then simulate a process
//! restart and show that "tomorrow's" traffic is served from a warm cache.
//!
//! The trace has three acts: a *yesterday* phase dominated by one shape
//! set, a *today* phase where the traffic shifts to a different set (the
//! decayed ranking must follow), and a restart where a brand-new router
//! restores the persisted snapshots, ticks once, and serves today's
//! traffic without compiling a single kernel. The binary exits non-zero
//! if any batch's placed makespan exceeds its isolated projection, if the
//! decayed ranking fails to follow the shift, if the post-restart batch is
//! not a pure cache hit, if the repeated-weights packed-operand hit rate
//! fell below 0.9 (on runs long enough to reach it), if an `--slo` rule
//! breached, or if
//! `--check-baseline` finds a regression. `--smoke` runs the tiny CI
//! preset; `--json` writes the per-batch records CI keeps as
//! `BENCH_serving.json`, `--trace` a Chrome trace of the run's causal
//! spans (load it at <https://ui.perfetto.dev>), `--metrics` the final
//! Prometheus metrics snapshot, and `--postmortem` is where an SLO
//! breach's bundle lands (CI uploads it on failure). `--write-baseline`
//! records this run as the new baseline for the perf ratchet.

use sme_bench::{
    chaos_run, maybe_write_json, render_chaos_report, render_serving_trace, serving_baseline,
    serving_run, BaselineStore, ServingTraceOptions,
};

fn main() {
    let opts = ServingTraceOptions::parse_or_exit(std::env::args().skip(1));
    println!(
        "Serving trace — {} yesterday + {} today batches, {} requests per shape\n",
        opts.warm_batches, opts.shifted_batches, opts.requests
    );

    let dir = std::env::temp_dir().join(format!("sme_serving_trace_{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: could not create {}: {e}", dir.display());
        std::process::exit(1);
    }

    if opts.chaos {
        // Chaos mode: same trace, but under the seeded fault schedule —
        // the run passes only if every request completed bit-correct and
        // every snapshot recovered (see the chaos module docs).
        let run = chaos_run(&opts, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        let run = match run {
            Ok(run) => run,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        print!("{}", render_chaos_report(&run.report));
        maybe_write_json(&opts.chaos_json, &run.report);
        if !run.report.passed {
            std::process::exit(1);
        }
        return;
    }

    let run = serving_run(&opts, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    let run = match run {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let trace = &run.trace;

    println!("{}", render_serving_trace(trace));
    maybe_write_json(&opts.json, trace);

    let mut failed = false;
    if !trace.placement_never_worse() {
        eprintln!("error: a batch's placed makespan exceeded its isolated projection");
        failed = true;
    }
    if !trace.shift_followed {
        eprintln!("error: the decayed ranking did not follow the traffic shift");
        failed = true;
    }
    if trace.restart_hit_rate < 1.0 {
        eprintln!(
            "error: the post-restart batch was not served from warm cache (hit rate {:.1}%)",
            100.0 * trace.restart_hit_rate
        );
        failed = true;
    }
    if !trace.seq_gapless() {
        eprintln!("error: the batch records do not carry a gapless sequence");
        failed = true;
    }
    // Repeated weights bound pack misses by (distinct operand sets ×
    // processes); only gate runs long enough that 0.9 is reachable.
    let pack_lookups: usize = trace
        .batches
        .iter()
        .map(|b| b.shapes.len() * opts.requests)
        .sum();
    if pack_lookups >= 90 && trace.pack_hit_rate < 0.9 {
        eprintln!(
            "error: packed-operand hit rate {:.1}% fell below the 90% repeated-weights floor",
            100.0 * trace.pack_hit_rate
        );
        failed = true;
    }

    // The flight recorder's verdicts: any breach dumps the postmortem
    // bundle (when a path was given) and fails the run.
    for breach in &run.breaches {
        eprintln!(
            "error: SLO breach: {} (observed {:.4}, threshold {:.4})",
            breach.rule, breach.observed, breach.threshold
        );
        failed = true;
    }
    if let Some(path) = &opts.postmortem {
        if let Some(bundle) = run.postmortem() {
            // Atomic write + checksum trailer, then read the bundle back
            // through the verifying loader: a postmortem torn by the dying
            // process it describes is worse than none.
            let target = std::path::Path::new(path);
            match sme_runtime::save_snapshot(target, &bundle.render_pretty())
                .map_err(|e| e.to_string())
                .and_then(|()| sme_runtime::read_snapshot(target).map_err(|e| e.to_string()))
                .and_then(|text| {
                    serde_json::from_str(&text)
                        .map(|_| ())
                        .map_err(|e| format!("bundle does not parse back: {e}"))
                }) {
                Ok(()) => println!("postmortem: bundle written to {path}"),
                Err(e) => {
                    eprintln!("error: could not write postmortem bundle {path}: {e}");
                    failed = true;
                }
            }
        }
    }

    // The perf ratchet: record this run as the new baseline and/or compare
    // it against the committed one.
    if let Some(path) = &opts.write_baseline {
        match serving_baseline(trace).save(path) {
            Ok(()) => println!("baseline: written to {path}"),
            Err(e) => {
                eprintln!("error: could not write baseline {path}: {e}");
                failed = true;
            }
        }
    }
    if let Some(path) = &opts.check_baseline {
        let machine = sme_machine::MachineConfig::apple_m4();
        match BaselineStore::load_checked(path, &machine) {
            Ok((baseline, _check)) => {
                let report = baseline.compare(&serving_baseline(trace));
                if report.passed() {
                    println!(
                        "baseline: {} metric(s) within tolerance of {path}",
                        report.compared
                    );
                } else {
                    for regression in &report.regressions {
                        eprintln!("error: baseline regression: {regression}");
                    }
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("error: could not load baseline {path}: {e}");
                failed = true;
            }
        }
    }

    if let Some(path) = &opts.trace {
        match std::fs::read_to_string(path) {
            Ok(json) => match sme_obs::validate_chrome_trace(&json) {
                Ok(events) => println!("trace: {events} events written to {path}"),
                Err(e) => {
                    eprintln!("error: trace artifact {path} is not a valid Chrome trace: {e}");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("error: could not read back trace artifact {path}: {e}");
                failed = true;
            }
        }
    }
    if let Some(path) = &opts.metrics {
        println!("metrics: Prometheus snapshot written to {path}");
    }
    if failed {
        std::process::exit(1);
    }
}
