//! Serving-loop trace: drive a synthetic shifting-traffic workload through
//! the full loop — placement-aware dispatch, decayed telemetry, the
//! pretune daemon's tune/warm/persist tick — then simulate a process
//! restart and show that "tomorrow's" traffic is served from a warm cache.
//!
//! The trace has three acts: a *yesterday* phase dominated by one shape
//! set, a *today* phase where the traffic shifts to a different set (the
//! decayed ranking must follow), and a restart where a brand-new router
//! restores the persisted snapshots, ticks once, and serves today's
//! traffic without compiling a single kernel. The binary exits non-zero
//! if any batch's placed makespan exceeds its isolated projection, if the
//! decayed ranking fails to follow the shift, or if the post-restart
//! batch is not a pure cache hit. `--smoke` runs the tiny CI preset;
//! `--json` writes the per-batch records CI keeps as `BENCH_serving.json`,
//! `--trace` a Chrome trace of the run's spans (load it at
//! <https://ui.perfetto.dev>), and `--metrics` the final Prometheus
//! metrics snapshot — CI keeps those as `BENCH_trace.json` and
//! `BENCH_metrics.prom`.

use sme_bench::{maybe_write_json, render_serving_trace, serving_trace, ServingTraceOptions};

fn main() {
    let opts = ServingTraceOptions::parse_or_exit(std::env::args().skip(1));
    println!(
        "Serving trace — {} yesterday + {} today batches, {} requests per shape\n",
        opts.warm_batches, opts.shifted_batches, opts.requests
    );

    let dir = std::env::temp_dir().join(format!("sme_serving_trace_{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: could not create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let trace = serving_trace(&opts, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    let trace = match trace {
        Ok(trace) => trace,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    println!("{}", render_serving_trace(&trace));
    maybe_write_json(&opts.json, &trace);

    if !trace.placement_never_worse() {
        eprintln!("error: a batch's placed makespan exceeded its isolated projection");
        std::process::exit(1);
    }
    if !trace.shift_followed {
        eprintln!("error: the decayed ranking did not follow the traffic shift");
        std::process::exit(1);
    }
    if trace.restart_hit_rate < 1.0 {
        eprintln!(
            "error: the post-restart batch was not served from warm cache (hit rate {:.1}%)",
            100.0 * trace.restart_hit_rate
        );
        std::process::exit(1);
    }
    if !trace.seq_gapless() {
        eprintln!("error: the batch records do not carry a gapless sequence");
        std::process::exit(1);
    }
    if let Some(path) = &opts.trace {
        match std::fs::read_to_string(path) {
            Ok(json) => match sme_obs::validate_chrome_trace(&json) {
                Ok(events) => println!("trace: {events} events written to {path}"),
                Err(e) => {
                    eprintln!("error: trace artifact {path} is not a valid Chrome trace: {e}");
                    std::process::exit(1);
                }
            },
            Err(e) => {
                eprintln!("error: could not read back trace artifact {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &opts.metrics {
        println!("metrics: Prometheus snapshot written to {path}");
    }
}
