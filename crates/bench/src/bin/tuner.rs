//! Autotuning sweep: for each shape, enumerate the candidate block plans,
//! ZA-transfer strategies and unroll factors, score them on the timing
//! model, and report the winner against the default heterogeneous kernel.
//!
//! `--store PATH` persists the winners as a plan-store JSON document that
//! `sme_runtime::PlanStore::load_checked` (and thus a `KernelCache`) can
//! consume — stamped with the machine model's timing fingerprint, so a
//! later process re-tunes instead of dispatching winners from a stale
//! calibration; `--smoke` runs the tiny CI preset; `--quick` restricts the
//! sweep to plan kinds and backends. Exits non-zero if any tuned kernel
//! models slower than its default — that would mean the tuner's argmin is
//! broken.

use sme_bench::{maybe_write_json, render_tuner_sweep, tuner_sweep, TunerSweepOptions};
use sme_machine::MachineConfig;
use sme_runtime::PlanStore;

fn main() {
    let opts = TunerSweepOptions::parse_or_exit(std::env::args().skip(1));
    println!(
        "Autotuner sweep — C += A*B^T, K = {}, M = N swept to {} in steps of {}{}\n",
        opts.sweep.k,
        opts.sweep.max,
        opts.sweep.step,
        if opts.quick {
            " (plan kinds only)"
        } else {
            " (plans x transfers x unrolls)"
        }
    );
    let mut store = PlanStore::for_machine(&MachineConfig::apple_m4());
    let sweep = tuner_sweep(&opts, &mut store);
    println!("{}", render_tuner_sweep(&sweep));
    maybe_write_json(&opts.sweep.json, &sweep);
    if let Some(path) = &opts.store {
        match store.save(path) {
            Ok(()) => println!("plan store with {} winners written to {path}", store.len()),
            Err(e) => {
                eprintln!("error: could not write plan store: {e}");
                std::process::exit(1);
            }
        }
    }
    if !sweep.never_slower() {
        eprintln!("error: a tuned kernel modelled slower than the default plan");
        std::process::exit(1);
    }
}
