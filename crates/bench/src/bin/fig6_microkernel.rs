//! Regenerates the Fig. 6 comparison: the traditional Neon 16×6 microkernel
//! versus the SME 32×32 microkernel — accumulator sizes, registers used and
//! instruction mix per contraction step, plus modelled full-kernel
//! throughput for one representative problem.

use sme_bench::SweepOptions;
use sme_gemm::neon::{emit_neon_16x6_k_step, model_neon_gflops, MicrokernelComparison};
use sme_gemm::{generate, GemmConfig};
use sme_isa::asm::Assembler;
use sme_isa::inst::Inst;

fn main() {
    let _ = SweepOptions::parse_or_exit(std::env::args().skip(1));
    let cmp = MicrokernelComparison::figure6();

    println!("Fig. 6 — Neon vs SME FP32 microkernel\n");
    println!("{:<38} {:>12} {:>12}", "", "Neon 16x6", "SME 32x32");
    println!("{}", "-".repeat(64));
    println!(
        "{:<38} {:>12} {:>12}",
        "accumulator elements of C", cmp.neon_accumulator, cmp.sme_accumulator
    );
    println!(
        "{:<38} {:>12} {:>12}",
        "accumulator registers / tiles", cmp.neon_accum_registers, 4
    );
    println!(
        "{:<38} {:>12} {:>12}",
        "FMA instructions per k step", cmp.neon_fmla_per_step, cmp.sme_fmopa_per_step
    );
    println!(
        "{:<38} {:>12} {:>12}",
        "multiply-accumulates per instruction", cmp.neon_macs_per_inst, cmp.sme_macs_per_inst
    );
    println!(
        "\n=> {} FMLA instructions are needed for the work of one FMOPA (paper: 64)\n",
        cmp.fmla_per_fmopa()
    );

    // Emit the actual Neon microkernel step and report its instruction mix.
    let mut asm = Assembler::new("fig6_neon_step");
    emit_neon_16x6_k_step(&mut asm);
    let neon_step = asm.finish();
    let fmla = neon_step.count_matching(|i| matches!(i, Inst::Neon(_)));
    println!(
        "emitted Neon microkernel step: {} instructions ({} Neon)",
        neon_step.len(),
        fmla
    );

    // Modelled end-to-end comparison on one representative small GEMM.
    let cfg = GemmConfig::abt(64, 64, 256);
    let sme = generate(&cfg).map(|k| k.model_gflops()).unwrap_or(0.0);
    let neon = model_neon_gflops(&cfg).unwrap_or(0.0);
    println!("\nmodelled throughput for C += A*B^T, M=N=64, K=256:");
    println!("  SME generated kernel : {sme:7.0} GFLOPS");
    println!("  Neon generated kernel: {neon:7.0} GFLOPS");
    println!("  ratio                : {:.1}x", sme / neon);
}
