//! Ablation study of the generator's design choices called out in DESIGN.md:
//! register-blocking strategy, ZA transfer strategy, contraction-loop
//! unrolling and the cost of the in-kernel B transposition.

use sme_bench::SweepOptions;
use sme_gemm::{
    generate, generate_with_plan, plan_homogeneous, GemmConfig, RegisterBlocking,
    ZaTransferStrategy,
};

fn gflops(cfg: &GemmConfig) -> f64 {
    generate(cfg).map(|k| k.model_gflops()).unwrap_or(0.0)
}

fn main() {
    let opts = SweepOptions::parse_or_exit(std::env::args().skip(1));
    let k = opts.k;
    println!("Ablations (modelled FP32 GFLOPS on one M4 performance core, K = {k})\n");

    println!("-- register blocking (C += A*B^T, M = N = 80) --");
    let cfg = GemmConfig::abt(80, 80, k);
    println!("  heterogeneous (default)      : {:7.0}", gflops(&cfg));
    for blocking in [
        RegisterBlocking::B32x32,
        RegisterBlocking::B16x64,
        RegisterBlocking::B64x16,
    ] {
        let plan = plan_homogeneous(80, 80, blocking);
        let g = generate_with_plan(&cfg, Some(plan))
            .map(|k| k.model_gflops())
            .unwrap_or(0.0);
        println!("  homogeneous {blocking:?}       : {g:7.0}");
    }

    println!("\n-- ZA transfer strategy for the C block (M = N = 128) --");
    let base = GemmConfig::abt(128, 128, k);
    println!(
        "  two-step (ld1w/st1w + mova)  : {:7.0}",
        gflops(&base.with_c_transfer(ZaTransferStrategy::TwoStep))
    );
    println!(
        "  direct (ldr/str za)          : {:7.0}",
        gflops(&base.with_c_transfer(ZaTransferStrategy::Direct))
    );

    println!("\n-- contraction-loop unrolling (M = N = 64) --");
    for unroll in [1usize, 2, 4] {
        let cfg = GemmConfig::abt(64, 64, k).with_k_unroll(unroll);
        println!(
            "  k_unroll = {unroll}                 : {:7.0}",
            gflops(&cfg)
        );
    }

    println!("\n-- B layout: direct outer products vs in-kernel transposition --");
    for mn in [64usize, 128, 256] {
        let abt = gflops(&GemmConfig::abt(mn, mn, k));
        let ab = gflops(&GemmConfig::ab(mn, mn, k));
        println!(
            "  M = N = {mn:3}: row-major B {abt:7.0}   column-major B {ab:7.0}   ({:4.1}% cost)",
            100.0 * (1.0 - ab / abt)
        );
    }
}
