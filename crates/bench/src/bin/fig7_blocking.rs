//! Regenerates Fig. 7: homogeneous versus heterogeneous register blocking
//! for an 80×80 output matrix, plus the impact on modelled performance.

use sme_bench::SweepOptions;
use sme_gemm::{
    generate, generate_with_plan, plan_heterogeneous, plan_homogeneous, GemmConfig,
    RegisterBlocking,
};

fn describe(plan: &sme_gemm::BlockPlan) -> String {
    let hist = plan.strategy_histogram();
    format!(
        "{:2} microkernel executions ({}x 32x32, {}x 16x64, {}x 64x16), {:4} A/B loads per k step",
        plan.num_microkernels(),
        hist[0].1,
        hist[1].1,
        hist[2].1,
        plan.loads_per_k_step()
    )
}

fn main() {
    let _ = SweepOptions::parse_or_exit(std::env::args().skip(1));
    println!("Fig. 7 — register blocking of an 80x80 output matrix\n");
    let hom = plan_homogeneous(80, 80, RegisterBlocking::B32x32);
    let het = plan_heterogeneous(80, 80);
    println!("homogeneous 32x32 : {}", describe(&hom));
    println!("heterogeneous     : {}", describe(&het));
    println!("(paper: ten homogeneous vs seven heterogeneous microkernel executions)\n");

    // Modelled performance impact for the paper's K = 512.
    let cfg = GemmConfig::abt(80, 80, 512);
    let het_gflops = generate(&cfg).map(|k| k.model_gflops()).unwrap_or(0.0);
    let hom_gflops = generate_with_plan(
        &cfg,
        Some(plan_homogeneous(80, 80, RegisterBlocking::B32x32)),
    )
    .map(|k| k.model_gflops())
    .unwrap_or(0.0);
    println!("modelled throughput, C += A*B^T with M=N=80, K=512:");
    println!("  heterogeneous blocking : {het_gflops:7.0} GFLOPS");
    println!("  homogeneous 32x32      : {hom_gflops:7.0} GFLOPS");

    // Microkernel counts across a range of sizes.
    println!("\nmicrokernel executions per output size (homogeneous vs heterogeneous):");
    println!("{:>8} {:>14} {:>16}", "M=N", "homogeneous", "heterogeneous");
    for mn in [48usize, 80, 112, 144, 176, 208, 240] {
        let hom = plan_homogeneous(mn, mn, RegisterBlocking::B32x32).num_microkernels();
        let het = plan_heterogeneous(mn, mn).num_microkernels();
        println!("{mn:>8} {hom:>14} {het:>16}");
    }
}
