//! # sme-bench
//!
//! The benchmark harness of the reproduction: one binary per table / figure
//! of the paper's evaluation (run them with
//! `cargo run --release -p sme-bench --bin <name>`), plus criterion benches
//! that measure the host-side costs of the library itself (kernel
//! generation latency, simulator throughput).
//!
//! This library crate contains the shared pieces: command-line options for
//! the sweep binaries, the GEMM sweep driver used by the Fig. 8 / Fig. 9
//! binaries and JSON export of results.

#![warn(missing_docs)]

pub mod baseline;
pub mod chaos;

pub use baseline::{
    BaselineCheckReport, BaselineError, BaselineStore, MetricRegression, BASELINE_VERSION,
    HIT_RATE_TOLERANCE, REL_TOLERANCE,
};
pub use chaos::{chaos_run, render_chaos_report, ChaosFaultRecord, ChaosReport, ChaosRun};

use accel_ref::AccelerateSgemm;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use sme_gemm::{generate, GemmConfig, WideningGemmConfig};

/// Options shared by the sweep binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOptions {
    /// Step between consecutive M = N values (the paper sweeps every size;
    /// the default step of 16 keeps the run short while preserving the
    /// curve shape — pass `--step 1` for the full sweep).
    pub step: usize,
    /// Largest M = N value (512 in the paper).
    pub max: usize,
    /// Contraction dimension (512 in the paper).
    pub k: usize,
    /// Optional path to also write the results as JSON.
    pub json: Option<String>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            step: 16,
            max: 512,
            k: 512,
            json: None,
        }
    }
}

/// Pull the value of flag `name` from `args[i + 1]` and parse it as a
/// positive integer, with errors naming the flag.
fn positive_value(args: &[String], i: usize, name: &str) -> Result<usize, String> {
    let raw = args
        .get(i + 1)
        .ok_or_else(|| format!("{name} requires a value"))?;
    let v: usize = raw
        .parse()
        .map_err(|_| format!("{name} expects a positive integer, got `{raw}`"))?;
    if v == 0 {
        return Err(format!("{name} must be at least 1"));
    }
    Ok(v)
}

/// Pull the path value of flag `name` from `args[i + 1]`.
fn path_value(args: &[String], i: usize, name: &str) -> Result<String, String> {
    args.get(i + 1)
        .cloned()
        .ok_or_else(|| format!("{name} requires a path"))
}

impl SweepOptions {
    /// Usage string shared by the sweep binaries' error messages.
    pub const USAGE: &'static str = "[--step N] [--max N] [--k N] [--json PATH]";

    /// Parse options from `std::env::args`-style strings. Recognised flags:
    /// `--step N`, `--max N`, `--k N`, `--json PATH`.
    ///
    /// Unknown flags, missing values and malformed numbers are errors
    /// (they used to be silently ignored, which made typos like
    /// `--setp 1` run the default sweep without complaint).
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut opts = SweepOptions::default();
        let args: Vec<String> = args.collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--step" => {
                    opts.step = positive_value(&args, i, "--step")?;
                    i += 1;
                }
                "--max" => {
                    opts.max = positive_value(&args, i, "--max")?;
                    i += 1;
                }
                "--k" => {
                    opts.k = positive_value(&args, i, "--k")?;
                    i += 1;
                }
                "--json" => {
                    opts.json = Some(path_value(&args, i, "--json")?);
                    i += 1;
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
            i += 1;
        }
        Ok(opts)
    }

    /// Parse, printing the error and usage to stderr and exiting with
    /// status 2 on failure — the entry point used by the sweep binaries.
    pub fn parse_or_exit(args: impl Iterator<Item = String>) -> Self {
        SweepOptions::parse(args).unwrap_or_else(|e| {
            eprintln!("error: {e}\nusage: {}", SweepOptions::USAGE);
            std::process::exit(2);
        })
    }

    /// The M = N values of the sweep.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = (self.step..=self.max).step_by(self.step).collect();
        if sizes.last() != Some(&self.max) {
            sizes.push(self.max);
        }
        sizes
    }
}

/// One point of a Fig. 8 / Fig. 9 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GemmSweepPoint {
    /// M = N of the output matrix.
    pub mn: usize,
    /// Modelled throughput of the generated (LIBXSMM-style) kernel.
    pub libxsmm_gflops: f64,
    /// Modelled throughput of the vendor-BLAS baseline.
    pub accelerate_gflops: f64,
}

/// A complete Fig. 8 / Fig. 9 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GemmSweep {
    /// `"abt"` (Fig. 8) or `"ab"` (Fig. 9).
    pub variant: String,
    /// Contraction dimension.
    pub k: usize,
    /// Sweep points in ascending M = N order.
    pub points: Vec<GemmSweepPoint>,
}

impl GemmSweep {
    /// Fraction of sweep points where the generated kernel beats the vendor
    /// baseline (the paper: "almost all" for Fig. 8 and "all" for Fig. 9).
    pub fn win_fraction(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let wins = self
            .points
            .iter()
            .filter(|p| p.libxsmm_gflops > p.accelerate_gflops)
            .count();
        wins as f64 / self.points.len() as f64
    }

    /// Geometric-mean speed-up of the generated kernels over the baseline.
    pub fn geomean_speedup(&self) -> f64 {
        if self.points.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self
            .points
            .iter()
            .map(|p| (p.libxsmm_gflops / p.accelerate_gflops).ln())
            .sum();
        (log_sum / self.points.len() as f64).exp()
    }
}

/// Run the Fig. 8 (`abt = true`) or Fig. 9 (`abt = false`) sweep.
///
/// Sweep points are independent and are evaluated in parallel on the host;
/// the simulated machine model inside each point is unaffected.
pub fn gemm_sweep(abt: bool, opts: &SweepOptions) -> GemmSweep {
    let points: Vec<GemmSweepPoint> = opts
        .sizes()
        .par_iter()
        .map(|&mn| {
            let cfg = if abt {
                GemmConfig::abt(mn, mn, opts.k)
            } else {
                GemmConfig::ab(mn, mn, opts.k)
            };
            let libxsmm = generate(&cfg).map(|k| k.model_gflops()).unwrap_or(0.0);
            let accelerate = AccelerateSgemm::new(cfg).model_gflops().unwrap_or(0.0);
            GemmSweepPoint {
                mn,
                libxsmm_gflops: libxsmm,
                accelerate_gflops: accelerate,
            }
        })
        .collect();
    GemmSweep {
        variant: if abt { "abt".into() } else { "ab".into() },
        k: opts.k,
        points,
    }
}

/// Render a sweep in the paper's series form and print the summary lines.
pub fn render_gemm_sweep(sweep: &GemmSweep) -> String {
    let libxsmm: Vec<(usize, f64)> = sweep
        .points
        .iter()
        .map(|p| (p.mn, p.libxsmm_gflops))
        .collect();
    let accel: Vec<(usize, f64)> = sweep
        .points
        .iter()
        .map(|p| (p.mn, p.accelerate_gflops))
        .collect();
    let mut out = sme_microbench::report::render_series(
        "M=N",
        &[("LIBXSMM", &libxsmm), ("Accelerate", &accel)],
    );
    out.push_str(&format!(
        "\ngenerated kernels faster in {:.0}% of the tested configurations \
         (geometric-mean speed-up {:.2}x)\n",
        100.0 * sweep.win_fraction(),
        sweep.geomean_speedup()
    ));
    out
}

/// Options of the `tuner` binary: the shared sweep flags plus tuner
/// controls.
#[derive(Debug, Clone, PartialEq)]
pub struct TunerSweepOptions {
    /// Shared sweep geometry (`--step`, `--max`, `--k`, `--json`).
    pub sweep: SweepOptions,
    /// Restrict the tuner to plan kinds only (`--quick`).
    pub quick: bool,
    /// Optional path to persist the winning plans as JSON (`--store`).
    pub store: Option<String>,
}

impl TunerSweepOptions {
    /// Usage string for the `tuner` binary.
    pub const USAGE: &'static str =
        "[--step N] [--max N] [--k N] [--json PATH] [--store PATH] [--quick] [--smoke]";

    /// Parse the `tuner` binary's flags. `--smoke` is a preset for CI: a
    /// tiny, fast sweep (M = N ∈ {32, 64}, K = 32, plan kinds only) that
    /// still exercises the whole autotuning path.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut quick = false;
        let mut smoke = false;
        let mut store = None;
        let mut sweep_args: Vec<String> = Vec::new();
        let args: Vec<String> = args.collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => quick = true,
                "--smoke" => smoke = true,
                "--store" => {
                    store = Some(path_value(&args, i, "--store")?);
                    i += 1;
                }
                other => sweep_args.push(other.to_string()),
            }
            i += 1;
        }
        let mut sweep = SweepOptions::parse(sweep_args.into_iter())?;
        if smoke {
            sweep.step = 32;
            sweep.max = 64;
            sweep.k = 32;
            quick = true;
        }
        Ok(TunerSweepOptions {
            sweep,
            quick,
            store,
        })
    }

    /// Parse, printing the error and usage to stderr and exiting with
    /// status 2 on failure.
    pub fn parse_or_exit(args: impl Iterator<Item = String>) -> Self {
        TunerSweepOptions::parse(args).unwrap_or_else(|e| {
            eprintln!("error: {e}\nusage: {}", TunerSweepOptions::USAGE);
            std::process::exit(2);
        })
    }

    /// The tuner options implied by the flags.
    pub fn tuner_options(&self) -> sme_runtime::TunerOptions {
        if self.quick {
            sme_runtime::TunerOptions::quick()
        } else {
            sme_runtime::TunerOptions::default()
        }
    }
}

/// One tuned shape of a tuner sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunerSweepPoint {
    /// M = N of the output matrix.
    pub mn: usize,
    /// Simulated cycles of the default heterogeneous kernel.
    pub default_cycles: f64,
    /// Simulated cycles of the autotuned winner.
    pub tuned_cycles: f64,
    /// Stable name of the winning plan kind.
    pub winner: String,
    /// Winning ZA transfer strategy.
    pub c_transfer: sme_gemm::ZaTransferStrategy,
    /// Winning unroll factor.
    pub k_unroll: usize,
    /// Candidates generated and simulated for this shape.
    pub candidates: usize,
}

/// A complete tuner sweep (the `tuner` binary's JSON output).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunerSweep {
    /// Contraction dimension.
    pub k: usize,
    /// Sweep points in ascending M = N order.
    pub points: Vec<TunerSweepPoint>,
}

impl TunerSweep {
    /// `true` if no tuned shape is slower than its default in the model —
    /// the tuner's core guarantee, asserted by the binary and by CI.
    pub fn never_slower(&self) -> bool {
        self.points
            .iter()
            .all(|p| p.tuned_cycles <= p.default_cycles)
    }

    /// Geometric-mean modelled speed-up of tuned over default kernels.
    pub fn geomean_speedup(&self) -> f64 {
        if self.points.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self
            .points
            .iter()
            .map(|p| (p.default_cycles / p.tuned_cycles).ln())
            .sum();
        (log_sum / self.points.len() as f64).exp()
    }
}

/// Run an autotuning sweep over `C += A·Bᵀ` shapes and fill `store` with
/// the winners.
///
/// Shapes are tuned in parallel on the host; each shape's candidates are
/// themselves scored in parallel by the tuner.
pub fn tuner_sweep(opts: &TunerSweepOptions, store: &mut sme_runtime::PlanStore) -> TunerSweep {
    let tuner_opts = opts.tuner_options();
    let k = opts.sweep.k;
    let outcomes: Vec<(usize, sme_runtime::TuneOutcome)> = opts
        .sweep
        .sizes()
        .par_iter()
        .map(|&mn| {
            let cfg = GemmConfig::abt(mn, mn, k);
            let outcome = sme_runtime::tune(&cfg, &tuner_opts)
                .expect("sweep configurations are valid by construction");
            (mn, outcome)
        })
        .collect();
    let mut points = Vec::with_capacity(outcomes.len());
    for (mn, outcome) in outcomes {
        store.insert(&GemmConfig::abt(mn, mn, k), outcome.record());
        points.push(TunerSweepPoint {
            mn,
            default_cycles: outcome.default_cycles,
            tuned_cycles: outcome.tuned_cycles,
            winner: outcome.winner.kind.name().to_string(),
            c_transfer: outcome.winner.c_transfer,
            k_unroll: outcome.winner.k_unroll,
            candidates: outcome.candidates_tried,
        });
    }
    TunerSweep { k, points }
}

/// Render a tuner sweep as a table plus summary lines.
pub fn render_tuner_sweep(sweep: &TunerSweep) -> String {
    let mut out = String::from(
        "  M=N | default cyc |   tuned cyc | speedup | winner\n\
         ------+-------------+-------------+---------+-------------------------------\n",
    );
    for p in &sweep.points {
        let speedup = p.default_cycles / p.tuned_cycles.max(f64::MIN_POSITIVE);
        out.push_str(&format!(
            "{:5} | {:11.0} | {:11.0} | {:6.3}x | {} ({:?}, unroll {})\n",
            p.mn, p.default_cycles, p.tuned_cycles, speedup, p.winner, p.c_transfer, p.k_unroll
        ));
    }
    out.push_str(&format!(
        "\ntuned kernels never slower than the default plan: {}\n\
         geometric-mean modelled speed-up {:.3}x over {} shapes\n",
        if sweep.never_slower() { "yes" } else { "NO" },
        sweep.geomean_speedup(),
        sweep.points.len()
    ));
    out
}

/// Options of the `router` binary: the shared sweep flags plus the smoke
/// and BF16 presets.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterSweepOptions {
    /// Shared sweep geometry (`--step`, `--max`, `--k`, `--json`).
    pub sweep: SweepOptions,
    /// Probe BF16 widening shapes instead of FP32 (`--bf16`).
    pub bf16: bool,
    /// Optional path for the per-shape cycle-attribution report
    /// (`BENCH_profile.json` in CI).
    pub profile: Option<String>,
}

impl RouterSweepOptions {
    /// Usage string for the `router` binary.
    pub const USAGE: &'static str =
        "[--step N] [--max N] [--k N] [--json PATH] [--profile PATH] [--smoke] [--bf16]";

    /// Parse the `router` binary's flags. `--smoke` is the CI preset: a
    /// tiny sweep (sizes {32, 64}, K = 32) that still straddles the
    /// SME/Neon crossover on both sides. `--bf16` probes the widening
    /// datatype instead of FP32 (composable with `--smoke`).
    /// `--profile PATH` writes the per-shape cycle breakdowns to PATH.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut smoke = false;
        let mut bf16 = false;
        let mut profile = None;
        let mut sweep_args: Vec<String> = Vec::new();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            if arg == "--smoke" {
                smoke = true;
            } else if arg == "--bf16" {
                bf16 = true;
            } else if arg == "--profile" {
                profile = Some(
                    args.next()
                        .ok_or_else(|| "--profile expects a value".to_string())?,
                );
            } else {
                sweep_args.push(arg);
            }
        }
        let mut sweep = SweepOptions::parse(sweep_args.into_iter())?;
        if smoke {
            sweep.step = 32;
            sweep.max = 64;
            sweep.k = 32;
        }
        Ok(RouterSweepOptions {
            sweep,
            bf16,
            profile,
        })
    }

    /// Parse, printing the error and usage to stderr and exiting with
    /// status 2 on failure.
    pub fn parse_or_exit(args: impl Iterator<Item = String>) -> Self {
        RouterSweepOptions::parse(args).unwrap_or_else(|e| {
            eprintln!("error: {e}\nusage: {}", RouterSweepOptions::USAGE);
            std::process::exit(2);
        })
    }

    /// The shapes the router sweep probes: for each swept size `s`, a thin
    /// `16×4×s` shape (the Fig. 1 crossover's Neon side at small depth), a
    /// dense `s×s×k` shape (the SME side), and — since the predicated
    /// edge-tile work — **off-grid probes** that straddle the old support
    /// boundaries: a thin `18×6×s` shape (even-extent residuals through
    /// the Neon generator's masked tail) and a dense misaligned
    /// `m % 16 == 2` square shape (partial 16×4 / 32×32 blocks on both
    /// engines), so a regression in masked-edge routing fails the sweep.
    ///
    /// With `--bf16` the same geometry is probed in the widening datatype:
    /// the thin shape sits off the SME widening 32×32 grid, the dense size
    /// is snapped up to a multiple of 32, and the off-grid dense probe
    /// lands 8 past the 32-grid (`m % 32 == 8`) — a shape that routed to
    /// the Neon `BFMMLA` baseline before masked SME edges existed and must
    /// now land on SME.
    pub fn shapes(&self) -> Vec<sme_gemm::AnyGemmConfig> {
        let mut shapes: Vec<sme_gemm::AnyGemmConfig> = Vec::new();
        // Snapping sizes onto the grids can make distinct swept sizes
        // collide on one shape (non-adjacently, since thin and dense
        // shapes interleave), so keep first occurrences only.
        let push = |shapes: &mut Vec<sme_gemm::AnyGemmConfig>, shape| {
            if !shapes.contains(&shape) {
                shapes.push(shape);
            }
        };
        if self.bf16 {
            // The masked SME edge tiles beat the BFMMLA baseline on thin
            // shapes once the depth amortises the streaming-mode entry, so
            // the crossover only survives at shallow depth — probe it with
            // a fixed shallow shape so the sweep always straddles the
            // boundary.
            push(
                &mut shapes,
                WideningGemmConfig::new(16, 4, 8)
                    .expect("the shallow crossover probe is on the envelope grid")
                    .into(),
            );
        }
        for s in self.sweep.sizes() {
            if self.bf16 {
                let thin_k = s.next_multiple_of(2);
                let dense = s.next_multiple_of(32);
                let dense_k = self.sweep.k.next_multiple_of(2);
                // Snap past the 32-grid so the probe is off-grid for every
                // swept size (m % 32 == 8 by construction).
                let edge = s.next_multiple_of(32) + 8;
                push(
                    &mut shapes,
                    WideningGemmConfig::new(16, 4, thin_k)
                        .expect("thin widening shape is on the envelope grid")
                        .into(),
                );
                push(
                    &mut shapes,
                    WideningGemmConfig::new(dense, dense, dense_k)
                        .expect("dense widening shape is on the SME grid")
                        .into(),
                );
                push(
                    &mut shapes,
                    WideningGemmConfig::new(edge, edge, dense_k)
                        .expect("edge widening shape is on the envelope grid")
                        .into(),
                );
            } else {
                // Snap past the 16-grid so the probe is off-grid for every
                // swept size (m % 16 == 2 by construction).
                let edge = s.next_multiple_of(16) + 2;
                push(&mut shapes, GemmConfig::abt(16, 4, s).into());
                push(&mut shapes, GemmConfig::abt(s, s, self.sweep.k).into());
                push(&mut shapes, GemmConfig::abt(18, 6, s).into());
                push(
                    &mut shapes,
                    GemmConfig::abt(edge, edge, self.sweep.k).into(),
                );
            }
        }
        shapes
    }
}

/// One routed shape of a router sweep — the per-shape
/// `{config, backend, simulated_cycles}` record of the `--json` output
/// that CI persists as `BENCH_router.json` to track the perf trajectory
/// across PRs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterSweepPoint {
    /// Display form of the routed configuration (the record's stable key).
    pub config: String,
    /// Datatype family of the probed shape (stable name).
    pub dtype: String,
    /// Problem rows.
    pub m: usize,
    /// Problem columns.
    pub n: usize,
    /// Contraction depth.
    pub k: usize,
    /// Simulated single-core cycles of the SME kernel (absent when the SME
    /// generator does not support the shape; the SME engines are total
    /// over both swept datatypes, so in practice always present).
    pub sme_cycles: Option<f64>,
    /// Simulated single-core cycles of the Neon kernel (absent when the
    /// Neon generator does not support the shape).
    pub neon_cycles: Option<f64>,
    /// Backend the router chose (stable name).
    pub chosen: String,
    /// Simulated single-core cycles of the chosen backend's kernel.
    pub simulated_cycles: Option<f64>,
    /// `true` if the choice matches the lower simulated cycle count.
    pub agrees_with_model: bool,
    /// Cycle attribution of the SME kernel (absent with `sme_cycles`).
    pub sme_profile: Option<sme_machine::CycleProfile>,
    /// Cycle attribution of the Neon kernel (absent with `neon_cycles`).
    pub neon_profile: Option<sme_machine::CycleProfile>,
    /// `true` if every present profile partitions its kernel's simulated
    /// cycles — the attribution invariant CI asserts across the sweep.
    pub profile_sums_ok: bool,
}

/// A complete router sweep (the `router` binary's JSON output).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterSweep {
    /// Sweep points, thin and dense shapes interleaved.
    pub points: Vec<RouterSweepPoint>,
}

impl RouterSweep {
    /// `true` if the router picked the lower-simulated-cycles backend on
    /// every shape — the routing guarantee the binary and CI assert.
    pub fn routing_matches_model(&self) -> bool {
        self.points.iter().all(|p| p.agrees_with_model)
    }

    /// `true` if both backends were chosen somewhere in the sweep (the
    /// crossover is actually visible).
    pub fn crossover_present(&self) -> bool {
        let neon = self.points.iter().any(|p| p.chosen == "Neon");
        let sme = self.points.iter().any(|p| p.chosen == "Sme");
        neon && sme
    }

    /// `true` if every kernel's cycle profile partitions its simulated
    /// cycle count (the profiler's sum-to-total invariant, asserted by the
    /// `router` binary and CI).
    pub fn profiles_sum_to_cycles(&self) -> bool {
        self.points.iter().all(|p| p.profile_sums_ok)
    }
}

/// The per-shape cycle-attribution record of the `router` binary's
/// `--profile` output (`BENCH_profile.json` in CI): where each kernel's
/// simulated cycles went, per execution class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepProfilePoint {
    /// Display form of the profiled configuration.
    pub config: String,
    /// Backend of the profiled kernel (stable name).
    pub backend: String,
    /// The kernel's total simulated single-core cycles.
    pub cycles: f64,
    /// Per-class cycle attribution (sums to `cycles`).
    pub profile: sme_machine::CycleProfile,
    /// `true` if `profile` partitions `cycles` within round-off.
    pub sums_ok: bool,
}

/// The `router` binary's `--profile` report: one record per (shape,
/// backend) kernel the sweep simulated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepProfileReport {
    /// Per-kernel attribution records, sweep order.
    pub points: Vec<SweepProfilePoint>,
}

/// Project the per-kernel cycle attributions out of a router sweep.
pub fn sweep_profile_report(sweep: &RouterSweep) -> SweepProfileReport {
    let mut points = Vec::new();
    for p in &sweep.points {
        let pairs = [
            ("Sme", &p.sme_cycles, &p.sme_profile),
            ("Neon", &p.neon_cycles, &p.neon_profile),
        ];
        for (backend, cycles, profile) in pairs {
            if let (Some(cycles), Some(profile)) = (cycles, profile) {
                points.push(SweepProfilePoint {
                    config: p.config.clone(),
                    backend: backend.to_string(),
                    cycles: *cycles,
                    profile: profile.clone(),
                    sums_ok: profile.sums_to(*cycles),
                });
            }
        }
    }
    SweepProfileReport { points }
}

/// Probe every sweep shape through a [`sme_router::Router`] and compare
/// its choice against direct single-core simulation of both backends.
pub fn router_sweep(opts: &RouterSweepOptions, router: &sme_router::Router) -> RouterSweep {
    use sme_gemm::{generate_any_backend, AnyGemmConfig, Backend};
    type Measured = (f64, sme_machine::CycleProfile);
    let shapes = opts.shapes();
    let measured: Vec<(AnyGemmConfig, Option<Measured>, Option<Measured>)> = shapes
        .par_iter()
        .map(|cfg| {
            let model = |backend| {
                generate_any_backend(cfg, backend).ok().map(|k| {
                    let stats = k.model_stats();
                    (stats.cycles, stats.profile)
                })
            };
            let sme = model(Backend::Sme);
            // SME is total over valid FP32 shapes — a failure there is a
            // generator regression, not a routing datum.
            assert!(
                sme.is_some() || cfg.dtype() != sme_gemm::Dtype::Fp32,
                "FP32 sweep shapes must be SME-compilable: {cfg}"
            );
            let neon = model(Backend::Neon);
            (*cfg, sme, neon)
        })
        .collect();
    let points = measured
        .into_iter()
        .map(|(cfg, sme, neon)| {
            let sums_ok = |m: &Option<Measured>| {
                m.as_ref()
                    .is_none_or(|(cycles, profile)| profile.sums_to(*cycles))
            };
            let profile_sums_ok = sums_ok(&sme) && sums_ok(&neon);
            let (sme_cycles, sme_profile) = match sme {
                Some((c, p)) => (Some(c), Some(p)),
                None => (None, None),
            };
            let (neon_cycles, neon_profile) = match neon {
                Some((c, p)) => (Some(c), Some(p)),
                None => (None, None),
            };
            let chosen = router.route_any(&cfg);
            // The router's choice agrees with the model when it picks the
            // lower simulated cycle count; an engine that cannot compile
            // the shape never wins the comparison.
            let faster_is_neon = match (sme_cycles, neon_cycles) {
                (Some(s), Some(n)) => n < s,
                (None, Some(_)) => true,
                _ => false,
            };
            let agrees = (chosen == Backend::Neon) == faster_is_neon;
            RouterSweepPoint {
                config: cfg.to_string(),
                dtype: cfg.dtype().name().to_string(),
                m: cfg.m(),
                n: cfg.n(),
                k: cfg.k(),
                sme_cycles,
                neon_cycles,
                simulated_cycles: match chosen {
                    Backend::Sme => sme_cycles,
                    Backend::Neon => neon_cycles,
                },
                chosen: chosen.name().to_string(),
                agrees_with_model: agrees,
                sme_profile,
                neon_profile,
                profile_sums_ok,
            }
        })
        .collect();
    RouterSweep { points }
}

/// Render a router sweep as a table plus summary lines.
pub fn render_router_sweep(sweep: &RouterSweep) -> String {
    let mut out = String::from(
        "        dtype     m    n    k |   sme cyc |  neon cyc | routed | agrees\n\
         ------------------------------+-----------+-----------+--------+-------\n",
    );
    let fmt_cycles = |c: Option<f64>| match c {
        Some(c) => format!("{c:9.0}"),
        None => format!("{:>9}", "-"),
    };
    for p in &sweep.points {
        out.push_str(&format!(
            "{:>13} {:5} {:4} {:4} | {} | {} | {:>6} | {}\n",
            p.dtype,
            p.m,
            p.n,
            p.k,
            fmt_cycles(p.sme_cycles),
            fmt_cycles(p.neon_cycles),
            p.chosen,
            if p.agrees_with_model { "yes" } else { "NO" }
        ));
    }
    out.push_str(&format!(
        "\nrouter matches the per-shape simulated argmin: {}\n\
         both engines exercised across the sweep: {}\n",
        if sweep.routing_matches_model() {
            "yes"
        } else {
            "NO"
        },
        if sweep.crossover_present() {
            "yes"
        } else {
            "NO"
        }
    ));
    out
}

/// SLO thresholds of the serving run's flight recorder (the `--slo` flag).
/// The defaults are deliberately generous — the sentinel is always on, but
/// only a configured (or genuinely catastrophic) run breaches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloOptions {
    /// Ceiling on the p99 of `sme_batch_makespan_cycles`.
    pub makespan_p99_ceiling: f64,
    /// Floor under the lifetime `sme_cache_hit_ratio`.
    pub hit_ratio_floor: f64,
}

impl Default for SloOptions {
    fn default() -> Self {
        SloOptions {
            makespan_p99_ceiling: 1e12,
            hit_ratio_floor: 0.0,
        }
    }
}

impl SloOptions {
    /// Parse a `--slo` specification: comma-separated `key=value` pairs
    /// with keys `makespan-p99` (cycles) and `hit-rate` (0..=1). Unknown
    /// keys, malformed numbers and out-of-range rates are errors.
    pub fn parse_spec(spec: &str) -> Result<Self, String> {
        let mut opts = SloOptions::default();
        for pair in spec.split(',') {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("--slo: `{pair}` is not key=value"))?;
            let number: f64 = value
                .parse()
                .map_err(|e| format!("--slo {key}: bad value `{value}`: {e}"))?;
            if !number.is_finite() {
                return Err(format!("--slo {key}: value must be finite"));
            }
            match key {
                "makespan-p99" => {
                    if number <= 0.0 {
                        return Err("--slo makespan-p99: ceiling must be positive".into());
                    }
                    opts.makespan_p99_ceiling = number;
                }
                "hit-rate" => {
                    if !(0.0..=1.0).contains(&number) {
                        return Err("--slo hit-rate: floor must be within 0..=1".into());
                    }
                    opts.hit_ratio_floor = number;
                }
                other => {
                    return Err(format!(
                        "--slo: unknown key `{other}` (expected makespan-p99 or hit-rate)"
                    ))
                }
            }
        }
        Ok(opts)
    }

    /// The sentinel these thresholds configure (plus the standing
    /// placement-improvement and daemon-liveness rules).
    pub fn sentinel(&self) -> sme_obs::Sentinel {
        sme_obs::Sentinel::serving_defaults(self.makespan_p99_ceiling, self.hit_ratio_floor)
    }
}

/// Options for the `serving` binary: a synthetic shifting-traffic trace
/// driven through the full serving loop (router dispatch → telemetry decay
/// → pretune daemon → persisted snapshots → simulated restart).
#[derive(Debug, Clone, PartialEq)]
pub struct ServingTraceOptions {
    /// Batches dispatched in the first ("yesterday") traffic phase.
    pub warm_batches: usize,
    /// Batches dispatched after the traffic shifts ("today"); twice the
    /// warm phase by default so the decayed ranking has time to flip.
    pub shifted_batches: usize,
    /// Requests per shape per batch.
    pub requests: usize,
    /// JSON output path (`BENCH_serving.json` in CI).
    pub json: Option<String>,
    /// Chrome trace-event output path (`BENCH_trace.json` in CI; load it
    /// in Perfetto / `chrome://tracing`).
    pub trace: Option<String>,
    /// Metrics output path (`BENCH_metrics.prom` in CI): a Prometheus
    /// text exposition of the run's final counter/gauge/histogram state.
    pub metrics: Option<String>,
    /// Capacity of the span ring buffer (`--trace-capacity`).
    pub trace_capacity: usize,
    /// Flight-recorder thresholds (`--slo`).
    pub slo: SloOptions,
    /// Where to dump the postmortem bundle on an SLO breach
    /// (`--postmortem`; `BENCH_postmortem.json` in CI).
    pub postmortem: Option<String>,
    /// Baseline file to compare the run against (`--check-baseline`); a
    /// regression makes the binary exit non-zero.
    pub check_baseline: Option<String>,
    /// Baseline file to (over)write from this run (`--write-baseline`).
    pub write_baseline: Option<String>,
    /// Run the trace under the deterministic chaos fault schedule
    /// (`--chaos`): see [`chaos::chaos_run`].
    pub chaos: bool,
    /// Seed of the chaos schedule (`--chaos-seed N`; same seed = same
    /// faults at the same points).
    pub chaos_seed: u64,
    /// Where the chaos verdict JSON lands (`--chaos-json PATH`;
    /// `BENCH_chaos.json` in CI).
    pub chaos_json: Option<String>,
}

impl Default for ServingTraceOptions {
    fn default() -> Self {
        ServingTraceOptions {
            warm_batches: 5,
            shifted_batches: 10,
            requests: 3,
            json: None,
            trace: None,
            metrics: None,
            trace_capacity: 4096,
            slo: SloOptions::default(),
            postmortem: None,
            check_baseline: None,
            write_baseline: None,
            chaos: false,
            chaos_seed: 0,
            chaos_json: None,
        }
    }
}

impl ServingTraceOptions {
    /// Usage string for the `serving` binary.
    pub const USAGE: &'static str = "[--batches N] [--requests N] [--json PATH] [--trace PATH] \
         [--metrics PATH] [--trace-capacity N] [--slo makespan-p99=N,hit-rate=X] \
         [--postmortem PATH] [--check-baseline PATH] [--write-baseline PATH] [--smoke] \
         [--chaos] [--chaos-seed N] [--chaos-json PATH]";

    /// Parse the `serving` binary's flags. `--batches N` sets the warm
    /// phase length (the shifted phase is `2 N`); `--smoke` is the CI
    /// preset (3 warm + 6 shifted batches, 4 requests per shape — enough
    /// traffic that the repeated-weights pack-hit rate clears its 0.9
    /// acceptance floor).
    /// `--trace PATH` writes a Chrome trace of the run's spans;
    /// `--metrics PATH` writes the final Prometheus metrics snapshot;
    /// `--trace-capacity N` sizes the span ring; `--slo` configures the
    /// flight recorder; `--postmortem PATH` is where a breach's bundle is
    /// dumped; `--check-baseline` / `--write-baseline` drive the perf
    /// ratchet.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut opts = ServingTraceOptions::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value =
                |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
            match arg.as_str() {
                "--batches" => {
                    let n: usize = value("--batches")?
                        .parse()
                        .map_err(|e| format!("--batches: {e}"))?;
                    if n == 0 {
                        return Err("--batches must be positive".into());
                    }
                    opts.warm_batches = n;
                    opts.shifted_batches = 2 * n;
                }
                "--requests" => {
                    let n: usize = value("--requests")?
                        .parse()
                        .map_err(|e| format!("--requests: {e}"))?;
                    if n == 0 {
                        return Err("--requests must be positive".into());
                    }
                    opts.requests = n;
                }
                "--json" => opts.json = Some(value("--json")?),
                "--trace" => opts.trace = Some(value("--trace")?),
                "--metrics" => opts.metrics = Some(value("--metrics")?),
                "--trace-capacity" => {
                    let n: usize = value("--trace-capacity")?
                        .parse()
                        .map_err(|e| format!("--trace-capacity: {e}"))?;
                    if n == 0 {
                        return Err("--trace-capacity must be positive".into());
                    }
                    opts.trace_capacity = n;
                }
                "--slo" => opts.slo = SloOptions::parse_spec(&value("--slo")?)?,
                "--postmortem" => opts.postmortem = Some(value("--postmortem")?),
                "--check-baseline" => opts.check_baseline = Some(value("--check-baseline")?),
                "--write-baseline" => opts.write_baseline = Some(value("--write-baseline")?),
                "--smoke" => {
                    opts.warm_batches = 3;
                    opts.shifted_batches = 6;
                    opts.requests = 4;
                }
                "--chaos" => opts.chaos = true,
                "--chaos-seed" => {
                    opts.chaos_seed = value("--chaos-seed")?
                        .parse()
                        .map_err(|e| format!("--chaos-seed: {e}"))?;
                }
                "--chaos-json" => opts.chaos_json = Some(value("--chaos-json")?),
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if opts.chaos && opts.check_baseline.is_some() {
            // Chaos runs deliberately fail ticks and degrade dispatches;
            // their warm-up metrics are not comparable to a healthy
            // baseline.
            return Err("--chaos does not combine with --check-baseline".into());
        }
        Ok(opts)
    }

    /// Parse, printing the error and usage to stderr and exiting with
    /// status 2 on failure.
    pub fn parse_or_exit(args: impl Iterator<Item = String>) -> Self {
        ServingTraceOptions::parse(args).unwrap_or_else(|e| {
            eprintln!("error: {e}\nusage: {}", ServingTraceOptions::USAGE);
            std::process::exit(2);
        })
    }
}

/// One dispatched batch of the serving trace (the per-batch record of the
/// `--json` output CI persists as `BENCH_serving.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingBatchRecord {
    /// Monotonic sequence number across the whole run, including the
    /// simulated restart — a gap or repeat means records were lost or
    /// duplicated in transit, which `batch` (reused across phases in
    /// multi-process runs) cannot show.
    pub seq: u64,
    /// Batch index across the whole trace.
    pub batch: usize,
    /// Traffic phase: `yesterday`, `today`, or `restarted` (the first
    /// batch served by the new process after the simulated restart).
    pub phase: String,
    /// Display forms of the batch's distinct shapes.
    pub shapes: Vec<String>,
    /// Projected makespan with every group on its in-isolation route.
    pub makespan_isolated: f64,
    /// Projected makespan of the executed, placement-aware routing —
    /// never worse than `makespan_isolated`.
    pub makespan_placed: f64,
    /// Kernel-cache hit rate while serving this batch (compiles triggered
    /// by routing probes included): the pretuner's effect is this reaching
    /// 1.0 — most visibly on the first post-restart batch.
    pub pretune_hit_rate: f64,
    /// Fraction of the batch's requests whose packed A/B operand images
    /// replayed from the packed-operand cache. The trace models repeated
    /// weights (each shape re-dispatches the same operands every batch),
    /// so after the first batch per process this should be 1.0.
    pub pack_hit_rate: f64,
}

/// The run-header record of the `serving` binary's JSON output: enough
/// context to interpret the per-batch records without the producing
/// process — which machine model the cycles refer to, which routing
/// policy made the placements, and how fast the telemetry forgets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingRunHeader {
    /// Fingerprint of the simulated machine configuration (hex); records
    /// from different machine models are not comparable.
    pub machine_fingerprint: String,
    /// The router's routing policy (debug form).
    pub policy: String,
    /// Telemetry decay half-life, in dispatched batches.
    pub decay_half_life: f64,
    /// Batches dispatched in the warm ("yesterday") phase.
    pub warm_batches: usize,
    /// Batches dispatched after the traffic shift.
    pub shifted_batches: usize,
    /// Requests per shape per batch.
    pub requests: usize,
}

/// A complete serving trace (the `serving` binary's JSON output).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingTrace {
    /// The run's self-describing header.
    pub header: ServingRunHeader,
    /// Every dispatched batch, in order.
    pub batches: Vec<ServingBatchRecord>,
    /// The daemon's decayed hot list after the final shifted batch.
    pub hot_after_shift: Vec<String>,
    /// `true` if the decayed ranking followed the traffic shift: the
    /// hottest shape after the shift is one of today's, even though
    /// yesterday's dense shapes cost more cycles all-time.
    pub shift_followed: bool,
    /// Cache hit rate of the first batch served after the simulated
    /// restart — 1.0 when the daemon left the cache warm for today's
    /// traffic.
    pub restart_hit_rate: f64,
    /// Run-wide packed-operand hit rate, aggregated over both processes'
    /// pack caches: misses are bounded by (distinct operand sets ×
    /// processes), so with repeated weights this approaches 1.0 as the
    /// trace lengthens.
    pub pack_hit_rate: f64,
    /// Tuned serial-vs-pipelined simulated cycles for each FP32 serving
    /// shape — the per-shape evidence behind the pipelined schedule's
    /// cycle win, ratcheted by the baseline check.
    pub pipeline_wins: Vec<ServingPipelineWin>,
}

/// Tuned serial-vs-pipelined simulated cycles of one FP32 serving shape.
///
/// Both numbers come from the same tuner sweep except for the schedule
/// dimension, so `pipelined_cycles <= serial_cycles` always holds (the
/// pipelined sweep is a superset) and a strict gap is a genuine win of
/// the software-pipelined schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingPipelineWin {
    /// Display form of the shape.
    pub shape: String,
    /// Tuned cycles with the schedule sweep disabled (serial only).
    pub serial_cycles: f64,
    /// Tuned cycles with the full sweep including pipelined schedules.
    pub pipelined_cycles: f64,
}

impl ServingPipelineWin {
    /// Simulated cycles the pipelined schedule saves over the best serial
    /// plan (0 when the tuner kept the serial schedule).
    pub fn win_cycles(&self) -> f64 {
        (self.serial_cycles - self.pipelined_cycles).max(0.0)
    }
}

impl ServingTrace {
    /// `true` if no batch's placed projection exceeded its isolated
    /// projection (the planner's never-worse guarantee, asserted by CI).
    pub fn placement_never_worse(&self) -> bool {
        self.batches
            .iter()
            .all(|b| b.makespan_placed <= b.makespan_isolated + 1e-9)
    }

    /// `true` if the batch records carry a gapless `1..=N` sequence — the
    /// consumer-side check the `seq` field exists to enable.
    pub fn seq_gapless(&self) -> bool {
        self.batches
            .iter()
            .enumerate()
            .all(|(i, b)| b.seq == i as u64 + 1)
    }
}

/// Yesterday's traffic: dense FP32 + dense widening + a thin Neon shape.
fn serving_yesterday_shapes() -> Vec<sme_gemm::AnyGemmConfig> {
    vec![
        GemmConfig::abt(64, 64, 32).into(),
        WideningGemmConfig::new(64, 64, 8)
            .expect("valid widening shape")
            .into(),
        GemmConfig::abt(16, 4, 16).into(),
    ]
}

/// Today's traffic after the shift: a disjoint set of the same character.
fn serving_today_shapes() -> Vec<sme_gemm::AnyGemmConfig> {
    vec![
        GemmConfig::abt(48, 48, 32).into(),
        WideningGemmConfig::new(32, 32, 64)
            .expect("valid widening shape")
            .into(),
        GemmConfig::abt(16, 8, 16).into(),
    ]
}

/// Dispatch one batch of `shapes` through `router`, recording the placed
/// vs isolated projections and the cache hit rate the batch experienced.
fn serving_dispatch(
    router: &sme_router::Router,
    shapes: &[sme_gemm::AnyGemmConfig],
    requests: usize,
    seq: &mut u64,
    batch: usize,
    phase: &str,
) -> ServingBatchRecord {
    // Repeated weights: each shape re-dispatches the *same* operand set
    // (one fixed seed per shape) every request and every batch, so after
    // the first batch per process the packed-operand cache serves every
    // request's A/B images without repacking.
    let reqs: Vec<sme_runtime::GemmRequest> = shapes
        .iter()
        .enumerate()
        .flat_map(|(i, &config)| {
            (0..requests).map(move |_| sme_runtime::GemmRequest {
                config,
                seed: (1000 + i * 17) as u64,
            })
        })
        .collect();
    let before = router.cache().stats();
    let report = router
        .dispatch(&reqs)
        .expect("serving trace shapes are valid");
    let after = router.cache().stats();
    let hits = after.hits - before.hits;
    let misses = after.misses - before.misses;
    let total = hits + misses;
    *seq += 1;
    ServingBatchRecord {
        seq: *seq,
        batch,
        phase: phase.to_string(),
        shapes: shapes.iter().map(|c| c.to_string()).collect(),
        makespan_isolated: report.isolated.makespan_cycles(),
        makespan_placed: report.placement.makespan_cycles(),
        pretune_hit_rate: if total == 0 {
            1.0
        } else {
            hits as f64 / total as f64
        },
        pack_hit_rate: report.batch.pack_hit_ratio(),
    }
}

/// Tune each FP32 serving shape twice — once with the schedule sweep off,
/// once with the full sweep — so the trace carries the pipelined
/// schedule's per-shape simulated-cycle win.
fn serving_pipeline_wins() -> Vec<ServingPipelineWin> {
    let serial = sme_runtime::TunerOptions {
        sweep_schedule: false,
        ..Default::default()
    };
    let full = sme_runtime::TunerOptions::default();
    serving_yesterday_shapes()
        .iter()
        .chain(serving_today_shapes().iter())
        .filter(|cfg| matches!(cfg, sme_gemm::AnyGemmConfig::Fp32(_)))
        .filter_map(|cfg| {
            let s = sme_runtime::tune_any(cfg, &serial).ok()?;
            let p = sme_runtime::tune_any(cfg, &full).ok()?;
            Some(ServingPipelineWin {
                shape: cfg.to_string(),
                serial_cycles: s.tuned_cycles,
                pipelined_cycles: p.tuned_cycles,
            })
        })
        .collect()
}

/// A completed serving run: the trace plus everything the flight recorder
/// saw — the shared hub, the run-end SLO verdicts, and the pre-serialised
/// telemetry / cache sections a postmortem bundle needs.
#[derive(Debug)]
pub struct ServingRun {
    /// The serving trace (the `--json` artifact).
    pub trace: ServingTrace,
    /// The run's shared observability hub (spans + metrics).
    pub hub: std::sync::Arc<sme_obs::ObsHub>,
    /// SLO breaches at end of run, in rule order (empty: all promises
    /// held).
    pub breaches: Vec<sme_obs::SloBreach>,
    /// The final router's telemetry top-shapes, as JSON.
    pub telemetry_top_shapes: serde::json::Value,
    /// The final router's per-shard cache stats, as JSON.
    pub cache_shards: serde::json::Value,
}

impl ServingRun {
    /// The postmortem bundle for the first breach, if any rule broke.
    pub fn postmortem(&self) -> Option<serde::json::Value> {
        self.breaches.first().map(|breach| {
            sme_obs::postmortem_bundle(
                &self.hub,
                breach,
                self.telemetry_top_shapes.clone(),
                self.cache_shards.clone(),
            )
        })
    }
}

/// Drive the synthetic shifting-traffic trace through the serving loop,
/// persisting daemon state into `dir` (see [`serving_run`] for the
/// version that also returns the flight recorder's state).
pub fn serving_trace(
    opts: &ServingTraceOptions,
    dir: &std::path::Path,
) -> Result<ServingTrace, String> {
    serving_run(opts, dir).map(|run| run.trace)
}

/// Drive the synthetic shifting-traffic trace through the serving loop,
/// persisting daemon state into `dir`:
///
/// 1. `warm_batches` batches of yesterday's shapes, a daemon tick after
///    each (tune + warm + persist);
/// 2. the traffic shifts: `shifted_batches` batches of today's shapes,
///    ticking after each — the decayed ranking flips to today's traffic;
/// 3. a simulated restart: a **new router** restores the persisted
///    telemetry + plans, one daemon tick re-warms the cache, and today's
///    first batch on the new process is served entirely from warm cache.
///
/// At end of run the flight recorder evaluates `opts.slo` against the
/// hub's metrics; the verdicts travel back in the returned [`ServingRun`].
pub fn serving_run(
    opts: &ServingTraceOptions,
    dir: &std::path::Path,
) -> Result<ServingRun, String> {
    use sme_router::{PretuneDaemon, PretuneDaemonConfig, Router, DEFAULT_DECAY_HALF_LIFE};

    let yesterday = serving_yesterday_shapes();
    let today = serving_today_shapes();
    let mut config = PretuneDaemonConfig::in_dir(dir);
    // Cover the whole working set so a tick can warm every live shape.
    config.top_n = yesterday.len() + today.len();
    let daemon = PretuneDaemon::new(config);

    // One observability hub spans the whole run, including the restart:
    // the trace and metrics artifacts describe the run, not one process.
    let hub = sme_obs::ObsHub::shared(opts.trace_capacity);

    let router = Router::new(256);
    router.attach_obs(hub.clone());
    daemon
        .restore(&router)
        .map_err(|e| format!("restore: {e}"))?;

    let header = ServingRunHeader {
        machine_fingerprint: format!("{:016x}", router.machine().fingerprint()),
        policy: format!("{:?}", router.policy()),
        decay_half_life: DEFAULT_DECAY_HALF_LIFE,
        warm_batches: opts.warm_batches,
        shifted_batches: opts.shifted_batches,
        requests: opts.requests,
    };

    let mut seq = 0u64;
    let mut batches = Vec::new();
    let mut hot_after_shift = Vec::new();
    for b in 0..opts.warm_batches {
        batches.push(serving_dispatch(
            &router,
            &yesterday,
            opts.requests,
            &mut seq,
            b,
            "yesterday",
        ));
        daemon.tick(&router).map_err(|e| format!("tick: {e}"))?;
    }
    for b in 0..opts.shifted_batches {
        batches.push(serving_dispatch(
            &router,
            &today,
            opts.requests,
            &mut seq,
            opts.warm_batches + b,
            "today",
        ));
        let tick = daemon.tick(&router).map_err(|e| format!("tick: {e}"))?;
        hot_after_shift = tick.hot.iter().map(|c| c.to_string()).collect();
    }
    let hottest = router.top_shapes(1);
    let shift_followed = hottest
        .first()
        .is_some_and(|hot| today.contains(&hot.config));

    // Simulated restart: a fresh process restores what the daemon
    // persisted, re-warms, and serves today's traffic without compiling.
    let restarted = Router::new(256);
    restarted.attach_obs(hub.clone());
    daemon
        .restore(&restarted)
        .map_err(|e| format!("restore after restart: {e}"))?;
    daemon
        .tick(&restarted)
        .map_err(|e| format!("tick after restart: {e}"))?;
    let record = serving_dispatch(
        &restarted,
        &today,
        opts.requests,
        &mut seq,
        opts.warm_batches + opts.shifted_batches,
        "restarted",
    );
    let restart_hit_rate = record.pretune_hit_rate;
    batches.push(record);

    // Run-wide pack-hit rate: both processes' pack caches, hits over all
    // pack lookups. Misses are bounded by the distinct operand sets each
    // process saw, so repeated weights drive this towards 1.0.
    let pack_hit_rate = {
        let first = router.cache().packs().stats();
        let second = restarted.cache().packs().stats();
        let hits = first.hits + second.hits;
        let total = hits + first.misses + second.misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    };

    if let Some(path) = &opts.trace {
        std::fs::write(path, hub.trace.to_chrome_trace())
            .map_err(|e| format!("write trace {path}: {e}"))?;
    }
    if let Some(path) = &opts.metrics {
        std::fs::write(path, hub.metrics.render_prometheus())
            .map_err(|e| format!("write metrics {path}: {e}"))?;
    }

    // The flight recorder's end-of-run pass, plus the bundle sections that
    // live above `sme-obs` in the dependency graph.
    let breaches = opts.slo.sentinel().evaluate(&hub.metrics);
    let telemetry_top_shapes = serde::json::Value::Array(
        restarted
            .top_shapes(8)
            .iter()
            .map(|stats| stats.to_json_value())
            .collect(),
    );
    let cache_shards = serde::json::Value::Array(
        restarted
            .cache()
            .shard_stats()
            .iter()
            .map(|stats| {
                serde::json::Value::Object(vec![
                    (
                        "hits".to_string(),
                        serde::json::Value::Number(stats.hits as f64),
                    ),
                    (
                        "misses".to_string(),
                        serde::json::Value::Number(stats.misses as f64),
                    ),
                    (
                        "evictions".to_string(),
                        serde::json::Value::Number(stats.evictions as f64),
                    ),
                    (
                        "tuned_compiles".to_string(),
                        serde::json::Value::Number(stats.tuned_compiles as f64),
                    ),
                ])
            })
            .collect(),
    );

    Ok(ServingRun {
        trace: ServingTrace {
            header,
            batches,
            hot_after_shift,
            shift_followed,
            restart_hit_rate,
            pack_hit_rate,
            pipeline_wins: serving_pipeline_wins(),
        },
        hub,
        breaches,
        telemetry_top_shapes,
        cache_shards,
    })
}

/// Build the serving baseline from a completed run: summary metrics from
/// the trace plus each serving shape's simulated per-request cycles on
/// its preferred backend (the same model cycles the router's placement
/// uses), stamped with the machine model's fingerprint.
pub fn serving_baseline(trace: &ServingTrace) -> BaselineStore {
    let machine = sme_machine::MachineConfig::apple_m4();
    let mut store = BaselineStore::for_machine(&machine);

    let today: Vec<&ServingBatchRecord> = trace
        .batches
        .iter()
        .filter(|b| b.phase == "today")
        .collect();
    if !today.is_empty() {
        let mean = today.iter().map(|b| b.makespan_placed).sum::<f64>() / today.len() as f64;
        store.set_metric("serving_today_makespan_placed_mean", mean);
    }
    store.set_metric("serving_restart_hit_rate", trace.restart_hit_rate);
    store.set_metric("serving_pack_hit_rate", trace.pack_hit_rate);
    store.set_metric(
        "serving_pipeline_cycle_win_total",
        trace.pipeline_wins.iter().map(|w| w.win_cycles()).sum(),
    );

    let cache = sme_runtime::KernelCache::new(64);
    for cfg in serving_yesterday_shapes()
        .iter()
        .chain(serving_today_shapes().iter())
    {
        let backend = cache.preferred_backend_any(cfg);
        if let Ok((kernel, _)) = cache.fetch_any(cfg, backend) {
            store.set_shape_cycles(cfg.to_string(), kernel.model_stats().cycles);
        }
    }
    store
}

/// Render the serving trace as the table the `serving` binary prints.
pub fn render_serving_trace(trace: &ServingTrace) -> String {
    let mut out = String::new();
    out.push_str("batch  phase       isolated      placed    hit-rate    pack-hit\n");
    for b in &trace.batches {
        out.push_str(&format!(
            "{:>5}  {:<9} {:>10.0}  {:>10.0}      {:>5.1}%      {:>5.1}%\n",
            b.batch,
            b.phase,
            b.makespan_isolated,
            b.makespan_placed,
            100.0 * b.pretune_hit_rate,
            100.0 * b.pack_hit_rate
        ));
    }
    out.push_str(&format!(
        "\ndecayed ranking follows the shift: {}\npost-restart hit rate: {:.1}%\n\
         packed-operand hit rate: {:.1}%\n",
        trace.shift_followed,
        100.0 * trace.restart_hit_rate,
        100.0 * trace.pack_hit_rate
    ));
    for w in &trace.pipeline_wins {
        out.push_str(&format!(
            "pipelined {}: serial {:.0} -> pipelined {:.0} cycles (win {:.0})\n",
            w.shape,
            w.serial_cycles,
            w.pipelined_cycles,
            w.win_cycles()
        ));
    }
    out
}

/// Write any serialisable result to a JSON file if a path was requested.
pub fn maybe_write_json<T: Serialize>(path: &Option<String>, value: &T) {
    if let Some(path) = path {
        match serde_json::to_string_pretty(value) {
            Ok(text) => {
                if let Err(e) = std::fs::write(path, text) {
                    eprintln!("warning: could not write {path}: {e}");
                }
            }
            Err(e) => eprintln!("warning: could not serialise results: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_strs(args: &[&str]) -> Result<SweepOptions, String> {
        SweepOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn option_parsing() {
        let opts = parse_strs(&[
            "--step",
            "8",
            "--max",
            "64",
            "--k",
            "128",
            "--json",
            "/tmp/out.json",
        ])
        .unwrap();
        assert_eq!(opts.step, 8);
        assert_eq!(opts.max, 64);
        assert_eq!(opts.k, 128);
        assert_eq!(opts.json.as_deref(), Some("/tmp/out.json"));
        assert_eq!(opts.sizes().last(), Some(&64));
        let default = SweepOptions::parse(std::iter::empty()).unwrap();
        assert_eq!(default.step, 16);
        assert_eq!(default.max, 512);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        // Typos used to silently run the default sweep.
        let err = parse_strs(&["--setp", "1"]).unwrap_err();
        assert!(err.contains("--setp"), "{err}");
        let err = parse_strs(&["extra"]).unwrap_err();
        assert!(err.contains("extra"), "{err}");
    }

    #[test]
    fn malformed_values_are_rejected() {
        let err = parse_strs(&["--step"]).unwrap_err();
        assert!(err.contains("--step") && err.contains("value"), "{err}");
        let err = parse_strs(&["--max", "many"]).unwrap_err();
        assert!(err.contains("many"), "{err}");
        let err = parse_strs(&["--k", "-4"]).unwrap_err();
        assert!(err.contains("-4"), "{err}");
        let err = parse_strs(&["--step", "0"]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse_strs(&["--json"]).unwrap_err();
        assert!(err.contains("--json"), "{err}");
        // A flag name in value position is consumed as the value, and the
        // dangling flag is then reported.
        let err = parse_strs(&["--step", "--max", "64"]).unwrap_err();
        assert!(err.contains("--step"), "{err}");
    }

    #[test]
    fn sizes_always_include_the_maximum() {
        let opts = SweepOptions {
            step: 48,
            max: 100,
            k: 32,
            json: None,
        };
        let sizes = opts.sizes();
        assert_eq!(sizes, vec![48, 96, 100]);
    }

    #[test]
    fn tuner_option_parsing() {
        let opts = TunerSweepOptions::parse(
            [
                "--step",
                "32",
                "--max",
                "64",
                "--k",
                "16",
                "--store",
                "/tmp/plans.json",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(opts.sweep.step, 32);
        assert_eq!(opts.sweep.k, 16);
        assert_eq!(opts.store.as_deref(), Some("/tmp/plans.json"));
        assert!(!opts.quick);

        // --smoke is a fast-preset that wins over the geometry flags.
        let smoke =
            TunerSweepOptions::parse(["--smoke", "--max", "512"].iter().map(|s| s.to_string()))
                .unwrap();
        assert_eq!(
            (smoke.sweep.step, smoke.sweep.max, smoke.sweep.k),
            (32, 64, 32)
        );
        assert!(smoke.quick);
        assert_eq!(smoke.sweep.sizes(), vec![32, 64]);

        // Shared-flag errors propagate.
        assert!(TunerSweepOptions::parse(["--setp", "1"].iter().map(|s| s.to_string())).is_err());
        assert!(TunerSweepOptions::parse(["--store"].iter().map(|s| s.to_string())).is_err());
    }

    #[test]
    fn smoke_tuner_sweep_fills_the_store_and_never_loses() {
        let opts = TunerSweepOptions::parse(["--smoke"].iter().map(|s| s.to_string())).unwrap();
        let mut store = sme_runtime::PlanStore::new();
        let sweep = tuner_sweep(&opts, &mut store);
        assert_eq!(sweep.points.len(), 2);
        assert!(sweep.never_slower());
        assert!(sweep.geomean_speedup() >= 1.0);
        assert_eq!(store.len(), 2);
        // The persisted store round-trips and serves the swept shapes.
        let reloaded = sme_runtime::PlanStore::from_json(&store.to_json()).unwrap();
        assert!(reloaded
            .lookup(&GemmConfig::abt(32, 32, opts.sweep.k))
            .is_some());
        let text = render_tuner_sweep(&sweep);
        assert!(text.contains("never slower"));
        assert!(text.contains("yes"));
    }

    #[test]
    fn router_option_parsing_and_smoke_preset() {
        let opts = RouterSweepOptions::parse(
            ["--step", "16", "--max", "32", "--k", "8"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!((opts.sweep.step, opts.sweep.max, opts.sweep.k), (16, 32, 8));
        // Four shapes per swept size: thin 16×4×s, dense s×s×k, and the
        // two off-grid probes (thin 18×6×s, dense m % 16 == 2 square).
        assert_eq!(opts.shapes().len(), 8);

        let smoke = RouterSweepOptions::parse(["--smoke"].iter().map(|s| s.to_string())).unwrap();
        assert_eq!(
            (smoke.sweep.step, smoke.sweep.max, smoke.sweep.k),
            (32, 64, 32)
        );
        assert!(RouterSweepOptions::parse(["--setp", "1"].iter().map(|s| s.to_string())).is_err());
    }

    #[test]
    fn smoke_router_sweep_crosses_the_backend_boundary() {
        let opts = RouterSweepOptions::parse(["--smoke"].iter().map(|s| s.to_string())).unwrap();
        let router = sme_router::Router::new(32);
        let sweep = router_sweep(&opts, &router);
        assert_eq!(sweep.points.len(), 8);
        assert!(
            sweep.routing_matches_model(),
            "router must follow the simulated argmin: {sweep:?}"
        );
        assert!(
            sweep.crossover_present(),
            "smoke preset must exercise both engines: {sweep:?}"
        );
        // The off-grid probes are part of the sweep and carry both cycle
        // counts (both generators now cover them).
        let edge = sweep
            .points
            .iter()
            .find(|p| p.m == 18 && p.n == 6)
            .expect("the off-grid thin probe is swept");
        assert!(edge.sme_cycles.is_some() && edge.neon_cycles.is_some());
        // Every point's JSON record carries the chosen backend's cycles.
        for p in &sweep.points {
            assert!(!p.config.is_empty());
            assert_eq!(
                p.simulated_cycles,
                if p.chosen == "Sme" {
                    p.sme_cycles
                } else {
                    p.neon_cycles
                }
            );
        }
        let text = render_router_sweep(&sweep);
        assert!(text.contains("matches the per-shape simulated argmin: yes"));
        assert!(text.contains("both engines exercised across the sweep: yes"));

        // Every simulated kernel carries a cycle attribution that
        // partitions its total — the CI gate behind `--profile`.
        assert!(sweep.profiles_sum_to_cycles());
        let report = sweep_profile_report(&sweep);
        assert_eq!(
            report.points.len(),
            sweep
                .points
                .iter()
                .map(|p| p.sme_cycles.iter().count() + p.neon_cycles.iter().count())
                .sum::<usize>()
        );
        for point in &report.points {
            assert!(point.sums_ok, "profile must partition cycles: {point:?}");
            assert!(!point.profile.is_empty());
        }
        // Dense SME shapes are bounded by the outer-product pipeline —
        // the attribution names the engine, not a bookkeeping bucket.
        let dense = report
            .points
            .iter()
            .find(|p| p.backend == "Sme" && p.config.contains("m=64 n=64"))
            .expect("dense SME point present");
        let (class, _) = dense.profile.dominant().expect("non-empty profile");
        assert!(
            class == "outer-product" || class == "stall:outer-product",
            "dense SME kernels are FMOPA-bound, got {class}"
        );

        // The closed-form Heuristic policy agrees with the simulated
        // argmin on every preset shape, edges included — mis-modelled
        // partial tiles would fail here.
        let heuristic = sme_router::Router::with_policy(32, sme_router::RoutingPolicy::Heuristic);
        let sweep = router_sweep(&opts, &heuristic);
        assert!(
            sweep.routing_matches_model(),
            "heuristic estimates must rank the engines correctly: {sweep:?}"
        );
    }

    #[test]
    fn bf16_router_sweep_crosses_the_backend_boundary() {
        // The --bf16 preset parses, snaps shapes onto the widening grids,
        // and still exercises both engines: the thin 16x4 shapes stay
        // Neon BFMMLA territory on cycle count, the dense shapes —
        // 32-aligned or 8 past the grid — land on SME.
        let opts =
            RouterSweepOptions::parse(["--smoke", "--bf16"].iter().map(|s| s.to_string())).unwrap();
        assert!(opts.bf16);
        let shapes = opts.shapes();
        assert_eq!(
            shapes.len(),
            7,
            "shallow probe + thin + dense + off-grid edge per size"
        );
        assert!(shapes
            .iter()
            .all(|s| s.dtype() == sme_gemm::Dtype::WideningBf16));
        // Sizes that snap onto the same widening shape are probed once:
        // sizes {16, 32} both produce the dense 32x32.
        let collide = RouterSweepOptions::parse(
            ["--bf16", "--step", "16", "--max", "32", "--k", "32"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        let collide_shapes = collide.shapes();
        for (i, a) in collide_shapes.iter().enumerate() {
            assert!(
                !collide_shapes[i + 1..].contains(a),
                "duplicate swept shape {a}"
            );
        }
        assert_eq!(
            collide_shapes.len(),
            5,
            "shallow probe + thin 16/32 + one dense 32x32 + one edge 40x40"
        );
        // Every edge probe is genuinely off the 32-grid, whatever the
        // swept sizes.
        assert!(collide_shapes
            .iter()
            .filter(|s| s.m() == s.n() && s.m() > 32)
            .all(|s| s.m() % 32 == 8));
        let router = sme_router::Router::new(32);
        let sweep = router_sweep(&opts, &router);
        assert!(
            sweep.routing_matches_model(),
            "router must follow the simulated argmin: {sweep:?}"
        );
        assert!(
            sweep.crossover_present(),
            "the BF16 preset must exercise both engines: {sweep:?}"
        );
        assert!(sweep.points.iter().all(|p| p.dtype == "WideningBf16"));
        // Every widening shape now carries both cycle counts (the SME
        // engine is total); the shallow thin probe still picks Neon on
        // merit — deeper thin shapes amortise the streaming-mode entry and
        // move to SME, which is exactly the performance boundary the
        // masked edges were built to expose.
        assert!(sweep
            .points
            .iter()
            .all(|p| p.sme_cycles.is_some() && p.neon_cycles.is_some()));
        assert!(sweep
            .points
            .iter()
            .any(|p| p.m == 16 && p.n == 4 && p.k == 8 && p.chosen == "Neon"));
        // The dense-but-misaligned probes (m % 32 == 8) route to SME: the
        // crossover is a performance boundary, not a support boundary.
        assert!(sweep
            .points
            .iter()
            .any(|p| !p.m.is_multiple_of(32) && p.n == p.m && p.chosen == "Sme"));
        let text = render_router_sweep(&sweep);
        assert!(text.contains("WideningBf16"));
        assert!(text.contains("matches the per-shape simulated argmin: yes"));

        // The Heuristic policy's closed-form estimates agree with the
        // simulated argmin on the same preset — partial-tile mis-modelling
        // (edge tiles change the microkernel count) would fail here.
        let heuristic = sme_router::Router::with_policy(32, sme_router::RoutingPolicy::Heuristic);
        let sweep = router_sweep(&opts, &heuristic);
        assert!(
            sweep.routing_matches_model(),
            "heuristic estimates must rank the engines correctly: {sweep:?}"
        );
    }

    #[test]
    fn serving_trace_emits_seq_header_and_obs_artifacts() {
        let dir = std::env::temp_dir().join(format!("sme_serving_obs_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.json");
        let metrics_path = dir.join("metrics.prom");
        let opts = ServingTraceOptions {
            warm_batches: 1,
            shifted_batches: 2,
            requests: 1,
            trace: Some(trace_path.to_string_lossy().into_owned()),
            metrics: Some(metrics_path.to_string_lossy().into_owned()),
            ..Default::default()
        };
        let trace = serving_trace(&opts, &dir).expect("serving trace runs");

        // The per-batch records carry a gapless monotonic sequence and the
        // run header describes the producing configuration.
        assert!(trace.seq_gapless());
        assert_eq!(trace.batches.len(), 4); // 1 warm + 2 shifted + restart
        assert_eq!(trace.header.machine_fingerprint.len(), 16);
        assert!(trace.header.policy.contains("Measured"));
        assert_eq!(
            trace.header.decay_half_life,
            sme_router::DEFAULT_DECAY_HALF_LIFE
        );
        assert_eq!(trace.header.warm_batches, 1);

        // The trace artifact is a valid Chrome trace spanning both
        // processes, and the metrics snapshot carries the serving series.
        let chrome = std::fs::read_to_string(&trace_path).unwrap();
        let events = sme_obs::validate_chrome_trace(&chrome).expect("valid Chrome trace");
        assert!(events > 0);
        assert!(chrome.contains("router.dispatch"));
        assert!(chrome.contains("daemon.tick"));
        assert!(chrome.contains("cache.compile"));

        let prom = std::fs::read_to_string(&metrics_path).unwrap();
        for series in [
            "sme_cache_hits_total",
            "sme_cache_hit_ratio",
            "sme_router_batches_total",
            "sme_batch_makespan_cycles_bucket",
            "sme_pretune_ticks_total",
            "sme_pack_hits_total",
            "sme_pack_hit_ratio",
        ] {
            assert!(prom.contains(series), "metrics snapshot missing {series}");
        }
        // Both routers fed the same hub: 4 dispatches in total.
        assert!(prom.contains("sme_router_batches_total 4"));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serving_option_parsing_covers_the_observability_flags() {
        let opts = ServingTraceOptions::parse(
            [
                "--trace-capacity",
                "128",
                "--slo",
                "makespan-p99=5e6,hit-rate=0.25",
                "--postmortem",
                "/tmp/pm.json",
                "--check-baseline",
                "/tmp/base.json",
                "--write-baseline",
                "/tmp/new.json",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(opts.trace_capacity, 128);
        assert_eq!(opts.slo.makespan_p99_ceiling, 5e6);
        assert_eq!(opts.slo.hit_ratio_floor, 0.25);
        assert_eq!(opts.postmortem.as_deref(), Some("/tmp/pm.json"));
        assert_eq!(opts.check_baseline.as_deref(), Some("/tmp/base.json"));
        assert_eq!(opts.write_baseline.as_deref(), Some("/tmp/new.json"));

        // Strict parse errors, SweepOptions-style.
        for bad in [
            vec!["--trace-capacity"],
            vec!["--trace-capacity", "0"],
            vec!["--trace-capacity", "many"],
            vec!["--slo"],
            vec!["--slo", "makespan-p99"],
            vec!["--slo", "p50=3"],
            vec!["--slo", "makespan-p99=fast"],
            vec!["--slo", "makespan-p99=-1"],
            vec!["--slo", "hit-rate=1.5"],
            vec!["--slo", "hit-rate=inf"],
            vec!["--postmortem"],
            vec!["--check-baseline"],
        ] {
            assert!(
                ServingTraceOptions::parse(bad.iter().map(|s| s.to_string())).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn injected_slo_breach_produces_a_complete_postmortem_bundle() {
        let dir = std::env::temp_dir().join(format!("sme_serving_breach_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let opts = ServingTraceOptions {
            warm_batches: 1,
            shifted_batches: 1,
            requests: 1,
            // Impossible promises: every batch's makespan exceeds one
            // cycle, and the run's compiles keep the hit ratio below 1.
            slo: SloOptions {
                makespan_p99_ceiling: 1.0,
                hit_ratio_floor: 1.0,
            },
            ..Default::default()
        };
        let run = serving_run(&opts, &dir).expect("serving run");
        assert!(!run.breaches.is_empty(), "the injected SLOs must breach");
        assert!(run
            .breaches
            .iter()
            .any(|b| b.metric == "sme_batch_makespan_cycles"));

        let bundle = run.postmortem().expect("a breach yields a bundle");
        assert_eq!(
            bundle.get("version").unwrap().as_u64(),
            Some(sme_obs::POSTMORTEM_VERSION)
        );
        // The breaching rule plus all four snapshots.
        let rule = bundle
            .get("breach")
            .unwrap()
            .get("rule")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert_eq!(rule, run.breaches[0].rule);
        assert!(bundle
            .get("trace")
            .unwrap()
            .get("traceEvents")
            .unwrap()
            .as_array()
            .is_some_and(|events| !events.is_empty()));
        assert!(bundle
            .get("metrics")
            .unwrap()
            .get("counters")
            .unwrap()
            .get("sme_router_batches_total")
            .is_some());
        assert!(bundle
            .get("telemetry_top_shapes")
            .unwrap()
            .as_array()
            .is_some_and(|shapes| !shapes.is_empty()));
        assert!(bundle
            .get("cache_shards")
            .unwrap()
            .as_array()
            .is_some_and(|shards| !shards.is_empty()));
        // The bundle is one valid JSON artifact.
        assert!(serde_json::from_str(&bundle.render_pretty()).is_ok());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn baseline_check_passes_unchanged_runs_and_catches_regressions() {
        let dir = std::env::temp_dir().join(format!("sme_serving_baseline_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let opts = ServingTraceOptions {
            warm_batches: 1,
            shifted_batches: 1,
            requests: 1,
            ..Default::default()
        };
        let trace = serving_trace(&opts, &dir).expect("serving run");
        let baseline = serving_baseline(&trace);
        assert!(baseline.metric("serving_restart_hit_rate").is_some());
        assert!(baseline.len() > 2, "summary metrics plus per-shape cycles");

        // An unchanged run passes…
        let report = baseline.compare(&serving_baseline(&trace));
        assert!(report.passed(), "{:?}", report.regressions);
        assert_eq!(report.compared, baseline.len());

        // …and a synthetically regressed one fails.
        let mut regressed = serving_baseline(&trace);
        let makespan = regressed
            .metric("serving_today_makespan_placed_mean")
            .expect("today batches present");
        regressed.set_metric("serving_today_makespan_placed_mean", makespan * 2.0);
        regressed.set_metric("serving_restart_hit_rate", 0.1);
        let report = baseline.compare(&regressed);
        assert_eq!(report.regressions.len(), 2);

        // The baseline round-trips through its file form.
        let path = dir.join("baseline.json");
        baseline.save(&path).unwrap();
        let machine = sme_machine::MachineConfig::apple_m4();
        let (reloaded, check) = BaselineStore::load_checked(&path, &machine).unwrap();
        assert_eq!(check, sme_runtime::FingerprintCheck::Match);
        assert_eq!(reloaded, baseline);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn small_sweep_reproduces_the_headline_result() {
        // A coarse, fast sweep: the generated kernels must beat the vendor
        // baseline at every tested size for both layouts.
        let opts = SweepOptions {
            step: 96,
            max: 288,
            k: 128,
            json: None,
        };
        let fig8 = gemm_sweep(true, &opts);
        let fig9 = gemm_sweep(false, &opts);
        assert!(
            fig8.win_fraction() > 0.9,
            "Fig. 8 win fraction {}",
            fig8.win_fraction()
        );
        assert!(
            (fig9.win_fraction() - 1.0).abs() < 1e-9,
            "Fig. 9 win fraction {}",
            fig9.win_fraction()
        );
        assert!(fig8.geomean_speedup() > 1.0);
        let text = render_gemm_sweep(&fig8);
        assert!(text.contains("LIBXSMM"));
        assert!(text.contains("Accelerate"));
    }
}
