//! # sme-bench
//!
//! The benchmark harness of the reproduction: one binary per table / figure
//! of the paper's evaluation (run them with
//! `cargo run --release -p sme-bench --bin <name>`), plus criterion benches
//! that measure the host-side costs of the library itself (kernel
//! generation latency, simulator throughput).
//!
//! This library crate contains the shared pieces: command-line options for
//! the sweep binaries, the GEMM sweep driver used by the Fig. 8 / Fig. 9
//! binaries and JSON export of results.

#![warn(missing_docs)]

use accel_ref::AccelerateSgemm;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use sme_gemm::{generate, GemmConfig};

/// Options shared by the sweep binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOptions {
    /// Step between consecutive M = N values (the paper sweeps every size;
    /// the default step of 16 keeps the run short while preserving the
    /// curve shape — pass `--step 1` for the full sweep).
    pub step: usize,
    /// Largest M = N value (512 in the paper).
    pub max: usize,
    /// Contraction dimension (512 in the paper).
    pub k: usize,
    /// Optional path to also write the results as JSON.
    pub json: Option<String>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            step: 16,
            max: 512,
            k: 512,
            json: None,
        }
    }
}

impl SweepOptions {
    /// Parse options from `std::env::args`-style strings. Recognised flags:
    /// `--step N`, `--max N`, `--k N`, `--json PATH`.
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut opts = SweepOptions::default();
        let args: Vec<String> = args.collect();
        let mut i = 0;
        while i < args.len() {
            let value = |i: usize| -> Option<String> { args.get(i + 1).cloned() };
            match args[i].as_str() {
                "--step" => {
                    if let Some(v) = value(i).and_then(|v| v.parse().ok()) {
                        opts.step = v;
                    }
                    i += 1;
                }
                "--max" => {
                    if let Some(v) = value(i).and_then(|v| v.parse().ok()) {
                        opts.max = v;
                    }
                    i += 1;
                }
                "--k" => {
                    if let Some(v) = value(i).and_then(|v| v.parse().ok()) {
                        opts.k = v;
                    }
                    i += 1;
                }
                "--json" => {
                    opts.json = value(i);
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        if opts.step == 0 {
            opts.step = 1;
        }
        opts
    }

    /// The M = N values of the sweep.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = (self.step..=self.max).step_by(self.step).collect();
        if sizes.last() != Some(&self.max) {
            sizes.push(self.max);
        }
        sizes
    }
}

/// One point of a Fig. 8 / Fig. 9 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GemmSweepPoint {
    /// M = N of the output matrix.
    pub mn: usize,
    /// Modelled throughput of the generated (LIBXSMM-style) kernel.
    pub libxsmm_gflops: f64,
    /// Modelled throughput of the vendor-BLAS baseline.
    pub accelerate_gflops: f64,
}

/// A complete Fig. 8 / Fig. 9 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GemmSweep {
    /// `"abt"` (Fig. 8) or `"ab"` (Fig. 9).
    pub variant: String,
    /// Contraction dimension.
    pub k: usize,
    /// Sweep points in ascending M = N order.
    pub points: Vec<GemmSweepPoint>,
}

impl GemmSweep {
    /// Fraction of sweep points where the generated kernel beats the vendor
    /// baseline (the paper: "almost all" for Fig. 8 and "all" for Fig. 9).
    pub fn win_fraction(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let wins = self
            .points
            .iter()
            .filter(|p| p.libxsmm_gflops > p.accelerate_gflops)
            .count();
        wins as f64 / self.points.len() as f64
    }

    /// Geometric-mean speed-up of the generated kernels over the baseline.
    pub fn geomean_speedup(&self) -> f64 {
        if self.points.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self
            .points
            .iter()
            .map(|p| (p.libxsmm_gflops / p.accelerate_gflops).ln())
            .sum();
        (log_sum / self.points.len() as f64).exp()
    }
}

/// Run the Fig. 8 (`abt = true`) or Fig. 9 (`abt = false`) sweep.
///
/// Sweep points are independent and are evaluated in parallel on the host;
/// the simulated machine model inside each point is unaffected.
pub fn gemm_sweep(abt: bool, opts: &SweepOptions) -> GemmSweep {
    let points: Vec<GemmSweepPoint> = opts
        .sizes()
        .par_iter()
        .map(|&mn| {
            let cfg = if abt {
                GemmConfig::abt(mn, mn, opts.k)
            } else {
                GemmConfig::ab(mn, mn, opts.k)
            };
            let libxsmm = generate(&cfg).map(|k| k.model_gflops()).unwrap_or(0.0);
            let accelerate = AccelerateSgemm::new(cfg).model_gflops().unwrap_or(0.0);
            GemmSweepPoint {
                mn,
                libxsmm_gflops: libxsmm,
                accelerate_gflops: accelerate,
            }
        })
        .collect();
    GemmSweep {
        variant: if abt { "abt".into() } else { "ab".into() },
        k: opts.k,
        points,
    }
}

/// Render a sweep in the paper's series form and print the summary lines.
pub fn render_gemm_sweep(sweep: &GemmSweep) -> String {
    let libxsmm: Vec<(usize, f64)> = sweep
        .points
        .iter()
        .map(|p| (p.mn, p.libxsmm_gflops))
        .collect();
    let accel: Vec<(usize, f64)> = sweep
        .points
        .iter()
        .map(|p| (p.mn, p.accelerate_gflops))
        .collect();
    let mut out = sme_microbench::report::render_series(
        "M=N",
        &[("LIBXSMM", &libxsmm), ("Accelerate", &accel)],
    );
    out.push_str(&format!(
        "\ngenerated kernels faster in {:.0}% of the tested configurations \
         (geometric-mean speed-up {:.2}x)\n",
        100.0 * sweep.win_fraction(),
        sweep.geomean_speedup()
    ));
    out
}

/// Write any serialisable result to a JSON file if a path was requested.
pub fn maybe_write_json<T: Serialize>(path: &Option<String>, value: &T) {
    if let Some(path) = path {
        match serde_json::to_string_pretty(value) {
            Ok(text) => {
                if let Err(e) = std::fs::write(path, text) {
                    eprintln!("warning: could not write {path}: {e}");
                }
            }
            Err(e) => eprintln!("warning: could not serialise results: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_parsing() {
        let opts = SweepOptions::parse(
            [
                "--step",
                "8",
                "--max",
                "64",
                "--k",
                "128",
                "--json",
                "/tmp/out.json",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(opts.step, 8);
        assert_eq!(opts.max, 64);
        assert_eq!(opts.k, 128);
        assert_eq!(opts.json.as_deref(), Some("/tmp/out.json"));
        assert_eq!(opts.sizes().last(), Some(&64));
        let default = SweepOptions::parse(std::iter::empty());
        assert_eq!(default.step, 16);
        assert_eq!(default.max, 512);
    }

    #[test]
    fn sizes_always_include_the_maximum() {
        let opts = SweepOptions {
            step: 48,
            max: 100,
            k: 32,
            json: None,
        };
        let sizes = opts.sizes();
        assert_eq!(sizes, vec![48, 96, 100]);
    }

    #[test]
    fn small_sweep_reproduces_the_headline_result() {
        // A coarse, fast sweep: the generated kernels must beat the vendor
        // baseline at every tested size for both layouts.
        let opts = SweepOptions {
            step: 96,
            max: 288,
            k: 128,
            json: None,
        };
        let fig8 = gemm_sweep(true, &opts);
        let fig9 = gemm_sweep(false, &opts);
        assert!(
            fig8.win_fraction() > 0.9,
            "Fig. 8 win fraction {}",
            fig8.win_fraction()
        );
        assert!(
            (fig9.win_fraction() - 1.0).abs() < 1e-9,
            "Fig. 9 win fraction {}",
            fig9.win_fraction()
        );
        assert!(fig8.geomean_speedup() > 1.0);
        let text = render_gemm_sweep(&fig8);
        assert!(text.contains("LIBXSMM"));
        assert!(text.contains("Accelerate"));
    }
}
