//! The chaos harness behind `serving --chaos`: drive the full serving
//! trace under a *seeded, deterministic* fault schedule and prove that
//! every request still completes **bit-correct**.
//!
//! The schedule ([`sme_runtime::FaultPlan::chaos`]) injects five kinds of
//! fault over one run: a telemetry snapshot save that fails mid-run, a
//! telemetry snapshot *read* that fails at the restart restore, a daemon
//! tick that errors outright, and — for every SME-routed dispatch group —
//! one forced compile failure and one forced mid-execution panic. On top
//! of those hook-driven faults the harness itself truncates the plan
//! store's primary generation on disk before the simulated restart, so the
//! restore has to serve tuned state from the `.bak` previous generation.
//!
//! The run *passes* only if:
//!
//! * **zero requests were dropped** — every injected group fault degraded
//!   to the fallback backend instead of failing the request;
//! * every completed request's output is **bit-identical** to a clean
//!   (fault-free) dispatch of the same request on the same backend;
//! * the restart restore recovered the tuned plans from the previous
//!   on-disk generation (not an empty store), and the first post-restart
//!   batch was still served entirely from warm cache;
//! * at least four distinct fault kinds actually fired (the schedule is
//!   only exercising recovery if the faults really happened).
//!
//! The [`ChaosReport`] is the `BENCH_chaos.json` artifact CI publishes:
//! the seed, every fault event in firing order, and the degradation
//! outcomes the faults were absorbed by.

use serde::Serialize;
use sme_gemm::{AnyGemmConfig, Backend};
use sme_router::{PretuneDaemon, PretuneDaemonConfig, Router};
use sme_runtime::fault::{clear_injector, install_injector, FaultKind, FaultPlan};
use sme_runtime::{GemmRequest, GemmService, SnapshotSource};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;

use crate::ServingTraceOptions;

/// One fault that fired during the chaos run (the JSON form of
/// [`sme_runtime::FaultEvent`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChaosFaultRecord {
    /// The fault kind's stable snake-case name.
    pub kind: String,
    /// The site it fired at (snapshot path, dispatch-group label,
    /// `daemon.tick`).
    pub site: String,
    /// The per-`(kind, site)` occurrence count when it fired.
    pub occurrence: u64,
}

/// The `BENCH_chaos.json` artifact: what was injected, what degraded, and
/// whether every request survived bit-correct.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChaosReport {
    /// The deterministic schedule's seed (replay with `--chaos-seed`).
    pub seed: u64,
    /// Requests dispatched across the whole run, restart included.
    pub total_requests: usize,
    /// Requests that completed (produced an output buffer).
    pub completed_requests: usize,
    /// Requests reported as per-request failures — **must be 0 to pass**:
    /// the schedule only injects faults with a live fallback rung.
    pub failed_requests: usize,
    /// Dispatch groups that were served by their fallback backend after
    /// the routed backend failed (the degradation ladder's first rung).
    pub degraded_groups: usize,
    /// Completed requests whose output differed from a clean re-run on
    /// the same backend — **must be 0 to pass**.
    pub mismatched_requests: usize,
    /// `true` when every completed request was bit-identical to its
    /// fault-free reference.
    pub bit_correct: bool,
    /// Daemon ticks that failed (injected tick faults and injected
    /// snapshot-save faults land here) — tolerated, counted, retried.
    pub tick_failures: usize,
    /// Every fault that fired, in firing order.
    pub fault_events: Vec<ChaosFaultRecord>,
    /// How many distinct fault kinds fired (the pass bar is ≥ 4).
    pub distinct_fault_kinds: usize,
    /// Which on-disk generation served the telemetry snapshot at the
    /// restart restore (`backup` = recovered from `.bak`).
    pub telemetry_restore_source: Option<String>,
    /// Which on-disk generation served the plan store at the restart
    /// restore — `backup` expected, since the harness truncates the
    /// primary.
    pub plan_restore_source: Option<String>,
    /// Tuned winners recovered at the restart restore — must be non-zero:
    /// corruption recovery means the *previous generation*, not starting
    /// empty.
    pub plans_recovered: usize,
    /// Cache hit rate of the first post-restart batch (must stay 1.0: the
    /// recovered previous-generation plans still warm the cache fully).
    pub restart_hit_rate: f64,
    /// Lock-poison recoveries observed process-wide during the run.
    pub lock_poison_recoveries: u64,
    /// The overall verdict (the binary exits non-zero when `false`).
    pub passed: bool,
}

/// A completed chaos run: the report plus the observability hub, so the
/// binary can still write `--metrics` / `--trace` artifacts of the run.
#[derive(Debug)]
pub struct ChaosRun {
    /// The verdict and fault log (the `--chaos-json` artifact).
    pub report: ChaosReport,
    /// The run's shared observability hub.
    pub hub: Arc<sme_obs::ObsHub>,
}

/// What one chaos batch contributed to the run totals.
struct ChaosBatch {
    total: usize,
    failed: usize,
    degraded: usize,
    hit_rate: f64,
}

/// Every completed request's observed output, keyed for later clean
/// re-verification: the reference dispatch must run *after* the injector
/// is cleared, or it would consume (and suffer) scheduled faults itself.
struct Observed {
    request: GemmRequest,
    backend: Backend,
    output: Vec<f32>,
}

fn chaos_dispatch(
    router: &Router,
    shapes: &[AnyGemmConfig],
    requests: usize,
    observed: &mut Vec<Observed>,
) -> Result<ChaosBatch, String> {
    let reqs: Vec<GemmRequest> = shapes
        .iter()
        .enumerate()
        .flat_map(|(i, &config)| {
            (0..requests).map(move |_| GemmRequest {
                config,
                seed: (1000 + i * 17) as u64,
            })
        })
        .collect();
    let before = router.cache().stats();
    let report = router
        .dispatch(&reqs)
        .map_err(|e| format!("dispatch: {e}"))?;
    let after = router.cache().stats();
    let batch = &report.batch;
    let backend_of: HashMap<AnyGemmConfig, Backend> = batch
        .per_config
        .iter()
        .map(|group| (group.config, group.backend))
        .collect();
    let failed: HashSet<usize> = batch.failures.iter().map(|f| f.index).collect();
    for (i, request) in reqs.iter().enumerate() {
        if failed.contains(&i) {
            continue;
        }
        let backend = *backend_of
            .get(&request.config)
            .expect("completed requests have a per-config report");
        observed.push(Observed {
            request: *request,
            backend,
            output: batch.outputs[i].clone(),
        });
    }
    let hits = after.hits - before.hits;
    let misses = after.misses - before.misses;
    Ok(ChaosBatch {
        total: reqs.len(),
        failed: failed.len(),
        degraded: batch.degraded_groups(),
        hit_rate: if hits + misses == 0 {
            1.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
    })
}

/// Drive the serving trace under the seeded chaos schedule (see the module
/// docs), persisting daemon state into `dir`. Installs the process-wide
/// fault injector for the duration of the run and always clears it again,
/// so one chaos run per process is the supported shape (the `serving`
/// binary and the chaos integration test each own their process).
pub fn chaos_run(opts: &ServingTraceOptions, dir: &Path) -> Result<ChaosRun, String> {
    let plan = Arc::new(FaultPlan::chaos(opts.chaos_seed));
    // Injected group panics are expected and caught; keep their backtrace
    // spray out of the run's stderr while leaving real panics loud.
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !message.contains("sme-fault-injected") {
            previous_hook(info);
        }
    }));
    install_injector(plan.clone());
    let result = chaos_run_inner(opts, dir, &plan);
    clear_injector();
    // Drop the filtering hook (this reinstates the default hook; the saved
    // previous hook lived inside the filter and is released with it).
    let _ = std::panic::take_hook();
    let (mut run, observed) = result?;
    verify_bit_correct(&mut run.report, &observed);
    run.report.passed = run.report.failed_requests == 0
        && run.report.bit_correct
        && run.report.restart_hit_rate >= 1.0
        && run.report.distinct_fault_kinds >= 4
        && run.report.plans_recovered > 0
        && run.report.plan_restore_source.as_deref() == Some("backup");
    Ok(run)
}

fn chaos_run_inner(
    opts: &ServingTraceOptions,
    dir: &Path,
    plan: &FaultPlan,
) -> Result<(ChaosRun, Vec<Observed>), String> {
    let yesterday = crate::serving_yesterday_shapes();
    let today = crate::serving_today_shapes();
    let mut config = PretuneDaemonConfig::in_dir(dir);
    config.top_n = yesterday.len() + today.len();
    let daemon = PretuneDaemon::new(config);

    let hub = sme_obs::ObsHub::shared(opts.trace_capacity);
    let router = Router::new(256);
    router.attach_obs(hub.clone());
    daemon
        .restore(&router)
        .map_err(|e| format!("restore: {e}"))?;

    let mut observed = Vec::new();
    let mut total_requests = 0;
    let mut failed_requests = 0;
    let mut degraded_groups = 0;
    let mut tick_failures = 0;
    let tick = |router: &Router, failures: &mut usize| match daemon.tick(router) {
        Ok(_) => {}
        Err(e) => {
            *failures += 1;
            eprintln!("chaos: tolerated tick failure: {e}");
        }
    };

    for _ in 0..opts.warm_batches {
        let batch = chaos_dispatch(&router, &yesterday, opts.requests, &mut observed)?;
        total_requests += batch.total;
        failed_requests += batch.failed;
        degraded_groups += batch.degraded;
        tick(&router, &mut tick_failures);
    }
    for _ in 0..opts.shifted_batches {
        let batch = chaos_dispatch(&router, &today, opts.requests, &mut observed)?;
        total_requests += batch.total;
        failed_requests += batch.failed;
        degraded_groups += batch.degraded;
        tick(&router, &mut tick_failures);
    }

    // The harness's own fault: tear the plan store's primary generation in
    // half on disk, as a crash mid-rewrite would. The restart restore must
    // detect the damage and serve the `.bak` previous generation.
    let plans_path = daemon.config().store_path.clone();
    let bytes =
        std::fs::read(&plans_path).map_err(|e| format!("read {}: {e}", plans_path.display()))?;
    std::fs::write(&plans_path, &bytes[..bytes.len() / 2])
        .map_err(|e| format!("truncate {}: {e}", plans_path.display()))?;
    plan.record_external(FaultKind::SnapshotCorrupt, &plans_path.to_string_lossy());

    // Simulated restart under fire: the telemetry primary read fails
    // (injected LoadIo), the plan store primary is torn (above) — both must
    // recover from their previous generations, and today's traffic must
    // still be served entirely from warm cache.
    let restarted = Router::new(256);
    restarted.attach_obs(hub.clone());
    let restore = daemon
        .restore(&restarted)
        .map_err(|e| format!("restore after restart: {e}"))?;
    tick(&restarted, &mut tick_failures);
    let restart_batch = chaos_dispatch(&restarted, &today, opts.requests, &mut observed)?;
    total_requests += restart_batch.total;
    failed_requests += restart_batch.failed;
    degraded_groups += restart_batch.degraded;

    // Surface the schedule in the metrics the README documents: one
    // counter per fault kind, plus the events themselves in the report.
    let events = plan.events();
    let mut per_kind: HashMap<FaultKind, u64> = HashMap::new();
    for event in &events {
        *per_kind.entry(event.kind).or_insert(0) += 1;
    }
    for (kind, count) in &per_kind {
        hub.metrics
            .counter(&format!("sme_fault_{}_total", kind.name()))
            .add(*count);
    }

    if let Some(path) = &opts.trace {
        std::fs::write(path, hub.trace.to_chrome_trace())
            .map_err(|e| format!("write trace {path}: {e}"))?;
    }
    if let Some(path) = &opts.metrics {
        std::fs::write(path, hub.metrics.render_prometheus())
            .map_err(|e| format!("write metrics {path}: {e}"))?;
    }

    let report = ChaosReport {
        seed: plan.seed(),
        total_requests,
        completed_requests: total_requests - failed_requests,
        failed_requests,
        degraded_groups,
        mismatched_requests: 0, // filled by verify_bit_correct
        bit_correct: false,     // filled by verify_bit_correct
        tick_failures,
        fault_events: events
            .iter()
            .map(|e| ChaosFaultRecord {
                kind: e.kind.name().to_string(),
                site: e.site.clone(),
                occurrence: e.occurrence,
            })
            .collect(),
        distinct_fault_kinds: per_kind.len(),
        telemetry_restore_source: restore.telemetry_source.map(source_name),
        plan_restore_source: restore.plan_source.map(source_name),
        plans_recovered: restore.plans,
        restart_hit_rate: restart_batch.hit_rate,
        lock_poison_recoveries: sme_runtime::poison::recovered_total(),
        passed: false, // filled by chaos_run
    };
    Ok((ChaosRun { report, hub }, observed))
}

fn source_name(source: SnapshotSource) -> String {
    source.name().to_string()
}

/// Re-dispatch every distinct `(config, seed, backend)` the chaos run
/// served through a fresh, fault-free service and require every observed
/// output to match the clean reference **bit-for-bit**. Runs after the
/// injector is cleared: same simulator, same operands, same backend —
/// exact equality is the contract, not a tolerance.
fn verify_bit_correct(report: &mut ChaosReport, observed: &[Observed]) {
    let service = GemmService::new(64);
    let mut reference: HashMap<(AnyGemmConfig, u64, Backend), Vec<f32>> = HashMap::new();
    let mut mismatched = 0;
    for entry in observed {
        let key = (entry.request.config, entry.request.seed, entry.backend);
        if !reference.contains_key(&key) {
            let clean = service
                .dispatch_routed(std::slice::from_ref(&entry.request), |_| entry.backend)
                .expect("chaos shapes are valid");
            assert!(
                clean.failures.is_empty(),
                "the clean reference dispatch cannot fail: {:?}",
                clean.failures
            );
            reference.insert(key, clean.outputs[0].clone());
        }
        if reference[&key] != entry.output {
            mismatched += 1;
        }
    }
    report.mismatched_requests = mismatched;
    report.bit_correct = mismatched == 0;
}

/// Render the chaos verdict for the `serving` binary's stdout.
pub fn render_chaos_report(report: &ChaosReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Chaos run (seed {}): {} faults injected across {} kinds",
        report.seed,
        report.fault_events.len(),
        report.distinct_fault_kinds
    );
    for event in &report.fault_events {
        let _ = writeln!(
            out,
            "  fault {:16} occurrence {} at {}",
            event.kind, event.occurrence, event.site
        );
    }
    let _ = writeln!(
        out,
        "  requests: {} total, {} completed, {} failed, {} group(s) degraded to fallback",
        report.total_requests,
        report.completed_requests,
        report.failed_requests,
        report.degraded_groups
    );
    let _ = writeln!(
        out,
        "  ticks tolerated {} failure(s); restart restored plans from {} ({} winner(s)), \
         telemetry from {}; restart hit rate {:.1}%",
        report.tick_failures,
        report.plan_restore_source.as_deref().unwrap_or("-"),
        report.plans_recovered,
        report.telemetry_restore_source.as_deref().unwrap_or("-"),
        100.0 * report.restart_hit_rate
    );
    let _ = writeln!(
        out,
        "  bit-correct: {} ({} mismatch(es)); lock-poison recoveries: {}",
        if report.bit_correct { "yes" } else { "NO" },
        report.mismatched_requests,
        report.lock_poison_recoveries
    );
    let _ = writeln!(
        out,
        "  verdict: {}",
        if report.passed { "PASS" } else { "FAIL" }
    );
    out
}
