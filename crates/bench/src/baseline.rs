//! The perf-baseline sentinel: a persisted, machine-fingerprinted record
//! of what the serving bench *used to* measure, and the comparison that
//! turns `BENCH_*.json` artifacts from publish-and-forget into a ratchet.
//!
//! A [`BaselineStore`] mirrors the `PlanStore` persistence contract — a
//! versioned JSON document stamped with the machine model's timing
//! fingerprint, loaded through [`BaselineStore::load_checked`] which
//! warns and discards on a fingerprint mismatch — and holds two sorted
//! maps: per-shape simulated cycles (one entry per serving-trace shape)
//! and serving-bench summary metrics (makespans, hit rates).
//!
//! [`BaselineStore::compare`] checks a current run against the stored
//! baseline with direction-aware per-metric tolerances: cycle-like
//! metrics regress when they grow past `(1 + REL_TOLERANCE) × baseline`,
//! hit-rate-like metrics (name containing `hit_rate`) regress when they
//! fall more than [`HIT_RATE_TOLERANCE`] below the baseline, and
//! cycle-win metrics (name containing `win`, e.g. the pipelined
//! schedule's saved cycles) regress when they fall below
//! `(1 - REL_TOLERANCE) × baseline`. The
//! `serving` binary's `--check-baseline` exits non-zero on any
//! regression.

use serde::json::Value;
use sme_machine::MachineConfig;
use sme_runtime::FingerprintCheck;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Version stamp written into the baseline JSON document.
pub const BASELINE_VERSION: u64 = 1;

/// Relative growth tolerance for higher-is-worse metrics (cycles,
/// makespans, seconds): the model is deterministic, so 10% headroom only
/// absorbs intentional small model changes, not real regressions.
pub const REL_TOLERANCE: f64 = 0.10;

/// Absolute drop tolerance for lower-is-worse metrics (names containing
/// `hit_rate`, which live on a 0..=1 scale).
pub const HIT_RATE_TOLERANCE: f64 = 0.02;

/// Errors reported while loading, parsing or writing a baseline file.
#[derive(Debug)]
pub enum BaselineError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The document is not valid JSON or not a valid baseline.
    Format(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Io(e) => write!(f, "baseline I/O error: {e}"),
            BaselineError::Format(msg) => write!(f, "baseline format error: {msg}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<std::io::Error> for BaselineError {
    fn from(e: std::io::Error) -> Self {
        BaselineError::Io(e)
    }
}

/// One metric that moved past its tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRegression {
    /// The regressed metric (shape entries are prefixed `shape_cycles:`).
    pub metric: String,
    /// The stored baseline value.
    pub baseline: f64,
    /// The current run's value.
    pub current: f64,
    /// The bound the current value crossed.
    pub limit: f64,
}

impl fmt::Display for MetricRegression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: baseline {:.4}, current {:.4}, limit {:.4}",
            self.metric, self.baseline, self.current, self.limit
        )
    }
}

/// The outcome of comparing a current run against a stored baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineCheckReport {
    /// Metrics that crossed their tolerance, in sorted name order.
    pub regressions: Vec<MetricRegression>,
    /// How many metrics were present in both stores and compared.
    pub compared: usize,
}

impl BaselineCheckReport {
    /// `true` when nothing regressed.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Persisted serving-bench baseline: summary metrics plus per-shape
/// simulated cycles, stamped with the machine model's fingerprint.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BaselineStore {
    machine_fingerprint: Option<u64>,
    metrics: BTreeMap<String, f64>,
    shapes: BTreeMap<String, f64>,
}

impl BaselineStore {
    /// An empty, unstamped baseline.
    pub fn new() -> Self {
        BaselineStore::default()
    }

    /// An empty baseline stamped with `machine`'s timing fingerprint.
    pub fn for_machine(machine: &MachineConfig) -> Self {
        let mut store = BaselineStore::new();
        store.stamp(machine);
        store
    }

    /// Stamp the baseline with `machine`'s timing fingerprint.
    pub fn stamp(&mut self, machine: &MachineConfig) {
        self.machine_fingerprint = Some(machine.fingerprint());
    }

    /// The recorded machine fingerprint, if the baseline is stamped.
    pub fn machine_fingerprint(&self) -> Option<u64> {
        self.machine_fingerprint
    }

    /// Compare the baseline's fingerprint against `machine`'s current
    /// timing parameters (same verdicts as `PlanStore::fingerprint_check`).
    pub fn fingerprint_check(&self, machine: &MachineConfig) -> FingerprintCheck {
        let current = machine.fingerprint();
        match self.machine_fingerprint {
            None => FingerprintCheck::Unstamped,
            Some(stored) if stored == current => FingerprintCheck::Match,
            Some(stored) => FingerprintCheck::Mismatch { stored, current },
        }
    }

    /// Record a summary metric (overwrites a previous value).
    pub fn set_metric(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.insert(name.into(), value);
    }

    /// A recorded summary metric.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).copied()
    }

    /// Record a shape's simulated per-request cycles, keyed by the shape's
    /// display form.
    pub fn set_shape_cycles(&mut self, shape: impl Into<String>, cycles: f64) {
        self.shapes.insert(shape.into(), cycles);
    }

    /// A recorded shape's simulated cycles.
    pub fn shape_cycles(&self, shape: &str) -> Option<f64> {
        self.shapes.get(shape).copied()
    }

    /// Number of recorded entries (metrics + shapes).
    pub fn len(&self) -> usize {
        self.metrics.len() + self.shapes.len()
    }

    /// `true` when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty() && self.shapes.is_empty()
    }

    /// Compare `current` against this baseline. Only entries present in
    /// **both** stores are compared (a new metric cannot regress; a
    /// deleted one is a review question, not a gate). Direction is
    /// per-metric: names containing `hit_rate` must not fall more than
    /// [`HIT_RATE_TOLERANCE`] below baseline; names containing `win`
    /// (cycle savings, where bigger is better) must not fall below
    /// `(1 - REL_TOLERANCE) × baseline`; everything else must not
    /// grow past `(1 + REL_TOLERANCE) × baseline`.
    pub fn compare(&self, current: &BaselineStore) -> BaselineCheckReport {
        let mut regressions = Vec::new();
        let mut compared = 0;
        let entries = self
            .metrics
            .iter()
            .map(|(name, &value)| (name.clone(), value, current.metric(name)))
            .chain(self.shapes.iter().map(|(shape, &value)| {
                (
                    format!("shape_cycles:{shape}"),
                    value,
                    current.shape_cycles(shape),
                )
            }));
        for (name, baseline, observed) in entries {
            let Some(observed) = observed else { continue };
            compared += 1;
            if name.contains("hit_rate") {
                let limit = baseline - HIT_RATE_TOLERANCE;
                if observed < limit {
                    regressions.push(MetricRegression {
                        metric: name,
                        baseline,
                        current: observed,
                        limit,
                    });
                }
            } else if name.contains("win") {
                let limit = baseline * (1.0 - REL_TOLERANCE);
                if observed < limit {
                    regressions.push(MetricRegression {
                        metric: name,
                        baseline,
                        current: observed,
                        limit,
                    });
                }
            } else {
                let limit = baseline * (1.0 + REL_TOLERANCE);
                if observed > limit {
                    regressions.push(MetricRegression {
                        metric: name,
                        baseline,
                        current: observed,
                        limit,
                    });
                }
            }
        }
        BaselineCheckReport {
            regressions,
            compared,
        }
    }

    /// Serialise as a versioned JSON document with deterministically
    /// sorted keys (the maps are `BTreeMap`s, so the output is diffable).
    pub fn to_json(&self) -> String {
        let to_object = |map: &BTreeMap<String, f64>| {
            Value::Object(
                map.iter()
                    .map(|(name, &value)| (name.clone(), Value::Number(value)))
                    .collect(),
            )
        };
        let mut fields = vec![(
            "version".to_string(),
            Value::Number(BASELINE_VERSION as f64),
        )];
        if let Some(fp) = self.machine_fingerprint {
            fields.push((
                "machine_fingerprint".to_string(),
                Value::String(format!("{fp:016x}")),
            ));
        }
        fields.push(("metrics".to_string(), to_object(&self.metrics)));
        fields.push(("shape_cycles".to_string(), to_object(&self.shapes)));
        Value::Object(fields).render_pretty()
    }

    /// Parse a document produced by [`BaselineStore::to_json`].
    pub fn from_json(text: &str) -> Result<Self, BaselineError> {
        let doc: Value =
            serde_json::from_str(text).map_err(|e| BaselineError::Format(format!("{e}")))?;
        match doc.get("version").and_then(Value::as_u64) {
            Some(BASELINE_VERSION) => {}
            Some(other) => {
                return Err(BaselineError::Format(format!(
                    "unsupported baseline version {other} (expected {BASELINE_VERSION})"
                )))
            }
            None => {
                return Err(BaselineError::Format(
                    "missing or non-numeric \"version\" field".into(),
                ))
            }
        }
        let machine_fingerprint = match doc.get("machine_fingerprint") {
            None => None,
            Some(value) => {
                let text = value.as_str().ok_or_else(|| {
                    BaselineError::Format("\"machine_fingerprint\" must be a hex string".into())
                })?;
                Some(u64::from_str_radix(text, 16).map_err(|e| {
                    BaselineError::Format(format!("bad machine_fingerprint {text:?}: {e}"))
                })?)
            }
        };
        let parse_map = |key: &str| -> Result<BTreeMap<String, f64>, BaselineError> {
            let mut map = BTreeMap::new();
            let Some(section) = doc.get(key) else {
                return Err(BaselineError::Format(format!("missing \"{key}\" section")));
            };
            let entries = section.as_object().ok_or_else(|| {
                BaselineError::Format(format!("\"{key}\" must be an object of numbers"))
            })?;
            for (name, value) in entries {
                let value = value.as_f64().ok_or_else(|| {
                    BaselineError::Format(format!("\"{key}\".\"{name}\" must be a number"))
                })?;
                if !value.is_finite() {
                    return Err(BaselineError::Format(format!(
                        "\"{key}\".\"{name}\" must be finite"
                    )));
                }
                map.insert(name.clone(), value);
            }
            Ok(map)
        };
        Ok(BaselineStore {
            machine_fingerprint,
            metrics: parse_map("metrics")?,
            shapes: parse_map("shape_cycles")?,
        })
    }

    /// Write the baseline to `path` — atomically (temp + fsync + rename),
    /// with a checksum trailer, keeping the previous generation at
    /// `<path>.bak` (see [`sme_runtime::save_snapshot`]).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), BaselineError> {
        sme_runtime::save_snapshot(path.as_ref(), &self.to_json())?;
        Ok(())
    }

    /// Load a baseline from `path`. The checksum trailer is verified when
    /// present; trailer-less legacy documents (including the committed
    /// `BENCH_baseline.json`) still load.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, BaselineError> {
        match sme_runtime::read_snapshot(path.as_ref()) {
            Ok(text) => BaselineStore::from_json(&text),
            Err(sme_runtime::SnapshotError::Io(e)) => Err(BaselineError::Io(e)),
            Err(sme_runtime::SnapshotError::Corrupt(msg)) => Err(BaselineError::Format(msg)),
        }
    }

    /// Load a baseline and validate it against `machine`'s fingerprint.
    /// On mismatch the stale baseline is **discarded** — the returned
    /// store is empty but stamped for `machine` (so a subsequent compare
    /// passes vacuously: runs on different timing models are not
    /// comparable) — and a warning naming both fingerprints is printed to
    /// stderr, mirroring `PlanStore::load_checked`.
    ///
    /// *Corruption* is handled differently from staleness: if the primary
    /// document is unreadable, fails its checksum trailer, or does not
    /// parse, the `.bak` previous generation (kept by every
    /// [`BaselineStore::save`]) is tried before giving up, and the
    /// original error is returned only when both generations are bad.
    pub fn load_checked(
        path: impl AsRef<Path>,
        machine: &MachineConfig,
    ) -> Result<(Self, FingerprintCheck), BaselineError> {
        let path = path.as_ref();
        let store = match BaselineStore::load(path) {
            Ok(store) => store,
            Err(BaselineError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(BaselineError::Io(e));
            }
            Err(primary) => match BaselineStore::load(sme_runtime::backup_path(path)) {
                Ok(previous) => {
                    eprintln!(
                        "warning: baseline {} is corrupt ({primary}); recovered \
                         {} entr(y/ies) from the previous generation",
                        path.display(),
                        previous.len()
                    );
                    previous
                }
                Err(_) => return Err(primary),
            },
        };
        let check = store.fingerprint_check(machine);
        if let FingerprintCheck::Mismatch { stored, current } = check {
            eprintln!(
                "warning: baseline {} was recorded for machine fingerprint \
                 {stored:016x} but the current model is {current:016x}; \
                 discarding its {} entr(y/ies) — re-record with --write-baseline",
                path.display(),
                store.len()
            );
            return Ok((BaselineStore::for_machine(machine), check));
        }
        Ok((store, check))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BaselineStore {
        let mut store = BaselineStore::for_machine(&MachineConfig::apple_m4());
        store.set_metric("serving_today_makespan_placed_mean", 1000.0);
        store.set_metric("serving_restart_hit_rate", 1.0);
        store.set_shape_cycles("f32 64x64x32 A*B^T", 500.0);
        store
    }

    #[test]
    fn json_round_trip_is_lossless_and_sorted() {
        let store = sample();
        let text = store.to_json();
        let reloaded = BaselineStore::from_json(&text).unwrap();
        assert_eq!(reloaded, store);
        // Keys render in sorted order (diffable artifact).
        let makespan = text.find("serving_today_makespan_placed_mean").unwrap();
        let hit_rate = text.find("serving_restart_hit_rate").unwrap();
        assert!(hit_rate < makespan, "r < t in sorted order");
        assert!(text.contains("\"version\""));
        assert_eq!(
            reloaded.machine_fingerprint(),
            Some(MachineConfig::apple_m4().fingerprint())
        );
    }

    #[test]
    fn malformed_documents_are_rejected_with_context() {
        let cases: Vec<(&str, &str)> = vec![
            ("not json", "baseline format error"),
            ("{}", "version"),
            ("{\"version\": 99}", "unsupported baseline version 99"),
            (
                "{\"version\": 1, \"metrics\": {}}",
                "missing \"shape_cycles\" section",
            ),
            (
                "{\"version\": 1, \"metrics\": 5, \"shape_cycles\": {}}",
                "\"metrics\" must be an object",
            ),
            (
                "{\"version\": 1, \"metrics\": {\"x\": \"fast\"}, \"shape_cycles\": {}}",
                "\"metrics\".\"x\" must be a number",
            ),
            (
                "{\"version\": 1, \"machine_fingerprint\": 12, \
                 \"metrics\": {}, \"shape_cycles\": {}}",
                "hex string",
            ),
            (
                "{\"version\": 1, \"machine_fingerprint\": \"xyz!\", \
                 \"metrics\": {}, \"shape_cycles\": {}}",
                "bad machine_fingerprint",
            ),
        ];
        for (doc, needle) in cases {
            let err = BaselineStore::from_json(doc).unwrap_err().to_string();
            assert!(err.contains(needle), "{doc}: {err}");
        }
    }

    #[test]
    fn compare_is_direction_aware() {
        let baseline = sample();

        // An identical run passes.
        let report = baseline.compare(&baseline.clone());
        assert!(report.passed());
        assert_eq!(report.compared, 3);

        // Cycles growing past the relative tolerance regress…
        let mut slower = baseline.clone();
        slower.set_metric("serving_today_makespan_placed_mean", 1200.0);
        let report = baseline.compare(&slower);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(
            report.regressions[0].metric,
            "serving_today_makespan_placed_mean"
        );
        assert!(report.regressions[0].limit < 1200.0);
        // …while shrinking ones (an improvement) pass.
        let mut faster = baseline.clone();
        faster.set_metric("serving_today_makespan_placed_mean", 500.0);
        assert!(baseline.compare(&faster).passed());

        // Hit rates are floors: a drop regresses, a (impossible) rise
        // passes.
        let mut cold = baseline.clone();
        cold.set_metric("serving_restart_hit_rate", 0.5);
        let report = baseline.compare(&cold);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].metric, "serving_restart_hit_rate");

        // Cycle wins are relative floors: a shrinking win regresses, a
        // growing one passes.
        let mut with_win = baseline.clone();
        with_win.set_metric("serving_pipeline_cycle_win_total", 100.0);
        let mut smaller_win = with_win.clone();
        smaller_win.set_metric("serving_pipeline_cycle_win_total", 80.0);
        let report = with_win.compare(&smaller_win);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(
            report.regressions[0].metric,
            "serving_pipeline_cycle_win_total"
        );
        assert_eq!(report.regressions[0].limit, 90.0);
        let mut bigger_win = with_win.clone();
        bigger_win.set_metric("serving_pipeline_cycle_win_total", 150.0);
        assert!(with_win.compare(&bigger_win).passed());

        // Per-shape cycles are ceilings too, reported with the prefix.
        let mut shape_slow = baseline.clone();
        shape_slow.set_shape_cycles("f32 64x64x32 A*B^T", 600.0);
        let report = baseline.compare(&shape_slow);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(
            report.regressions[0].metric,
            "shape_cycles:f32 64x64x32 A*B^T"
        );

        // Entries missing on either side are skipped, not failed.
        let mut sparse = BaselineStore::for_machine(&MachineConfig::apple_m4());
        sparse.set_metric("serving_restart_hit_rate", 1.0);
        let report = baseline.compare(&sparse);
        assert!(report.passed());
        assert_eq!(report.compared, 1);
    }

    #[test]
    fn load_checked_discards_stale_baselines() {
        let dir = std::env::temp_dir().join(format!("sme_baseline_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        sample().save(&path).unwrap();

        // Same machine: the baseline loads intact.
        let machine = MachineConfig::apple_m4();
        let (loaded, check) = BaselineStore::load_checked(&path, &machine).unwrap();
        assert_eq!(check, FingerprintCheck::Match);
        assert_eq!(loaded.len(), 3);

        // A recalibrated machine: warn, discard, return empty-but-stamped.
        let mut recalibrated = MachineConfig::apple_m4();
        recalibrated.p_core.clock_ghz = 4.0;
        let (loaded, check) = BaselineStore::load_checked(&path, &recalibrated).unwrap();
        assert!(matches!(check, FingerprintCheck::Mismatch { .. }));
        assert!(loaded.is_empty());
        assert_eq!(
            loaded.machine_fingerprint(),
            Some(recalibrated.fingerprint())
        );
        // A vacuous compare passes: different models are not comparable.
        assert!(loaded.compare(&sample()).passed());

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
