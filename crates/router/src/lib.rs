//! # sme-router
//!
//! Traffic-aware multi-backend dispatch: the layer between the
//! `sme-runtime` service and the kernel generators that decides, per
//! request, **which engine executes** — the SME outer-product units or the
//! core-private Neon FMLA pipes — and knows what the traffic looks like.
//!
//! The paper's Fig. 1 shows why one engine is not enough: SME throughput
//! comes from **two shared units** (one per cluster) and towers over Neon
//! for dense shapes, but an SME kernel pays a fixed streaming-mode
//! entry/exit and ZA-transfer cost that tiny or thin GEMMs never amortise
//! — those run faster on the Neon pipes every core owns privately. A
//! serving system therefore needs three things this crate provides:
//!
//! * [`RoutingPolicy`] — the per-shape engine decision, from pinned
//!   ([`RoutingPolicy::SmeOnly`]/[`RoutingPolicy::NeonOnly`]) through a
//!   closed-form estimate ([`RoutingPolicy::Heuristic`]) to one-off model
//!   probes ([`RoutingPolicy::Measured`], the default); installed tuned
//!   winners always take precedence, so the cross-backend autotuner is the
//!   final authority;
//! * [`TelemetryRegistry`] — per-[`GemmConfig`] request counts, cumulative
//!   cycles, serving backend and cache outcomes, plus **exponentially
//!   decayed** counters so [`Router::top_shapes`] answers *which shapes
//!   dominate traffic lately?*; [`Router::pretune_hot`] autotunes exactly
//!   those, and the whole registry persists as a versioned,
//!   machine-fingerprinted JSON snapshot
//!   ([`TelemetryRegistry::save`]/[`TelemetryRegistry::load_checked`]);
//! * [`plan_batch`] — a batch placement over the machine's real engine
//!   classes (two shared SME units + ten private cores) that replaces the
//!   runtime's identical-cores makespan; [`Router::dispatch`] folds the
//!   placement back into routing ([`plan_batch_placed`]): when the two
//!   shared units saturate, marginal SME groups spill to idle private
//!   cores whenever that lowers the projected batch makespan, and host
//!   execution follows the plan's schedule (longest SME group first);
//! * [`PretuneDaemon`] — the background serving loop: restore persisted
//!   telemetry + plans on startup, periodically tune and cache-warm the
//!   decayed top-N, persist both back, so the cache is warm for
//!   tomorrow's traffic across restarts.
//!
//! The same machinery serves **both datatype families**: batches may mix
//! FP32 and BF16 widening requests, routing/telemetry/placement are keyed
//! on the unified [`sme_gemm::AnyGemmConfig`], and the BF16 side has a real
//! SME/Neon pair too — the widening BFMOPA fast path (32×32 grid) versus
//! the Neon `BFMMLA` baseline (8×2 grid).
//!
//! ## Route → dispatch → observe → pre-tune
//!
//! ```
//! use sme_router::Router;
//! use sme_runtime::{GemmRequest, TunerOptions};
//! use sme_gemm::{Backend, GemmConfig, WideningGemmConfig};
//!
//! let router = Router::new(32);
//! let tiny = GemmConfig::abt(16, 4, 4);    // streaming overhead dominates
//! let dense = GemmConfig::abt(64, 64, 64); // SME's home turf
//!
//! let mut batch: Vec<GemmRequest> = (0..4)
//!     .map(|seed| GemmRequest::fp32(if seed % 2 == 0 { tiny } else { dense }, seed))
//!     .collect();
//! // BF16 widening traffic rides through the same dispatch path.
//! let bf16 = WideningGemmConfig::new(32, 32, 8).expect("valid widening shape");
//! batch.push(GemmRequest::widening(bf16, 9));
//! let report = router.dispatch(&batch).expect("valid batch");
//!
//! // The router split the batch across engine classes…
//! assert_eq!(router.route(&tiny), Backend::Neon);
//! assert_eq!(router.route(&dense), Backend::Sme);
//! assert_eq!(router.route_any(&bf16.into()), Backend::Sme);
//! let (sme_load, neon_load) = report.placement.class_load_cycles();
//! assert!(sme_load > 0.0 && neon_load > 0.0);
//!
//! // …and the telemetry knows exactly who called. The hottest shape is
//! // the one costing the most (decayed) cycles — the dense GEMM, even
//! // though the tiny one has as many requests.
//! assert_eq!(router.telemetry().total_requests(), 5);
//! let hot = router.top_shapes(1);
//! assert_eq!(hot[0].config, dense.into());
//!
//! // Pre-tune the hottest shapes: routing now follows the simulated
//! // cross-backend argmin instead of the probe.
//! router.pretune_hot(2, &TunerOptions::quick()).expect("tunable");
//! ```

#![warn(missing_docs)]

pub mod daemon;
pub mod planner;
pub mod policy;
pub mod router;
pub mod telemetry;

pub use daemon::{
    DaemonError, DaemonHandle, PretuneDaemon, PretuneDaemonConfig, RestoreReport, StopOutcome,
    TickReport, STOP_TIMEOUT,
};
pub use planner::{
    plan_batch, plan_batch_placed, BatchPlan, GroupCost, GroupPlacement, PlacementPlan,
};
pub use policy::{
    estimate_backend_cycles, estimate_widening_backend_cycles, heuristic_backend,
    heuristic_backend_any, RoutingPolicy,
};
pub use router::{RoutedBatchReport, Router};
pub use telemetry::{
    RecoveredTelemetry, ShapeStats, TelemetryError, TelemetryRegistry, DEFAULT_DECAY_HALF_LIFE,
    TELEMETRY_SNAPSHOT_VERSION,
};

// Re-exported so doc examples and downstream callers can name the core
// types without extra direct dependencies.
pub use sme_gemm::{AnyGemmConfig, Backend, Dtype, GemmConfig, WideningGemmConfig};
pub use sme_runtime::GemmRequest;
