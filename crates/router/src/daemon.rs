//! The background pretuner: keep the cache warm for *tomorrow's* traffic.
//!
//! `Router::pretune_hot` answers "which shapes dominate traffic? tune
//! exactly those" — but someone has to call it, and whatever it learned
//! dies with the process. The [`PretuneDaemon`] closes both gaps:
//!
//! * [`PretuneDaemon::tick`] takes the telemetry's **decayed** top-N (so
//!   the tuning budget follows shifting traffic, not all-time totals),
//!   tunes any shape without an installed winner, compiles every hot
//!   shape's winning kernel **into the cache** (the fetch a future
//!   dispatch performs becomes a hit, not a compile), and persists both
//!   halves of the learned state — the telemetry snapshot and the plan
//!   store — to their configured paths;
//! * [`PretuneDaemon::restore`] is the restart half: load both files
//!   back (each validated against the machine fingerprint, stale state
//!   warn-and-discarded), absorb the telemetry into the router's registry
//!   and the plans into its cache, so the very first tick of a new
//!   process already knows yesterday's hot shapes;
//! * [`PretuneDaemon::spawn`] runs the tick loop on a background thread
//!   at a fixed interval, stoppable via the returned handle — the
//!   "background" in background pretuner.
//!
//! The `serving` bench binary drives this loop against a synthetic
//! shifting-traffic trace and proves the warm-cache claim with hit-rate
//! counters; `tests/serving_loop.rs` asserts it end-to-end, including
//! across a simulated restart.

use crate::router::Router;
use crate::telemetry::{TelemetryError, TelemetryRegistry};
use sme_gemm::AnyGemmConfig;
use sme_runtime::fault::{self, FaultKind};
use sme_runtime::{FingerprintCheck, PlanStore, PlanStoreError, SnapshotSource, TunerOptions};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration of the background pretuner.
#[derive(Debug, Clone)]
pub struct PretuneDaemonConfig {
    /// How many of the decayed-hottest shapes each tick considers.
    pub top_n: usize,
    /// Tuner effort per un-tuned shape.
    pub tuner: TunerOptions,
    /// Where the telemetry snapshot is persisted (and restored from).
    pub telemetry_path: PathBuf,
    /// Where the plan store is persisted (and restored from).
    pub store_path: PathBuf,
}

impl PretuneDaemonConfig {
    /// A daemon persisting into `dir/telemetry.json` and `dir/plans.json`,
    /// tuning the top 8 shapes per tick at quick tuner effort.
    pub fn in_dir(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        PretuneDaemonConfig {
            top_n: 8,
            tuner: TunerOptions::quick(),
            telemetry_path: dir.join("telemetry.json"),
            store_path: dir.join("plans.json"),
        }
    }
}

/// Errors from a daemon tick or restore.
#[derive(Debug)]
pub enum DaemonError {
    /// Persisting or restoring the telemetry snapshot failed.
    Telemetry(TelemetryError),
    /// Persisting or restoring the plan store failed.
    Store(PlanStoreError),
    /// Tuning a hot shape failed (the shape's configuration is invalid).
    Tune(sme_gemm::GemmError),
    /// A deterministically injected tick failure (chaos testing — see
    /// [`sme_runtime::FaultPlan`]).
    Fault(String),
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonError::Telemetry(e) => write!(f, "pretune daemon telemetry error: {e}"),
            DaemonError::Store(e) => write!(f, "pretune daemon plan store error: {e}"),
            DaemonError::Tune(e) => write!(f, "pretune daemon tuning error: {e}"),
            DaemonError::Fault(site) => write!(f, "injected daemon fault at {site}"),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<TelemetryError> for DaemonError {
    fn from(e: TelemetryError) -> Self {
        DaemonError::Telemetry(e)
    }
}

impl From<PlanStoreError> for DaemonError {
    fn from(e: PlanStoreError) -> Self {
        DaemonError::Store(e)
    }
}

impl From<sme_gemm::GemmError> for DaemonError {
    fn from(e: sme_gemm::GemmError) -> Self {
        DaemonError::Tune(e)
    }
}

/// What one daemon tick did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickReport {
    /// Monotonic tick counter (1 for the daemon's first tick). A stuck
    /// pretuner is visible as a counter that stops advancing.
    pub tick: u64,
    /// Wall-clock duration of the tick (tuning + warming + persisting). A
    /// slow pretuner is visible as a duration approaching the tick
    /// interval.
    pub duration: Duration,
    /// The decayed-hottest shapes this tick considered (hottest first).
    pub hot: Vec<AnyGemmConfig>,
    /// Shapes tuned this tick (they had no installed winner yet).
    pub tuned: Vec<AnyGemmConfig>,
    /// Hot shapes that already had a tuned winner installed.
    pub already_tuned: usize,
    /// Hot shapes whose winning kernel this tick compiled into the cache
    /// (the rest were already resident).
    pub warmed: usize,
    /// `true` once both the telemetry snapshot and the plan store have
    /// been written to their configured paths.
    pub persisted: bool,
}

/// What a restore recovered from disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreReport {
    /// Distinct shapes recovered into the telemetry registry (0 when the
    /// snapshot was missing or stale).
    pub telemetry_shapes: usize,
    /// Fingerprint verdict of the telemetry snapshot, if one existed.
    pub telemetry_check: Option<FingerprintCheck>,
    /// Which on-disk generation the telemetry snapshot was served from
    /// (`Backup` = the primary was corrupt and `<path>.bak` recovered it;
    /// `None` = the file did not exist, a fresh start).
    pub telemetry_source: Option<SnapshotSource>,
    /// Tuned winners recovered into the plan store (0 when the store file
    /// was missing or stale).
    pub plans: usize,
    /// Fingerprint verdict of the plan store, if one existed.
    pub plan_check: Option<FingerprintCheck>,
    /// Which on-disk generation the plan store was served from.
    pub plan_source: Option<SnapshotSource>,
}

/// How [`DaemonHandle::stop`] ended: the supervision loop's exit status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopOutcome {
    /// The loop exited cleanly within the timeout.
    Stopped,
    /// The loop thread did not exit within the timeout; the stop flag
    /// stays set and the thread is detached (it exits after its in-flight
    /// tick and sleep slice).
    TimedOut,
    /// The loop thread itself died mid-flight (a panic that escaped the
    /// per-tick isolation) — the payload's detail, for the postmortem.
    Died(String),
}

/// How long [`DaemonHandle::stop`] waits for the in-flight tick before
/// detaching the loop thread.
pub const STOP_TIMEOUT: Duration = Duration::from_secs(10);

/// Handle to a running background pretuner (see [`PretuneDaemon::spawn`]).
/// Dropping the handle without calling [`DaemonHandle::stop`] detaches the
/// loop (it keeps the router alive through its `Arc`).
#[derive(Debug)]
pub struct DaemonHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    last_report: Arc<Mutex<Option<TickReport>>>,
    last_error: Arc<Mutex<Option<String>>>,
    consecutive_failures: Arc<AtomicU64>,
}

impl DaemonHandle {
    /// Signal the loop to stop and wait up to [`STOP_TIMEOUT`] for the
    /// in-flight tick to finish. A loop thread that died mid-flight is
    /// surfaced as [`StopOutcome::Died`] instead of being silently
    /// swallowed; one that will not exit in time is detached
    /// ([`StopOutcome::TimedOut`]), never blocked on forever.
    pub fn stop(self) -> StopOutcome {
        self.stop_within(STOP_TIMEOUT)
    }

    /// [`DaemonHandle::stop`] with an explicit join timeout.
    pub fn stop_within(mut self, timeout: Duration) -> StopOutcome {
        self.stop.store(true, Ordering::Relaxed);
        let Some(thread) = self.thread.take() else {
            return StopOutcome::Stopped;
        };
        let deadline = Instant::now() + timeout;
        while !thread.is_finished() {
            if Instant::now() >= deadline {
                return StopOutcome::TimedOut;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        match thread.join() {
            Ok(()) => StopOutcome::Stopped,
            Err(payload) => StopOutcome::Died(panic_detail(payload.as_ref())),
        }
    }

    /// The most recent successful tick's report, if any tick has completed
    /// yet. Operators watch `tick` (stopped advancing = stuck loop) and
    /// `duration` (approaching the interval = slow loop).
    pub fn last_report(&self) -> Option<TickReport> {
        sme_runtime::poison::lock(&self.last_report, "daemon tick report").clone()
    }

    /// The most recent failed tick's error, if any tick has failed yet.
    /// Stays readable after a later success (operators see *what* last
    /// went wrong); pair with
    /// [`consecutive_failures`](DaemonHandle::consecutive_failures) to see
    /// whether the loop is currently healthy.
    pub fn last_error(&self) -> Option<String> {
        sme_runtime::poison::lock(&self.last_error, "daemon tick error").clone()
    }

    /// How many ticks in a row have failed (0 = the last tick succeeded).
    /// The loop's retry backoff grows with this count.
    pub fn consecutive_failures(&self) -> u64 {
        self.consecutive_failures.load(Ordering::Relaxed)
    }
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

/// The background pretuner (see the module docs).
#[derive(Debug, Clone)]
pub struct PretuneDaemon {
    config: PretuneDaemonConfig,
    /// Monotonic tick counter, shared across clones of this daemon (the
    /// spawn loop clones the daemon into its thread).
    ticks: Arc<AtomicU64>,
}

impl PretuneDaemon {
    /// A daemon with the given configuration.
    pub fn new(config: PretuneDaemonConfig) -> Self {
        PretuneDaemon {
            config,
            ticks: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &PretuneDaemonConfig {
        &self.config
    }

    /// Restore persisted state into `router`: the telemetry snapshot into
    /// its registry and the plan store into its cache, each validated
    /// against the router's machine fingerprint (stale files warn and are
    /// discarded, exactly like `PlanStore::load_checked`). Missing files
    /// are a fresh start, not an error — the daemon is restartable from
    /// nothing.
    ///
    /// Each file loads through the full degradation ladder
    /// ([`PlanStore::load_recovered`] /
    /// [`TelemetryRegistry::load_recovered`]): a corrupt primary
    /// generation recovers from its `.bak` previous generation, and only
    /// when both generations are bad does the restore fall back to empty
    /// state — so restore itself never fails, and the report says which
    /// generation served. The `Result` is kept for API stability.
    pub fn restore(&self, router: &Router) -> Result<RestoreReport, DaemonError> {
        let mut report = RestoreReport {
            telemetry_shapes: 0,
            telemetry_check: None,
            telemetry_source: None,
            plans: 0,
            plan_check: None,
            plan_source: None,
        };
        if self.config.telemetry_path.exists() {
            let recovered =
                TelemetryRegistry::load_recovered(&self.config.telemetry_path, router.machine());
            report.telemetry_shapes = recovered.registry.len();
            report.telemetry_check = Some(recovered.check);
            report.telemetry_source = Some(recovered.source);
            router.telemetry().restore_from(recovered.registry);
        }
        if self.config.store_path.exists() {
            let recovered = PlanStore::load_recovered(&self.config.store_path, router.machine());
            report.plans = recovered.store.len();
            report.plan_check = Some(recovered.check);
            report.plan_source = Some(recovered.source);
            router.cache().replace_store(recovered.store);
        }
        Ok(report)
    }

    /// One pretune pass over the decayed-hottest shapes: tune what has no
    /// winner, compile every hot winner into the cache, persist the
    /// telemetry snapshot and the plan store.
    pub fn tick(&self, router: &Router) -> Result<TickReport, DaemonError> {
        if fault::fire(FaultKind::DaemonTick, "daemon.tick") {
            return Err(DaemonError::Fault("daemon.tick".to_string()));
        }
        let tick_started = Instant::now();
        let tick = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        // The tick's root span: every kernel warmed into the cache below
        // records its compile as a child, so a Perfetto load shows what a
        // tick actually paid for.
        let root = router.obs().map(|hub| (hub.clone(), hub.trace.root_ctx()));
        let hot: Vec<AnyGemmConfig> = router
            .top_shapes(self.config.top_n)
            .into_iter()
            .map(|stats| stats.config)
            .collect();

        let mut tuned = Vec::new();
        let mut already_tuned = 0;
        let mut warmed = 0;
        for config in &hot {
            if router.cache().lookup_tuned_any(config).is_some() {
                already_tuned += 1;
            } else {
                router.tune_any(config, &self.config.tuner)?;
                tuned.push(*config);
            }
            // Compile the winning kernel into the cache so the next
            // dispatch's fetch is a hit. `install_tuned_any` invalidates
            // same-key kernels, so this always compiles the *tuned*
            // variant.
            let backend = router.cache().preferred_backend_any(config);
            let parent = root.as_ref().map(|(_, root)| *root);
            let (_, cache_hit) = router
                .cache()
                .fetch_any_traced(config, backend, parent)
                .map_err(DaemonError::Tune)?;
            if !cache_hit {
                warmed += 1;
            }
            // Placement-aware dispatch also costs the Neon alternative of
            // every SME group; warm that kernel too so a post-restart
            // dispatch compiles nothing at all. Shapes Neon cannot serve
            // just skip this.
            if backend == sme_gemm::Backend::Sme {
                if let Ok((_, hit)) =
                    router
                        .cache()
                        .fetch_any_traced(config, sme_gemm::Backend::Neon, parent)
                {
                    if !hit {
                        warmed += 1;
                    }
                }
            }
        }

        router.telemetry().save(&self.config.telemetry_path)?;
        router
            .cache()
            .export_store()
            .save(&self.config.store_path)?;
        let report = TickReport {
            tick,
            duration: tick_started.elapsed(),
            hot,
            tuned,
            already_tuned,
            warmed,
            persisted: true,
        };
        if let Some((hub, root)) = &root {
            use serde::json::Value;
            hub.metrics.counter("sme_pretune_ticks_total").inc();
            hub.metrics
                .histogram("sme_pretune_tick_seconds")
                .record(report.duration.as_secs_f64());
            hub.metrics
                .gauge("sme_pretune_last_tick")
                .set(report.tick as f64);
            hub.trace.record_ctx(
                "daemon.tick",
                "daemon",
                tick_started,
                *root,
                vec![
                    ("tick".to_string(), Value::Number(report.tick as f64)),
                    ("hot".to_string(), Value::Number(report.hot.len() as f64)),
                    (
                        "tuned".to_string(),
                        Value::Number(report.tuned.len() as f64),
                    ),
                    ("warmed".to_string(), Value::Number(report.warmed as f64)),
                ],
            );
        }
        Ok(report)
    }

    /// Run [`PretuneDaemon::tick`] every `interval` on a background thread
    /// until the returned handle is stopped — *supervised*: each tick runs
    /// under `catch_unwind`, so neither an error nor a panic kills the
    /// pretuner. Failures are recorded on the handle
    /// ([`DaemonHandle::last_error`] /
    /// [`DaemonHandle::consecutive_failures`]) and retried under capped
    /// exponential backoff (`interval × 2^failures`, at most
    /// `interval × 32`), so a persistently broken disk does not turn the
    /// loop into a busy error spray while a transient failure recovers on
    /// the next beat.
    pub fn spawn(self, router: Arc<Router>, interval: Duration) -> DaemonHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let last_report: Arc<Mutex<Option<TickReport>>> = Arc::new(Mutex::new(None));
        let last_report_slot = last_report.clone();
        let last_error: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        let last_error_slot = last_error.clone();
        let consecutive_failures = Arc::new(AtomicU64::new(0));
        let failure_count = consecutive_failures.clone();
        let thread = std::thread::spawn(move || {
            // Name the lane in the trace export: Perfetto shows
            // "pretune-daemon", not an opaque thread id.
            sme_obs::set_thread_name("pretune-daemon");
            while !stop_flag.load(Ordering::Relaxed) {
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.tick(&router)));
                let failed = match outcome {
                    Ok(Ok(report)) => {
                        *sme_runtime::poison::lock(&last_report_slot, "daemon tick report") =
                            Some(report);
                        failure_count.store(0, Ordering::Relaxed);
                        None
                    }
                    Ok(Err(e)) => Some(e.to_string()),
                    Err(payload) => {
                        Some(format!("tick panicked: {}", panic_detail(payload.as_ref())))
                    }
                };
                let failures = match failed {
                    None => 0,
                    Some(detail) => {
                        let failures = failure_count.fetch_add(1, Ordering::Relaxed) + 1;
                        eprintln!(
                            "warning: pretune daemon tick failed \
                             ({failures} consecutive): {detail}"
                        );
                        if let Some(hub) = router.obs() {
                            hub.metrics.counter("sme_daemon_tick_failures_total").inc();
                        }
                        *sme_runtime::poison::lock(&last_error_slot, "daemon tick error") =
                            Some(detail);
                        failures
                    }
                };
                // Capped exponential backoff after failures; the regular
                // beat otherwise. Sleep in short slices so stop() returns
                // promptly.
                let multiplier = 1u32 << failures.min(5) as u32;
                let mut remaining = interval.saturating_mul(multiplier);
                while !stop_flag.load(Ordering::Relaxed) && remaining > Duration::ZERO {
                    let slice = remaining.min(Duration::from_millis(20));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
            }
        });
        DaemonHandle {
            stop,
            thread: Some(thread),
            last_report,
            last_error,
            consecutive_failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sme_gemm::{Backend, GemmConfig};
    use sme_runtime::GemmRequest;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sme_router_daemon_{tag}"));
        let _ = std::fs::create_dir_all(&dir);
        dir
    }

    #[test]
    fn tick_tunes_warms_and_persists() {
        let dir = temp_dir("tick");
        let daemon = PretuneDaemon::new(PretuneDaemonConfig {
            top_n: 2,
            ..PretuneDaemonConfig::in_dir(&dir)
        });
        let router = Router::new(32);
        let hot = GemmConfig::abt(48, 48, 16);
        let cold = GemmConfig::abt(16, 4, 4);
        let requests: Vec<GemmRequest> = (0..4)
            .map(|i| GemmRequest::fp32(if i == 0 { cold } else { hot }, i as u64))
            .collect();
        router.dispatch(&requests).unwrap();

        let report = daemon.tick(&router).unwrap();
        assert_eq!(report.hot.len(), 2);
        assert_eq!(report.hot[0], hot.into(), "cycles-ranked top shape");
        assert_eq!(report.tuned.len(), 2, "both shapes were untuned");
        assert_eq!(report.already_tuned, 0);
        assert!(report.persisted);
        assert_eq!(report.tick, 1, "monotonic counter starts at 1");
        assert!(report.duration > Duration::ZERO);
        assert!(daemon.config().telemetry_path.exists());
        assert!(daemon.config().store_path.exists());

        // A second tick finds everything tuned and the cache warm.
        let second = daemon.tick(&router).unwrap();
        assert!(second.tuned.is_empty());
        assert_eq!(second.already_tuned, 2);
        assert_eq!(second.warmed, 0, "winners already resident");
        assert_eq!(second.tick, 2, "counter advances per tick");

        // The warmed cache serves the hot shape without compiling.
        let misses_before = router.cache().stats().misses;
        let report = router.dispatch(&[GemmRequest::fp32(hot, 99)]).unwrap();
        assert!(report.batch.per_config[0].cache_hit);
        assert_eq!(router.cache().stats().misses, misses_before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_recovers_yesterdays_state() {
        let dir = temp_dir("restore");
        let daemon = PretuneDaemon::new(PretuneDaemonConfig {
            top_n: 1,
            ..PretuneDaemonConfig::in_dir(&dir)
        });
        let hot = GemmConfig::abt(48, 48, 16);

        // "Yesterday": traffic, one tick, process exits.
        {
            let router = Router::new(32);
            let requests: Vec<GemmRequest> =
                (0..3).map(|i| GemmRequest::fp32(hot, i as u64)).collect();
            router.dispatch(&requests).unwrap();
            daemon.tick(&router).unwrap();
        }

        // "Today": a fresh process restores and already knows the shape.
        let router = Router::new(32);
        let report = daemon.restore(&router).unwrap();
        assert_eq!(report.telemetry_shapes, 1);
        assert_eq!(report.telemetry_check, Some(FingerprintCheck::Match));
        assert_eq!(report.plans, 1);
        assert_eq!(report.plan_check, Some(FingerprintCheck::Match));
        assert_eq!(router.telemetry().total_requests(), 3);
        assert_eq!(router.top_shapes(1)[0].config, hot.into());
        assert!(router.cache().lookup_tuned(&hot).is_some());

        // The first tick of the new process warms the cache from the
        // restored ranking without re-tuning…
        let tick = daemon.tick(&router).unwrap();
        assert!(tick.tuned.is_empty());
        assert_eq!(tick.already_tuned, 1);
        assert!(tick.warmed >= 1, "fresh cache, kernels compiled");
        // …so yesterday's hot shape dispatches as a pure cache hit.
        let report = router.dispatch(&[GemmRequest::fp32(hot, 7)]).unwrap();
        assert!(report.batch.per_config[0].cache_hit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_from_nothing_is_a_fresh_start() {
        let dir = temp_dir("fresh");
        let _ = std::fs::remove_dir_all(&dir);
        let daemon = PretuneDaemon::new(PretuneDaemonConfig::in_dir(&dir));
        let router = Router::new(8);
        let report = daemon.restore(&router).unwrap();
        assert_eq!(report.telemetry_shapes, 0);
        assert_eq!(report.telemetry_check, None);
        assert_eq!(report.plans, 0);
        assert_eq!(report.plan_check, None);
        // An empty tick persists empty state without erroring — the files'
        // directory may not exist yet, so create it like an operator would.
        let _ = std::fs::create_dir_all(&dir);
        let tick = daemon.tick(&router).unwrap();
        assert!(tick.hot.is_empty() && tick.persisted);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spawned_daemon_ticks_in_the_background() {
        let dir = temp_dir("spawn");
        let daemon = PretuneDaemon::new(PretuneDaemonConfig {
            top_n: 1,
            ..PretuneDaemonConfig::in_dir(&dir)
        });
        let router = Arc::new(Router::new(16));
        let cfg = GemmConfig::abt(32, 32, 8);
        router
            .dispatch(&[GemmRequest::fp32(cfg, 1), GemmRequest::fp32(cfg, 2)])
            .unwrap();

        let handle = daemon
            .clone()
            .spawn(router.clone(), Duration::from_millis(5));
        // Wait for at least one tick to land on disk.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !daemon.config().telemetry_path.exists() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // The handle exposes the last tick report while the loop runs.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while handle.last_report().is_none() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let last = handle.last_report().expect("a tick completed");
        assert!(last.tick >= 1);
        assert!(last.persisted);
        handle.stop();
        assert!(daemon.config().telemetry_path.exists(), "daemon persisted");
        assert!(
            router.cache().lookup_tuned(&cfg).is_some(),
            "daemon tuned the hot shape in the background"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_state_is_discarded_on_restore() {
        let dir = temp_dir("stale");
        let daemon = PretuneDaemon::new(PretuneDaemonConfig {
            top_n: 1,
            ..PretuneDaemonConfig::in_dir(&dir)
        });
        let hot = GemmConfig::abt(32, 32, 8);
        {
            let router = Router::new(16);
            router.dispatch(&[GemmRequest::fp32(hot, 1)]).unwrap();
            daemon.tick(&router).unwrap();
        }
        // A recalibrated machine must not trust yesterday's cycles/plans.
        let mut machine = sme_machine::MachineConfig::apple_m4();
        machine.p_core.clock_ghz = 4.0;
        let service = sme_runtime::GemmService::new(16);
        let router = Router::with_service(service, crate::policy::RoutingPolicy::Measured, machine);
        let report = daemon.restore(&router).unwrap();
        assert!(matches!(
            report.telemetry_check,
            Some(FingerprintCheck::Mismatch { .. })
        ));
        assert_eq!(report.telemetry_shapes, 0, "stale shapes were discarded");
        assert!(router.telemetry().is_empty());
        assert!(matches!(
            report.plan_check,
            Some(FingerprintCheck::Mismatch { .. })
        ));
        assert!(router.cache().lookup_tuned(&hot).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_ticks_are_supervised_not_fatal() {
        // Point the persistence paths into a directory that does not
        // exist: every tick fails at the save step. The supervised loop
        // must keep running, surface the error on the handle, and count
        // the consecutive failures (driving its backoff) — then stop
        // cleanly.
        let dir = std::env::temp_dir().join("sme_router_daemon_missing_dir/nested");
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
        let daemon = PretuneDaemon::new(PretuneDaemonConfig {
            top_n: 1,
            ..PretuneDaemonConfig::in_dir(&dir)
        });
        let router = Arc::new(Router::new(16));
        router
            .dispatch(&[GemmRequest::fp32(GemmConfig::abt(32, 32, 8), 1)])
            .unwrap();

        let handle = daemon.spawn(router.clone(), Duration::from_millis(1));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while handle.last_error().is_none() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let error = handle.last_error().expect("a failing tick was recorded");
        assert!(
            error.contains("telemetry"),
            "the telemetry save fails first: {error}"
        );
        assert!(handle.consecutive_failures() >= 1);
        assert_eq!(handle.last_report(), None, "no tick ever succeeded");
        assert_eq!(handle.stop(), StopOutcome::Stopped);
    }

    #[test]
    fn stopping_an_idle_daemon_is_prompt_and_clean() {
        let dir = temp_dir("stop");
        let daemon = PretuneDaemon::new(PretuneDaemonConfig::in_dir(&dir));
        let router = Arc::new(Router::new(8));
        let handle = daemon.spawn(router, Duration::from_secs(3600));
        // The loop is asleep in its first interval; stop must not wait the
        // hour out.
        let started = std::time::Instant::now();
        assert_eq!(handle.stop(), StopOutcome::Stopped);
        assert!(started.elapsed() < Duration::from_secs(5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn daemon_prefers_recent_traffic() {
        // Shifting traffic: the daemon's top-1 follows the decayed
        // ranking, so "tomorrow's" shape takes the tuning slot even though
        // yesterday's has more all-time cycles.
        let dir = temp_dir("shift");
        let daemon = PretuneDaemon::new(PretuneDaemonConfig {
            top_n: 1,
            ..PretuneDaemonConfig::in_dir(&dir)
        });
        let router = Router::new(32);
        let yesterday = GemmConfig::abt(64, 64, 64);
        let today = GemmConfig::abt(48, 48, 16);
        for i in 0..30 {
            router.dispatch(&[GemmRequest::fp32(yesterday, i)]).unwrap();
        }
        for i in 0..60 {
            router.dispatch(&[GemmRequest::fp32(today, i)]).unwrap();
        }
        let y = router.telemetry().shape(&yesterday.into()).unwrap();
        let t = router.telemetry().shape(&today.into()).unwrap();
        assert!(y.cycles > t.cycles, "all-time cycles favour yesterday");
        let tick = daemon.tick(&router).unwrap();
        assert_eq!(tick.hot, vec![today.into()], "decay follows the shift");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restored_registry_keeps_recording() {
        // After restore_from, the absorbed registry keeps accumulating —
        // the restore is in-place, not a new object.
        let router = Router::new(8);
        let loaded = TelemetryRegistry::for_machine(router.machine());
        loaded.record_group(
            &GemmConfig::abt(32, 32, 8).into(),
            Backend::Sme,
            5,
            500.0,
            true,
        );
        router.telemetry().restore_from(loaded);
        assert_eq!(router.telemetry().total_requests(), 5);
        router
            .dispatch(&[GemmRequest::fp32(GemmConfig::abt(32, 32, 8), 1)])
            .unwrap();
        assert_eq!(router.telemetry().total_requests(), 6);
    }
}
