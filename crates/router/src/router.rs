//! The router: policy + telemetry + placement wrapped around a
//! [`GemmService`].

use crate::planner::{plan_batch_placed, GroupCost, PlacementPlan};
use crate::policy::{heuristic_backend_any, RoutingPolicy};
use crate::telemetry::{ShapeStats, TelemetryRegistry};
use sme_gemm::{
    default_any_candidate, neon_supports, AnyGemmConfig, Backend, GemmConfig, GemmError,
};
use sme_machine::multicore::MulticoreModel;
use sme_machine::MachineConfig;
use sme_obs::{ObsHub, TraceCtx};
use sme_runtime::{GemmRequest, GemmService, KernelCache, PlanStore, TuneOutcome, TunerOptions};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The result of dispatching one batch through the router: the runtime's
/// execution report plus the placement-aware routing projection.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedBatchReport {
    /// The runtime's batch report (outputs in request order, per-config
    /// aggregates tagged with the serving backend — the **final**, possibly
    /// rerouted backend).
    pub batch: sme_runtime::BatchReport,
    /// The executed placement of the batch on the two shared SME units and
    /// the ten private cores, after saturation-aware rerouting. Host-side
    /// group execution follows this plan's schedule (longest SME group
    /// first).
    pub placement: PlacementPlan,
    /// What the placement would have been with every group on its
    /// in-isolation route — the baseline the reroutes improved on.
    /// `placement.makespan_cycles() <= isolated.makespan_cycles()` always.
    pub isolated: PlacementPlan,
    /// Configurations spilled from the saturated SME units to idle private
    /// cores, in spill order (smallest SME-vs-Neon margin first); empty
    /// when the SME class was not the bottleneck.
    pub rerouted: Vec<AnyGemmConfig>,
}

impl RoutedBatchReport {
    /// Projected makespan saved by placement-aware routing over
    /// route-in-isolation, in performance-core cycles (≥ 0).
    pub fn makespan_improvement_cycles(&self) -> f64 {
        self.isolated.makespan_cycles() - self.placement.makespan_cycles()
    }
}

/// Traffic-aware multi-backend dispatch front end.
///
/// Sits between callers and the [`GemmService`]: every batch is routed
/// per-configuration (see [`RoutingPolicy`]), checked against the
/// machine's engine-class capacity (marginal SME groups spill to idle
/// private cores when the two shared units saturate — see
/// [`Router::dispatch`]), executed through the backend-tagged kernel
/// cache in the placement plan's order, and folded into the per-shape
/// [`TelemetryRegistry`]. The telemetry closes the loop:
/// [`Router::pretune_hot`] autotunes exactly the shapes that dominate
/// recent traffic, after which routing follows the tuned cross-backend
/// winners — and the `PretuneDaemon` keeps that loop warm across
/// restarts.
#[derive(Debug)]
pub struct Router {
    service: GemmService,
    policy: RoutingPolicy,
    telemetry: TelemetryRegistry,
    machine: MachineConfig,
    model: MulticoreModel,
    /// Memoized verdicts of the `Measured` policy's one-off probes.
    probe_memo: Mutex<HashMap<AnyGemmConfig, Backend>>,
}

impl Router {
    /// A router over a fresh cache bounded to `cache_capacity` kernels,
    /// with the default [`RoutingPolicy::Measured`] policy on the
    /// calibrated M4 machine model.
    pub fn new(cache_capacity: usize) -> Self {
        Router::with_policy(cache_capacity, RoutingPolicy::default())
    }

    /// A router with an explicit policy.
    pub fn with_policy(cache_capacity: usize, policy: RoutingPolicy) -> Self {
        let machine = MachineConfig::apple_m4();
        // Stamp the store so persisted winners carry the machine
        // fingerprint from the start.
        let cache = Arc::new(KernelCache::with_store(
            cache_capacity,
            PlanStore::for_machine(&machine),
        ));
        Router::with_service(GemmService::with_cache(cache), policy, machine)
    }

    /// A router around an existing service (sharing its cache and plan
    /// store) and an explicit machine model.
    pub fn with_service(
        service: GemmService,
        policy: RoutingPolicy,
        machine: MachineConfig,
    ) -> Self {
        let model = MulticoreModel::new(machine.clone());
        Router {
            service,
            policy,
            telemetry: TelemetryRegistry::for_machine(&machine),
            machine,
            model,
            probe_memo: Mutex::new(HashMap::new()),
        }
    }

    /// The wrapped service.
    pub fn service(&self) -> &GemmService {
        &self.service
    }

    /// The kernel cache (counters, plan-store access).
    pub fn cache(&self) -> &KernelCache {
        self.service.cache()
    }

    /// The per-shape traffic telemetry (decayed counters, snapshot
    /// persistence).
    pub fn telemetry(&self) -> &TelemetryRegistry {
        &self.telemetry
    }

    /// The active routing policy.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// The machine model routing decisions and placements are made on.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Attach an observability hub to the whole serving stack below this
    /// router: dispatch spans and batch/placement metrics from the router,
    /// group-execution spans from the service, hit/miss/compile
    /// instrumentation from the kernel cache, and tick telemetry from a
    /// `PretuneDaemon` driving this router. Only the first attach wins.
    pub fn attach_obs(&self, hub: Arc<ObsHub>) {
        self.cache().attach_obs(hub);
    }

    /// The attached observability hub, if any.
    pub fn obs(&self) -> Option<&Arc<ObsHub>> {
        self.cache().obs()
    }

    /// Decide which backend serves an FP32 `cfg` under the active policy
    /// (see [`Router::route_any`]).
    pub fn route(&self, cfg: &GemmConfig) -> Backend {
        self.route_any(&AnyGemmConfig::Fp32(*cfg))
    }

    /// Decide which backend serves a configuration of either datatype under
    /// the active policy, **in isolation** — with no batch context.
    /// [`Router::dispatch`] starts from this answer and then revisits
    /// marginal SME picks under engine-class saturation.
    ///
    /// The traffic-adaptive policies ([`RoutingPolicy::Heuristic`] and
    /// [`RoutingPolicy::Measured`]) defer to an installed tuned winner
    /// first — pre-tuning a shape pins its route to the simulated argmin
    /// across both engines. The SME generators are total over their
    /// datatypes' envelopes (widening edge tiles are predicated), so
    /// `SmeOnly` never needs a fallback; `NeonOnly` falls back to SME for
    /// FP32 shapes off the Neon generator's envelope (column-major B —
    /// odd extents compile via single-lane tails), so
    /// pinning never makes a valid configuration undispatchable.
    pub fn route_any(&self, cfg: &AnyGemmConfig) -> Backend {
        self.route_any_traced(cfg, None)
    }

    /// [`Router::route_any`] with a causal parent for any probe compiles
    /// the decision triggers (the `Measured` policy compiles both engines'
    /// kernels through the cache on first sight of a shape).
    fn route_any_traced(&self, cfg: &AnyGemmConfig, parent: Option<TraceCtx>) -> Backend {
        match self.policy {
            RoutingPolicy::SmeOnly => Backend::Sme,
            RoutingPolicy::NeonOnly => match cfg {
                AnyGemmConfig::Fp32(c) if neon_supports(c).is_err() => Backend::Sme,
                _ => Backend::Neon,
            },
            RoutingPolicy::Heuristic => match self.cache().lookup_tuned_any(cfg) {
                Some(record) => record.candidate.backend,
                None => heuristic_backend_any(cfg, &self.machine),
            },
            RoutingPolicy::Measured => match self.cache().lookup_tuned_any(cfg) {
                Some(record) => record.candidate.backend,
                None => self.measure(cfg, parent),
            },
        }
    }

    /// One-off model probe for the `Measured` policy: compile both
    /// backends' default kernels **through the cache** (so the subsequent
    /// dispatch fetch of the winner is a hit, not a recompile), simulate
    /// each once, memoize and return the faster engine.
    fn measure(&self, cfg: &AnyGemmConfig, parent: Option<TraceCtx>) -> Backend {
        if let Some(&backend) = sme_runtime::poison::lock(&self.probe_memo, "probe memo").get(cfg) {
            return backend;
        }
        let fetch = |backend| {
            self.cache()
                .fetch_any_traced(cfg, backend, parent)
                .map(|(kernel, _)| kernel)
        };
        let backend = match (fetch(Backend::Sme), fetch(Backend::Neon)) {
            (Ok(sme), Ok(neon)) => {
                if neon.model_stats().cycles < sme.model_stats().cycles {
                    Backend::Neon
                } else {
                    Backend::Sme
                }
            }
            // Shapes only one engine can compile route there; invalid
            // configurations fall through to the datatype's default
            // engine, whose generator reports the error at dispatch time.
            (Ok(_), Err(_)) => Backend::Sme,
            (Err(_), Ok(_)) => Backend::Neon,
            (Err(_), Err(_)) => default_any_candidate(cfg).backend,
        };
        sme_runtime::poison::lock(&self.probe_memo, "probe memo").insert(*cfg, backend);
        backend
    }

    /// The group's total simulated cycles on `backend` (the serving
    /// kernel's modelled cycles × request count), `None` when the backend
    /// cannot compile the shape. Compiles through the cache, so the cost
    /// probe doubles as a cache warm-up for the dispatch that follows.
    fn simulated_group_cycles(
        &self,
        cfg: &AnyGemmConfig,
        backend: Backend,
        requests: u64,
        parent: Option<TraceCtx>,
    ) -> Option<f64> {
        self.cache()
            .fetch_any_traced(cfg, backend, parent)
            .ok()
            .map(|(kernel, _)| kernel.model_stats().cycles * requests as f64)
    }

    /// Dispatch a batch with placement-aware routing. Batches may mix FP32
    /// and BF16 widening requests freely.
    ///
    /// Routing happens in three steps:
    /// 1. every distinct configuration is routed **provisionally** by the
    ///    active policy ([`Router::route_any`]) and costed on its engine
    ///    (and, for adaptive policies, on the Neon alternative);
    /// 2. the batch is placed on the machine's engine classes; if the two
    ///    shared SME units saturate, marginal SME groups — smallest
    ///    simulated SME-vs-Neon margin first — spill to idle private cores
    ///    whenever that strictly lowers the projected makespan
    ///    (`plan_batch_placed`). Pinned policies (`SmeOnly`/`NeonOnly`)
    ///    never spill;
    /// 3. the batch executes on the final routes, with host-side group
    ///    execution ordered by the plan (longest SME group first), so the
    ///    simulated and host schedules agree.
    ///
    /// The executed plan's projected makespan is never worse than the
    /// route-in-isolation projection (see
    /// [`RoutedBatchReport::isolated`]). Telemetry records the final
    /// routes and the decay clock advances by one epoch per batch.
    ///
    /// # Errors
    /// Propagates the service's errors (first invalid configuration fails
    /// the batch); telemetry records only successfully dispatched batches.
    pub fn dispatch(&self, requests: &[GemmRequest]) -> Result<RoutedBatchReport, GemmError> {
        let dispatch_started = Instant::now();
        // The batch root: every child span of this dispatch — placement,
        // kernel compiles, group execution — shares its trace id.
        let root = self
            .cache()
            .obs()
            .map(|hub| (hub.clone(), hub.trace.root_ctx()));
        // Distinct configurations in first-appearance order with request
        // counts — mirrors the service's grouping exactly.
        let mut index_of: HashMap<AnyGemmConfig, usize> = HashMap::new();
        let mut counts: Vec<(AnyGemmConfig, u64)> = Vec::new();
        for request in requests {
            match index_of.get(&request.config) {
                Some(&i) => counts[i].1 += 1,
                None => {
                    index_of.insert(request.config, counts.len());
                    counts.push((request.config, 1));
                }
            }
        }

        // Provisional routes and engine costs. Groups the provisional
        // backend cannot compile cost zero here and surface their error
        // from the dispatch below, like they always did.
        let adaptive = matches!(
            self.policy,
            RoutingPolicy::Heuristic | RoutingPolicy::Measured
        );
        let place_started = Instant::now();
        let place_ctx = root.as_ref().map(|(hub, root)| hub.trace.child_ctx(*root));
        let costs: Vec<GroupCost> = counts
            .iter()
            .map(|&(config, n)| {
                let backend = self.route_any_traced(&config, place_ctx);
                let cycles = self
                    .simulated_group_cycles(&config, backend, n, place_ctx)
                    .unwrap_or(0.0);
                let alt_cycles = if adaptive && backend == Backend::Sme {
                    self.simulated_group_cycles(&config, Backend::Neon, n, place_ctx)
                } else {
                    None
                };
                GroupCost {
                    config,
                    backend,
                    cycles,
                    alt_cycles,
                }
            })
            .collect();

        let plan = plan_batch_placed(&costs, &self.model);
        if let (Some((hub, _)), Some(place_ctx)) = (&root, place_ctx) {
            use serde::json::Value;
            hub.trace.record_ctx(
                "router.place",
                "router",
                place_started,
                place_ctx,
                vec![
                    ("groups".to_string(), Value::Number(counts.len() as f64)),
                    (
                        "rerouted".to_string(),
                        Value::Number(plan.rerouted.len() as f64),
                    ),
                ],
            );
        }
        let final_backend: HashMap<AnyGemmConfig, Backend> = plan
            .placement
            .placements
            .iter()
            .map(|p| (p.config, p.backend))
            .collect();
        let priority: HashMap<AnyGemmConfig, f64> = plan
            .placement
            .placements
            .iter()
            .zip(plan.placement.execution_priority())
            .map(|(p, pr)| (p.config, pr))
            .collect();

        let batch = self.service.dispatch_planned_traced(
            requests,
            |cfg| {
                final_backend
                    .get(cfg)
                    .copied()
                    .unwrap_or_else(|| self.route_any(cfg))
            },
            |cfg| priority.get(cfg).copied().unwrap_or(0.0),
            root.as_ref().map(|(_, root)| *root),
        )?;
        self.telemetry.record_batch(&batch);
        self.telemetry.advance_epoch();
        let report = RoutedBatchReport {
            batch,
            placement: plan.placement,
            isolated: plan.isolated,
            rerouted: plan.rerouted,
        };
        if let Some((hub, root)) = &root {
            use serde::json::Value;
            hub.metrics.counter("sme_router_batches_total").inc();
            hub.metrics
                .counter("sme_router_requests_total")
                .add(requests.len() as u64);
            hub.metrics
                .counter("sme_router_reroutes_total")
                .add(report.rerouted.len() as u64);
            // The makespan exemplar points the tail bucket back at this
            // batch's root span.
            hub.metrics
                .histogram("sme_batch_makespan_cycles")
                .record_exemplar(
                    report.placement.makespan_cycles(),
                    root.trace_id,
                    root.span_id,
                );
            hub.metrics
                .histogram("sme_placement_improvement_cycles")
                .record(report.makespan_improvement_cycles());
            // Histograms clamp negatives to the zero bucket, so the
            // "improvement never negative" SLO watches this gauge.
            hub.metrics
                .gauge("sme_placement_improvement_last")
                .set(report.makespan_improvement_cycles());
            hub.trace.record_ctx(
                "router.dispatch",
                "router",
                dispatch_started,
                *root,
                vec![
                    (
                        "policy".to_string(),
                        Value::String(format!("{:?}", self.policy)),
                    ),
                    ("requests".to_string(), Value::Number(requests.len() as f64)),
                    ("groups".to_string(), Value::Number(counts.len() as f64)),
                    (
                        "rerouted".to_string(),
                        Value::Number(report.rerouted.len() as f64),
                    ),
                    (
                        "makespan_cycles".to_string(),
                        Value::Number(report.placement.makespan_cycles()),
                    ),
                    (
                        "improvement_cycles".to_string(),
                        Value::Number(report.makespan_improvement_cycles()),
                    ),
                ],
            );
        }
        Ok(report)
    }

    /// The `n` hottest shapes by **decayed cumulative cycles** — the cost
    /// each shape has imposed on the machine over the last few dozen
    /// batches, not all-time request counts (see
    /// [`TelemetryRegistry::top_shapes`]).
    pub fn top_shapes(&self, n: usize) -> Vec<ShapeStats> {
        self.telemetry.top_shapes(n)
    }

    /// Autotune an FP32 `cfg` across both backends and install the winner
    /// (see [`Router::tune_any`]).
    pub fn tune(&self, cfg: &GemmConfig, opts: &TunerOptions) -> Result<TuneOutcome, GemmError> {
        self.service.tune(cfg, opts)
    }

    /// Autotune a configuration of either datatype across both backends
    /// and install the winner, so subsequent routing and dispatch follow
    /// the simulated argmin.
    pub fn tune_any(
        &self,
        cfg: &AnyGemmConfig,
        opts: &TunerOptions,
    ) -> Result<TuneOutcome, GemmError> {
        self.service.tune_any(cfg, opts)
    }

    /// Autotune the `n` hottest shapes — the ROADMAP's "which shapes
    /// dominate traffic? pre-tune exactly those" loop. "Hot" is ranked by
    /// decayed cumulative cycles (the compute the shape has actually been
    /// costing lately), so a rarely-called but expensive shape gets tuned
    /// ahead of a chatty cheap one, and shapes whose traffic faded stop
    /// consuming tuning budget. Returns one outcome per tuned shape
    /// (hottest first). The `PretuneDaemon` runs this loop periodically
    /// and skips already-tuned shapes.
    pub fn pretune_hot(
        &self,
        n: usize,
        opts: &TunerOptions,
    ) -> Result<Vec<TuneOutcome>, GemmError> {
        self.top_shapes(n)
            .into_iter()
            .map(|stats| self.tune_any(&stats.config, opts))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_route_as_documented() {
        let tiny = GemmConfig::abt(16, 4, 4); // Neon territory
        let large = GemmConfig::abt(64, 64, 64); // SME territory
        let ragged = GemmConfig::abt(33, 47, 5); // odd extents: Neon-compilable
        let col_major = GemmConfig::ab(33, 47, 5); // Neon cannot compile

        let sme_only = Router::with_policy(8, RoutingPolicy::SmeOnly);
        assert_eq!(sme_only.route(&tiny), Backend::Sme);
        assert_eq!(sme_only.route(&large), Backend::Sme);

        let neon_only = Router::with_policy(8, RoutingPolicy::NeonOnly);
        assert_eq!(neon_only.route(&tiny), Backend::Neon);
        assert_eq!(neon_only.route(&large), Backend::Neon);
        assert_eq!(
            neon_only.route(&ragged),
            Backend::Neon,
            "odd shapes compile"
        );
        assert_eq!(neon_only.route(&col_major), Backend::Sme, "fallback");

        for policy in [RoutingPolicy::Heuristic, RoutingPolicy::Measured] {
            let router = Router::with_policy(8, policy);
            assert_eq!(router.route(&tiny), Backend::Neon, "{policy:?}");
            assert_eq!(router.route(&large), Backend::Sme, "{policy:?}");
            assert_eq!(router.route(&col_major), Backend::Sme, "{policy:?}");
        }
    }

    #[test]
    fn measured_probe_is_memoized_and_tuning_overrides_it() {
        let router = Router::new(8);
        let cfg = GemmConfig::abt(16, 4, 4);
        assert_eq!(router.route(&cfg), Backend::Neon);
        assert_eq!(
            router.probe_memo.lock().unwrap().get(&cfg.into()).copied(),
            Some(Backend::Neon),
            "probe verdict memoized"
        );
        // Tuning installs a winner, which takes precedence over the memo.
        let outcome = router.tune(&cfg, &TunerOptions::quick()).unwrap();
        assert_eq!(outcome.winner.backend, Backend::Neon);
        assert_eq!(router.route(&cfg), Backend::Neon);
        assert_eq!(
            router.cache().lookup_tuned(&cfg).unwrap().candidate.backend,
            Backend::Neon
        );
    }

    #[test]
    fn dispatch_feeds_the_obs_hub_and_reports_cycle_profiles() {
        let router = Router::new(16);
        let hub = ObsHub::shared(128);
        router.attach_obs(hub.clone());
        let cfg = GemmConfig::abt(32, 32, 8);
        let requests: Vec<GemmRequest> = (0..4).map(|i| GemmRequest::fp32(cfg, i as u64)).collect();
        let report = router.dispatch(&requests).unwrap();

        // Metrics: batch/request counters, makespan histogram, cache series.
        assert_eq!(hub.metrics.counter("sme_router_batches_total").get(), 1);
        assert_eq!(hub.metrics.counter("sme_router_requests_total").get(), 4);
        let makespan = hub
            .metrics
            .histogram("sme_batch_makespan_cycles")
            .snapshot();
        assert_eq!(makespan.count, 1);
        assert!(hub.metrics.counter("sme_cache_misses_total").get() >= 1);

        // Traces: a dispatch span plus per-group and per-compile spans.
        let names: Vec<String> = hub.trace.snapshot().into_iter().map(|s| s.name).collect();
        assert!(names.iter().any(|n| n == "router.dispatch"));
        assert!(names.iter().any(|n| n == "service.group"));
        assert!(names.iter().any(|n| n == "cache.compile"));

        // The cycle profile threads through the service report: per-class
        // cycles partition the group's total.
        let per = &report.batch.per_config[0];
        assert!(!per.stats.profile.is_empty());
        assert!(per.stats.profile.sums_to(per.stats.cycles));
        assert!(report
            .batch
            .total
            .profile
            .sums_to(report.batch.total.cycles));
    }

    #[test]
    fn dispatch_records_telemetry_and_places_the_batch() {
        let router = Router::new(16);
        let tiny = GemmConfig::abt(16, 4, 4);
        let large = GemmConfig::abt(48, 48, 32);
        let requests: Vec<GemmRequest> = (0..6)
            .map(|i| GemmRequest::fp32(if i % 3 == 0 { large } else { tiny }, i as u64))
            .collect();
        let report = router.dispatch(&requests).unwrap();
        assert_eq!(report.batch.outputs.len(), 6);

        // Telemetry matches dispatched traffic exactly, and the ranking is
        // by cycles: the two large requests dwarf the four tiny ones.
        assert_eq!(router.telemetry().total_requests(), 6);
        assert_eq!(router.telemetry().epoch(), 1, "one epoch per batch");
        let top = router.top_shapes(2);
        assert_eq!(top[0].config, large.into(), "cycles outrank counts");
        assert_eq!(top[0].requests, 2);
        assert_eq!(top[0].dominant_backend(), Backend::Sme);
        assert!(top[0].cycles > top[1].cycles);
        assert_eq!(top[1].requests, 4);
        assert_eq!(top[1].dominant_backend(), Backend::Neon);

        // The mixed batch lands on both engine classes and overlaps them.
        let (sme_load, neon_load) = report.placement.class_load_cycles();
        assert!(sme_load > 0.0 && neon_load > 0.0);
        assert!(report.placement.makespan_cycles() < sme_load + neon_load);
        // One SME group on an idle pair of units: nothing spills, so the
        // executed plan coincides with the in-isolation projection.
        assert!(report.rerouted.is_empty());
        assert_eq!(report.placement, report.isolated);
        assert_eq!(report.makespan_improvement_cycles(), 0.0);

        // pretune_hot tunes the hottest shapes and installs their winners.
        let outcomes = router.pretune_hot(2, &TunerOptions::quick()).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(router.cache().lookup_tuned(&tiny).is_some());
        assert!(router.cache().lookup_tuned(&large).is_some());
        // Routing now follows the tuned winners (hottest = large first).
        assert_eq!(router.route(&large), outcomes[0].winner.backend);
    }

    #[test]
    fn saturated_sme_batches_spill_and_beat_isolated_routing() {
        // Many distinct SME-preferring widening groups: with only two
        // shared SME units, the provisional routing saturates the SME
        // class while the ten private cores idle. Placement-aware dispatch
        // must spill the marginal groups and strictly beat the
        // route-in-isolation projection.
        let router = Router::new(64);
        let requests: Vec<GemmRequest> = (0..8)
            .map(|i| {
                GemmRequest::widening(
                    sme_gemm::WideningGemmConfig::new(32, 32, 8 * (i + 1)).unwrap(),
                    i as u64,
                )
            })
            .collect();
        // All these shapes prefer SME in isolation.
        for request in &requests {
            assert_eq!(router.route_any(&request.config), Backend::Sme);
        }
        let report = router.dispatch(&requests).unwrap();
        assert!(
            !report.rerouted.is_empty(),
            "a saturated SME class must spill marginal groups"
        );
        assert!(
            report.placement.makespan_cycles() < report.isolated.makespan_cycles(),
            "placed {} must beat isolated {}",
            report.placement.makespan_cycles(),
            report.isolated.makespan_cycles()
        );
        // The batch report executed the final routes: the rerouted shapes
        // really ran on Neon.
        for config in &report.rerouted {
            let group = report
                .batch
                .per_config
                .iter()
                .find(|g| g.config == *config)
                .expect("rerouted shape was dispatched");
            assert_eq!(group.backend, Backend::Neon);
        }
        // Placement cycles mirror the executed report exactly (the timing
        // model is data-independent), so the projection is honest.
        for (placement, group) in report
            .placement
            .placements
            .iter()
            .zip(&report.batch.per_config)
        {
            assert_eq!(placement.config, group.config);
            assert_eq!(placement.backend, group.backend);
            assert!(
                (placement.cycles - group.stats.cycles).abs() < 1e-6 * group.stats.cycles.max(1.0),
                "planned {} vs executed {}",
                placement.cycles,
                group.stats.cycles
            );
        }
    }

    #[test]
    fn pinned_policies_never_spill() {
        let router = Router::with_policy(64, RoutingPolicy::SmeOnly);
        let requests: Vec<GemmRequest> = (0..8)
            .map(|i| {
                GemmRequest::widening(
                    sme_gemm::WideningGemmConfig::new(32, 32, 8 * (i + 1)).unwrap(),
                    i as u64,
                )
            })
            .collect();
        let report = router.dispatch(&requests).unwrap();
        assert!(report.rerouted.is_empty());
        assert_eq!(report.placement, report.isolated);
        assert!(report
            .batch
            .per_config
            .iter()
            .all(|g| g.backend == Backend::Sme));
    }

    #[test]
    fn widening_shapes_route_across_both_engines() {
        use sme_gemm::WideningGemmConfig;
        let dense: AnyGemmConfig = WideningGemmConfig::new(32, 32, 16).unwrap().into();
        let edgy: AnyGemmConfig = WideningGemmConfig::new(48, 40, 64).unwrap().into();
        let thin: AnyGemmConfig = WideningGemmConfig::new(16, 4, 8).unwrap().into();

        // The SME widening path is total, so pinning SME needs no
        // fallback; both engines compile every envelope shape.
        let sme_only = Router::with_policy(8, RoutingPolicy::SmeOnly);
        assert_eq!(sme_only.route_any(&dense), Backend::Sme);
        assert_eq!(sme_only.route_any(&thin), Backend::Sme, "no fallback");
        let neon_only = Router::with_policy(8, RoutingPolicy::NeonOnly);
        assert_eq!(neon_only.route_any(&dense), Backend::Neon);
        assert_eq!(neon_only.route_any(&thin), Backend::Neon);

        // The adaptive policies land dense widening shapes — aligned or
        // not — on the SME units and thin shapes on the Neon BFMMLA
        // baseline: the split is a performance decision now.
        for policy in [RoutingPolicy::Heuristic, RoutingPolicy::Measured] {
            let router = Router::with_policy(8, policy);
            assert_eq!(router.route_any(&dense), Backend::Sme, "{policy:?}");
            assert_eq!(router.route_any(&edgy), Backend::Sme, "{policy:?}");
            assert_eq!(router.route_any(&thin), Backend::Neon, "{policy:?}");
        }

        // Tuning a widening shape installs a winner that routing follows.
        let router = Router::new(8);
        let outcome = router.tune_any(&dense, &TunerOptions::quick()).unwrap();
        assert_eq!(router.route_any(&dense), outcome.winner.backend);
        assert!(router.cache().lookup_tuned_any(&dense).is_some());
    }

    #[test]
    fn mixed_dtype_dispatch_records_telemetry_per_family() {
        use sme_gemm::WideningGemmConfig;
        let router = Router::new(16);
        let fp32 = GemmConfig::abt(32, 32, 8);
        let wide = WideningGemmConfig::new(32, 32, 8).unwrap();
        let requests = vec![
            GemmRequest::fp32(fp32, 1),
            GemmRequest::widening(wide, 2),
            GemmRequest::widening(wide, 3),
        ];
        let report = router.dispatch(&requests).unwrap();
        assert_eq!(report.batch.per_config.len(), 2);
        // Same shape, two telemetry entries — one per datatype.
        assert_eq!(router.telemetry().len(), 2);
        assert_eq!(router.telemetry().total_requests(), 3);
        // The JSON snapshot tags each shape with its dtype.
        let json = router.telemetry().to_json();
        assert!(json.contains("\"dtype\": \"WideningBf16\""));
        assert!(json.contains("\"dtype\": \"Fp32\""));
    }

    #[test]
    fn dispatch_results_are_identical_across_policies() {
        let requests: Vec<GemmRequest> = (0..4)
            .map(|i| GemmRequest::fp32(GemmConfig::abt(32, 16, 8), 40 + i))
            .collect();
        let measured = Router::new(8).dispatch(&requests).unwrap();
        let sme = Router::with_policy(8, RoutingPolicy::SmeOnly)
            .dispatch(&requests)
            .unwrap();
        let neon = Router::with_policy(8, RoutingPolicy::NeonOnly)
            .dispatch(&requests)
            .unwrap();
        assert_eq!(measured.batch.outputs, sme.batch.outputs);
        assert_eq!(measured.batch.outputs, neon.batch.outputs);
    }
}
