//! Batch placement over the machine's real engine classes.
//!
//! The runtime's `BatchReport::makespan_cycles` models `n` *identical,
//! independent* cores — an assumption Fig. 1 explicitly debunks for SME:
//! the M4 has **two shared SME units** (one per cluster), so piling SME
//! groups onto ten "cores" projects speed-ups the silicon cannot deliver.
//! The planner replaces that projection with a placement over the engine
//! slots the machine actually has ([`MulticoreModel::sme_engine_slots`] /
//! [`MulticoreModel::private_engine_slots`]): SME-routed groups schedule
//! onto the two shared units, Neon-routed groups onto the ten private
//! cores, and the projected makespan is the slowest engine's finish time —
//! so a mixed batch genuinely overlaps the engine classes, which is the
//! whole point of routing part of the traffic to Neon.
//!
//! Placement uses a longest-processing-time greedy per engine class, with
//! each group's simulated performance-core cycles scaled by the target
//! slot's relative speed (an efficiency-cluster SME unit runs FP32 FMOPA
//! at ≈ 357/2009 of the performance-cluster unit; an efficiency core runs
//! Neon FMLA at ≈ 46/113 of a performance core). Ties in projected finish
//! time resolve to the **lowest-index** slot, so equally-loaded equal-speed
//! cores fill fastest-class-first and placement is deterministic.
//!
//! On top of the per-class placement, [`plan_batch_placed`] closes the
//! routing/placement loop: given each group's provisional route *and* the
//! simulated cost of the alternative backend, it spills marginal
//! SME-preferring groups (smallest SME-vs-Neon margin first) to idle
//! private cores whenever that strictly lowers the projected batch
//! makespan — the saturation-aware step `Router::dispatch` folds into
//! routing itself.

use sme_gemm::{AnyGemmConfig, Backend};
use sme_machine::multicore::{EngineSlot, MulticoreModel};
use sme_runtime::BatchReport;

/// Where one dispatch group was placed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupPlacement {
    /// The group's configuration.
    pub config: AnyGemmConfig,
    /// The backend the group executed on (decides the engine class).
    pub backend: Backend,
    /// The group's simulated cycles on one performance core.
    pub cycles: f64,
    /// Index of the chosen slot within its engine class
    /// ([`PlacementPlan::sme_engines`] for SME groups,
    /// [`PlacementPlan::neon_engines`] for Neon groups).
    pub engine: usize,
}

/// The projected placement of one batch onto the machine's engine classes.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPlan {
    /// The shared SME unit slots (cluster order).
    pub sme_engines: Vec<EngineSlot>,
    /// The private core slots (performance cores first).
    pub neon_engines: Vec<EngineSlot>,
    /// Per-group placements, in the batch report's group order.
    pub placements: Vec<GroupPlacement>,
    /// Projected finish time of each SME slot, in performance-core
    /// equivalent cycles.
    pub sme_engine_cycles: Vec<f64>,
    /// Projected finish time of each private core slot.
    pub neon_engine_cycles: Vec<f64>,
}

impl PlacementPlan {
    /// Projected finish time of the SME engine class (0 when no group is
    /// SME-routed).
    pub fn sme_makespan_cycles(&self) -> f64 {
        self.sme_engine_cycles.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// Projected finish time of the private-core engine class.
    pub fn neon_makespan_cycles(&self) -> f64 {
        self.neon_engine_cycles.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// Projected makespan of the whole batch: the engine classes run
    /// concurrently, so this is the slower class's finish time.
    pub fn makespan_cycles(&self) -> f64 {
        self.sme_makespan_cycles().max(self.neon_makespan_cycles())
    }

    /// Cycles of work placed on each engine class `(sme, neon)`.
    pub fn class_load_cycles(&self) -> (f64, f64) {
        let mut sme = 0.0;
        let mut neon = 0.0;
        for p in &self.placements {
            match p.backend {
                Backend::Sme => sme += p.cycles,
                Backend::Neon => neon += p.cycles,
            }
        }
        (sme, neon)
    }

    /// Host-side execution priority for each group (higher runs earlier).
    ///
    /// The contended class goes first, longest group first: SME groups in
    /// descending cycle order, then Neon groups in descending cycle order
    /// — the LPT order the projected makespan assumes, so simulated and
    /// host schedules agree. Returned per group, in the plan's group
    /// order.
    pub fn execution_priority(&self) -> Vec<f64> {
        // Offset SME groups past every possible Neon priority without
        // losing precision (any one group's cycles ≤ the batch total).
        let offset = 1.0 + self.placements.iter().map(|p| p.cycles).sum::<f64>();
        self.placements
            .iter()
            .map(|p| match p.backend {
                Backend::Sme => p.cycles + offset,
                Backend::Neon => p.cycles,
            })
            .collect()
    }

    /// Group indices in host-side execution order (longest SME group
    /// first, then Neon groups longest-first); ties keep group order.
    pub fn execution_order(&self) -> Vec<usize> {
        let priority = self.execution_priority();
        let mut order: Vec<usize> = (0..self.placements.len()).collect();
        order.sort_by(|&a, &b| {
            priority[b]
                .partial_cmp(&priority[a])
                .expect("priorities are finite")
        });
        order
    }
}

/// One routed group's cost picture, the input to [`plan_batch_placed`]:
/// the provisional route plus the simulated cost of flipping it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupCost {
    /// The group's configuration.
    pub config: AnyGemmConfig,
    /// The provisionally routed backend (the router's in-isolation pick).
    pub backend: Backend,
    /// The group's total simulated cycles on the provisional backend
    /// (performance-core equivalent, summed over the group's requests).
    pub cycles: f64,
    /// The group's total simulated cycles on the *other* backend, when
    /// known and supported — `None` pins the group to its provisional
    /// backend (pinned policies, or an FP32 shape Neon cannot serve).
    pub alt_cycles: Option<f64>,
}

/// The outcome of placement-aware routing over one batch: the in-isolation
/// projection, the final (possibly rerouted) placement, and which groups
/// moved.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPlan {
    /// Placement of the batch with every group on its provisional backend
    /// (what route-in-isolation dispatch would have executed).
    pub isolated: PlacementPlan,
    /// The final placement after saturation-aware rerouting; this is the
    /// plan the dispatch executes. Its projected makespan is never worse
    /// than [`BatchPlan::isolated`]'s (reroutes are only kept when they
    /// strictly lower it).
    pub placement: PlacementPlan,
    /// Configurations spilled from SME to the private Neon cores, in the
    /// order the spills were accepted (smallest SME-vs-Neon margin first).
    pub rerouted: Vec<AnyGemmConfig>,
}

impl BatchPlan {
    /// The final backend for each group, in group order (the routes the
    /// dispatch must execute).
    pub fn final_backends(&self) -> Vec<Backend> {
        self.placement
            .placements
            .iter()
            .map(|p| p.backend)
            .collect()
    }

    /// Projected makespan improvement of placement-aware routing over
    /// route-in-isolation, in performance-core cycles (≥ 0).
    pub fn makespan_improvement_cycles(&self) -> f64 {
        self.isolated.makespan_cycles() - self.placement.makespan_cycles()
    }
}

/// Place `(config, backend, cycles)` triples onto the machine's engine
/// slots with the per-class LPT greedy.
fn plan_groups(groups: &[(AnyGemmConfig, Backend, f64)], model: &MulticoreModel) -> PlacementPlan {
    let sme_engines = model.sme_engine_slots();
    let neon_engines = model.private_engine_slots();
    let mut sme_cycles = vec![0.0f64; sme_engines.len()];
    let mut neon_cycles = vec![0.0f64; neon_engines.len()];

    // LPT: sort group indices by descending cycles (stable on ties).
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by(|&a, &b| {
        groups[b]
            .2
            .partial_cmp(&groups[a].2)
            .expect("cycles are finite")
    });

    let mut placements = vec![None; groups.len()];
    for index in order {
        let (config, backend, cycles) = groups[index];
        let (slots, loads) = match backend {
            Backend::Sme => (&sme_engines, &mut sme_cycles),
            Backend::Neon => (&neon_engines, &mut neon_cycles),
        };
        // Pick the slot with the earliest finish time after taking the
        // group (slower slots stretch the group by 1/speed). Ties go to
        // the lowest index, so equal fast cores fill front-first and the
        // placement is deterministic.
        let mut best = 0;
        let mut best_finish = loads[0] + cycles / slots[0].speed;
        for slot in 1..slots.len() {
            let finish = loads[slot] + cycles / slots[slot].speed;
            if finish < best_finish {
                best = slot;
                best_finish = finish;
            }
        }
        loads[best] = best_finish;
        placements[index] = Some(GroupPlacement {
            config,
            backend,
            cycles,
            engine: best,
        });
    }

    PlacementPlan {
        sme_engines,
        neon_engines,
        placements: placements
            .into_iter()
            .map(|p| p.expect("every group is placed"))
            .collect(),
        sme_engine_cycles: sme_cycles,
        neon_engine_cycles: neon_cycles,
    }
}

/// Place a dispatched batch's groups onto the machine's engine slots and
/// project the makespan.
///
/// Groups never split across slots (each shares one kernel and working
/// set, exactly like the runtime's per-core grouping); within each engine
/// class the longest group is placed first onto the slot that finishes it
/// earliest, accounting for slot speed.
pub fn plan_batch(report: &BatchReport, model: &MulticoreModel) -> PlacementPlan {
    let groups: Vec<(AnyGemmConfig, Backend, f64)> = report
        .per_config
        .iter()
        .map(|g| (g.config, g.backend, g.stats.cycles))
        .collect();
    plan_groups(&groups, model)
}

/// Placement-aware routing over one batch: place the provisional routes,
/// then spill marginal SME groups to the private Neon cores while that
/// strictly lowers the projected makespan.
///
/// Candidates are the SME-provisional groups with a known Neon cost
/// (`alt_cycles`), tried in ascending order of their SME-vs-Neon margin
/// (`alt_cycles − cycles`): the groups that lose the least by leaving the
/// shared units move first. Each spill is kept only if the re-planned
/// makespan strictly improves on the best so far, so the final projection
/// is never worse than route-in-isolation — when the SME class is not the
/// bottleneck, nothing moves.
pub fn plan_batch_placed(costs: &[GroupCost], model: &MulticoreModel) -> BatchPlan {
    let mut routed: Vec<(AnyGemmConfig, Backend, f64)> = costs
        .iter()
        .map(|c| (c.config, c.backend, c.cycles))
        .collect();
    let isolated = plan_groups(&routed, model);

    // Marginal-first candidate order over the spillable SME groups.
    let mut candidates: Vec<usize> = (0..costs.len())
        .filter(|&i| costs[i].backend == Backend::Sme && costs[i].alt_cycles.is_some())
        .collect();
    candidates.sort_by(|&a, &b| {
        let margin = |i: usize| costs[i].alt_cycles.expect("filtered") - costs[i].cycles;
        margin(a)
            .partial_cmp(&margin(b))
            .expect("margins are finite")
    });

    let mut best = isolated.clone();
    let mut rerouted = Vec::new();
    for index in candidates {
        let alt = costs[index].alt_cycles.expect("filtered");
        let previous = routed[index];
        routed[index] = (costs[index].config, Backend::Neon, alt);
        let candidate = plan_groups(&routed, model);
        if candidate.makespan_cycles() < best.makespan_cycles() {
            best = candidate;
            rerouted.push(costs[index].config);
        } else {
            routed[index] = previous;
        }
    }

    BatchPlan {
        isolated,
        placement: best,
        rerouted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sme_gemm::GemmConfig;
    use sme_machine::MachineConfig;
    use sme_runtime::{GemmRequest, GemmService};

    fn model() -> MulticoreModel {
        MulticoreModel::new(MachineConfig::apple_m4())
    }

    /// Dispatch a batch with a fixed routing function and plan it.
    fn plan_mixed(
        reqs: &[GemmRequest],
        neon: &(dyn Fn(&AnyGemmConfig) -> bool + Sync),
    ) -> PlacementPlan {
        let service = GemmService::new(32);
        let report = service
            .dispatch_routed(reqs, |cfg| {
                if neon(cfg) {
                    Backend::Neon
                } else {
                    Backend::Sme
                }
            })
            .expect("valid batch");
        plan_batch(&report, &model())
    }

    #[test]
    fn sme_groups_spread_over_two_units_only() {
        // Four equal SME groups on a machine with two SME units: the
        // projected makespan cannot drop below half the serial time no
        // matter how many cores exist.
        let reqs: Vec<GemmRequest> = (0..4)
            .map(|i| GemmRequest::fp32(GemmConfig::abt(48, 48, 16 + 16 * i), i as u64))
            .collect();
        let plan = plan_mixed(&reqs, &|_| false);
        assert_eq!(plan.sme_engines.len(), 2);
        let (sme_load, neon_load) = plan.class_load_cycles();
        assert_eq!(neon_load, 0.0);
        assert!(plan.makespan_cycles() >= sme_load / 2.0);
        // The efficiency-cluster unit is ~5.6× slower, so the LPT should
        // keep most work on the performance-cluster unit.
        assert!(plan.sme_engine_cycles[0] > 0.0);
        assert!(plan.placements.iter().all(|p| p.engine < 2));
    }

    #[test]
    fn mixed_batches_overlap_engine_classes() {
        let sme_cfg = GemmConfig::abt(64, 64, 64);
        let neon_cfg = GemmConfig::abt(16, 4, 16);
        let reqs = [
            GemmRequest::fp32(sme_cfg, 1),
            GemmRequest::fp32(neon_cfg, 2),
        ];
        let plan = plan_mixed(&reqs, &|cfg| *cfg == neon_cfg.into());
        let (sme_load, neon_load) = plan.class_load_cycles();
        assert!(sme_load > 0.0 && neon_load > 0.0);
        // Classes run concurrently: the makespan is the max, not the sum.
        assert!(plan.makespan_cycles() < sme_load + neon_load);
        assert_eq!(
            plan.makespan_cycles(),
            plan.sme_makespan_cycles().max(plan.neon_makespan_cycles())
        );
        // The Neon group landed on a private core, the SME group on a unit.
        let neon_placement = plan
            .placements
            .iter()
            .find(|p| p.backend == Backend::Neon)
            .unwrap();
        assert!(neon_placement.engine < plan.neon_engines.len());
    }

    #[test]
    fn neon_groups_use_all_ten_cores() {
        // Ten distinct Neon-routed groups: each gets its own core slot, so
        // every per-core load stays below the serial total.
        let reqs: Vec<GemmRequest> = (0..10)
            .map(|i| GemmRequest::fp32(GemmConfig::abt(16, 4, 4 + 4 * i), i as u64))
            .collect();
        let plan = plan_mixed(&reqs, &|_| true);
        assert_eq!(plan.neon_engines.len(), 10);
        let used: std::collections::HashSet<usize> =
            plan.placements.iter().map(|p| p.engine).collect();
        assert!(used.len() >= 4, "LPT must spread across the fast cores");
        let (_, neon_load) = plan.class_load_cycles();
        assert!(plan.makespan_cycles() < neon_load);
    }

    #[test]
    fn empty_batches_plan_to_zero() {
        let service = GemmService::new(4);
        let report = service.dispatch(&[]).unwrap();
        let plan = plan_batch(&report, &model());
        assert!(plan.placements.is_empty());
        assert_eq!(plan.makespan_cycles(), 0.0);
        assert_eq!(plan.class_load_cycles(), (0.0, 0.0));
    }

    #[test]
    fn slot_ties_break_to_the_lowest_index() {
        // Regression test for the `min_by` tie-break: one Neon group on an
        // idle machine sees four equally-idle equal-speed performance
        // cores (slots 0–3). `min_by` keeps the *last* minimum, so the
        // group used to land on slot 3; placement must be deterministic
        // and fill front-first.
        let cfg: AnyGemmConfig = GemmConfig::abt(16, 4, 8).into();
        let plan = plan_groups(&[(cfg, Backend::Neon, 100.0)], &model());
        assert_eq!(plan.placements[0].engine, 0);

        // Four equal groups fill slots 0..4 in order, not 3..=0 reversed.
        let groups: Vec<(AnyGemmConfig, Backend, f64)> =
            (0..4).map(|_| (cfg, Backend::Neon, 100.0)).collect();
        let plan = plan_groups(&groups, &model());
        let engines: Vec<usize> = plan.placements.iter().map(|p| p.engine).collect();
        assert_eq!(engines, vec![0, 1, 2, 3]);
    }

    #[test]
    fn saturated_sme_spills_marginal_groups_to_idle_cores() {
        // Six SME-provisional groups with near-SME Neon costs saturate the
        // two shared units; the private cores are idle. Spilling must
        // strictly lower the projected makespan and list the movers.
        let costs: Vec<GroupCost> = (0..6)
            .map(|i| GroupCost {
                config: GemmConfig::abt(32, 32, 8 * (i + 1)).into(),
                backend: Backend::Sme,
                cycles: 1000.0,
                alt_cycles: Some(1100.0),
            })
            .collect();
        let plan = plan_batch_placed(&costs, &model());
        assert!(
            plan.placement.makespan_cycles() < plan.isolated.makespan_cycles(),
            "placed {} must beat isolated {}",
            plan.placement.makespan_cycles(),
            plan.isolated.makespan_cycles()
        );
        assert!(!plan.rerouted.is_empty());
        let backends = plan.final_backends();
        assert!(backends.contains(&Backend::Sme), "SME keeps the rest");
        assert!(backends.contains(&Backend::Neon), "some groups spilled");
        assert!(plan.makespan_improvement_cycles() > 0.0);
    }

    #[test]
    fn unsaturated_sme_keeps_every_group() {
        // One SME group: the shared units are not the bottleneck relative
        // to flipping it onto Neon at a worse cost, so nothing moves and
        // the plans coincide.
        let costs = [GroupCost {
            config: GemmConfig::abt(64, 64, 64).into(),
            backend: Backend::Sme,
            cycles: 5000.0,
            alt_cycles: Some(20_000.0),
        }];
        let plan = plan_batch_placed(&costs, &model());
        assert_eq!(plan.placement, plan.isolated);
        assert!(plan.rerouted.is_empty());
        assert_eq!(plan.final_backends(), vec![Backend::Sme]);
        assert_eq!(plan.makespan_improvement_cycles(), 0.0);
    }

    #[test]
    fn pinned_groups_never_move() {
        // alt_cycles = None marks a pinned group (pinned policy or
        // Neon-unsupported shape): even under saturation it stays put.
        let costs: Vec<GroupCost> = (0..6)
            .map(|i| GroupCost {
                config: GemmConfig::abt(32, 32, 8 * (i + 1)).into(),
                backend: Backend::Sme,
                cycles: 1000.0,
                alt_cycles: None,
            })
            .collect();
        let plan = plan_batch_placed(&costs, &model());
        assert_eq!(plan.placement, plan.isolated);
        assert!(plan.rerouted.is_empty());
        assert!(plan.final_backends().iter().all(|&b| b == Backend::Sme));
    }

    #[test]
    fn marginal_groups_spill_first() {
        // Two spill candidates with different margins: the cheap-to-move
        // group (margin 10) must be accepted before the expensive one
        // (margin 5000) is even tried.
        let cheap: AnyGemmConfig = GemmConfig::abt(32, 32, 8).into();
        let dear: AnyGemmConfig = GemmConfig::abt(32, 32, 16).into();
        let costs = [
            GroupCost {
                config: dear,
                backend: Backend::Sme,
                cycles: 1000.0,
                alt_cycles: Some(6000.0),
            },
            GroupCost {
                config: cheap,
                backend: Backend::Sme,
                cycles: 1000.0,
                alt_cycles: Some(1010.0),
            },
            GroupCost {
                config: GemmConfig::abt(32, 32, 24).into(),
                backend: Backend::Sme,
                cycles: 1000.0,
                alt_cycles: None,
            },
        ];
        let plan = plan_batch_placed(&costs, &model());
        assert_eq!(plan.rerouted.first(), Some(&cheap));
        assert!(
            !plan.rerouted.contains(&dear),
            "the high-margin group should stay on SME"
        );
    }

    #[test]
    fn execution_order_runs_longest_sme_group_first() {
        let a: AnyGemmConfig = GemmConfig::abt(16, 4, 4).into();
        let b: AnyGemmConfig = GemmConfig::abt(32, 32, 8).into();
        let c: AnyGemmConfig = GemmConfig::abt(48, 48, 16).into();
        let plan = plan_groups(
            &[
                (a, Backend::Neon, 9000.0),
                (b, Backend::Sme, 100.0),
                (c, Backend::Sme, 800.0),
            ],
            &model(),
        );
        // SME groups first (longest first), Neon last even though it is
        // the longest group overall.
        assert_eq!(plan.execution_order(), vec![2, 1, 0]);
        let priority = plan.execution_priority();
        assert!(priority[1] > priority[0] && priority[2] > priority[1]);
    }
}
