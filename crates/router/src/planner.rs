//! Batch placement over the machine's real engine classes.
//!
//! The runtime's `BatchReport::makespan_cycles` models `n` *identical,
//! independent* cores — an assumption Fig. 1 explicitly debunks for SME:
//! the M4 has **two shared SME units** (one per cluster), so piling SME
//! groups onto ten "cores" projects speed-ups the silicon cannot deliver.
//! The planner replaces that projection with a placement over the engine
//! slots the machine actually has ([`MulticoreModel::sme_engine_slots`] /
//! [`MulticoreModel::private_engine_slots`]): SME-routed groups schedule
//! onto the two shared units, Neon-routed groups onto the ten private
//! cores, and the projected makespan is the slowest engine's finish time —
//! so a mixed batch genuinely overlaps the engine classes, which is the
//! whole point of routing part of the traffic to Neon.
//!
//! Placement uses a longest-processing-time greedy per engine class, with
//! each group's simulated performance-core cycles scaled by the target
//! slot's relative speed (an efficiency-cluster SME unit runs FP32 FMOPA
//! at ≈ 357/2009 of the performance-cluster unit; an efficiency core runs
//! Neon FMLA at ≈ 46/113 of a performance core).

use sme_gemm::{AnyGemmConfig, Backend};
use sme_machine::multicore::{EngineSlot, MulticoreModel};
use sme_runtime::BatchReport;

/// Where one dispatch group was placed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupPlacement {
    /// The group's configuration.
    pub config: AnyGemmConfig,
    /// The backend the group executed on (decides the engine class).
    pub backend: Backend,
    /// The group's simulated cycles on one performance core.
    pub cycles: f64,
    /// Index of the chosen slot within its engine class
    /// ([`PlacementPlan::sme_engines`] for SME groups,
    /// [`PlacementPlan::neon_engines`] for Neon groups).
    pub engine: usize,
}

/// The projected placement of one batch onto the machine's engine classes.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPlan {
    /// The shared SME unit slots (cluster order).
    pub sme_engines: Vec<EngineSlot>,
    /// The private core slots (performance cores first).
    pub neon_engines: Vec<EngineSlot>,
    /// Per-group placements, in the batch report's group order.
    pub placements: Vec<GroupPlacement>,
    /// Projected finish time of each SME slot, in performance-core
    /// equivalent cycles.
    pub sme_engine_cycles: Vec<f64>,
    /// Projected finish time of each private core slot.
    pub neon_engine_cycles: Vec<f64>,
}

impl PlacementPlan {
    /// Projected finish time of the SME engine class (0 when no group is
    /// SME-routed).
    pub fn sme_makespan_cycles(&self) -> f64 {
        self.sme_engine_cycles.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// Projected finish time of the private-core engine class.
    pub fn neon_makespan_cycles(&self) -> f64 {
        self.neon_engine_cycles.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// Projected makespan of the whole batch: the engine classes run
    /// concurrently, so this is the slower class's finish time.
    pub fn makespan_cycles(&self) -> f64 {
        self.sme_makespan_cycles().max(self.neon_makespan_cycles())
    }

    /// Cycles of work placed on each engine class `(sme, neon)`.
    pub fn class_load_cycles(&self) -> (f64, f64) {
        let mut sme = 0.0;
        let mut neon = 0.0;
        for p in &self.placements {
            match p.backend {
                Backend::Sme => sme += p.cycles,
                Backend::Neon => neon += p.cycles,
            }
        }
        (sme, neon)
    }
}

/// Place a dispatched batch's groups onto the machine's engine slots and
/// project the makespan.
///
/// Groups never split across slots (each shares one kernel and working
/// set, exactly like the runtime's per-core grouping); within each engine
/// class the longest group is placed first onto the slot that finishes it
/// earliest, accounting for slot speed.
pub fn plan_batch(report: &BatchReport, model: &MulticoreModel) -> PlacementPlan {
    let sme_engines = model.sme_engine_slots();
    let neon_engines = model.private_engine_slots();
    let mut sme_cycles = vec![0.0f64; sme_engines.len()];
    let mut neon_cycles = vec![0.0f64; neon_engines.len()];

    // LPT: sort group indices by descending cycles (stable on ties).
    let mut order: Vec<usize> = (0..report.per_config.len()).collect();
    order.sort_by(|&a, &b| {
        report.per_config[b]
            .stats
            .cycles
            .partial_cmp(&report.per_config[a].stats.cycles)
            .expect("cycles are finite")
    });

    let mut placements = vec![None; report.per_config.len()];
    for index in order {
        let group = &report.per_config[index];
        let (slots, loads) = match group.backend {
            Backend::Sme => (&sme_engines, &mut sme_cycles),
            Backend::Neon => (&neon_engines, &mut neon_cycles),
        };
        // Pick the slot with the earliest finish time after taking the
        // group (slower slots stretch the group by 1/speed).
        let best = (0..slots.len())
            .min_by(|&a, &b| {
                let fa = loads[a] + group.stats.cycles / slots[a].speed;
                let fb = loads[b] + group.stats.cycles / slots[b].speed;
                fa.partial_cmp(&fb).expect("finite finish times")
            })
            .expect("engine classes are never empty");
        loads[best] += group.stats.cycles / slots[best].speed;
        placements[index] = Some(GroupPlacement {
            config: group.config,
            backend: group.backend,
            cycles: group.stats.cycles,
            engine: best,
        });
    }

    PlacementPlan {
        sme_engines,
        neon_engines,
        placements: placements
            .into_iter()
            .map(|p| p.expect("every group is placed"))
            .collect(),
        sme_engine_cycles: sme_cycles,
        neon_engine_cycles: neon_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sme_gemm::GemmConfig;
    use sme_machine::MachineConfig;
    use sme_runtime::{GemmRequest, GemmService};

    fn model() -> MulticoreModel {
        MulticoreModel::new(MachineConfig::apple_m4())
    }

    /// Dispatch a batch with a fixed routing function and plan it.
    fn plan_mixed(
        reqs: &[GemmRequest],
        neon: &(dyn Fn(&AnyGemmConfig) -> bool + Sync),
    ) -> PlacementPlan {
        let service = GemmService::new(32);
        let report = service
            .dispatch_routed(reqs, |cfg| {
                if neon(cfg) {
                    Backend::Neon
                } else {
                    Backend::Sme
                }
            })
            .expect("valid batch");
        plan_batch(&report, &model())
    }

    #[test]
    fn sme_groups_spread_over_two_units_only() {
        // Four equal SME groups on a machine with two SME units: the
        // projected makespan cannot drop below half the serial time no
        // matter how many cores exist.
        let reqs: Vec<GemmRequest> = (0..4)
            .map(|i| GemmRequest::fp32(GemmConfig::abt(48, 48, 16 + 16 * i), i as u64))
            .collect();
        let plan = plan_mixed(&reqs, &|_| false);
        assert_eq!(plan.sme_engines.len(), 2);
        let (sme_load, neon_load) = plan.class_load_cycles();
        assert_eq!(neon_load, 0.0);
        assert!(plan.makespan_cycles() >= sme_load / 2.0);
        // The efficiency-cluster unit is ~5.6× slower, so the LPT should
        // keep most work on the performance-cluster unit.
        assert!(plan.sme_engine_cycles[0] > 0.0);
        assert!(plan.placements.iter().all(|p| p.engine < 2));
    }

    #[test]
    fn mixed_batches_overlap_engine_classes() {
        let sme_cfg = GemmConfig::abt(64, 64, 64);
        let neon_cfg = GemmConfig::abt(16, 4, 16);
        let reqs = [
            GemmRequest::fp32(sme_cfg, 1),
            GemmRequest::fp32(neon_cfg, 2),
        ];
        let plan = plan_mixed(&reqs, &|cfg| *cfg == neon_cfg.into());
        let (sme_load, neon_load) = plan.class_load_cycles();
        assert!(sme_load > 0.0 && neon_load > 0.0);
        // Classes run concurrently: the makespan is the max, not the sum.
        assert!(plan.makespan_cycles() < sme_load + neon_load);
        assert_eq!(
            plan.makespan_cycles(),
            plan.sme_makespan_cycles().max(plan.neon_makespan_cycles())
        );
        // The Neon group landed on a private core, the SME group on a unit.
        let neon_placement = plan
            .placements
            .iter()
            .find(|p| p.backend == Backend::Neon)
            .unwrap();
        assert!(neon_placement.engine < plan.neon_engines.len());
    }

    #[test]
    fn neon_groups_use_all_ten_cores() {
        // Ten distinct Neon-routed groups: each gets its own core slot, so
        // every per-core load stays below the serial total.
        let reqs: Vec<GemmRequest> = (0..10)
            .map(|i| GemmRequest::fp32(GemmConfig::abt(16, 4, 4 + 4 * i), i as u64))
            .collect();
        let plan = plan_mixed(&reqs, &|_| true);
        assert_eq!(plan.neon_engines.len(), 10);
        let used: std::collections::HashSet<usize> =
            plan.placements.iter().map(|p| p.engine).collect();
        assert!(used.len() >= 4, "LPT must spread across the fast cores");
        let (_, neon_load) = plan.class_load_cycles();
        assert!(plan.makespan_cycles() < neon_load);
    }

    #[test]
    fn empty_batches_plan_to_zero() {
        let service = GemmService::new(4);
        let report = service.dispatch(&[]).unwrap();
        let plan = plan_batch(&report, &model());
        assert!(plan.placements.is_empty());
        assert_eq!(plan.makespan_cycles(), 0.0);
        assert_eq!(plan.class_load_cycles(), (0.0, 0.0));
    }
}
