//! Per-shape traffic telemetry: who is actually calling, and with what?
//!
//! The runtime's `KernelCache` counts hits and misses globally, which
//! answers "is caching working?" but not the serving question the ROADMAP
//! poses: **which shapes dominate traffic**, so that exactly those can be
//! pre-tuned. The [`TelemetryRegistry`] closes that gap: every dispatched
//! batch is folded into a per-[`AnyGemmConfig`] record of request counts,
//! cumulative simulated cycles, the backend that served each group and the
//! group's cache outcome. [`TelemetryRegistry::top_shapes`] ranks shapes by
//! traffic; `Router::pretune_hot` feeds that ranking straight into the
//! autotuner.

use serde::Serialize;
use sme_gemm::{AnyGemmConfig, BLayout, Backend, Beta, Dtype};
use sme_runtime::BatchReport;
use std::collections::HashMap;
use std::sync::Mutex;

/// Accumulated traffic statistics for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeStats {
    /// The configuration.
    pub config: AnyGemmConfig,
    /// Requests dispatched for this shape.
    pub requests: u64,
    /// Simulated cycles spent executing this shape's kernels (summed over
    /// all requests).
    pub cycles: f64,
    /// Requests served by the SME backend.
    pub sme_requests: u64,
    /// Requests served by the Neon backend.
    pub neon_requests: u64,
    /// Kernel fetches for this shape served from the cache.
    pub cache_hits: u64,
    /// Kernel fetches for this shape that compiled.
    pub cache_misses: u64,
}

impl ShapeStats {
    /// Fraction of this shape's kernel fetches served from the cache
    /// (0 when the shape has never fetched).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The backend that served the majority of this shape's requests (ties
    /// go to SME, the default engine).
    pub fn dominant_backend(&self) -> Backend {
        if self.neon_requests > self.sme_requests {
            Backend::Neon
        } else {
            Backend::Sme
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ShapeEntry {
    requests: u64,
    cycles: f64,
    sme_requests: u64,
    neon_requests: u64,
    cache_hits: u64,
    cache_misses: u64,
}

/// Thread-safe registry of per-shape traffic statistics.
#[derive(Debug, Default)]
pub struct TelemetryRegistry {
    entries: Mutex<HashMap<AnyGemmConfig, ShapeEntry>>,
}

impl TelemetryRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        TelemetryRegistry::default()
    }

    /// Record one dispatched group: `requests` executions of `config` on
    /// `backend` costing `cycles` simulated cycles in total, whose single
    /// kernel fetch hit (`cache_hit`) or compiled.
    pub fn record_group(
        &self,
        config: &AnyGemmConfig,
        backend: Backend,
        requests: u64,
        cycles: f64,
        cache_hit: bool,
    ) {
        let mut entries = self.entries.lock().expect("telemetry poisoned");
        let entry = entries.entry(*config).or_default();
        entry.requests += requests;
        entry.cycles += cycles;
        match backend {
            Backend::Sme => entry.sme_requests += requests,
            Backend::Neon => entry.neon_requests += requests,
        }
        if cache_hit {
            entry.cache_hits += 1;
        } else {
            entry.cache_misses += 1;
        }
    }

    /// Fold a whole dispatched batch into the registry (one
    /// [`record_group`](TelemetryRegistry::record_group) per per-config
    /// report).
    pub fn record_batch(&self, report: &BatchReport) {
        for group in &report.per_config {
            self.record_group(
                &group.config,
                group.backend,
                group.requests as u64,
                group.stats.cycles,
                group.cache_hit,
            );
        }
    }

    /// Number of distinct shapes seen.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("telemetry poisoned").len()
    }

    /// `true` if no traffic has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total requests recorded across all shapes.
    pub fn total_requests(&self) -> u64 {
        self.entries
            .lock()
            .expect("telemetry poisoned")
            .values()
            .map(|e| e.requests)
            .sum()
    }

    /// Statistics for one shape, if it has been seen.
    pub fn shape(&self, config: &AnyGemmConfig) -> Option<ShapeStats> {
        self.entries
            .lock()
            .expect("telemetry poisoned")
            .get(config)
            .map(|e| stats_for(config, e))
    }

    /// The `n` busiest shapes, ranked by request count (cumulative cycles,
    /// then shape, break ties — the order is fully deterministic).
    pub fn top_shapes(&self, n: usize) -> Vec<ShapeStats> {
        let entries = self.entries.lock().expect("telemetry poisoned");
        let mut all: Vec<ShapeStats> = entries.iter().map(|(c, e)| stats_for(c, e)).collect();
        all.sort_by(|a, b| {
            b.requests.cmp(&a.requests).then(
                b.cycles
                    .partial_cmp(&a.cycles)
                    .expect("cycles are finite")
                    .then(a.config.ordering_key().cmp(&b.config.ordering_key())),
            )
        });
        all.truncate(n);
        all
    }

    /// Discard all recorded traffic.
    pub fn clear(&self) {
        self.entries.lock().expect("telemetry poisoned").clear();
    }

    /// Render the registry as a JSON document (shapes in
    /// [`top_shapes`](TelemetryRegistry::top_shapes) order), the format the
    /// README documents for operational dashboards.
    pub fn to_json(&self) -> String {
        #[derive(Serialize)]
        struct Shape {
            dtype: Dtype,
            m: usize,
            n: usize,
            k: usize,
            lda: Option<usize>,
            ldb: Option<usize>,
            ldc: Option<usize>,
            b_layout: Option<BLayout>,
            beta: Option<Beta>,
            requests: u64,
            cycles: f64,
            sme_requests: u64,
            neon_requests: u64,
            cache_hits: u64,
            cache_misses: u64,
            cache_hit_rate: f64,
        }
        #[derive(Serialize)]
        struct Doc {
            total_requests: u64,
            shapes: Vec<Shape>,
        }
        let doc = Doc {
            total_requests: self.total_requests(),
            shapes: self
                .top_shapes(usize::MAX)
                .into_iter()
                .map(|s| Shape {
                    dtype: s.config.dtype(),
                    m: s.config.m(),
                    n: s.config.n(),
                    k: s.config.k(),
                    lda: s.config.as_fp32().map(|c| c.lda),
                    ldb: s.config.as_fp32().map(|c| c.ldb),
                    ldc: s.config.as_fp32().map(|c| c.ldc),
                    b_layout: s.config.as_fp32().map(|c| c.b_layout),
                    beta: s.config.as_fp32().map(|c| c.beta),
                    requests: s.requests,
                    cycles: s.cycles,
                    sme_requests: s.sme_requests,
                    neon_requests: s.neon_requests,
                    cache_hits: s.cache_hits,
                    cache_misses: s.cache_misses,
                    cache_hit_rate: s.cache_hit_rate(),
                })
                .collect(),
        };
        serde_json::to_string_pretty(&doc).expect("shim serialization is total")
    }
}

fn stats_for(config: &AnyGemmConfig, e: &ShapeEntry) -> ShapeStats {
    ShapeStats {
        config: *config,
        requests: e.requests,
        cycles: e.cycles,
        sme_requests: e.sme_requests,
        neon_requests: e.neon_requests,
        cache_hits: e.cache_hits,
        cache_misses: e.cache_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sme_gemm::GemmConfig;

    #[test]
    fn groups_accumulate_per_shape() {
        let telemetry = TelemetryRegistry::new();
        let hot: AnyGemmConfig = GemmConfig::abt(32, 32, 16).into();
        let cold: AnyGemmConfig = GemmConfig::abt(64, 64, 16).into();
        telemetry.record_group(&hot, Backend::Sme, 5, 100.0, false);
        telemetry.record_group(&hot, Backend::Sme, 7, 140.0, true);
        telemetry.record_group(&hot, Backend::Neon, 2, 40.0, true);
        telemetry.record_group(&cold, Backend::Sme, 1, 900.0, false);

        assert_eq!(telemetry.len(), 2);
        assert_eq!(telemetry.total_requests(), 15);
        let stats = telemetry.shape(&hot).unwrap();
        assert_eq!(stats.requests, 14);
        assert_eq!(stats.cycles, 280.0);
        assert_eq!(stats.sme_requests, 12);
        assert_eq!(stats.neon_requests, 2);
        assert_eq!((stats.cache_hits, stats.cache_misses), (2, 1));
        assert!((stats.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.dominant_backend(), Backend::Sme);

        // Ranking is by requests: the hot shape leads despite fewer cycles
        // per request.
        let top = telemetry.top_shapes(10);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].config, hot);
        assert_eq!(telemetry.top_shapes(1).len(), 1);

        telemetry.clear();
        assert!(telemetry.is_empty());
        assert_eq!(telemetry.shape(&hot), None);
    }

    #[test]
    fn json_snapshot_lists_shapes_with_hit_rates() {
        let telemetry = TelemetryRegistry::new();
        telemetry.record_group(
            &GemmConfig::abt(16, 4, 8).into(),
            Backend::Neon,
            3,
            120.0,
            false,
        );
        let json = telemetry.to_json();
        assert!(json.contains("\"total_requests\": 3"));
        assert!(json.contains("\"neon_requests\": 3"));
        assert!(json.contains("\"cache_hit_rate\": 0"));
        // The document is machine-readable with the vendored parser.
        let value = serde_json::from_str(&json).unwrap();
        assert_eq!(
            value
                .get("shapes")
                .and_then(|s| s.as_array())
                .map(|a| a.len()),
            Some(1)
        );
    }
}
