//! Per-shape traffic telemetry: who is actually calling, with what — and
//! **lately**.
//!
//! The runtime's `KernelCache` counts hits and misses globally, which
//! answers "is caching working?" but not the serving questions the ROADMAP
//! poses: **which shapes dominate actual compute right now**, so that
//! exactly those can be pre-tuned, and **how does that knowledge survive a
//! restart**. The [`TelemetryRegistry`] closes both gaps:
//!
//! * every dispatched batch is folded into a per-[`AnyGemmConfig`] record
//!   of request counts, cumulative simulated cycles, the backend that
//!   served each group and the group's cache outcome;
//! * alongside the raw all-time totals, each shape carries **exponentially
//!   decayed** request and cycle counters. The registry keeps a monotonic
//!   *epoch* counter (the router advances it once per dispatched batch);
//!   a counter recorded `d` epochs ago contributes `retention^d` of its
//!   original weight, so [`TelemetryRegistry::top_shapes`] follows
//!   *shifting* traffic instead of being dominated by all-time history;
//! * the whole registry round-trips through a versioned,
//!   machine-fingerprinted JSON snapshot
//!   ([`TelemetryRegistry::save`] / [`TelemetryRegistry::load_checked`]),
//!   mirroring the plan store's format discipline: a snapshot taken
//!   against a different timing calibration warns and is discarded, since
//!   its recorded cycles (and therefore its hot-shape ranking) were
//!   simulated on a different machine model.
//!
//! Ranking is by **decayed cumulative cycles** (cost), with decayed and
//! raw request counts as tie-breaks: a shape called rarely but costing
//! millions of cycles per call dominates the machine and must reach the
//! pretuner ahead of a cheap-but-chatty shape.

use serde::Serialize;
use sme_gemm::{AnyGemmConfig, BLayout, Backend, Beta, Dtype, GemmConfig, WideningGemmConfig};
use sme_machine::MachineConfig;
use sme_runtime::{BatchReport, FingerprintCheck};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::Mutex;

/// Version stamp written into the telemetry snapshot JSON document.
/// Version 1 is the initial persistent format: a `machine_fingerprint`
/// stamp (16-digit hex, like the plan store's), the decay `retention`
/// factor, `total_requests`, and per-shape entries carrying both the raw
/// all-time counters and the decayed counters normalized to the snapshot
/// instant.
pub const TELEMETRY_SNAPSHOT_VERSION: u64 = 1;

/// Default per-epoch retention of the decayed counters: a half-life of 16
/// epochs (one epoch = one dispatched batch), so traffic from ~50 batches
/// ago has faded below 12% weight — long enough to smooth bursts, short
/// enough that a traffic shift reorders the ranking within a phase.
pub const DEFAULT_DECAY_HALF_LIFE: f64 = 16.0;

/// Errors reported while loading or parsing a persisted telemetry
/// snapshot.
#[derive(Debug)]
pub enum TelemetryError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The document is not valid JSON or not a valid snapshot.
    Format(String),
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::Io(e) => write!(f, "telemetry snapshot I/O error: {e}"),
            TelemetryError::Format(msg) => write!(f, "telemetry snapshot format error: {msg}"),
        }
    }
}

impl std::error::Error for TelemetryError {}

impl From<std::io::Error> for TelemetryError {
    fn from(e: std::io::Error) -> Self {
        TelemetryError::Io(e)
    }
}

/// Accumulated traffic statistics for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeStats {
    /// The configuration.
    pub config: AnyGemmConfig,
    /// Requests dispatched for this shape (all-time).
    pub requests: u64,
    /// Simulated cycles spent executing this shape's kernels (summed over
    /// all requests, all-time).
    pub cycles: f64,
    /// Exponentially decayed request count, normalized to the registry's
    /// current epoch.
    pub decayed_requests: f64,
    /// Exponentially decayed cycle count, normalized to the registry's
    /// current epoch — the primary ranking key of
    /// [`TelemetryRegistry::top_shapes`].
    pub decayed_cycles: f64,
    /// Requests served by the SME backend.
    pub sme_requests: u64,
    /// Requests served by the Neon backend.
    pub neon_requests: u64,
    /// Kernel fetches for this shape served from the cache.
    pub cache_hits: u64,
    /// Kernel fetches for this shape that compiled.
    pub cache_misses: u64,
}

impl ShapeStats {
    /// Fraction of this shape's kernel fetches served from the cache
    /// (0 when the shape has never fetched).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The backend that served the majority of this shape's requests (ties
    /// go to SME, the default engine).
    pub fn dominant_backend(&self) -> Backend {
        if self.neon_requests > self.sme_requests {
            Backend::Neon
        } else {
            Backend::Sme
        }
    }

    /// The stats as a JSON object — the shape entries of the postmortem
    /// bundle's `telemetry_top_shapes` section.
    pub fn to_json_value(&self) -> serde::json::Value {
        use serde::json::Value;
        Value::Object(vec![
            ("config".to_string(), Value::String(self.config.to_string())),
            ("requests".to_string(), Value::Number(self.requests as f64)),
            ("cycles".to_string(), Value::Number(self.cycles)),
            (
                "decayed_requests".to_string(),
                Value::Number(self.decayed_requests),
            ),
            (
                "decayed_cycles".to_string(),
                Value::Number(self.decayed_cycles),
            ),
            (
                "dominant_backend".to_string(),
                Value::String(self.dominant_backend().name().to_string()),
            ),
            (
                "cache_hit_rate".to_string(),
                Value::Number(self.cache_hit_rate()),
            ),
        ])
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ShapeEntry {
    requests: u64,
    cycles: f64,
    /// Decayed counters, valid as of `last_epoch` (lazy decay: scaled
    /// forward only when the entry is touched or read).
    decayed_requests: f64,
    decayed_cycles: f64,
    last_epoch: u64,
    sme_requests: u64,
    neon_requests: u64,
    cache_hits: u64,
    cache_misses: u64,
}

impl ShapeEntry {
    /// The decayed counters normalized to `epoch`.
    fn decayed_at(&self, epoch: u64, retention: f64) -> (f64, f64) {
        let fade = retention.powi(epoch.saturating_sub(self.last_epoch) as i32);
        (self.decayed_requests * fade, self.decayed_cycles * fade)
    }

    /// Bring the lazy decay up to `epoch` so fresh traffic can be added.
    fn roll_to(&mut self, epoch: u64, retention: f64) {
        let (requests, cycles) = self.decayed_at(epoch, retention);
        self.decayed_requests = requests;
        self.decayed_cycles = cycles;
        self.last_epoch = epoch;
    }
}

/// Everything behind one lock, so any snapshot — JSON or ranking — is a
/// single consistent view (`total_requests` always equals the sum over the
/// shape entries, even under concurrent writers).
#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<AnyGemmConfig, ShapeEntry>,
    epoch: u64,
    total_requests: u64,
}

/// Thread-safe registry of per-shape traffic statistics with exponentially
/// decayed hot-shape tracking and a persistent snapshot format (see the
/// module docs).
#[derive(Debug)]
pub struct TelemetryRegistry {
    inner: Mutex<Inner>,
    /// Per-epoch retention factor of the decayed counters (in `(0, 1]`).
    retention: f64,
    machine_fingerprint: Option<u64>,
}

impl Default for TelemetryRegistry {
    fn default() -> Self {
        TelemetryRegistry::new()
    }
}

impl TelemetryRegistry {
    /// Lock the registry, recovering from poison instead of panicking: the
    /// counters are structurally valid at every instruction boundary, so a
    /// writer that panicked mid-update costs at most one partially-counted
    /// group — the recorded traffic is kept, not cleared.
    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        sme_runtime::poison::lock(&self.inner, "telemetry registry")
    }

    /// An empty registry with the default decay half-life
    /// ([`DEFAULT_DECAY_HALF_LIFE`] epochs), unstamped.
    pub fn new() -> Self {
        TelemetryRegistry::with_half_life(DEFAULT_DECAY_HALF_LIFE)
    }

    /// An empty registry whose decayed counters halve every `half_life`
    /// epochs (values < 0.5 clamp to 0.5; `f64::INFINITY` disables decay).
    pub fn with_half_life(half_life: f64) -> Self {
        let retention = if half_life.is_infinite() {
            1.0
        } else {
            0.5f64.powf(1.0 / half_life.max(0.5))
        };
        TelemetryRegistry {
            inner: Mutex::new(Inner::default()),
            retention,
            machine_fingerprint: None,
        }
    }

    /// An empty registry stamped with `machine`'s timing fingerprint (the
    /// cycles it will record are simulated on that model).
    pub fn for_machine(machine: &MachineConfig) -> Self {
        let mut registry = TelemetryRegistry::new();
        registry.stamp(machine);
        registry
    }

    /// Stamp the registry with `machine`'s timing fingerprint, declaring
    /// that its recorded cycles were simulated on that model.
    pub fn stamp(&mut self, machine: &MachineConfig) {
        self.machine_fingerprint = Some(machine.fingerprint());
    }

    /// The recorded machine fingerprint, if the registry is stamped.
    pub fn machine_fingerprint(&self) -> Option<u64> {
        self.machine_fingerprint
    }

    /// The per-epoch retention factor of the decayed counters.
    pub fn retention(&self) -> f64 {
        self.retention
    }

    /// The current epoch (number of [`advance_epoch`] calls — one per
    /// dispatched batch under the router).
    ///
    /// [`advance_epoch`]: TelemetryRegistry::advance_epoch
    pub fn epoch(&self) -> u64 {
        self.lock_inner().epoch
    }

    /// Advance the decay clock by one epoch. The router calls this once
    /// per dispatched batch, so "hot" means "hot over the last few dozen
    /// batches", not "hot since boot".
    pub fn advance_epoch(&self) {
        self.lock_inner().epoch += 1;
    }

    /// Record one dispatched group: `requests` executions of `config` on
    /// `backend` costing `cycles` simulated cycles in total, whose single
    /// kernel fetch hit (`cache_hit`) or compiled.
    pub fn record_group(
        &self,
        config: &AnyGemmConfig,
        backend: Backend,
        requests: u64,
        cycles: f64,
        cache_hit: bool,
    ) {
        let mut inner = self.lock_inner();
        let epoch = inner.epoch;
        let retention = self.retention;
        inner.total_requests += requests;
        let entry = inner.entries.entry(*config).or_default();
        entry.roll_to(epoch, retention);
        entry.requests += requests;
        entry.cycles += cycles;
        entry.decayed_requests += requests as f64;
        entry.decayed_cycles += cycles;
        match backend {
            Backend::Sme => entry.sme_requests += requests,
            Backend::Neon => entry.neon_requests += requests,
        }
        if cache_hit {
            entry.cache_hits += 1;
        } else {
            entry.cache_misses += 1;
        }
    }

    /// Fold a whole dispatched batch into the registry (one
    /// [`record_group`](TelemetryRegistry::record_group) per per-config
    /// report). Does **not** advance the epoch; the caller decides the
    /// decay clock (the router ticks it once per batch).
    pub fn record_batch(&self, report: &BatchReport) {
        for group in &report.per_config {
            self.record_group(
                &group.config,
                group.backend,
                group.requests as u64,
                group.stats.cycles,
                group.cache_hit,
            );
        }
    }

    /// Number of distinct shapes seen.
    pub fn len(&self) -> usize {
        self.lock_inner().entries.len()
    }

    /// `true` if no traffic has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total requests recorded across all shapes.
    pub fn total_requests(&self) -> u64 {
        self.lock_inner().total_requests
    }

    /// Statistics for one shape, if it has been seen.
    pub fn shape(&self, config: &AnyGemmConfig) -> Option<ShapeStats> {
        let inner = self.lock_inner();
        inner
            .entries
            .get(config)
            .map(|e| stats_for(config, e, inner.epoch, self.retention))
    }

    /// The `n` hottest shapes, ranked by **decayed cumulative cycles**
    /// (the cost the shape is imposing on the machine *lately*), with
    /// decayed requests, raw requests and then the shape itself as
    /// tie-breaks — the order is fully deterministic.
    ///
    /// A low-request/high-cycles shape that dominates actual compute
    /// outranks a chatty-but-cheap shape, so `Router::pretune_hot` spends
    /// its tuning budget where the cycles are.
    pub fn top_shapes(&self, n: usize) -> Vec<ShapeStats> {
        let inner = self.lock_inner();
        let mut all = collect_stats(&inner, self.retention);
        rank_shapes(&mut all);
        all.truncate(n);
        all
    }

    /// Discard all recorded traffic (the epoch clock keeps running).
    pub fn clear(&self) {
        let mut inner = self.lock_inner();
        inner.entries.clear();
        inner.total_requests = 0;
    }

    /// Render the registry as a JSON document (shapes in
    /// [`top_shapes`](TelemetryRegistry::top_shapes) order), the format
    /// the README documents for operational dashboards and the payload of
    /// [`TelemetryRegistry::save`].
    ///
    /// The whole document is built from **one** lock acquisition, so the
    /// snapshot is internally consistent even under concurrent writers:
    /// `total_requests` always equals the sum of the per-shape `requests`.
    pub fn to_json(&self) -> String {
        #[derive(Serialize)]
        struct Shape {
            dtype: Dtype,
            m: usize,
            n: usize,
            k: usize,
            lda: Option<usize>,
            ldb: Option<usize>,
            ldc: Option<usize>,
            b_layout: Option<BLayout>,
            beta: Option<Beta>,
            c_transfer: sme_gemm::ZaTransferStrategy,
            k_unroll: usize,
            schedule: Option<sme_gemm::KernelSchedule>,
            requests: u64,
            cycles: f64,
            decayed_requests: f64,
            decayed_cycles: f64,
            sme_requests: u64,
            neon_requests: u64,
            cache_hits: u64,
            cache_misses: u64,
            cache_hit_rate: f64,
        }
        #[derive(Serialize)]
        struct Doc {
            version: u64,
            machine_fingerprint: Option<String>,
            retention: f64,
            total_requests: u64,
            shapes: Vec<Shape>,
        }
        // One lock: totals and shapes come from the same consistent view.
        let (total_requests, shapes) = {
            let inner = self.lock_inner();
            let mut all = collect_stats(&inner, self.retention);
            rank_shapes(&mut all);
            (inner.total_requests, all)
        };
        let doc = Doc {
            version: TELEMETRY_SNAPSHOT_VERSION,
            machine_fingerprint: self.machine_fingerprint.map(|fp| format!("{fp:016x}")),
            retention: self.retention,
            total_requests,
            shapes: shapes
                .into_iter()
                .map(|s| {
                    let (c_transfer, k_unroll) = match &s.config {
                        AnyGemmConfig::Fp32(c) => (c.c_transfer, c.k_unroll),
                        AnyGemmConfig::WideningBf16(c) => (c.c_transfer, c.k_unroll),
                    };
                    Shape {
                        dtype: s.config.dtype(),
                        m: s.config.m(),
                        n: s.config.n(),
                        k: s.config.k(),
                        lda: s.config.as_fp32().map(|c| c.lda),
                        ldb: s.config.as_fp32().map(|c| c.ldb),
                        ldc: s.config.as_fp32().map(|c| c.ldc),
                        b_layout: s.config.as_fp32().map(|c| c.b_layout),
                        beta: s.config.as_fp32().map(|c| c.beta),
                        c_transfer,
                        k_unroll,
                        schedule: s.config.as_fp32().map(|c| c.schedule),
                        requests: s.requests,
                        cycles: s.cycles,
                        decayed_requests: s.decayed_requests,
                        decayed_cycles: s.decayed_cycles,
                        sme_requests: s.sme_requests,
                        neon_requests: s.neon_requests,
                        cache_hits: s.cache_hits,
                        cache_misses: s.cache_misses,
                        cache_hit_rate: s.cache_hit_rate(),
                    }
                })
                .collect(),
        };
        serde_json::to_string_pretty(&doc).expect("shim serialization is total")
    }

    /// Parse a snapshot produced by [`TelemetryRegistry::to_json`].
    ///
    /// Decayed counters load normalized to epoch 0 of the new registry, so
    /// the relative decayed ranking at snapshot time is preserved exactly
    /// across the restart.
    pub fn from_json(text: &str) -> Result<Self, TelemetryError> {
        let fail = |msg: &str| TelemetryError::Format(msg.to_string());
        let doc = serde_json::from_str(text)
            .map_err(|e| TelemetryError::Format(format!("invalid JSON: {e}")))?;
        match doc.get("version").and_then(|v| v.as_u64()) {
            Some(TELEMETRY_SNAPSHOT_VERSION) => {}
            Some(other) => {
                return Err(TelemetryError::Format(format!(
                    "unsupported telemetry snapshot version {other} \
                     (expected {TELEMETRY_SNAPSHOT_VERSION})"
                )))
            }
            None => return Err(fail("missing `version` field")),
        }
        let machine_fingerprint = match doc.get("machine_fingerprint") {
            None | Some(serde_json::Value::Null) => None,
            Some(v) => {
                let hex = v
                    .as_str()
                    .ok_or_else(|| fail("`machine_fingerprint` must be a hex string"))?;
                Some(
                    u64::from_str_radix(hex, 16)
                        .map_err(|_| fail(&format!("invalid machine fingerprint `{hex}`")))?,
                )
            }
        };
        let retention = doc
            .get("retention")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| fail("missing number field `retention`"))?;
        if !(retention > 0.0 && retention <= 1.0) {
            return Err(fail(&format!(
                "retention {retention} outside (0, 1]; the decay would diverge"
            )));
        }
        let shapes = doc
            .get("shapes")
            .and_then(|v| v.as_array())
            .ok_or_else(|| fail("missing `shapes` array"))?;
        let mut entries = HashMap::new();
        let mut total_requests = 0u64;
        for shape in shapes {
            let dim = |name: &str| -> Result<usize, TelemetryError> {
                shape
                    .get(name)
                    .and_then(|v| v.as_u64())
                    .map(|v| v as usize)
                    .ok_or_else(|| fail(&format!("shape missing integer field `{name}`")))
            };
            let count = |name: &str| -> Result<u64, TelemetryError> {
                shape
                    .get(name)
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| fail(&format!("shape missing integer field `{name}`")))
            };
            let number = |name: &str| -> Result<f64, TelemetryError> {
                shape
                    .get(name)
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| fail(&format!("shape missing number field `{name}`")))
            };
            let text_field = |name: &str| -> Result<&str, TelemetryError> {
                shape
                    .get(name)
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| fail(&format!("shape missing string field `{name}`")))
            };
            let dtype_name = text_field("dtype")?;
            let dtype = Dtype::from_name(dtype_name)
                .ok_or_else(|| fail(&format!("unknown dtype `{dtype_name}`")))?;
            let c_transfer = match text_field("c_transfer")? {
                "Direct" => sme_gemm::ZaTransferStrategy::Direct,
                "TwoStep" => sme_gemm::ZaTransferStrategy::TwoStep,
                other => return Err(fail(&format!("unknown c_transfer `{other}`"))),
            };
            let k_unroll = dim("k_unroll")?;
            let config = match dtype {
                Dtype::Fp32 => {
                    let b_layout = match text_field("b_layout")? {
                        "RowMajor" => BLayout::RowMajor,
                        "ColMajor" => BLayout::ColMajor,
                        other => return Err(fail(&format!("unknown b_layout `{other}`"))),
                    };
                    let beta = match text_field("beta")? {
                        "Zero" => Beta::Zero,
                        "One" => Beta::One,
                        other => return Err(fail(&format!("unknown beta `{other}`"))),
                    };
                    // Snapshots written before the schedule dimension have
                    // no `schedule` field: those kernels were all serial.
                    let schedule = match shape.get("schedule") {
                        None | Some(serde_json::Value::Null) => sme_gemm::KernelSchedule::Serial,
                        Some(v) => {
                            let name = v
                                .as_str()
                                .ok_or_else(|| fail("`schedule` must be a string"))?;
                            sme_gemm::KernelSchedule::from_name(name)
                                .ok_or_else(|| fail(&format!("unknown schedule `{name}`")))?
                        }
                    };
                    let cfg = GemmConfig {
                        m: dim("m")?,
                        n: dim("n")?,
                        k: dim("k")?,
                        lda: dim("lda")?,
                        ldb: dim("ldb")?,
                        ldc: dim("ldc")?,
                        b_layout,
                        beta,
                        c_transfer,
                        k_unroll,
                        schedule,
                    };
                    cfg.validate()
                        .map_err(|e| fail(&format!("invalid recorded configuration: {e}")))?;
                    AnyGemmConfig::Fp32(cfg)
                }
                Dtype::WideningBf16 => {
                    let cfg = WideningGemmConfig::new(dim("m")?, dim("n")?, dim("k")?)
                        .map_err(|e| fail(&format!("invalid recorded configuration: {e}")))?
                        .with_c_transfer(c_transfer)
                        .with_k_unroll(k_unroll);
                    AnyGemmConfig::WideningBf16(cfg)
                }
            };
            let requests = count("requests")?;
            total_requests = total_requests.saturating_add(requests);
            entries.insert(
                config,
                ShapeEntry {
                    requests,
                    cycles: number("cycles")?,
                    decayed_requests: number("decayed_requests")?,
                    decayed_cycles: number("decayed_cycles")?,
                    last_epoch: 0,
                    sme_requests: count("sme_requests")?,
                    neon_requests: count("neon_requests")?,
                    cache_hits: count("cache_hits")?,
                    cache_misses: count("cache_misses")?,
                },
            );
        }
        Ok(TelemetryRegistry {
            inner: Mutex::new(Inner {
                entries,
                epoch: 0,
                total_requests,
            }),
            retention,
            machine_fingerprint,
        })
    }

    /// Write the snapshot JSON document to a file — atomically (temp +
    /// fsync + rename), with a checksum trailer, keeping the previous
    /// generation at `<path>.bak` (see [`sme_runtime::save_snapshot`]).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TelemetryError> {
        sme_runtime::save_snapshot(path.as_ref(), &self.to_json())?;
        Ok(())
    }

    /// Load a snapshot previously written with [`TelemetryRegistry::save`].
    /// The checksum trailer is verified when present; trailer-less legacy
    /// documents still load.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TelemetryError> {
        match sme_runtime::read_snapshot(path.as_ref()) {
            Ok(text) => TelemetryRegistry::from_json(&text),
            Err(sme_runtime::SnapshotError::Io(e)) => Err(TelemetryError::Io(e)),
            Err(sme_runtime::SnapshotError::Corrupt(msg)) => Err(TelemetryError::Format(msg)),
        }
    }

    /// Compare the snapshot's fingerprint against `machine`'s current
    /// timing parameters.
    pub fn fingerprint_check(&self, machine: &MachineConfig) -> FingerprintCheck {
        let current = machine.fingerprint();
        match self.machine_fingerprint {
            None => FingerprintCheck::Unstamped,
            Some(stored) if stored == current => FingerprintCheck::Match,
            Some(stored) => FingerprintCheck::Mismatch { stored, current },
        }
    }

    /// Load a persisted snapshot and validate it against `machine`'s
    /// timing fingerprint, mirroring `PlanStore::load_checked`.
    ///
    /// On a fingerprint mismatch the stale traffic is **discarded** — the
    /// returned registry is empty but stamped for `machine`, since the
    /// snapshot's cycle counts (and therefore its hot-shape ranking) were
    /// simulated against a different calibration — and a warning naming
    /// both fingerprints is printed to stderr. Unstamped snapshots load
    /// as-is with [`FingerprintCheck::Unstamped`].
    /// *Corruption* is handled differently from staleness: if the primary
    /// document is unreadable, fails its checksum trailer, or does not
    /// parse, the `.bak` previous generation (kept by every
    /// [`TelemetryRegistry::save`]) is tried before giving up, and the
    /// original error is returned only when both generations are bad.
    pub fn load_checked(
        path: impl AsRef<Path>,
        machine: &MachineConfig,
    ) -> Result<(Self, FingerprintCheck), TelemetryError> {
        let path = path.as_ref();
        let registry = match TelemetryRegistry::load(path) {
            Ok(registry) => registry,
            Err(TelemetryError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(TelemetryError::Io(e));
            }
            Err(primary) => match TelemetryRegistry::load(sme_runtime::backup_path(path)) {
                Ok(previous) => {
                    eprintln!(
                        "warning: telemetry snapshot {} is corrupt ({primary}); \
                         recovered {} shape(s) from the previous generation",
                        path.display(),
                        previous.len()
                    );
                    previous
                }
                Err(_) => return Err(primary),
            },
        };
        let check = registry.fingerprint_check(machine);
        if let FingerprintCheck::Mismatch { stored, current } = check {
            eprintln!(
                "warning: telemetry snapshot {} was recorded against machine \
                 fingerprint {stored:016x} but the current model is {current:016x}; \
                 discarding its {} stale shape(s) — the decayed ranking will rebuild",
                path.display(),
                registry.len()
            );
            return Ok((TelemetryRegistry::for_machine(machine), check));
        }
        Ok((registry, check))
    }

    /// Replace this registry's recorded traffic and decay state with
    /// `other`'s (the restore half of a restart: the router owns its
    /// registry, so a loaded snapshot is absorbed in place).
    pub fn restore_from(&self, other: TelemetryRegistry) {
        let mut inner = self.lock_inner();
        *inner = other.inner.into_inner().unwrap_or_else(|p| p.into_inner());
    }

    /// Load with the full degradation ladder: primary generation → `.bak`
    /// previous generation → empty, applying the fingerprint staleness
    /// check to whichever generation served.
    ///
    /// Unlike [`TelemetryRegistry::load_checked`] this never fails:
    /// *corruption* (torn writes, bit-flips, unparseable JSON, injected
    /// I/O faults) recovers from the previous generation, *staleness*
    /// (fingerprint mismatch) discards to an empty re-stamped registry,
    /// and a missing file is a fresh start. The [`RecoveredTelemetry`]
    /// says which rung served.
    pub fn load_recovered(path: impl AsRef<Path>, machine: &MachineConfig) -> RecoveredTelemetry {
        let path = path.as_ref();
        let recovered =
            sme_runtime::load_with_recovery(path, |text| TelemetryRegistry::from_json(text));
        let source = recovered.source;
        let detail = recovered.detail;
        if let Some(d) = detail.as_deref() {
            eprintln!("warning: telemetry snapshot {}: {d}", path.display());
        }
        match recovered.value {
            Some(registry) => {
                let check = registry.fingerprint_check(machine);
                if let FingerprintCheck::Mismatch { stored, current } = check {
                    eprintln!(
                        "warning: telemetry snapshot {} was recorded against machine \
                         fingerprint {stored:016x} but the current model is {current:016x}; \
                         discarding its {} stale shape(s) — the decayed ranking will rebuild",
                        path.display(),
                        registry.len()
                    );
                    return RecoveredTelemetry {
                        registry: TelemetryRegistry::for_machine(machine),
                        check,
                        source,
                        detail,
                    };
                }
                RecoveredTelemetry {
                    registry,
                    check,
                    source,
                    detail,
                }
            }
            None => RecoveredTelemetry {
                registry: TelemetryRegistry::for_machine(machine),
                check: FingerprintCheck::Match,
                source,
                detail,
            },
        }
    }
}

/// The outcome of [`TelemetryRegistry::load_recovered`]: the registry that
/// will serve, its fingerprint verdict, and which on-disk generation it
/// came from.
#[derive(Debug)]
pub struct RecoveredTelemetry {
    /// The registry to serve from (possibly empty).
    pub registry: TelemetryRegistry,
    /// Fingerprint verdict for the generation that served.
    pub check: FingerprintCheck,
    /// Which generation served.
    pub source: sme_runtime::SnapshotSource,
    /// Why the primary (and possibly backup) generation was rejected.
    pub detail: Option<String>,
}

fn collect_stats(inner: &Inner, retention: f64) -> Vec<ShapeStats> {
    inner
        .entries
        .iter()
        .map(|(c, e)| stats_for(c, e, inner.epoch, retention))
        .collect()
}

/// Sort hottest-first: decayed cycles, then decayed requests, then raw
/// requests, then the deterministic shape key.
fn rank_shapes(all: &mut [ShapeStats]) {
    all.sort_by(|a, b| {
        b.decayed_cycles
            .partial_cmp(&a.decayed_cycles)
            .expect("cycles are finite")
            .then(
                b.decayed_requests
                    .partial_cmp(&a.decayed_requests)
                    .expect("requests are finite"),
            )
            .then(b.requests.cmp(&a.requests))
            .then(a.config.ordering_key().cmp(&b.config.ordering_key()))
    });
}

fn stats_for(config: &AnyGemmConfig, e: &ShapeEntry, epoch: u64, retention: f64) -> ShapeStats {
    let (decayed_requests, decayed_cycles) = e.decayed_at(epoch, retention);
    ShapeStats {
        config: *config,
        requests: e.requests,
        cycles: e.cycles,
        decayed_requests,
        decayed_cycles,
        sme_requests: e.sme_requests,
        neon_requests: e.neon_requests,
        cache_hits: e.cache_hits,
        cache_misses: e.cache_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sme_gemm::GemmConfig;

    #[test]
    fn groups_accumulate_per_shape() {
        let telemetry = TelemetryRegistry::new();
        let hot: AnyGemmConfig = GemmConfig::abt(32, 32, 16).into();
        let cold: AnyGemmConfig = GemmConfig::abt(64, 64, 16).into();
        telemetry.record_group(&hot, Backend::Sme, 5, 100.0, false);
        telemetry.record_group(&hot, Backend::Sme, 7, 140.0, true);
        telemetry.record_group(&hot, Backend::Neon, 2, 40.0, true);
        telemetry.record_group(&cold, Backend::Sme, 1, 900.0, false);

        assert_eq!(telemetry.len(), 2);
        assert_eq!(telemetry.total_requests(), 15);
        let stats = telemetry.shape(&hot).unwrap();
        assert_eq!(stats.requests, 14);
        assert_eq!(stats.cycles, 280.0);
        assert_eq!(stats.sme_requests, 12);
        assert_eq!(stats.neon_requests, 2);
        assert_eq!((stats.cache_hits, stats.cache_misses), (2, 1));
        assert!((stats.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.dominant_backend(), Backend::Sme);

        // Ranking is by cumulative cycles (cost), not request count: the
        // rarely-called shape that burns 900 cycles per call dominates the
        // machine and leads the ranking despite 14× fewer requests.
        let top = telemetry.top_shapes(10);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].config, cold);
        assert_eq!(top[1].config, hot);
        assert_eq!(telemetry.top_shapes(1).len(), 1);

        telemetry.clear();
        assert!(telemetry.is_empty());
        assert_eq!(telemetry.shape(&hot), None);
    }

    #[test]
    fn decayed_ranking_follows_shifting_traffic() {
        // Half-life of one epoch: yesterday's traffic fades fast.
        let telemetry = TelemetryRegistry::with_half_life(1.0);
        let yesterday: AnyGemmConfig = GemmConfig::abt(64, 64, 64).into();
        let today: AnyGemmConfig = GemmConfig::abt(32, 32, 32).into();

        // Epochs 0..4: heavy traffic on `yesterday`.
        for _ in 0..4 {
            telemetry.record_group(&yesterday, Backend::Sme, 10, 1000.0, true);
            telemetry.advance_epoch();
        }
        assert_eq!(telemetry.top_shapes(1)[0].config, yesterday);

        // Epochs 4..10: traffic shifts to `today`, with a fraction of the
        // per-epoch volume — all-time totals still favour `yesterday`.
        for _ in 0..6 {
            telemetry.record_group(&today, Backend::Sme, 2, 300.0, true);
            telemetry.advance_epoch();
        }
        let top = telemetry.top_shapes(2);
        assert_eq!(top[0].config, today, "decayed ranking follows the shift");
        let y = telemetry.shape(&yesterday).unwrap();
        let t = telemetry.shape(&today).unwrap();
        assert!(
            y.cycles > t.cycles,
            "all-time totals still favour yesterday"
        );
        assert!(
            y.decayed_cycles < t.decayed_cycles,
            "decayed cycles do not: {} vs {}",
            y.decayed_cycles,
            t.decayed_cycles
        );
        // The decayed counters never exceed the raw totals.
        assert!(y.decayed_requests <= y.requests as f64 + 1e-9);
        assert!(t.decayed_cycles <= t.cycles + 1e-9);
    }

    #[test]
    fn ranking_prefers_cycles_with_request_tie_breaks() {
        let telemetry = TelemetryRegistry::new();
        let chatty: AnyGemmConfig = GemmConfig::abt(16, 4, 4).into();
        let heavy: AnyGemmConfig = GemmConfig::abt(96, 96, 64).into();
        let twin: AnyGemmConfig = GemmConfig::abt(96, 96, 32).into();
        // 100 cheap requests vs 2 expensive ones.
        telemetry.record_group(&chatty, Backend::Neon, 100, 500.0, true);
        telemetry.record_group(&heavy, Backend::Sme, 2, 90_000.0, true);
        // Same cycles as `heavy`, fewer requests: loses the tie-break.
        telemetry.record_group(&twin, Backend::Sme, 1, 90_000.0, true);
        let top = telemetry.top_shapes(3);
        assert_eq!(top[0].config, heavy, "cycles outrank request counts");
        assert_eq!(top[1].config, twin, "requests break the cycles tie");
        assert_eq!(top[2].config, chatty);
    }

    #[test]
    fn json_snapshot_lists_shapes_with_hit_rates() {
        let telemetry = TelemetryRegistry::new();
        telemetry.record_group(
            &GemmConfig::abt(16, 4, 8).into(),
            Backend::Neon,
            3,
            120.0,
            false,
        );
        let json = telemetry.to_json();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"total_requests\": 3"));
        assert!(json.contains("\"neon_requests\": 3"));
        assert!(json.contains("\"cache_hit_rate\": 0"));
        // The document is machine-readable with the vendored parser.
        let value = serde_json::from_str(&json).unwrap();
        assert_eq!(
            value
                .get("shapes")
                .and_then(|s| s.as_array())
                .map(|a| a.len()),
            Some(1)
        );
    }

    #[test]
    fn json_snapshot_is_consistent_under_concurrent_writers() {
        // Regression test for the old two-lock snapshot: `total_requests`
        // and the shape list were read under separate lock acquisitions,
        // so a concurrent `record_group` could land between them and the
        // document's total disagreed with the sum over its shapes. The
        // snapshot is now built from one consistent view.
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let telemetry = Arc::new(TelemetryRegistry::new());
        let stop = Arc::new(AtomicBool::new(false));
        let shapes: Vec<AnyGemmConfig> = (1..=4)
            .map(|i| GemmConfig::abt(16 * i, 16, 8).into())
            .collect();

        std::thread::scope(|scope| {
            for offset in 0..3 {
                let telemetry = telemetry.clone();
                let stop = stop.clone();
                let shapes = shapes.clone();
                scope.spawn(move || {
                    let mut i = offset;
                    while !stop.load(Ordering::Relaxed) {
                        let cfg = &shapes[i % shapes.len()];
                        telemetry.record_group(cfg, Backend::Sme, 3, 10.0, true);
                        i += 1;
                    }
                });
            }
            for _ in 0..50 {
                let doc = serde_json::from_str(&telemetry.to_json()).unwrap();
                let total = doc
                    .get("total_requests")
                    .and_then(|v| v.as_u64())
                    .expect("snapshot carries the total");
                let sum: u64 = doc
                    .get("shapes")
                    .and_then(|v| v.as_array())
                    .expect("snapshot carries the shapes")
                    .iter()
                    .map(|s| s.get("requests").and_then(|v| v.as_u64()).unwrap())
                    .sum();
                assert_eq!(
                    total, sum,
                    "snapshot total must equal the sum over its shapes"
                );
            }
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn snapshot_round_trips_and_preserves_decayed_ranking() {
        let machine = MachineConfig::apple_m4();
        let telemetry = TelemetryRegistry::for_machine(&machine);
        let fp32: AnyGemmConfig = GemmConfig::abt(48, 48, 16).into();
        let wide: AnyGemmConfig = WideningGemmConfig::new(32, 32, 8).unwrap().into();
        telemetry.record_group(&fp32, Backend::Sme, 4, 4000.0, false);
        telemetry.advance_epoch();
        telemetry.advance_epoch();
        telemetry.record_group(&wide, Backend::Neon, 2, 900.0, true);

        let path = std::env::temp_dir().join("sme_router_telemetry_roundtrip.json");
        telemetry.save(&path).unwrap();
        let (loaded, check) = TelemetryRegistry::load_checked(&path, &machine).unwrap();
        assert_eq!(check, FingerprintCheck::Match);
        assert_eq!(loaded.total_requests(), 6);
        assert_eq!(loaded.len(), 2);

        // Raw totals and backend splits survive…
        let f = loaded.shape(&fp32).unwrap();
        assert_eq!((f.requests, f.sme_requests, f.cache_misses), (4, 4, 1));
        assert_eq!(f.cycles, 4000.0);
        // …and the decayed values come back normalized, preserving the
        // ranking at snapshot time exactly.
        let before: Vec<AnyGemmConfig> =
            telemetry.top_shapes(10).iter().map(|s| s.config).collect();
        let after: Vec<AnyGemmConfig> = loaded.top_shapes(10).iter().map(|s| s.config).collect();
        assert_eq!(before, after);
        let orig = telemetry.shape(&fp32).unwrap();
        assert!((f.decayed_cycles - orig.decayed_cycles).abs() < 1e-9);
        assert!(f.decayed_cycles < f.cycles, "two epochs of decay applied");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_fingerprint_snapshots_are_discarded() {
        let machine = MachineConfig::apple_m4();
        let telemetry = TelemetryRegistry::for_machine(&machine);
        telemetry.record_group(
            &GemmConfig::abt(32, 32, 8).into(),
            Backend::Sme,
            5,
            50.0,
            true,
        );
        let path = std::env::temp_dir().join("sme_router_telemetry_stale.json");
        telemetry.save(&path).unwrap();

        let mut recalibrated = MachineConfig::apple_m4();
        recalibrated.p_core.clock_ghz = 4.0;
        let (loaded, check) = TelemetryRegistry::load_checked(&path, &recalibrated).unwrap();
        assert!(matches!(check, FingerprintCheck::Mismatch { .. }));
        assert!(loaded.is_empty(), "stale traffic must not seed the ranking");
        assert_eq!(
            loaded.machine_fingerprint(),
            Some(recalibrated.fingerprint()),
            "the returned registry is stamped for the current machine"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_snapshots_are_rejected_with_context() {
        let cases = [
            ("not json", "invalid JSON"),
            ("{}", "version"),
            (
                r#"{"version": 9, "retention": 0.9, "shapes": []}"#,
                "version 9",
            ),
            (r#"{"version": 1, "retention": 0.9}"#, "shapes"),
            (
                r#"{"version": 1, "retention": 2.5, "shapes": []}"#,
                "retention",
            ),
            (
                r#"{"version": 1, "retention": 0.9, "shapes": [{}]}"#,
                "missing",
            ),
            (
                r#"{"version": 1, "machine_fingerprint": "xyz", "retention": 0.9,
                    "shapes": []}"#,
                "machine fingerprint",
            ),
            (
                r#"{"version": 1, "retention": 0.9, "shapes": [{"dtype": "Fp16",
                    "m": 8, "n": 8, "k": 8, "c_transfer": "TwoStep", "k_unroll": 1}]}"#,
                "unknown dtype",
            ),
            (
                r#"{"version": 1, "retention": 0.9, "shapes": [{"dtype": "Fp32",
                    "m": 0, "n": 8, "k": 8, "lda": 8, "ldb": 8, "ldc": 8,
                    "b_layout": "RowMajor", "beta": "One", "c_transfer": "TwoStep",
                    "k_unroll": 1, "requests": 1, "cycles": 1,
                    "decayed_requests": 1, "decayed_cycles": 1, "sme_requests": 1,
                    "neon_requests": 0, "cache_hits": 1, "cache_misses": 0}]}"#,
                "invalid recorded configuration",
            ),
        ];
        for (text, needle) in cases {
            match TelemetryRegistry::from_json(text) {
                Err(TelemetryError::Format(msg)) => {
                    assert!(msg.contains(needle), "{needle:?} not in {msg:?}")
                }
                other => panic!("expected Format error for {text:?}, got {other:?}"),
            }
        }
    }
}
