//! Routing policies: which engine should execute a shape?
//!
//! The paper's Fig. 1 establishes the two engine classes — the shared SME
//! outer-product units and the core-private Neon FMLA pipes — and the
//! modelled crossover between them: an SME kernel pays a fixed
//! streaming-mode entry/exit cost (~100 cycles on the calibrated M4 model)
//! plus ZA accumulator transfers, so tiny or thin shapes finish sooner on
//! Neon, while anything with real arithmetic density saturates the SME
//! units' ~18× per-instruction advantage.
//!
//! Policies answer the per-shape question with increasing fidelity:
//!
//! * [`RoutingPolicy::SmeOnly`] / [`RoutingPolicy::NeonOnly`] pin an
//!   engine (the pre-router behaviour, and a debugging tool);
//! * [`RoutingPolicy::Heuristic`] compares closed-form cycle estimates —
//!   zero simulation, wrong only near the crossover;
//! * [`RoutingPolicy::Measured`] (the default) timing-simulates both
//!   backends' default kernels once per shape and memoizes the verdict —
//!   exact in the model, at one-off probe cost.
//!
//! Every traffic-adaptive policy defers to an installed tuned winner
//! first: `pretune_hot` turns telemetry into exact routing decisions.

use sme_gemm::{
    analytic_k_step_cycles, neon_supports, plan_heterogeneous, sme_widening_supports,
    AnyGemmConfig, Backend, GemmConfig, WideningGemmConfig,
};
use sme_machine::{MachineConfig, OpKind};

/// How the router picks a backend for a configuration (see the module
/// docs for the trade-offs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Always dispatch the SME generator — the pre-router behaviour.
    SmeOnly,
    /// Dispatch the Neon generator wherever it supports the shape (SME
    /// remains the fallback for shapes off Neon's 16×4 grid).
    NeonOnly,
    /// Compare the analytic cycle estimates of [`estimate_backend_cycles`];
    /// no simulation, approximate near the crossover.
    Heuristic,
    /// Timing-simulate both backends' default kernels once per shape and
    /// memoize the verdict (exact in the model).
    #[default]
    Measured,
}

/// Closed-form single-core cycle estimate for dispatching `cfg` on
/// `backend`, or `None` if the backend cannot compile the shape.
///
/// This is a routing heuristic, not a simulator: it accounts for the terms
/// that decide the SME/Neon crossover — SME's fixed `smstart`/`smstop`
/// cost, per-k-step issue cost ([`sme_gemm::analytic_k_step_cycles`]) and
/// accumulator traffic versus Neon's FMLA and load throughput — and is
/// accurate to a few tens of percent, which is enough to rank the engines
/// everywhere except within a narrow band around the crossover (where
/// [`RoutingPolicy::Measured`] or pre-tuning decides exactly).
pub fn estimate_backend_cycles(
    cfg: &GemmConfig,
    backend: Backend,
    machine: &MachineConfig,
) -> Option<f64> {
    let p = &machine.p_core;
    let rate = |op: OpKind| machine.mem.rate(op);
    let c_bytes = (cfg.m * cfg.n * 4) as f64;
    match backend {
        Backend::Sme => {
            cfg.validate().ok()?;
            let plan = plan_heterogeneous(cfg.m, cfg.n);
            // smstart + smstop dominate tiny shapes.
            let streaming = 2.0 * p.op(OpKind::SmeControl).interval();
            let contraction = cfg.k as f64 * analytic_k_step_cycles(&plan, machine);
            // The C block crosses the ZA array twice (load + store).
            let c_traffic =
                c_bytes / rate(OpKind::LoadLd1Multi4) + c_bytes / rate(OpKind::StoreStrZa);
            Some(streaming + contraction + c_traffic)
        }
        Backend::Neon => {
            neon_supports(cfg).ok()?;
            let blocks = ((cfg.m / 16) * (cfg.n / 4)) as f64;
            let fmla = p.op(OpKind::NeonFmla);
            // Per k step and 16×4 block: 16 FMLA, 80 bytes of A/B loads,
            // two address bumps and the loop branch.
            let per_step = 16.0 / fmla.per_cycle
                + 80.0 / rate(OpKind::NeonLoad)
                + 2.0 * p.op(OpKind::IntAlu).interval()
                + p.op(OpKind::Branch).interval();
            let contraction = blocks * cfg.k as f64 * per_step;
            let c_traffic = c_bytes / rate(OpKind::NeonLoad) + c_bytes / rate(OpKind::NeonStore);
            // Pointer setup per block.
            let setup = blocks * 6.0 * p.op(OpKind::IntAlu).interval();
            Some(contraction + c_traffic + setup)
        }
    }
}

/// Closed-form single-core cycle estimate for dispatching a BF16 widening
/// `cfg` on `backend`, or `None` if the backend cannot compile the shape —
/// the widening twin of [`estimate_backend_cycles`].
///
/// The SME side pays the same streaming-mode entry/exit and accumulator
/// traffic as FP32, but halves the contraction-step operand bytes (two
/// contraction steps per BFMOPA); the Neon side models the `BFMMLA` 8×2
/// blocking's loads, matrix ops and the `ldr d`/`str d` + lane-shuffle C
/// handling.
pub fn estimate_widening_backend_cycles(
    cfg: &WideningGemmConfig,
    backend: Backend,
    machine: &MachineConfig,
) -> Option<f64> {
    let p = &machine.p_core;
    let rate = |op: OpKind| machine.mem.rate(op);
    let c_bytes = (cfg.m * cfg.n * 4) as f64;
    match backend {
        Backend::Sme => {
            sme_widening_supports(cfg).ok()?;
            let streaming = 2.0 * p.op(OpKind::SmeControl).interval();
            // Per contraction pair and 32x32 block: two 2-vector BF16 loads
            // (128 bytes each) and four widening outer products.
            let blocks = ((cfg.m / 32) * (cfg.n / 32)) as f64;
            let per_pair = 2.0 * 128.0 / rate(OpKind::LoadLd1Multi2)
                + 4.0 * p.op(OpKind::SmeFmopaWide).interval();
            let contraction = (cfg.k / 2) as f64 * blocks * per_pair;
            let c_traffic =
                c_bytes / rate(OpKind::LoadLd1Multi4) + c_bytes / rate(OpKind::StoreStrZa);
            Some(streaming + contraction + c_traffic)
        }
        Backend::Neon => {
            cfg.validate().ok()?;
            let blocks = ((cfg.m / 8) * (cfg.n / 2)) as f64;
            let bfmmla = p.op(OpKind::NeonBfmmla);
            // Per quad and 8x2 block: 4 BFMMLA, 80 bytes of A/B loads, two
            // address bumps and the loop branch.
            let per_quad = 4.0 / bfmmla.per_cycle
                + 80.0 / rate(OpKind::NeonLoad)
                + 2.0 * p.op(OpKind::IntAlu).interval()
                + p.op(OpKind::Branch).interval();
            let contraction = blocks * cfg.k.div_ceil(4) as f64 * per_quad;
            // C moves through 8-byte ldr d / str d plus one ins / dup lane
            // shuffle per row pair and column.
            let c_traffic = c_bytes / rate(OpKind::NeonLoad)
                + c_bytes / rate(OpKind::NeonStore)
                + (cfg.m * cfg.n / 4) as f64 * 2.0 * p.op(OpKind::NeonOther).interval();
            let setup = blocks * 8.0 * p.op(OpKind::IntAlu).interval();
            Some(contraction + c_traffic + setup)
        }
    }
}

/// The backend the analytic estimates favour for `cfg` (SME when Neon
/// cannot compile the shape or the estimates tie).
pub fn heuristic_backend(cfg: &GemmConfig, machine: &MachineConfig) -> Backend {
    let Some(neon) = estimate_backend_cycles(cfg, Backend::Neon, machine) else {
        return Backend::Sme;
    };
    let Some(sme) = estimate_backend_cycles(cfg, Backend::Sme, machine) else {
        return Backend::Sme;
    };
    if neon < sme {
        Backend::Neon
    } else {
        Backend::Sme
    }
}

/// The backend the analytic estimates favour for a configuration of either
/// datatype (the engine that cannot compile the shape never wins; ties go
/// to SME).
pub fn heuristic_backend_any(cfg: &AnyGemmConfig, machine: &MachineConfig) -> Backend {
    match cfg {
        AnyGemmConfig::Fp32(c) => heuristic_backend(c, machine),
        AnyGemmConfig::WideningBf16(c) => {
            let sme = estimate_widening_backend_cycles(c, Backend::Sme, machine);
            let neon = estimate_widening_backend_cycles(c, Backend::Neon, machine);
            match (sme, neon) {
                (Some(s), Some(n)) if n < s => Backend::Neon,
                (Some(_), _) => Backend::Sme,
                (None, _) => Backend::Neon,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_agrees_with_the_model_on_clear_cut_shapes() {
        let machine = MachineConfig::apple_m4();
        // Tiny: streaming-mode overhead dwarfs the work → Neon.
        assert_eq!(
            heuristic_backend(&GemmConfig::abt(16, 4, 4), &machine),
            Backend::Neon
        );
        // Dense: SME's outer products win by an order of magnitude.
        assert_eq!(
            heuristic_backend(&GemmConfig::abt(64, 64, 64), &machine),
            Backend::Sme
        );
        assert_eq!(
            heuristic_backend(&GemmConfig::abt(128, 128, 128), &machine),
            Backend::Sme
        );
        // Off the Neon grid → SME regardless of size.
        assert_eq!(
            heuristic_backend(&GemmConfig::abt(33, 47, 4), &machine),
            Backend::Sme
        );
        assert_eq!(
            heuristic_backend(&GemmConfig::ab(16, 4, 4), &machine),
            Backend::Sme
        );
    }

    #[test]
    fn widening_heuristic_follows_the_grids() {
        let machine = MachineConfig::apple_m4();
        // On the SME grid, the outer-product units win by a wide margin.
        let dense: AnyGemmConfig = WideningGemmConfig::new(64, 64, 64).unwrap().into();
        assert_eq!(heuristic_backend_any(&dense, &machine), Backend::Sme);
        // Off the SME grid, only the Neon BFMMLA baseline can compile.
        let thin: AnyGemmConfig = WideningGemmConfig::new(16, 4, 4).unwrap().into();
        assert_eq!(heuristic_backend_any(&thin, &machine), Backend::Neon);
        let thin_cfg = WideningGemmConfig::new(16, 4, 4).unwrap();
        assert_eq!(
            estimate_widening_backend_cycles(&thin_cfg, Backend::Sme, &machine),
            None
        );
        assert!(
            estimate_widening_backend_cycles(&thin_cfg, Backend::Neon, &machine)
                .expect("Neon estimates exist on the envelope grid")
                .is_finite()
        );
        // FP32 dispatch through the dtype-generic entry point is unchanged.
        let fp32: AnyGemmConfig = GemmConfig::abt(16, 4, 4).into();
        assert_eq!(heuristic_backend_any(&fp32, &machine), Backend::Neon);
    }

    #[test]
    fn widening_estimates_grow_with_the_problem() {
        let machine = MachineConfig::apple_m4();
        let small = estimate_widening_backend_cycles(
            &WideningGemmConfig::new(32, 32, 8).unwrap(),
            Backend::Sme,
            &machine,
        )
        .unwrap();
        let large = estimate_widening_backend_cycles(
            &WideningGemmConfig::new(96, 96, 64).unwrap(),
            Backend::Sme,
            &machine,
        )
        .unwrap();
        assert!(small.is_finite() && large.is_finite());
        assert!(large > small);
        let small_neon = estimate_widening_backend_cycles(
            &WideningGemmConfig::new(16, 4, 8).unwrap(),
            Backend::Neon,
            &machine,
        )
        .unwrap();
        let large_neon = estimate_widening_backend_cycles(
            &WideningGemmConfig::new(64, 64, 64).unwrap(),
            Backend::Neon,
            &machine,
        )
        .unwrap();
        assert!(large_neon > small_neon);
    }

    #[test]
    fn estimates_are_finite_and_grow_with_the_problem() {
        let machine = MachineConfig::apple_m4();
        let small = estimate_backend_cycles(&GemmConfig::abt(32, 32, 8), Backend::Sme, &machine)
            .expect("SME estimates exist for every valid shape");
        let large = estimate_backend_cycles(&GemmConfig::abt(96, 96, 64), Backend::Sme, &machine)
            .expect("SME estimates exist for every valid shape");
        assert!(small.is_finite() && large.is_finite());
        assert!(large > small);
        assert_eq!(
            estimate_backend_cycles(&GemmConfig::abt(17, 4, 4), Backend::Neon, &machine),
            None,
            "Neon estimate must refuse unsupported shapes"
        );
        assert_eq!(
            estimate_backend_cycles(&GemmConfig::abt(0, 4, 4), Backend::Sme, &machine),
            None,
            "invalid configurations have no estimate"
        );
    }
}
