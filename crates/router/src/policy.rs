//! Routing policies: which engine should execute a shape?
//!
//! The paper's Fig. 1 establishes the two engine classes — the shared SME
//! outer-product units and the core-private Neon FMLA pipes — and the
//! modelled crossover between them: an SME kernel pays a fixed
//! streaming-mode entry/exit cost (~100 cycles on the calibrated M4 model)
//! plus ZA accumulator transfers, so tiny or thin shapes finish sooner on
//! Neon, while anything with real arithmetic density saturates the SME
//! units' ~18× per-instruction advantage.
//!
//! Policies answer the per-shape question with increasing fidelity:
//!
//! * [`RoutingPolicy::SmeOnly`] / [`RoutingPolicy::NeonOnly`] pin an
//!   engine (the pre-router behaviour, and a debugging tool);
//! * [`RoutingPolicy::Heuristic`] compares closed-form cycle estimates —
//!   zero simulation, wrong only near the crossover;
//! * [`RoutingPolicy::Measured`] (the default) timing-simulates both
//!   backends' default kernels once per shape and memoizes the verdict —
//!   exact in the model, at one-off probe cost.
//!
//! Every traffic-adaptive policy defers to an installed tuned winner
//! first: `pretune_hot` turns telemetry into exact routing decisions.

use sme_gemm::{analytic_k_step_cycles, neon_supports, plan_heterogeneous, Backend, GemmConfig};
use sme_machine::{MachineConfig, OpKind};

/// How the router picks a backend for a configuration (see the module
/// docs for the trade-offs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Always dispatch the SME generator — the pre-router behaviour.
    SmeOnly,
    /// Dispatch the Neon generator wherever it supports the shape (SME
    /// remains the fallback for shapes off Neon's 16×4 grid).
    NeonOnly,
    /// Compare the analytic cycle estimates of [`estimate_backend_cycles`];
    /// no simulation, approximate near the crossover.
    Heuristic,
    /// Timing-simulate both backends' default kernels once per shape and
    /// memoize the verdict (exact in the model).
    #[default]
    Measured,
}

/// Closed-form single-core cycle estimate for dispatching `cfg` on
/// `backend`, or `None` if the backend cannot compile the shape.
///
/// This is a routing heuristic, not a simulator: it accounts for the terms
/// that decide the SME/Neon crossover — SME's fixed `smstart`/`smstop`
/// cost, per-k-step issue cost ([`sme_gemm::analytic_k_step_cycles`]) and
/// accumulator traffic versus Neon's FMLA and load throughput — and is
/// accurate to a few tens of percent, which is enough to rank the engines
/// everywhere except within a narrow band around the crossover (where
/// [`RoutingPolicy::Measured`] or pre-tuning decides exactly).
pub fn estimate_backend_cycles(
    cfg: &GemmConfig,
    backend: Backend,
    machine: &MachineConfig,
) -> Option<f64> {
    let p = &machine.p_core;
    let rate = |op: OpKind| machine.mem.rate(op);
    let c_bytes = (cfg.m * cfg.n * 4) as f64;
    match backend {
        Backend::Sme => {
            cfg.validate().ok()?;
            let plan = plan_heterogeneous(cfg.m, cfg.n);
            // smstart + smstop dominate tiny shapes.
            let streaming = 2.0 * p.op(OpKind::SmeControl).interval();
            let contraction = cfg.k as f64 * analytic_k_step_cycles(&plan, machine);
            // The C block crosses the ZA array twice (load + store).
            let c_traffic =
                c_bytes / rate(OpKind::LoadLd1Multi4) + c_bytes / rate(OpKind::StoreStrZa);
            Some(streaming + contraction + c_traffic)
        }
        Backend::Neon => {
            neon_supports(cfg).ok()?;
            let blocks = ((cfg.m / 16) * (cfg.n / 4)) as f64;
            let fmla = p.op(OpKind::NeonFmla);
            // Per k step and 16×4 block: 16 FMLA, 80 bytes of A/B loads,
            // two address bumps and the loop branch.
            let per_step = 16.0 / fmla.per_cycle
                + 80.0 / rate(OpKind::NeonLoad)
                + 2.0 * p.op(OpKind::IntAlu).interval()
                + p.op(OpKind::Branch).interval();
            let contraction = blocks * cfg.k as f64 * per_step;
            let c_traffic = c_bytes / rate(OpKind::NeonLoad) + c_bytes / rate(OpKind::NeonStore);
            // Pointer setup per block.
            let setup = blocks * 6.0 * p.op(OpKind::IntAlu).interval();
            Some(contraction + c_traffic + setup)
        }
    }
}

/// The backend the analytic estimates favour for `cfg` (SME when Neon
/// cannot compile the shape or the estimates tie).
pub fn heuristic_backend(cfg: &GemmConfig, machine: &MachineConfig) -> Backend {
    let Some(neon) = estimate_backend_cycles(cfg, Backend::Neon, machine) else {
        return Backend::Sme;
    };
    let Some(sme) = estimate_backend_cycles(cfg, Backend::Sme, machine) else {
        return Backend::Sme;
    };
    if neon < sme {
        Backend::Neon
    } else {
        Backend::Sme
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_agrees_with_the_model_on_clear_cut_shapes() {
        let machine = MachineConfig::apple_m4();
        // Tiny: streaming-mode overhead dwarfs the work → Neon.
        assert_eq!(
            heuristic_backend(&GemmConfig::abt(16, 4, 4), &machine),
            Backend::Neon
        );
        // Dense: SME's outer products win by an order of magnitude.
        assert_eq!(
            heuristic_backend(&GemmConfig::abt(64, 64, 64), &machine),
            Backend::Sme
        );
        assert_eq!(
            heuristic_backend(&GemmConfig::abt(128, 128, 128), &machine),
            Backend::Sme
        );
        // Off the Neon grid → SME regardless of size.
        assert_eq!(
            heuristic_backend(&GemmConfig::abt(33, 47, 4), &machine),
            Backend::Sme
        );
        assert_eq!(
            heuristic_backend(&GemmConfig::ab(16, 4, 4), &machine),
            Backend::Sme
        );
    }

    #[test]
    fn estimates_are_finite_and_grow_with_the_problem() {
        let machine = MachineConfig::apple_m4();
        let small = estimate_backend_cycles(&GemmConfig::abt(32, 32, 8), Backend::Sme, &machine)
            .expect("SME estimates exist for every valid shape");
        let large = estimate_backend_cycles(&GemmConfig::abt(96, 96, 64), Backend::Sme, &machine)
            .expect("SME estimates exist for every valid shape");
        assert!(small.is_finite() && large.is_finite());
        assert!(large > small);
        assert_eq!(
            estimate_backend_cycles(&GemmConfig::abt(17, 4, 4), Backend::Neon, &machine),
            None,
            "Neon estimate must refuse unsupported shapes"
        );
        assert_eq!(
            estimate_backend_cycles(&GemmConfig::abt(0, 4, 4), Backend::Sme, &machine),
            None,
            "invalid configurations have no estimate"
        );
    }
}
