//! Routing policies: which engine should execute a shape?
//!
//! The paper's Fig. 1 establishes the two engine classes — the shared SME
//! outer-product units and the core-private Neon FMLA pipes — and the
//! modelled crossover between them: an SME kernel pays a fixed
//! streaming-mode entry/exit cost (~100 cycles on the calibrated M4 model)
//! plus ZA accumulator transfers, so tiny or thin shapes finish sooner on
//! Neon, while anything with real arithmetic density saturates the SME
//! units' ~18× per-instruction advantage.
//!
//! Policies answer the per-shape question with increasing fidelity:
//!
//! * [`RoutingPolicy::SmeOnly`] / [`RoutingPolicy::NeonOnly`] pin an
//!   engine (the pre-router behaviour, and a debugging tool);
//! * [`RoutingPolicy::Heuristic`] compares closed-form cycle estimates —
//!   zero simulation, wrong only near the crossover;
//! * [`RoutingPolicy::Measured`] (the default) timing-simulates both
//!   backends' default kernels once per shape and memoizes the verdict —
//!   exact in the model, at one-off probe cost.
//!
//! Every traffic-adaptive policy defers to an installed tuned winner
//! first: `pretune_hot` turns telemetry into exact routing decisions.

use sme_gemm::{
    group_load_cycles, neon_supports, plan_heterogeneous, plan_homogeneous, sme_widening_supports,
    AnyGemmConfig, Backend, Beta, BlockPlan, GemmConfig, RegisterBlocking, WideningGemmConfig,
};
use sme_machine::{MachineConfig, OpKind};

/// Per-contraction-step cost of an SME block plan under the scoreboard's
/// overlap model: every block issues its operand loads
/// ([`sme_gemm::group_load_cycles`] — the same bandwidth table the tuner's
/// analytic pre-filter uses), and one outer product per active tile, on
/// **independent units**, so the block's steady state is the *maximum* of
/// the streams, not their sum — floored by the outer product's result
/// latency, because each tile accumulates into itself and a block with few
/// active tiles cannot hide that dependency (this is what makes masked
/// edge tiles, whose blocks carry one or two tiles, latency-bound rather
/// than throughput-bound).
fn sme_plan_step_cycles(plan: &BlockPlan, machine: &MachineConfig, mopa: OpKind) -> f64 {
    let op = machine.p_core.op(mopa);
    plan.blocks
        .iter()
        .map(|b| {
            let tiles = (b.active_row_groups() * b.active_col_groups()) as f64;
            let loads = group_load_cycles(b.active_row_groups(), machine)
                + group_load_cycles(b.active_col_groups(), machine);
            (tiles * op.interval()).max(op.latency).max(loads)
        })
        .sum()
}

/// How the router picks a backend for a configuration (see the module
/// docs for the trade-offs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Always dispatch the SME generator — the pre-router behaviour.
    SmeOnly,
    /// Dispatch the Neon generator wherever it supports the shape (SME
    /// remains the fallback for shapes off Neon's 16×4 grid).
    NeonOnly,
    /// Compare the analytic cycle estimates of [`estimate_backend_cycles`];
    /// no simulation, approximate near the crossover.
    Heuristic,
    /// Timing-simulate both backends' default kernels once per shape and
    /// memoize the verdict (exact in the model).
    #[default]
    Measured,
}

/// Closed-form single-core cycle estimate for dispatching `cfg` on
/// `backend`, or `None` if the backend cannot compile the shape.
///
/// This is a routing heuristic, not a simulator: it accounts for the terms
/// that decide the SME/Neon crossover — SME's fixed `smstart`/`smstop`
/// cost, the per-k-step block-plan cost under the scoreboard's overlap
/// model (`sme_plan_step_cycles`) and accumulator traffic versus
/// Neon's FMLA and load throughput. On the calibrated model it lands
/// within a few percent of simulation on small shapes, so the heuristic
/// crossover tracks the simulated one even through the masked-edge band
/// (pre-tuning or [`RoutingPolicy::Measured`] still decides exactly).
pub fn estimate_backend_cycles(
    cfg: &GemmConfig,
    backend: Backend,
    machine: &MachineConfig,
) -> Option<f64> {
    let p = &machine.p_core;
    let rate = |op: OpKind| machine.mem.rate(op);
    let c_bytes = (cfg.m * cfg.n * 4) as f64;
    match backend {
        Backend::Sme => {
            cfg.validate().ok()?;
            let plan = plan_heterogeneous(cfg.m, cfg.n);
            // smstart + smstop dominate tiny shapes.
            let streaming = 2.0 * p.op(OpKind::SmeControl).interval();
            let contraction =
                cfg.k as f64 * sme_plan_step_cycles(&plan, machine, OpKind::SmeFmopaF32);
            // The C block crosses the ZA array twice (load + store).
            let c_traffic =
                c_bytes / rate(OpKind::LoadLd1Multi4) + c_bytes / rate(OpKind::StoreStrZa);
            Some(streaming + contraction + c_traffic)
        }
        Backend::Neon => {
            neon_supports(cfg).ok()?;
            let fmla = p.op(OpKind::NeonFmla);
            // The block grid mirrors the generator: 16-row steps with a
            // residual tail (quad/pair/single column segments) and
            // 4-column steps with a narrower tail, so there are at most four
            // block classes (full, row tail, column tail, corner) and the
            // estimate is closed-form in the class counts. Per k step and
            // block, the FMLA, load, scalar and branch streams issue on
            // independent units, so a block's steady state is their
            // maximum — floored by the FMLA accumulation latency (each
            // accumulator is updated once per step; a tail block with few
            // accumulators is latency-bound, which is what makes
            // edge-heavy shapes relatively more expensive per element).
            let class_step = |rows: usize, cols: usize| -> f64 {
                let segs = (rows / 4 + (rows % 4) / 2 + rows % 2) as f64;
                (cols as f64 * segs / fmla.per_cycle)
                    .max(fmla.latency)
                    .max(((rows + cols) * 4) as f64 / rate(OpKind::NeonLoad))
                    .max(2.0 * p.op(OpKind::IntAlu).interval())
                    .max(p.op(OpKind::Branch).interval())
            };
            let row_classes = [
                (16, cfg.m / 16),
                (cfg.m % 16, usize::from(!cfg.m.is_multiple_of(16))),
            ];
            let col_classes = [
                (4, cfg.n / 4),
                (cfg.n % 4, usize::from(!cfg.n.is_multiple_of(4))),
            ];
            let mut per_step = 0.0;
            let mut blocks = 0.0;
            for (rows, row_count) in row_classes {
                for (cols, col_count) in col_classes {
                    let count = (row_count * col_count) as f64;
                    if count > 0.0 {
                        per_step += count * class_step(rows, cols);
                        blocks += count;
                    }
                }
            }
            let contraction = cfg.k as f64 * per_step;
            // Beta::Zero skips the accumulator loads (movi is ~free next
            // to the memory traffic).
            let c_traffic = match cfg.beta {
                Beta::One => c_bytes / rate(OpKind::NeonLoad) + c_bytes / rate(OpKind::NeonStore),
                Beta::Zero => c_bytes / rate(OpKind::NeonStore),
            };
            // Pointer setup per block.
            let setup = blocks * 6.0 * p.op(OpKind::IntAlu).interval();
            Some(contraction + c_traffic + setup)
        }
    }
}

/// Closed-form single-core cycle estimate for dispatching a BF16 widening
/// `cfg` on `backend`, or `None` if the backend cannot compile the shape —
/// the widening twin of [`estimate_backend_cycles`]. Both engines are total
/// over the envelope grid, so both estimates exist for every valid shape.
///
/// The SME side pays the same streaming-mode entry/exit and accumulator
/// traffic as FP32, but halves the contraction-step operand bytes (two
/// contraction steps per BFMOPA); its per-pair cost is evaluated over the
/// default kernel's **actual block plan** (masked 32×32 blocks), so
/// remainder tiles — which change the microkernel count and the load
/// shapes — move the estimate exactly as they move the generated kernel.
/// The Neon side models the `BFMMLA` 8×2 blocking's loads, matrix ops and
/// the `ldr d`/`str d` + lane-shuffle C handling.
pub fn estimate_widening_backend_cycles(
    cfg: &WideningGemmConfig,
    backend: Backend,
    machine: &MachineConfig,
) -> Option<f64> {
    let p = &machine.p_core;
    let rate = |op: OpKind| machine.mem.rate(op);
    let c_bytes = (cfg.m * cfg.n * 4) as f64;
    match backend {
        Backend::Sme => {
            sme_widening_supports(cfg).ok()?;
            let streaming = 2.0 * p.op(OpKind::SmeControl).interval();
            // The default widening candidate tiles with (possibly masked)
            // 32x32 blocks; the per-pair cost covers the bandwidth-weighted
            // packed loads and one widening BFMOPA per active tile of every
            // block — edge tiles included, which is what keeps the
            // crossover honest now that they change the microkernel count.
            let plan = plan_homogeneous(cfg.m, cfg.n, RegisterBlocking::B32x32);
            let contraction =
                (cfg.k / 2) as f64 * sme_plan_step_cycles(&plan, machine, OpKind::SmeFmopaWide);
            let c_traffic =
                c_bytes / rate(OpKind::LoadLd1Multi4) + c_bytes / rate(OpKind::StoreStrZa);
            Some(streaming + contraction + c_traffic)
        }
        Backend::Neon => {
            cfg.validate().ok()?;
            let blocks = ((cfg.m / 8) * (cfg.n / 2)) as f64;
            let bfmmla = p.op(OpKind::NeonBfmmla);
            // Per quad and 8x2 block: 4 BFMMLA, 80 bytes of A/B loads, two
            // address bumps and the loop branch — on independent units, so
            // the steady state is their maximum (floored by the BFMMLA
            // accumulation latency).
            let per_quad = (4.0 / bfmmla.per_cycle)
                .max(bfmmla.latency)
                .max(80.0 / rate(OpKind::NeonLoad))
                .max(2.0 * p.op(OpKind::IntAlu).interval())
                .max(p.op(OpKind::Branch).interval());
            let contraction = blocks * cfg.k.div_ceil(4) as f64 * per_quad;
            // C moves through 8-byte ldr d / str d plus one ins / dup lane
            // shuffle per row pair and column.
            let c_traffic = c_bytes / rate(OpKind::NeonLoad)
                + c_bytes / rate(OpKind::NeonStore)
                + (cfg.m * cfg.n / 4) as f64 * 2.0 * p.op(OpKind::NeonOther).interval();
            let setup = blocks * 8.0 * p.op(OpKind::IntAlu).interval();
            Some(contraction + c_traffic + setup)
        }
    }
}

/// The backend the analytic estimates favour for `cfg` (SME when Neon
/// cannot compile the shape or the estimates tie).
pub fn heuristic_backend(cfg: &GemmConfig, machine: &MachineConfig) -> Backend {
    let Some(neon) = estimate_backend_cycles(cfg, Backend::Neon, machine) else {
        return Backend::Sme;
    };
    let Some(sme) = estimate_backend_cycles(cfg, Backend::Sme, machine) else {
        return Backend::Sme;
    };
    if neon < sme {
        Backend::Neon
    } else {
        Backend::Sme
    }
}

/// The backend the analytic estimates favour for a configuration of either
/// datatype (the engine that cannot compile the shape never wins; ties go
/// to SME).
pub fn heuristic_backend_any(cfg: &AnyGemmConfig, machine: &MachineConfig) -> Backend {
    match cfg {
        AnyGemmConfig::Fp32(c) => heuristic_backend(c, machine),
        AnyGemmConfig::WideningBf16(c) => {
            let sme = estimate_widening_backend_cycles(c, Backend::Sme, machine);
            let neon = estimate_widening_backend_cycles(c, Backend::Neon, machine);
            match (sme, neon) {
                (Some(s), Some(n)) if n < s => Backend::Neon,
                (Some(_), _) => Backend::Sme,
                (None, _) => Backend::Neon,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_agrees_with_the_model_on_clear_cut_shapes() {
        let machine = MachineConfig::apple_m4();
        // Tiny: streaming-mode overhead dwarfs the work → Neon.
        assert_eq!(
            heuristic_backend(&GemmConfig::abt(16, 4, 4), &machine),
            Backend::Neon
        );
        // Dense: SME's outer products win by an order of magnitude.
        assert_eq!(
            heuristic_backend(&GemmConfig::abt(64, 64, 64), &machine),
            Backend::Sme
        );
        assert_eq!(
            heuristic_backend(&GemmConfig::abt(128, 128, 128), &machine),
            Backend::Sme
        );
        // Off the Neon grid → SME regardless of size.
        assert_eq!(
            heuristic_backend(&GemmConfig::abt(33, 47, 4), &machine),
            Backend::Sme
        );
        assert_eq!(
            heuristic_backend(&GemmConfig::ab(16, 4, 4), &machine),
            Backend::Sme
        );
    }

    #[test]
    fn widening_heuristic_is_a_performance_boundary() {
        let machine = MachineConfig::apple_m4();
        // On the SME grid, the outer-product units win by a wide margin.
        let dense: AnyGemmConfig = WideningGemmConfig::new(64, 64, 64).unwrap().into();
        assert_eq!(heuristic_backend_any(&dense, &machine), Backend::Sme);
        // Dense-but-misaligned shapes now carry SME estimates (the masked
        // edge tiles made the engine total) and still land on SME.
        for (m, n, k) in [(48, 40, 64), (40, 40, 32), (96, 72, 48)] {
            let off_grid: AnyGemmConfig = WideningGemmConfig::new(m, n, k).unwrap().into();
            assert_eq!(
                heuristic_backend_any(&off_grid, &machine),
                Backend::Sme,
                "{m}x{n}x{k}"
            );
        }
        // Thin/shallow shapes: the streaming-mode overhead dominates, so
        // the Neon BFMMLA baseline wins — a performance decision now, not
        // a support boundary: the SME estimate exists and is finite.
        let thin_cfg = WideningGemmConfig::new(16, 4, 4).unwrap();
        let thin: AnyGemmConfig = thin_cfg.into();
        assert_eq!(heuristic_backend_any(&thin, &machine), Backend::Neon);
        assert!(
            estimate_widening_backend_cycles(&thin_cfg, Backend::Sme, &machine)
                .expect("SME widening estimates exist on the whole envelope grid")
                .is_finite()
        );
        assert!(
            estimate_widening_backend_cycles(&thin_cfg, Backend::Neon, &machine)
                .expect("Neon estimates exist on the envelope grid")
                .is_finite()
        );
        // FP32 dispatch through the dtype-generic entry point is unchanged.
        let fp32: AnyGemmConfig = GemmConfig::abt(16, 4, 4).into();
        assert_eq!(heuristic_backend_any(&fp32, &machine), Backend::Neon);
    }

    #[test]
    fn fp32_neon_estimates_cover_edges_and_beta_zero() {
        let machine = MachineConfig::apple_m4();
        // Edge shapes on the even-m/n envelope now carry Neon estimates.
        let edge = GemmConfig::abt(18, 6, 16);
        let est = estimate_backend_cycles(&edge, Backend::Neon, &machine)
            .expect("even-extent shapes are Neon-compilable");
        assert!(est.is_finite() && est > 0.0);
        // A partial-block shape costs more per element than its aligned
        // neighbour (same loop overhead, less arithmetic per block).
        let aligned =
            estimate_backend_cycles(&GemmConfig::abt(16, 4, 16), Backend::Neon, &machine).unwrap();
        assert!(est > aligned, "edge {est} vs aligned {aligned}");
        // Beta::Zero drops the accumulator-load traffic.
        let beta0 =
            estimate_backend_cycles(&edge.with_beta(Beta::Zero), Backend::Neon, &machine).unwrap();
        assert!(beta0 < est);
        // Odd extents joined the envelope (single-lane tails), so they
        // carry estimates too; the odd row's extra segment costs cycles.
        let odd =
            estimate_backend_cycles(&GemmConfig::abt(17, 4, 16), Backend::Neon, &machine).unwrap();
        assert!(odd.is_finite() && odd > aligned);
        // Column-major B stays off the Neon envelope.
        assert_eq!(
            estimate_backend_cycles(&GemmConfig::ab(17, 4, 4), Backend::Neon, &machine),
            None
        );
    }

    #[test]
    fn widening_estimates_grow_with_the_problem() {
        let machine = MachineConfig::apple_m4();
        let small = estimate_widening_backend_cycles(
            &WideningGemmConfig::new(32, 32, 8).unwrap(),
            Backend::Sme,
            &machine,
        )
        .unwrap();
        let large = estimate_widening_backend_cycles(
            &WideningGemmConfig::new(96, 96, 64).unwrap(),
            Backend::Sme,
            &machine,
        )
        .unwrap();
        assert!(small.is_finite() && large.is_finite());
        assert!(large > small);
        let small_neon = estimate_widening_backend_cycles(
            &WideningGemmConfig::new(16, 4, 8).unwrap(),
            Backend::Neon,
            &machine,
        )
        .unwrap();
        let large_neon = estimate_widening_backend_cycles(
            &WideningGemmConfig::new(64, 64, 64).unwrap(),
            Backend::Neon,
            &machine,
        )
        .unwrap();
        assert!(large_neon > small_neon);
    }

    #[test]
    fn estimates_are_finite_and_grow_with_the_problem() {
        let machine = MachineConfig::apple_m4();
        let small = estimate_backend_cycles(&GemmConfig::abt(32, 32, 8), Backend::Sme, &machine)
            .expect("SME estimates exist for every valid shape");
        let large = estimate_backend_cycles(&GemmConfig::abt(96, 96, 64), Backend::Sme, &machine)
            .expect("SME estimates exist for every valid shape");
        assert!(small.is_finite() && large.is_finite());
        assert!(large > small);
        assert_eq!(
            estimate_backend_cycles(&GemmConfig::ab(17, 4, 4), Backend::Neon, &machine),
            None,
            "Neon estimate must refuse unsupported shapes (column-major B)"
        );
        assert_eq!(
            estimate_backend_cycles(&GemmConfig::abt(0, 4, 4), Backend::Sme, &machine),
            None,
            "invalid configurations have no estimate"
        );
    }
}
