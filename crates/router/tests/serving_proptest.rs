//! Property-based coverage of the serving loop's two core guarantees:
//!
//! * **placement-aware routing never loses**: across random mixed
//!   FP32/BF16 batches (and across random raw cost pictures fed straight
//!   into the planner), the placed projection's makespan is never worse
//!   than the route-in-isolation projection — rerouting is only ever
//!   accepted when it strictly helps, so the worst case is "nothing
//!   moved";
//! * **telemetry survives a restart faithfully**: random record/epoch
//!   sequences round-trip through the versioned snapshot with the decayed
//!   ranking preserved exactly, and a snapshot stamped by a different
//!   machine calibration is discarded on load.

use proptest::prelude::*;
use sme_gemm::{AnyGemmConfig, Backend, GemmConfig, WideningGemmConfig};
use sme_machine::multicore::MulticoreModel;
use sme_machine::MachineConfig;
use sme_router::{plan_batch_placed, GroupCost, Router, TelemetryRegistry};
use sme_runtime::{FingerprintCheck, GemmRequest};

/// A pool of valid mixed-dtype shapes: FP32 on and off the Neon 16×4 grid,
/// plus widening shapes on and off the SME 32×32 grid.
fn shape_pool() -> Vec<AnyGemmConfig> {
    let mut pool: Vec<AnyGemmConfig> = Vec::new();
    for (m, n, k) in [
        (16, 4, 4),
        (16, 8, 16),
        (32, 16, 8),
        (32, 32, 32),
        (48, 48, 16),
        (64, 64, 32),
        (33, 17, 5), // off the Neon grid: SME-pinned
        (21, 11, 7),
    ] {
        pool.push(GemmConfig::abt(m, n, k).into());
    }
    for (m, n, k) in [
        (16, 4, 8),
        (32, 32, 8),
        (32, 32, 64),
        (48, 40, 16),
        (64, 64, 8),
    ] {
        pool.push(WideningGemmConfig::new(m, n, k).expect("valid").into());
    }
    pool
}

/// A random batch: up to 24 requests drawn from the shape pool.
fn batch_strategy() -> impl Strategy<Value = Vec<GemmRequest>> {
    let pool = shape_pool();
    proptest::collection::vec((0..pool.len(), 0u64..1000), 1..24).prop_map(move |draws| {
        draws
            .into_iter()
            .map(|(i, seed)| GemmRequest {
                config: pool[i],
                seed,
            })
            .collect()
    })
}

/// Random raw cost pictures for the pure planner property: provisional
/// backend, cycles, and an optional alternative cost.
fn costs_strategy() -> impl Strategy<Value = Vec<GroupCost>> {
    let pool = shape_pool();
    proptest::collection::vec(
        (
            0..pool.len(),
            any::<bool>(),
            1u64..2_000_000,
            any::<bool>(),
            1u64..4_000_000,
        ),
        1..20,
    )
    .prop_map(move |draws| {
        // Dispatch groups requests per config, so a real cost picture never
        // repeats a shape — keep the first draw of each.
        let mut seen = std::collections::HashSet::new();
        draws
            .into_iter()
            .filter(|&(i, ..)| seen.insert(i))
            .map(|(i, sme, cycles, has_alt, alt)| {
                let backend = if sme { Backend::Sme } else { Backend::Neon };
                GroupCost {
                    config: pool[i],
                    backend,
                    cycles: cycles as f64,
                    // Only SME groups carry an alternative (the dispatch
                    // never costs a Neon→SME flip).
                    alt_cycles: (sme && has_alt).then_some(alt as f64),
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The planner's greedy spill never worsens the projected makespan,
    /// whatever the cost picture looks like.
    #[test]
    fn placed_makespan_never_exceeds_isolated(costs in costs_strategy()) {
        let model = MulticoreModel::new(MachineConfig::apple_m4());
        let plan = plan_batch_placed(&costs, &model);
        prop_assert!(
            plan.placement.makespan_cycles() <= plan.isolated.makespan_cycles() + 1e-9,
            "placed {} > isolated {}",
            plan.placement.makespan_cycles(),
            plan.isolated.makespan_cycles()
        );
        // Every reroute really moved an SME-provisional group to Neon.
        for config in &plan.rerouted {
            let cost = costs.iter().find(|c| c.config == *config).unwrap();
            prop_assert_eq!(cost.backend, Backend::Sme);
            prop_assert!(cost.alt_cycles.is_some());
        }
    }
}

proptest! {
    // Dispatch compiles real kernels, so fewer (but still random) cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end: placement-aware dispatch of a random mixed-dtype batch
    /// never projects worse than route-in-isolation, and the executed
    /// backends match the plan.
    #[test]
    fn dispatch_never_projects_worse_than_isolation(requests in batch_strategy()) {
        let router = Router::new(128);
        let report = router.dispatch(&requests).expect("pool shapes are valid");
        prop_assert!(
            report.placement.makespan_cycles() <= report.isolated.makespan_cycles() + 1e-9,
            "placed {} > isolated {}",
            report.placement.makespan_cycles(),
            report.isolated.makespan_cycles()
        );
        for (placement, group) in report
            .placement
            .placements
            .iter()
            .zip(&report.batch.per_config)
        {
            prop_assert_eq!(placement.config, group.config);
            prop_assert_eq!(placement.backend, group.backend);
        }
        for config in &report.rerouted {
            let group = report
                .batch
                .per_config
                .iter()
                .find(|g| g.config == *config)
                .expect("rerouted configs are dispatched");
            prop_assert_eq!(group.backend, Backend::Neon);
        }
    }
}

/// Random traffic histories: (shape index, backend, requests, cycles,
/// advance-epoch-after) tuples.
fn history_strategy() -> impl Strategy<Value = Vec<(usize, bool, u64, u64, bool)>> {
    proptest::collection::vec(
        (
            0..shape_pool().len(),
            any::<bool>(),
            1u64..50,
            1u64..1_000_000,
            any::<bool>(),
        ),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Record → save → load: totals and the decayed ranking survive the
    /// restart exactly; a recalibrated machine discards the snapshot.
    #[test]
    fn telemetry_round_trips_and_rejects_stale_snapshots(history in history_strategy()) {
        let pool = shape_pool();
        let machine = MachineConfig::apple_m4();
        let telemetry = TelemetryRegistry::for_machine(&machine);
        for &(i, sme, requests, cycles, advance) in &history {
            let backend = if sme { Backend::Sme } else { Backend::Neon };
            telemetry.record_group(&pool[i], backend, requests, cycles as f64, sme);
            if advance {
                telemetry.advance_epoch();
            }
        }

        let loaded = TelemetryRegistry::from_json(&telemetry.to_json())
            .expect("snapshots always parse back");
        prop_assert_eq!(loaded.total_requests(), telemetry.total_requests());
        prop_assert_eq!(loaded.len(), telemetry.len());
        prop_assert_eq!(loaded.fingerprint_check(&machine), FingerprintCheck::Match);
        // The decayed ranking — the pretuner's input — is preserved
        // shape-for-shape.
        let before: Vec<AnyGemmConfig> =
            telemetry.top_shapes(usize::MAX).iter().map(|s| s.config).collect();
        let after: Vec<AnyGemmConfig> =
            loaded.top_shapes(usize::MAX).iter().map(|s| s.config).collect();
        prop_assert_eq!(before, after);
        // Raw per-shape counters survive exactly; decayed values survive
        // up to float round-off.
        for stats in telemetry.top_shapes(usize::MAX) {
            let restored = loaded.shape(&stats.config).expect("shape survives");
            prop_assert_eq!(restored.requests, stats.requests);
            prop_assert_eq!(restored.cycles, stats.cycles);
            prop_assert!((restored.decayed_cycles - stats.decayed_cycles).abs()
                <= 1e-9 * stats.decayed_cycles.max(1.0));
        }

        // A recalibrated machine must not trust the snapshot.
        let path = std::env::temp_dir().join(format!(
            "sme_router_serving_proptest_{}.json",
            std::process::id()
        ));
        telemetry.save(&path).expect("snapshot writes");
        let mut recalibrated = MachineConfig::apple_m4();
        recalibrated.p_core.clock_ghz += 0.25;
        let (discarded, check) = TelemetryRegistry::load_checked(&path, &recalibrated)
            .expect("stale snapshots load as empty, not as an error");
        let _ = std::fs::remove_file(&path);
        let mismatched = matches!(check, FingerprintCheck::Mismatch { .. });
        prop_assert!(mismatched, "expected a fingerprint mismatch");
        prop_assert!(discarded.is_empty());
    }
}
