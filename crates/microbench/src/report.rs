//! Plain-text and CSV rendering of microbenchmark results, used by the
//! `sme-bench` binaries to print the same rows and series the paper reports.

use crate::bandwidth::BandwidthCurve;
use crate::throughput::TableOneRow;
use sme_machine::multicore::ScalingPoint;
use std::fmt::Write as _;

/// Render Table I as a fixed-width text table, optionally with the paper's
/// published values alongside.
pub fn render_table_one(
    rows: &[TableOneRow],
    reference: Option<&[(&str, &str, f64, f64)]>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>6} {:>10} {:>10}{}",
        "Instruction",
        "In",
        "Out",
        "P-core",
        "E-core",
        if reference.is_some() {
            "   (paper P / E)"
        } else {
            ""
        }
    );
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(if reference.is_some() { 70 } else { 52 })
    );
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "{:<16} {:>6} {:>6} {:>10.0} {:>10.0}",
            row.instruction, row.dtype_in, row.dtype_out, row.p_core_gops, row.e_core_gops
        );
        if let Some(reference) = reference {
            if let Some((_, _, p, e)) = reference.get(i) {
                let _ = write!(out, "   ({p:>6.0} / {e:>5.0})");
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Render a scaling curve (Fig. 1) as a text table with one row per thread
/// count.
pub fn render_scaling(neon: &[ScalingPoint], fmopa: &[ScalingPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>8} {:>16} {:>16}",
        "threads", "FMLA (Neon)", "FMOPA (SME)"
    );
    let _ = writeln!(out, "{}", "-".repeat(44));
    for (n, s) in neon.iter().zip(fmopa) {
        let _ = writeln!(
            out,
            "{:>8} {:>16.0} {:>16.0}",
            n.threads, n.gflops, s.gflops
        );
    }
    out
}

/// Render bandwidth curves as a text table: one row per size, one column per
/// curve.
pub fn render_bandwidth(curves: &[BandwidthCurve]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:>14}", "bytes");
    for c in curves {
        let label = if curves.iter().filter(|o| o.strategy == c.strategy).count() > 1 {
            format!("{} @{}B", c.strategy, c.alignment)
        } else {
            c.strategy.clone()
        };
        let _ = write!(out, " {label:>14}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", "-".repeat(14 + 15 * curves.len()));
    if let Some(first) = curves.first() {
        for (i, p) in first.points.iter().enumerate() {
            let _ = write!(out, "{:>14}", p.bytes);
            for c in curves {
                let _ = write!(out, " {:>14.1}", c.points[i].gibs);
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Render bandwidth curves as CSV (size in bytes, then one column per
/// curve), convenient for regenerating the figures with external tooling.
pub fn bandwidth_csv(curves: &[BandwidthCurve]) -> String {
    let mut out = String::new();
    let header: Vec<String> = std::iter::once("bytes".to_string())
        .chain(
            curves
                .iter()
                .map(|c| format!("{} @{}B", c.strategy, c.alignment)),
        )
        .collect();
    let _ = writeln!(out, "{}", header.join(","));
    if let Some(first) = curves.first() {
        for (i, p) in first.points.iter().enumerate() {
            let mut row = vec![p.bytes.to_string()];
            row.extend(curves.iter().map(|c| format!("{:.2}", c.points[i].gibs)));
            let _ = writeln!(out, "{}", row.join(","));
        }
    }
    out
}

/// Render an (x, series...) table for GEMM performance sweeps (Figs. 8–9).
pub fn render_series(x_label: &str, series: &[(&str, &[(usize, f64)])]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{x_label:>8}");
    for (name, _) in series {
        let _ = write!(out, " {name:>14}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", "-".repeat(8 + 15 * series.len()));
    if let Some((_, first)) = series.first() {
        for (i, (x, _)) in first.iter().enumerate() {
            let _ = write!(out, "{x:>8}");
            for (_, points) in series {
                let _ = write!(out, " {:>14.1}", points[i].1);
            }
            let _ = writeln!(out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::BandwidthPoint;

    #[test]
    fn table_one_rendering() {
        let rows = vec![TableOneRow {
            instruction: "FMOPA (SME)".into(),
            dtype_in: "FP32".into(),
            dtype_out: "FP32".into(),
            p_core_gops: 2009.3,
            e_core_gops: 357.1,
        }];
        let text = render_table_one(&rows, Some(&[("FMOPA (SME)", "FP32", 2009.0, 357.0)]));
        assert!(text.contains("FMOPA (SME)"));
        assert!(text.contains("2009"));
        assert!(text.contains("357"));
        assert!(text.contains("paper"));
        let plain = render_table_one(&rows, None);
        assert!(!plain.contains("paper"));
    }

    #[test]
    fn scaling_rendering() {
        let neon = vec![ScalingPoint {
            threads: 1,
            p_threads: 1,
            e_threads: 0,
            gflops: 113.0,
        }];
        let sme = vec![ScalingPoint {
            threads: 1,
            p_threads: 1,
            e_threads: 0,
            gflops: 2009.0,
        }];
        let text = render_scaling(&neon, &sme);
        assert!(text.contains("113"));
        assert!(text.contains("2009"));
    }

    #[test]
    fn bandwidth_rendering_and_csv() {
        let curves = vec![
            BandwidthCurve {
                strategy: "LDR".into(),
                alignment: 128,
                store: false,
                points: vec![BandwidthPoint {
                    bytes: 2048,
                    gibs: 375.0,
                }],
            },
            BandwidthCurve {
                strategy: "LD1W 4VR".into(),
                alignment: 128,
                store: false,
                points: vec![BandwidthPoint {
                    bytes: 2048,
                    gibs: 925.0,
                }],
            },
        ];
        let text = render_bandwidth(&curves);
        assert!(text.contains("LDR"));
        assert!(text.contains("925.0"));
        let csv = bandwidth_csv(&curves);
        assert!(csv.starts_with("bytes,"));
        assert!(csv.contains("375.00"));
    }

    #[test]
    fn series_rendering() {
        let libxsmm: Vec<(usize, f64)> = vec![(64, 1800.0), (128, 1900.0)];
        let accel: Vec<(usize, f64)> = vec![(64, 700.0), (128, 1100.0)];
        let text = render_series("M=N", &[("LIBXSMM", &libxsmm), ("Accelerate", &accel)]);
        assert!(text.contains("LIBXSMM"));
        assert!(text.contains("1800.0"));
        assert!(text.contains("1100.0"));
    }
}
