//! Figs. 2–5: ZA-array load/store bandwidth for the different transfer
//! strategies, buffer sizes and alignments.

use crate::kernels::{
    za_load_kernel, za_store_kernel, TransferStrategy, TRANSFER_BYTES_PER_ITERATION,
};
use serde::{Deserialize, Serialize};
use sme_machine::exec::{RunOptions, Simulator};
use sme_machine::{CoreKind, MachineConfig};

/// One bandwidth measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthPoint {
    /// Total working-set size in bytes (the x-axis of Figs. 2–5).
    pub bytes: u64,
    /// Achieved bandwidth in GiB/s.
    pub gibs: f64,
}

/// One curve: a strategy (and alignment) swept over working-set sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthCurve {
    /// Strategy label (e.g. "LD1W 4VR").
    pub strategy: String,
    /// Data alignment in bytes.
    pub alignment: u64,
    /// Direction: `true` for stores.
    pub store: bool,
    /// Measured points.
    pub points: Vec<BandwidthPoint>,
}

/// The default sweep of working-set sizes: powers of two from 2 KiB to
/// 2 GiB, matching the x-axis of Figs. 2–5.
pub fn default_sizes() -> Vec<u64> {
    (11..=31).map(|p| 1u64 << p).collect()
}

/// Alignments studied in Figs. 4–5.
pub const ALIGNMENTS: [u64; 4] = [16, 32, 64, 128];

/// Number of loop iterations per measurement.
const ITERATIONS: u64 = 500;

/// Measure one strategy at one working-set size and alignment.
///
/// The kernel streams [`TRANSFER_BYTES_PER_ITERATION`] bytes per iteration
/// from a buffer whose base address has exactly the requested alignment;
/// the working-set size is passed to the memory model as a hint so that the
/// sweep covers sizes far larger than it would be practical to touch
/// functionally (the paper sweeps up to 2 GiB).
pub fn measure(
    config: &MachineConfig,
    strategy: TransferStrategy,
    store: bool,
    working_set: u64,
    alignment: u64,
) -> f64 {
    let kernel = if store {
        za_store_kernel(strategy)
    } else {
        za_load_kernel(strategy)
    };
    let mut sim = Simulator::new(config.clone(), CoreKind::Performance);
    // Allocate with generous alignment, then offset the base so that it has
    // exactly the requested alignment (and no more).
    let base = sim.mem.alloc_f32_zeroed(2048, 256);
    let addr = if alignment >= 256 {
        base
    } else {
        base + alignment
    };
    let opts = RunOptions {
        working_set_hint: Some(working_set),
        ..RunOptions::timing_only()
    };
    let result = sim.run(&kernel.program, &[ITERATIONS, addr], &opts);
    let bytes = (ITERATIONS * TRANSFER_BYTES_PER_ITERATION) as f64;
    bytes / result.stats.seconds() / (1u64 << 30) as f64
}

/// Reproduce Fig. 2 (loads, 128-byte aligned) or Fig. 3 (stores, 128-byte
/// aligned): one curve per strategy.
pub fn figure_2_or_3(config: &MachineConfig, store: bool, sizes: &[u64]) -> Vec<BandwidthCurve> {
    TransferStrategy::all()
        .into_iter()
        .map(|strategy| BandwidthCurve {
            strategy: strategy.label(store).to_string(),
            alignment: 128,
            store,
            points: sizes
                .iter()
                .map(|&bytes| BandwidthPoint {
                    bytes,
                    gibs: measure(config, strategy, store, bytes, 128),
                })
                .collect(),
        })
        .collect()
}

/// Reproduce Fig. 4 (loads) or Fig. 5 (stores): for every strategy, one
/// curve per alignment.
pub fn figure_4_or_5(config: &MachineConfig, store: bool, sizes: &[u64]) -> Vec<BandwidthCurve> {
    let mut curves = Vec::new();
    for strategy in TransferStrategy::all() {
        for &alignment in &ALIGNMENTS {
            curves.push(BandwidthCurve {
                strategy: strategy.label(store).to_string(),
                alignment,
                store,
                points: sizes
                    .iter()
                    .map(|&bytes| BandwidthPoint {
                        bytes,
                        gibs: measure(config, strategy, store, bytes, alignment),
                    })
                    .collect(),
            });
        }
    }
    curves
}

/// Plateau bandwidth of a curve: its maximum over the cache-resident sizes,
/// excluding the sub-8-KiB region where the small-store alignment effect of
/// Fig. 5 inflates store bandwidth.
pub fn plateau(curve: &BandwidthCurve) -> f64 {
    curve
        .points
        .iter()
        .filter(|p| p.bytes > 8 * 1024 && p.bytes <= 8 << 20)
        .map(|p| p.gibs)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::apple_m4()
    }

    fn small_sizes() -> Vec<u64> {
        vec![1 << 12, 1 << 16, 1 << 20, 1 << 23, 1 << 26, 1 << 30]
    }

    #[test]
    fn figure2_plateaus_match_the_paper() {
        let curves = figure_2_or_3(&cfg(), false, &small_sizes());
        let by_name = |name: &str| curves.iter().find(|c| c.strategy == name).unwrap();
        let ldr = plateau(by_name("LDR"));
        let ld4 = plateau(by_name("LD1W 4VR"));
        let ld2 = plateau(by_name("LD1W 2VR"));
        let ld1 = plateau(by_name("LD1W 1VR"));
        assert!((ldr - 375.0).abs() < 25.0, "LDR plateau {ldr}");
        assert!((ld4 - 925.0).abs() < 60.0, "LD1W 4VR plateau {ld4}");
        assert!(
            ld2 > ldr && ld2 < ld4,
            "2VR ({ld2}) sits between LDR and 4VR"
        );
        assert!(
            (ld1 - ldr).abs() < 60.0,
            "1VR ({ld1}) is comparable to LDR ({ldr})"
        );
        // The paper: two-step loads give a ~2.6x improvement over direct
        // loads from L2.
        assert!(
            (ld4 / ldr - 2.6).abs() < 0.4,
            "two-step speedup {}",
            ld4 / ldr
        );
    }

    #[test]
    fn figure3_stores_show_no_two_step_benefit() {
        let curves = figure_2_or_3(&cfg(), true, &small_sizes());
        let by_name = |name: &str| curves.iter().find(|c| c.strategy == name).unwrap();
        let direct = plateau(by_name("STR"));
        let st4 = plateau(by_name("ST1W 4VR"));
        assert!((direct - 233.0).abs() < 20.0, "STR plateau {direct}");
        assert!(
            st4 < direct * 1.25,
            "two-step stores must not significantly beat direct stores ({st4} vs {direct})"
        );
    }

    #[test]
    fn bandwidth_falls_off_beyond_the_caches() {
        let sizes = vec![1 << 20, 1 << 31];
        let curves = figure_2_or_3(&cfg(), false, &sizes);
        for c in &curves {
            assert!(
                c.points[1].gibs < c.points[0].gibs * 0.5,
                "{}: DRAM point {} must be far below the cache point {}",
                c.strategy,
                c.points[1].gibs,
                c.points[0].gibs
            );
        }
    }

    #[test]
    fn figure4_alignment_sensitivity() {
        let sizes = vec![1 << 20];
        let curves = figure_4_or_5(&cfg(), false, &sizes);
        let get = |name: &str, align: u64| {
            curves
                .iter()
                .find(|c| c.strategy == name && c.alignment == align)
                .unwrap()
                .points[0]
                .gibs
        };
        // LDR requires at least 64-byte alignment for full bandwidth.
        assert!(get("LDR", 16) < get("LDR", 64) * 0.85);
        assert!((get("LDR", 64) - get("LDR", 128)).abs() < 1.0);
        // LD1W 4VR needs 128-byte alignment for its full rate.
        assert!(get("LD1W 4VR", 64) < get("LD1W 4VR", 128) * 0.9);
        // One- and two-register variants are insensitive.
        assert!((get("LD1W 1VR", 16) - get("LD1W 1VR", 128)).abs() < 1.0);
        assert!((get("LD1W 2VR", 16) - get("LD1W 2VR", 128)).abs() < 1.0);
    }

    #[test]
    fn figure5_small_aligned_stores_are_faster() {
        let curves = figure_4_or_5(&cfg(), true, &[4 * 1024, 1 << 20]);
        let get = |name: &str, align: u64, idx: usize| {
            curves
                .iter()
                .find(|c| c.strategy == name && c.alignment == align)
                .unwrap()
                .points[idx]
                .gibs
        };
        // Below 8 KiB, 64/128-byte-aligned stores are faster than unaligned
        // ones; beyond the threshold the effect disappears.
        assert!(get("STR", 128, 0) > get("STR", 16, 0) * 1.05);
        assert!((get("STR", 128, 1) - get("STR", 16, 1)).abs() < 5.0);
    }

    #[test]
    fn default_sizes_span_2kib_to_2gib() {
        let sizes = default_sizes();
        assert_eq!(sizes.first(), Some(&2048));
        assert_eq!(sizes.last(), Some(&(2 * 1024 * 1024 * 1024)));
        assert_eq!(sizes.len(), 21);
    }
}
