//! Table I: per-instruction throughput on performance and efficiency cores.

use crate::kernels::{table_one_kernels, BenchKernel};
use serde::{Deserialize, Serialize};
use sme_machine::exec::{RunOptions, Simulator};
use sme_machine::{CoreKind, MachineConfig};

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableOneRow {
    /// Instruction mnemonic and extension, e.g. "FMOPA (SME)".
    pub instruction: String,
    /// Input data type.
    pub dtype_in: String,
    /// Output data type.
    pub dtype_out: String,
    /// Measured GOPS on one performance core.
    pub p_core_gops: f64,
    /// Measured GOPS on one efficiency core.
    pub e_core_gops: f64,
}

/// Number of loop iterations used when measuring a kernel. The modelled
/// result is iteration-count independent once the loop dominates; a few
/// thousand iterations keep the simulation fast while washing out the
/// prologue.
pub const MEASURE_ITERATIONS: u64 = 2_000;

/// Measure one kernel's throughput (GOPS) on the given core kind.
pub fn measure_gops(config: &MachineConfig, core: CoreKind, kernel: &BenchKernel) -> f64 {
    let mut sim = Simulator::new(config.clone(), core);
    let result = sim.run(
        &kernel.program,
        &[MEASURE_ITERATIONS],
        &RunOptions::timing_only(),
    );
    let ops = (MEASURE_ITERATIONS * kernel.ops_per_iteration) as f64;
    ops / result.stats.seconds() / 1e9
}

/// Reproduce Table I on the given machine.
pub fn table_one(config: &MachineConfig) -> Vec<TableOneRow> {
    table_one_kernels()
        .into_iter()
        .map(|kernel| {
            let p = measure_gops(config, CoreKind::Performance, &kernel);
            let e = measure_gops(config, CoreKind::Efficiency, &kernel);
            TableOneRow {
                instruction: kernel.instruction.to_string(),
                dtype_in: kernel.dtype_in.to_string(),
                dtype_out: kernel.dtype_out.to_string(),
                p_core_gops: p,
                e_core_gops: e,
            }
        })
        .collect()
}

/// The paper's published Table I values, in the same row order as
/// [`table_one`] (used by tests and the experiment report to quantify the
/// reproduction error).
pub fn table_one_reference() -> Vec<(&'static str, &'static str, f64, f64)> {
    vec![
        ("FMLA (Neon)", "FP64", 56.0, 23.0),
        ("FMLA (Neon)", "FP32", 113.0, 46.0),
        ("FMLA (Neon)", "FP16", 220.0, 91.0),
        ("BFMMLA (Neon)", "BF16", 67.0, 31.0),
        ("FMOPA (SME)", "FP64", 503.0, 89.0),
        ("FMOPA (SME)", "FP32", 2009.0, 357.0),
        ("BFMOPA (SME)", "BF16", 2010.0, 357.0),
        ("FMOPA (SME)", "FP16", 2010.0, 357.0),
        ("SMOPA (SME)", "I16", 2010.0, 357.0),
        ("SMOPA (SME)", "I8", 4017.0, 715.0),
        ("FMLA (SME2)", "FP64", 251.0, 89.0),
        ("FMLA (SSVE)", "FP64", 16.0, 11.0),
        ("FMLA (SME2)", "FP32", 501.0, 179.0),
        ("FMLA (SSVE)", "FP32", 31.0, 22.0),
    ]
}

/// Single-tile FP32 FMOPA throughput (the §III-C latency experiment).
pub fn fmopa_single_tile_gops(config: &MachineConfig) -> f64 {
    let kernel = crate::kernels::sme_fmopa(sme_isa::types::ElementType::F32, 1);
    measure_gops(config, CoreKind::Performance, &kernel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_matches_the_paper_within_tolerance() {
        let config = MachineConfig::apple_m4();
        let rows = table_one(&config);
        let reference = table_one_reference();
        assert_eq!(rows.len(), reference.len());
        for (row, (instr, dtype, p_ref, e_ref)) in rows.iter().zip(reference) {
            assert_eq!(row.instruction, instr, "row order");
            assert_eq!(row.dtype_in, dtype, "row order");
            let p_err = (row.p_core_gops - p_ref).abs() / p_ref;
            let e_err = (row.e_core_gops - e_ref).abs() / e_ref;
            assert!(
                p_err < 0.06,
                "{instr} {dtype}: P-core {} vs paper {p_ref}",
                row.p_core_gops
            );
            assert!(
                e_err < 0.08,
                "{instr} {dtype}: E-core {} vs paper {e_ref}",
                row.e_core_gops
            );
        }
    }

    #[test]
    fn single_tile_fmopa_drops_to_a_quarter() {
        let config = MachineConfig::apple_m4();
        let single = fmopa_single_tile_gops(&config);
        assert!((single - 502.0).abs() < 25.0, "single-tile FMOPA {single}");
    }
}
