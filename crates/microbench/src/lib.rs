//! # sme-microbench
//!
//! The paper's microbenchmarks (Section III), expressed as instruction-level
//! kernels and executed on the `sme-machine` simulator:
//!
//! * [`kernels`] — the Lst. 1 / Lst. 2-style peak-throughput kernels for
//!   every Table I row plus the ZA-array transfer loops of §III-G;
//! * [`throughput`] — Table I (per-instruction GOPS on performance and
//!   efficiency cores);
//! * [`scaling`] — Fig. 1 (multi-core scaling of Neon FMLA vs SME FMOPA and
//!   the mixed user-interactive/utility experiment);
//! * [`bandwidth`] — Figs. 2–5 (load/store strategy bandwidth over working
//!   set sizes and alignments);
//! * [`report`] — text/CSV rendering used by the `sme-bench` binaries.

#![warn(missing_docs)]

pub mod bandwidth;
pub mod kernels;
pub mod report;
pub mod scaling;
pub mod throughput;

pub use bandwidth::{figure_2_or_3, figure_4_or_5, BandwidthCurve, BandwidthPoint};
pub use kernels::{table_one_kernels, BenchKernel, TransferStrategy};
pub use scaling::{figure1, mixed_thread_experiment, Figure1};
pub use throughput::{table_one, table_one_reference, TableOneRow};
