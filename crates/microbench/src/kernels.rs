//! Microbenchmark kernels.
//!
//! Every kernel follows the structure of the paper's Lst. 1 / Lst. 2: a
//! repeat loop whose body is a burst of independent data-processing
//! instructions, taking the repetition count in `X0` and returning the
//! number of arithmetic operations per iteration in `X0`.

use sme_isa::asm::Assembler;
use sme_isa::inst::{NeonInst, ScalarInst, SmeInst, SveInst};
use sme_isa::regs::short::*;
use sme_isa::regs::XReg;
use sme_isa::types::{ElementType, NeonArrangement, StreamingVectorLength};
use sme_isa::Program;

/// A microbenchmark kernel plus its per-iteration operation count.
#[derive(Debug, Clone)]
pub struct BenchKernel {
    /// The kernel program (argument: repetition count in X0).
    pub program: Program,
    /// Arithmetic operations performed per loop iteration.
    pub ops_per_iteration: u64,
    /// Human-readable instruction name (Table I column 1).
    pub instruction: &'static str,
    /// Input data type (Table I column 2).
    pub dtype_in: &'static str,
    /// Output data type (Table I column 3).
    pub dtype_out: &'static str,
}

const SVL: StreamingVectorLength = StreamingVectorLength::M4;

fn loop_kernel(name: &str, body: impl FnOnce(&mut Assembler), ops_per_iteration: u64) -> Program {
    let mut a = Assembler::new(name);
    // Prologue shared by all kernels: predicates + streaming mode.
    a.push(SmeInst::Smstart { za_only: false });
    a.push(SveInst::ptrue(p(0), ElementType::I8));
    a.push(SveInst::ptrue(p(1), ElementType::I8));
    let top = a.new_label();
    a.bind(top);
    a.push(ScalarInst::SubImm {
        rd: x(0),
        rn: x(0),
        imm12: 1,
        shift12: false,
    });
    body(&mut a);
    a.cbnz(x(0), top);
    a.push(SmeInst::Smstop { za_only: false });
    a.mov_imm64(x(0), ops_per_iteration);
    a.ret();
    a.finish()
}

/// Lst. 1: 30 independent Neon FMLA (vector) instructions per iteration.
pub fn neon_fmla(arrangement: NeonArrangement) -> BenchKernel {
    let ops = 30 * 2 * arrangement.lanes() as u64;
    let (dtype, name) = match arrangement {
        NeonArrangement::D2 => ("FP64", "neon_fmla_fp64"),
        NeonArrangement::S4 => ("FP32", "neon_fmla_fp32"),
        _ => ("FP16", "neon_fmla_fp16"),
    };
    let program = loop_kernel(
        name,
        |a| {
            for d in 0..30u8 {
                a.push(NeonInst::fmla_vec(v(d), v(30), v(31), arrangement));
            }
        },
        ops,
    );
    BenchKernel {
        program,
        ops_per_iteration: ops,
        instruction: "FMLA (Neon)",
        dtype_in: dtype,
        dtype_out: dtype,
    }
}

/// BFMMLA (Neon): 30 independent BF16 matrix multiply-accumulates.
pub fn neon_bfmmla() -> BenchKernel {
    let ops = 30 * 32;
    let program = loop_kernel(
        "neon_bfmmla",
        |a| {
            for d in 0..30u8 {
                a.push(NeonInst::Bfmmla {
                    vd: v(d),
                    vn: v(30),
                    vm: v(31),
                });
            }
        },
        ops,
    );
    BenchKernel {
        program,
        ops_per_iteration: ops,
        instruction: "BFMMLA (Neon)",
        dtype_in: "BF16",
        dtype_out: "FP32",
    }
}

/// Lst. 2: 32 FMOPA (non-widening) instructions per iteration, rotating over
/// `tiles` ZA tiles.
pub fn sme_fmopa(elem: ElementType, tiles: u8) -> BenchKernel {
    assert!(elem == ElementType::F32 || elem == ElementType::F64);
    let max_tiles = elem.num_tiles() as u8;
    assert!(tiles >= 1 && tiles <= max_tiles, "tile count out of range");
    let per_inst = {
        let d = elem.tile_dim(SVL) as u64;
        d * d * 2
    };
    let ops = 32 * per_inst;
    let name = if elem == ElementType::F32 {
        "sme_fmopa_fp32"
    } else {
        "sme_fmopa_fp64"
    };
    let program = loop_kernel(
        name,
        |a| {
            for i in 0..32u8 {
                let zn = z((i * 2) % 30);
                let zm = z((i * 2 + 1) % 30);
                let inst = if elem == ElementType::F32 {
                    SmeInst::fmopa_f32(i % tiles, p(0), p(1), zn, zm)
                } else {
                    SmeInst::fmopa_f64(i % tiles, p(0), p(1), zn, zm)
                };
                a.push(inst);
            }
        },
        ops,
    );
    BenchKernel {
        program,
        ops_per_iteration: ops,
        instruction: "FMOPA (SME)",
        dtype_in: if elem == ElementType::F32 {
            "FP32"
        } else {
            "FP64"
        },
        dtype_out: if elem == ElementType::F32 {
            "FP32"
        } else {
            "FP64"
        },
    }
}

/// Widening outer products (BFMOPA / FMOPA FP16→FP32).
pub fn sme_fmopa_widening(from: ElementType) -> BenchKernel {
    assert!(from == ElementType::BF16 || from == ElementType::F16);
    let ops = 32 * 1024;
    let name = if from == ElementType::BF16 {
        "sme_bfmopa"
    } else {
        "sme_fmopa_fp16"
    };
    let program = loop_kernel(
        name,
        |a| {
            for i in 0..32u8 {
                a.push(SmeInst::FmopaWide {
                    tile: i % 4,
                    from,
                    pn: p(0),
                    pm: p(1),
                    zn: z((i * 2) % 30),
                    zm: z((i * 2 + 1) % 30),
                });
            }
        },
        ops,
    );
    BenchKernel {
        program,
        ops_per_iteration: ops,
        instruction: if from == ElementType::BF16 {
            "BFMOPA (SME)"
        } else {
            "FMOPA (SME)"
        },
        dtype_in: if from == ElementType::BF16 {
            "BF16"
        } else {
            "FP16"
        },
        dtype_out: "FP32",
    }
}

/// Widening integer sums of outer products (SMOPA, I8 4-way or I16 2-way).
pub fn sme_smopa(from: ElementType) -> BenchKernel {
    assert!(from == ElementType::I8 || from == ElementType::I16);
    let per_inst = if from == ElementType::I8 { 2048 } else { 1024 };
    let ops = 32 * per_inst;
    let name = if from == ElementType::I8 {
        "sme_smopa_i8"
    } else {
        "sme_smopa_i16"
    };
    let program = loop_kernel(
        name,
        |a| {
            for i in 0..32u8 {
                a.push(SmeInst::Smopa {
                    tile: i % 4,
                    from,
                    pn: p(0),
                    pm: p(1),
                    zn: z((i * 2) % 30),
                    zm: z((i * 2 + 1) % 30),
                });
            }
        },
        ops,
    );
    BenchKernel {
        program,
        ops_per_iteration: ops,
        instruction: "SMOPA (SME)",
        dtype_in: if from == ElementType::I8 { "I8" } else { "I16" },
        dtype_out: "I32",
    }
}

/// SME2 FMLA (multiple and single vector) on ZA vector groups.
pub fn sme2_fmla_vec(elem: ElementType) -> BenchKernel {
    assert!(elem == ElementType::F32 || elem == ElementType::F64);
    let per_inst = 2 * 4 * elem.elems_per_vector(SVL) as u64;
    let ops = 16 * per_inst;
    let name = if elem == ElementType::F32 {
        "sme2_fmla_fp32"
    } else {
        "sme2_fmla_fp64"
    };
    let program = loop_kernel(
        name,
        |a| {
            // Rotate the ZA vector-group selector to avoid accumulating into
            // the same vectors back to back.
            for i in 0..16u8 {
                a.push(SmeInst::FmlaZaVectors {
                    elem,
                    vgx: 4,
                    rv: x(8),
                    offset: i % 8,
                    zn: z((i * 4) % 24),
                    zm: z(28),
                });
            }
        },
        ops,
    );
    BenchKernel {
        program,
        ops_per_iteration: ops,
        instruction: "FMLA (SME2)",
        dtype_in: if elem == ElementType::F32 {
            "FP32"
        } else {
            "FP64"
        },
        dtype_out: if elem == ElementType::F32 {
            "FP32"
        } else {
            "FP64"
        },
    }
}

/// Streaming-SVE single-vector FMLA.
pub fn ssve_fmla(elem: ElementType) -> BenchKernel {
    assert!(elem == ElementType::F32 || elem == ElementType::F64);
    let per_inst = 2 * elem.elems_per_vector(SVL) as u64;
    let ops = 30 * per_inst;
    let name = if elem == ElementType::F32 {
        "ssve_fmla_fp32"
    } else {
        "ssve_fmla_fp64"
    };
    let program = loop_kernel(
        name,
        |a| {
            for d in 0..30u8 {
                a.push(SveInst::FmlaSve {
                    zd: z(d),
                    pg: p(0),
                    zn: z(30),
                    zm: z(31),
                    elem,
                });
            }
        },
        ops,
    );
    BenchKernel {
        program,
        ops_per_iteration: ops,
        instruction: "FMLA (SSVE)",
        dtype_in: if elem == ElementType::F32 {
            "FP32"
        } else {
            "FP64"
        },
        dtype_out: if elem == ElementType::F32 {
            "FP32"
        } else {
            "FP64"
        },
    }
}

/// ZA-array load/store strategies studied in §III-G (Figs. 2–5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferStrategy {
    /// `ldr za` / `str za` — direct array-vector transfers.
    Direct,
    /// One-vector two-step transfers (`ld1w`/`st1w` { z } + single MOVA).
    OneVector,
    /// Two-vector two-step transfers.
    TwoVectors,
    /// Four-vector two-step transfers (the fastest load path).
    FourVectors,
}

impl TransferStrategy {
    /// Label used in the figures.
    pub fn label(self, store: bool) -> &'static str {
        match (self, store) {
            (TransferStrategy::Direct, false) => "LDR",
            (TransferStrategy::Direct, true) => "STR",
            (TransferStrategy::OneVector, false) => "LD1W 1VR",
            (TransferStrategy::OneVector, true) => "ST1W 1VR",
            (TransferStrategy::TwoVectors, false) => "LD1W 2VR",
            (TransferStrategy::TwoVectors, true) => "ST1W 2VR",
            (TransferStrategy::FourVectors, false) => "LD1W 4VR",
            (TransferStrategy::FourVectors, true) => "ST1W 4VR",
        }
    }

    /// All strategies in figure order.
    pub fn all() -> [TransferStrategy; 4] {
        [
            TransferStrategy::Direct,
            TransferStrategy::OneVector,
            TransferStrategy::TwoVectors,
            TransferStrategy::FourVectors,
        ]
    }
}

/// Bytes moved per loop iteration by the transfer kernels.
pub const TRANSFER_BYTES_PER_ITERATION: u64 = 1024;

/// Build a ZA load kernel: each iteration transfers
/// [`TRANSFER_BYTES_PER_ITERATION`] bytes from the buffer in `X1` into the
/// ZA array using the given strategy (Lst. 3 structure for the two-step
/// variants).
pub fn za_load_kernel(strategy: TransferStrategy) -> BenchKernel {
    za_transfer_kernel(strategy, false)
}

/// Build a ZA store kernel (ZA array → memory at `X1`).
pub fn za_store_kernel(strategy: TransferStrategy) -> BenchKernel {
    za_transfer_kernel(strategy, true)
}

fn za_transfer_kernel(strategy: TransferStrategy, store: bool) -> BenchKernel {
    let name = format!(
        "za_{}_{}",
        if store { "store" } else { "load" },
        strategy.label(store)
    );
    let mut a = Assembler::new(name);
    a.push(SmeInst::Smstart { za_only: false });
    a.push(SveInst::ptrue(p(0), ElementType::F32));
    a.push(SveInst::ptrue_cnt(pn(8), ElementType::F32));
    a.push(ScalarInst::mov_imm16(x(12), 0));
    let top = a.new_label();
    a.bind(top);
    a.push(ScalarInst::SubImm {
        rd: x(0),
        rn: x(0),
        imm12: 1,
        shift12: false,
    });
    emit_transfer_iteration(&mut a, strategy, store);
    a.cbnz(x(0), top);
    a.push(SmeInst::Smstop { za_only: false });
    a.mov_imm64(x(0), TRANSFER_BYTES_PER_ITERATION);
    a.ret();
    BenchKernel {
        program: a.finish(),
        ops_per_iteration: 0,
        instruction: strategy.label(store),
        dtype_in: "FP32",
        dtype_out: "FP32",
    }
}

fn emit_transfer_iteration(a: &mut Assembler, strategy: TransferStrategy, store: bool) {
    let vectors = (TRANSFER_BYTES_PER_ITERATION / 64) as u8; // 16 array vectors
    match strategy {
        TransferStrategy::Direct => {
            for i in 0..vectors {
                if store {
                    a.push(SmeInst::StrZa {
                        rs: x(12),
                        offset: i,
                        rn: x(1),
                    });
                } else {
                    a.push(SmeInst::LdrZa {
                        rs: x(12),
                        offset: i,
                        rn: x(1),
                    });
                }
            }
        }
        TransferStrategy::OneVector => {
            for i in 0..vectors {
                let zt = z(i % 8);
                if store {
                    a.push(SmeInst::MovaFromTile {
                        tile: sme_isa::regs::ZaTile::s(i % 4),
                        dir: sme_isa::regs::TileSliceDir::Horizontal,
                        rs: x(12),
                        offset: i % 16,
                        zt,
                        count: 1,
                    });
                    a.push(SveInst::st1w(zt, p(0), x(1), (i % 8) as i8));
                } else {
                    a.push(SveInst::ld1w(zt, p(0), x(1), (i % 8) as i8));
                    a.push(SmeInst::MovaToTile {
                        tile: sme_isa::regs::ZaTile::s(i % 4),
                        dir: sme_isa::regs::TileSliceDir::Horizontal,
                        rs: x(12),
                        offset: i % 16,
                        zt,
                        count: 1,
                    });
                }
            }
        }
        TransferStrategy::TwoVectors => {
            for i in 0..vectors / 2 {
                let zt = z((i % 4) * 2);
                if store {
                    a.push(SmeInst::MovaFromTile {
                        tile: sme_isa::regs::ZaTile::s(i % 4),
                        dir: sme_isa::regs::TileSliceDir::Horizontal,
                        rs: x(12),
                        offset: (i * 2) % 16,
                        zt,
                        count: 2,
                    });
                    a.push(SveInst::st1w_multi(zt, 2, pn(8), x(1), (i % 8) as i8));
                } else {
                    a.push(SveInst::ld1w_multi(zt, 2, pn(8), x(1), (i % 8) as i8));
                    a.push(SmeInst::MovaToTile {
                        tile: sme_isa::regs::ZaTile::s(i % 4),
                        dir: sme_isa::regs::TileSliceDir::Horizontal,
                        rs: x(12),
                        offset: (i * 2) % 16,
                        zt,
                        count: 2,
                    });
                }
            }
        }
        TransferStrategy::FourVectors => {
            for i in 0..vectors / 4 {
                let zt = z((i % 2) * 4);
                if store {
                    a.push(SmeInst::MovaFromTile {
                        tile: sme_isa::regs::ZaTile::s(i),
                        dir: sme_isa::regs::TileSliceDir::Horizontal,
                        rs: x(12),
                        offset: (i * 4) % 16,
                        zt,
                        count: 4,
                    });
                    a.push(SveInst::st1w_multi(zt, 4, pn(8), x(1), (i % 4) as i8));
                } else {
                    // Lst. 3: load four vectors, then move them into the ZA
                    // array as a group.
                    a.push(SveInst::ld1w_multi(zt, 4, pn(8), x(1), (i % 4) as i8));
                    a.push(SmeInst::MovaToTile {
                        tile: sme_isa::regs::ZaTile::s(i),
                        dir: sme_isa::regs::TileSliceDir::Horizontal,
                        rs: x(12),
                        offset: (i * 4) % 16,
                        zt,
                        count: 4,
                    });
                }
            }
        }
    }
}

/// Every Table I kernel, in the paper's row order.
pub fn table_one_kernels() -> Vec<BenchKernel> {
    vec![
        neon_fmla(NeonArrangement::D2),
        neon_fmla(NeonArrangement::S4),
        neon_fmla(NeonArrangement::H8),
        neon_bfmmla(),
        sme_fmopa(ElementType::F64, 4),
        sme_fmopa(ElementType::F32, 4),
        sme_fmopa_widening(ElementType::BF16),
        sme_fmopa_widening(ElementType::F16),
        sme_smopa(ElementType::I16),
        sme_smopa(ElementType::I8),
        sme2_fmla_vec(ElementType::F64),
        ssve_fmla(ElementType::F64),
        sme2_fmla_vec(ElementType::F32),
        ssve_fmla(ElementType::F32),
    ]
}

/// The argument register holding the transfer buffer for the bandwidth
/// kernels.
pub const TRANSFER_BUFFER_ARG: XReg = XReg::XZR; // documented: buffer is X1, reps X0

#[cfg(test)]
mod tests {
    use super::*;
    use sme_isa::inst::Inst;

    #[test]
    fn table_one_has_every_row() {
        let kernels = table_one_kernels();
        assert_eq!(kernels.len(), 14, "Table I has 14 rows");
        // Per-instruction operation counts from §II-B / §III.
        let fmopa32 = sme_fmopa(ElementType::F32, 4);
        assert_eq!(fmopa32.ops_per_iteration, 32 * 512);
        let fmopa64 = sme_fmopa(ElementType::F64, 4);
        assert_eq!(fmopa64.ops_per_iteration, 32 * 128);
        let smopa8 = sme_smopa(ElementType::I8);
        assert_eq!(smopa8.ops_per_iteration, 32 * 2048);
        let neon = neon_fmla(NeonArrangement::S4);
        assert_eq!(neon.ops_per_iteration, 30 * 8);
    }

    #[test]
    fn kernels_return_their_ops_per_iteration() {
        use sme_machine::exec::{RunOptions, Simulator};
        let k = neon_fmla(NeonArrangement::S4);
        let mut sim = Simulator::m4_performance();
        let r = sim.run(&k.program, &[5], &RunOptions::functional_only());
        assert_eq!(r.return_value, k.ops_per_iteration);
    }

    #[test]
    fn listing_two_structure() {
        let k = sme_fmopa(ElementType::F32, 4);
        let fmopas = k
            .program
            .count_matching(|i| matches!(i, Inst::Sme(SmeInst::Fmopa { .. })));
        assert_eq!(
            fmopas, 32,
            "Lst. 2 has 32 FMOPA instructions in the loop body"
        );
        let ptrues = k
            .program
            .count_matching(|i| matches!(i, Inst::Sve(SveInst::Ptrue { .. })));
        assert_eq!(ptrues, 2, "Lst. 2 sets two predicate registers");
    }

    #[test]
    fn transfer_kernels_move_the_advertised_bytes() {
        use sme_machine::exec::{RunOptions, Simulator};
        for strategy in TransferStrategy::all() {
            let k = za_load_kernel(strategy);
            let mut sim = Simulator::m4_performance();
            let buf = sim.mem.alloc_f32_zeroed(1024, 128);
            let reps = 10u64;
            let r = sim.run(&k.program, &[reps, buf], &RunOptions::functional_only());
            assert_eq!(
                r.stats.bytes_loaded,
                reps * TRANSFER_BYTES_PER_ITERATION,
                "{strategy:?}"
            );
            let ks = za_store_kernel(strategy);
            let mut sim = Simulator::m4_performance();
            let buf = sim.mem.alloc_f32_zeroed(1024, 128);
            let r = sim.run(&ks.program, &[reps, buf], &RunOptions::functional_only());
            assert_eq!(
                r.stats.bytes_stored,
                reps * TRANSFER_BYTES_PER_ITERATION,
                "{strategy:?} store"
            );
        }
    }

    #[test]
    fn strategy_labels_match_the_figures() {
        assert_eq!(TransferStrategy::Direct.label(false), "LDR");
        assert_eq!(TransferStrategy::Direct.label(true), "STR");
        assert_eq!(TransferStrategy::FourVectors.label(false), "LD1W 4VR");
        assert_eq!(TransferStrategy::TwoVectors.label(true), "ST1W 2VR");
    }
}
