//! Fig. 1: multi-core scaling of the Neon FMLA and SME FMOPA benchmarks.

use crate::kernels::{neon_fmla, sme_fmopa};
use crate::throughput::measure_gops;
use serde::{Deserialize, Serialize};
use sme_isa::types::{ElementType, NeonArrangement};
use sme_machine::multicore::{MulticoreModel, ScalingPoint};
use sme_machine::{CoreKind, MachineConfig};

/// The two curves of Fig. 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure1 {
    /// FP32 Neon FMLA (vector) aggregate throughput per thread count.
    pub neon: Vec<ScalingPoint>,
    /// FP32 SME FMOPA (non-widening) aggregate throughput per thread count.
    pub fmopa: Vec<ScalingPoint>,
}

impl Figure1 {
    /// Peak Neon throughput across the curve (the 10-thread value in the
    /// paper, 656 GFLOPS).
    pub fn neon_peak(&self) -> f64 {
        self.neon.iter().map(|p| p.gflops).fold(0.0, f64::max)
    }

    /// Peak SME throughput across the curve (≈ 2338 GFLOPS with both SME
    /// units engaged).
    pub fn fmopa_peak(&self) -> f64 {
        self.fmopa.iter().map(|p| p.gflops).fold(0.0, f64::max)
    }

    /// Single-thread SME speed-up over the best multi-threaded Neon result
    /// (§V quotes up to 3.1×).
    pub fn single_thread_sme_speedup(&self) -> f64 {
        self.fmopa[0].gflops / self.neon_peak()
    }

    /// Dual-unit SME speed-up over the best multi-threaded Neon result
    /// (§V quotes up to 3.6×).
    pub fn dual_unit_sme_speedup(&self) -> f64 {
        self.fmopa_peak() / self.neon_peak()
    }
}

/// Reproduce Fig. 1 for thread counts `1..=max_threads`.
///
/// The per-thread standalone throughputs are measured by running the Lst. 1
/// and Lst. 2 kernels on the single-core simulator for each core kind; the
/// multicore model of `sme-machine` then aggregates them with the shared
/// SME-unit topology.
pub fn figure1(config: &MachineConfig, max_threads: usize) -> Figure1 {
    let neon_kernel = neon_fmla(NeonArrangement::S4);
    let fmopa_kernel = sme_fmopa(ElementType::F32, 4);

    let neon_p = measure_gops(config, CoreKind::Performance, &neon_kernel);
    let neon_e = measure_gops(config, CoreKind::Efficiency, &neon_kernel);
    let sme_p = measure_gops(config, CoreKind::Performance, &fmopa_kernel);
    let sme_e = measure_gops(config, CoreKind::Efficiency, &fmopa_kernel);

    let model = MulticoreModel::new(config.clone());
    Figure1 {
        neon: model.scaling_curve(max_threads, neon_p, neon_e, false),
        fmopa: model.scaling_curve(max_threads, sme_p, sme_e, true),
    }
}

/// The §III-F mixed-thread experiment: one user-interactive plus one utility
/// thread running the FMOPA benchmark (paper: 2371 GFLOPS measured,
/// 2009 + 357 = 2366 expected).
pub fn mixed_thread_experiment(config: &MachineConfig) -> f64 {
    let fmopa_kernel = sme_fmopa(ElementType::F32, 4);
    let sme_p = measure_gops(config, CoreKind::Performance, &fmopa_kernel);
    let sme_e = measure_gops(config, CoreKind::Efficiency, &fmopa_kernel);
    MulticoreModel::new(config.clone()).mixed_ui_utility_sme(sme_p, sme_e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_matches_the_paper() {
        let config = MachineConfig::apple_m4();
        let fig = figure1(&config, 10);
        assert_eq!(fig.neon.len(), 10);
        assert_eq!(fig.fmopa.len(), 10);
        // Neon: ~113, ~395 at 4 threads, ~656 at 10 threads.
        assert!((fig.neon[0].gflops - 113.0).abs() < 4.0);
        assert!((fig.neon[3].gflops - 395.0).abs() < 15.0);
        assert!((fig.neon[9].gflops - 656.0).abs() < 30.0);
        // FMOPA: ~2009 flat, then ~2338 from five threads on.
        assert!((fig.fmopa[0].gflops - 2009.0).abs() < 25.0);
        assert!((fig.fmopa[3].gflops - 1983.0).abs() < 25.0);
        assert!((fig.fmopa[4].gflops - 2338.0).abs() < 40.0);
        assert!(fig.fmopa[9].gflops <= fig.fmopa[4].gflops + 1.0);
    }

    #[test]
    fn speedups_match_the_discussion() {
        let config = MachineConfig::apple_m4();
        let fig = figure1(&config, 10);
        assert!((fig.single_thread_sme_speedup() - 3.1).abs() < 0.3);
        assert!((fig.dual_unit_sme_speedup() - 3.6).abs() < 0.35);
    }

    #[test]
    fn mixed_thread_total_matches() {
        let config = MachineConfig::apple_m4();
        let total = mixed_thread_experiment(&config);
        assert!((total - 2366.0).abs() < 40.0, "{total}");
    }
}
