//! The canonical correctness oracle: `accel_ref::reference_sgemm` (what the
//! vendor BLAS would compute) must agree with both scalar references in
//! `sme_gemm::reference` across shapes, B layouts and beta modes — and
//! generated kernels must agree with that oracle.
//!
//! Later kernel optimizations are validated against this agreement: if a
//! faster kernel still matches `reference_sgemm`, it matches everything.

use accel_ref::reference_sgemm;
use sme_gemm::reference::{fill_matrix, gemm_blocked_reference, gemm_reference, max_abs_diff};
use sme_gemm::{generate, Beta, GemmConfig};

/// The sweep grid: small enough to stay fast in debug builds, varied enough
/// to hit full tiles, masked remainders and degenerate extents.
fn sweep() -> Vec<GemmConfig> {
    let mut configs = Vec::new();
    for &(m, n, k) in &[
        (1, 1, 1),
        (8, 8, 8),
        (16, 16, 16),
        (17, 5, 3),
        (32, 16, 24),
        (33, 31, 7),
    ] {
        for col_major_b in [false, true] {
            for beta in [Beta::Zero, Beta::One] {
                let base = if col_major_b {
                    GemmConfig::ab(m, n, k)
                } else {
                    GemmConfig::abt(m, n, k)
                };
                configs.push(base.with_beta(beta));
            }
        }
    }
    configs
}

fn random_problem(cfg: &GemmConfig, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut a = vec![0.0; cfg.a_len()];
    let mut b = vec![0.0; cfg.b_len()];
    let mut c = vec![0.0; cfg.c_len()];
    fill_matrix(seed, &mut a);
    fill_matrix(seed ^ 0xA5A5, &mut b);
    fill_matrix(seed ^ 0x5A5A, &mut c);
    (a, b, c)
}

#[test]
fn vendor_oracle_agrees_with_both_references_across_the_sweep() {
    for (i, cfg) in sweep().iter().enumerate() {
        let (a, b, c0) = random_problem(cfg, 1000 + i as u64);

        let mut c_vendor = c0.clone();
        reference_sgemm(cfg, &a, &b, &mut c_vendor);

        let mut c_naive = c0.clone();
        gemm_reference(cfg, &a, &b, &mut c_naive);
        assert_eq!(
            c_vendor, c_naive,
            "{cfg}: vendor oracle deviates from the naive reference"
        );

        let mut c_blocked = c0.clone();
        gemm_blocked_reference(cfg, &a, &b, &mut c_blocked);
        let diff = max_abs_diff(&c_vendor, &c_blocked);
        assert!(
            diff < 1e-4,
            "{cfg}: vendor oracle vs blocked reference differ by {diff}"
        );
    }
}

#[test]
fn generated_kernels_agree_with_the_vendor_oracle() {
    // validate() compares a kernel against gemm_reference, which the sweep
    // above pins to reference_sgemm; one direct spot check closes the loop
    // without relying on that transitivity.
    for cfg in [GemmConfig::abt(32, 16, 8), GemmConfig::ab(16, 32, 8)] {
        let kernel = generate(&cfg).expect("generation");
        assert!(kernel.validate(13) < 1e-4, "{cfg}");
    }

    let cfg = GemmConfig::abt(16, 16, 4);
    let kernel = generate(&cfg).expect("generation");
    let mut sim = sme_machine::exec::Simulator::m4_performance();
    let bufs = kernel.allocate_buffers(&mut sim, Some(77));
    let a = sim.mem.read_f32_slice(bufs.a, cfg.a_len());
    let b = sim.mem.read_f32_slice(bufs.b, cfg.b_len());
    let mut c_oracle = sim.mem.read_f32_slice(bufs.c, cfg.c_len());
    kernel.run(
        &mut sim,
        bufs,
        &sme_machine::exec::RunOptions::functional_only(),
    );
    reference_sgemm(&cfg, &a, &b, &mut c_oracle);
    let c_kernel = sim.mem.read_f32_slice(bufs.c, cfg.c_len());
    let diff = max_abs_diff(&c_kernel, &c_oracle);
    assert!(diff < 1e-4, "kernel vs vendor oracle differ by {diff}");
}
