//! Calibration constants of the vendor-BLAS stand-in.

use serde::{Deserialize, Serialize};

/// Tunable parameters of the vendor-library model.
///
/// Every constant is documented with the observable behaviour it is meant to
/// reproduce; `VendorModel::default()` is the calibration used for the
/// Fig. 8 / Fig. 9 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VendorModel {
    /// Fixed dispatch cost per library call in nanoseconds (CBLAS argument
    /// checking, threshold logic, threading decision). Dominates for tiny
    /// matrices, which is why the vendor curve starts near zero in the
    /// paper's figures.
    pub dispatch_ns: f64,
    /// Bandwidth (GiB/s) at which A and B are packed into the library's
    /// internal buffers before the compute phase.
    pub packing_gibs: f64,
    /// Additional bandwidth cost (GiB/s) of logically transposing B when the
    /// caller passes a row-major B (`C += A·Bᵀ`, Fig. 8). Column-major B
    /// (Fig. 9) is the library's native layout and skips this pass.
    pub transpose_gibs: f64,
    /// Efficiency factor applied to the simulated fixed-blocking kernel:
    /// a general-purpose library does not specialise its cleanup code or
    /// leading-dimension handling for every small shape the way a JIT does.
    pub compute_efficiency: f64,
    /// The matrix-unit peak the library can at best approach (FP32 GFLOPS);
    /// used only as a sanity ceiling.
    pub peak_gflops: f64,
}

impl Default for VendorModel {
    fn default() -> Self {
        VendorModel {
            dispatch_ns: 2_500.0,
            packing_gibs: 180.0,
            transpose_gibs: 120.0,
            compute_efficiency: 0.80,
            peak_gflops: 2009.0,
        }
    }
}

impl VendorModel {
    /// Seconds spent packing `bytes` of operand data.
    pub fn packing_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.packing_gibs * (1u64 << 30) as f64)
    }

    /// Seconds spent logically transposing `bytes` of B.
    pub fn transpose_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.transpose_gibs * (1u64 << 30) as f64)
    }

    /// Dispatch overhead in seconds.
    pub fn dispatch_seconds(&self) -> f64 {
        self.dispatch_ns * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_calibration_is_sane() {
        let m = VendorModel::default();
        assert!(m.dispatch_seconds() > 1e-6 && m.dispatch_seconds() < 1e-5);
        assert!(m.compute_efficiency > 0.5 && m.compute_efficiency < 1.0);
        // Packing 1 MiB takes a few microseconds.
        let t = m.packing_seconds(1 << 20);
        assert!(t > 1e-6 && t < 1e-4);
        assert!(
            m.transpose_seconds(1 << 20) > t,
            "transposition is slower than packing"
        );
    }
}
