//! # accel-ref
//!
//! A stand-in for Apple's vendor-optimized Accelerate BLAS, the baseline the
//! paper compares against in Figs. 8 and 9.
//!
//! Accelerate is closed source and only runs on Apple platforms, so — per
//! the reproduction's substitution rules — this crate models a plausible
//! vendor SGEMM instead of linking the real library:
//!
//! * the **compute core** is a real generated kernel (via `sme-gemm`) that
//!   uses a *fixed, homogeneous 32×32 blocking* with direct ZA transfers and
//!   operates on matrices padded up to multiples of the tile size — the
//!   strategy a general-purpose library tuned for large GEMMs would use for
//!   small ones; its time comes from the same simulator as the LIBXSMM-style
//!   kernels;
//! * on top of that, the model charges the **framework costs** a library
//!   call cannot avoid and a JIT-specialised kernel does not pay: dispatch
//!   overhead per call, packing of A and B into internal buffers, and an
//!   additional logical-transposition pass when the caller hands over a
//!   row-major B (`CblasTrans`).
//!
//! The constants are calibrated so the baseline saturates around
//! 1.5 FP32 TFLOPS for large, well-shaped inputs — the level the paper's
//! Accelerate curves approach — while small and awkwardly-shaped inputs pay
//! disproportionate overheads, which is exactly the regime where the paper's
//! generated kernels win.

#![warn(missing_docs)]

pub mod model;
pub mod sgemm;

pub use model::VendorModel;
pub use sgemm::{reference_sgemm, AccelerateSgemm};
