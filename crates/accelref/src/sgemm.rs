//! The vendor-BLAS SGEMM baseline.

use crate::model::VendorModel;
use sme_gemm::reference::gemm_reference;
use sme_gemm::{
    generate_with_plan, plan_homogeneous, BLayout, GemmConfig, GemmError, RegisterBlocking,
    ZaTransferStrategy,
};

/// Pad a dimension up to the next multiple of the 16-element tile size, the
/// granularity a fixed-strategy library works at internally.
fn pad16(x: usize) -> usize {
    x.div_ceil(16) * 16
}

/// An Accelerate-like SGEMM call for one problem shape.
#[derive(Debug, Clone)]
pub struct AccelerateSgemm {
    cfg: GemmConfig,
    model: VendorModel,
}

impl AccelerateSgemm {
    /// Create the baseline for a problem configuration.
    pub fn new(cfg: GemmConfig) -> Self {
        AccelerateSgemm {
            cfg,
            model: VendorModel::default(),
        }
    }

    /// Create the baseline with explicit model constants.
    pub fn with_model(cfg: GemmConfig, model: VendorModel) -> Self {
        AccelerateSgemm { cfg, model }
    }

    /// The problem configuration.
    pub fn config(&self) -> &GemmConfig {
        &self.cfg
    }

    /// The model constants.
    pub fn model(&self) -> &VendorModel {
        &self.model
    }

    /// Bytes of operand data the library packs before computing.
    pub fn packed_bytes(&self) -> u64 {
        ((self.cfg.m * self.cfg.k + self.cfg.k * self.cfg.n) * 4) as u64
    }

    /// Modelled wall-clock seconds for one call.
    ///
    /// The compute phase is a real simulated kernel over the padded problem
    /// (fixed homogeneous 32×32 blocking, direct ZA transfers), scaled by
    /// the library-efficiency factor; dispatch, packing and (for row-major
    /// B) transposition are added on top.
    pub fn model_seconds(&self) -> Result<f64, GemmError> {
        let m_pad = pad16(self.cfg.m);
        let n_pad = pad16(self.cfg.n);
        // The library packs operands, so its compute kernel always sees
        // contiguous, padded, row-major-B operands regardless of the
        // caller's layout.
        let padded =
            GemmConfig::abt(m_pad, n_pad, self.cfg.k).with_c_transfer(ZaTransferStrategy::Direct);
        let plan = plan_homogeneous(m_pad, n_pad, RegisterBlocking::B32x32);
        let kernel = generate_with_plan(&padded, Some(plan))?;
        let compute = kernel.model_stats().seconds() / self.model.compute_efficiency;

        let mut total = self.model.dispatch_seconds() + compute;
        total += self.model.packing_seconds(self.packed_bytes());
        if self.cfg.b_layout == BLayout::RowMajor {
            total += self
                .model
                .transpose_seconds((self.cfg.k * self.cfg.n * 4) as u64);
        }
        Ok(total)
    }

    /// Modelled throughput in GFLOPS, using the caller's (unpadded)
    /// operation count — exactly how the paper's figures report it.
    pub fn model_gflops(&self) -> Result<f64, GemmError> {
        let seconds = self.model_seconds()?;
        Ok(self.cfg.flops() as f64 / seconds / 1e9)
    }
}

/// Functionally compute what the vendor SGEMM would return (it is a correct
/// BLAS, so this is simply the reference GEMM); used by integration tests
/// that check the baseline and the generated kernels agree numerically.
pub fn reference_sgemm(cfg: &GemmConfig, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_reference(cfg, a, b, c);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_well_shaped_calls_approach_the_asymptote() {
        let g = AccelerateSgemm::new(GemmConfig::abt(512, 512, 512))
            .model_gflops()
            .unwrap();
        assert!(g > 1200.0 && g < 1700.0, "Accelerate asymptote {g}");
    }

    #[test]
    fn small_calls_are_overhead_dominated() {
        let small = AccelerateSgemm::new(GemmConfig::abt(16, 16, 512))
            .model_gflops()
            .unwrap();
        let large = AccelerateSgemm::new(GemmConfig::abt(256, 256, 512))
            .model_gflops()
            .unwrap();
        assert!(small < 0.35 * large, "small {small} vs large {large}");
    }

    #[test]
    fn padding_penalises_awkward_sizes() {
        let aligned = AccelerateSgemm::new(GemmConfig::abt(256, 256, 512))
            .model_gflops()
            .unwrap();
        let awkward = AccelerateSgemm::new(GemmConfig::abt(241, 241, 512))
            .model_gflops()
            .unwrap();
        assert!(awkward < aligned, "awkward {awkward} vs aligned {aligned}");
    }

    #[test]
    fn column_major_b_is_the_native_layout() {
        // For the same shape, the row-major-B call (Fig. 8) pays an extra
        // transposition pass compared to the column-major-B call (Fig. 9).
        let abt = AccelerateSgemm::new(GemmConfig::abt(192, 192, 512))
            .model_seconds()
            .unwrap();
        let ab = AccelerateSgemm::new(GemmConfig::ab(192, 192, 512))
            .model_seconds()
            .unwrap();
        assert!(
            abt > ab,
            "row-major B ({abt}) must cost more than column-major B ({ab})"
        );
    }

    #[test]
    fn never_exceeds_the_machine_peak() {
        for mn in [64, 128, 320, 512] {
            let g = AccelerateSgemm::new(GemmConfig::abt(mn, mn, 512))
                .model_gflops()
                .unwrap();
            assert!(g < VendorModel::default().peak_gflops, "{mn}: {g}");
        }
    }

    #[test]
    fn reference_sgemm_matches_the_reference() {
        let cfg = GemmConfig::abt(8, 8, 8);
        let a = vec![1.0f32; cfg.a_len()];
        let b = vec![2.0f32; cfg.b_len()];
        let mut c1 = vec![0.0f32; cfg.c_len()];
        let mut c2 = c1.clone();
        reference_sgemm(&cfg, &a, &b, &mut c1);
        gemm_reference(&cfg, &a, &b, &mut c2);
        assert_eq!(c1, c2);
    }
}
