//! Property tests for the observability surfaces: histogram merge is
//! associative, quantile estimates bracket the true quantile, and the
//! Chrome trace export round-trips through the validator.

use proptest::collection::vec;
use proptest::prelude::*;
use sme_obs::{validate_chrome_trace, HistogramData, TraceRecorder};
use std::collections::HashMap;
use std::time::Instant;

/// Non-negative sample values spanning ten orders of magnitude (with a few
/// exact zeros mixed in via the modulus).
fn samples() -> impl Strategy<Value = Vec<f64>> {
    vec(0u64..u64::MAX, 0..64).prop_map(|raw| {
        raw.into_iter()
            .map(|bits| {
                let magnitude = (bits % 11) as i32 - 1; // -1..=9
                let mantissa = (bits >> 8) % 10_000;
                if magnitude < 0 {
                    0.0
                } else {
                    (1.0 + mantissa as f64 / 10_000.0) * 10f64.powi(magnitude)
                }
            })
            .collect()
    })
}

fn fill(values: &[f64]) -> HistogramData {
    let mut h = HistogramData::default();
    for v in values {
        h.record(*v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): bucket counts are integers, so merge
    /// order cannot change any count.
    #[test]
    fn histogram_merge_is_associative(
        a in samples(),
        b in samples(),
        c in samples(),
    ) {
        let (ha, hb, hc) = (fill(&a), fill(&b), fill(&c));

        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);

        prop_assert_eq!(&left.buckets, &right.buckets);
        prop_assert_eq!(left.zero, right.zero);
        prop_assert_eq!(left.count, right.count);
        // The f64 sum is associative only up to round-off.
        let tol = 1e-9 * left.sum.abs().max(1.0);
        prop_assert!((left.sum - right.sum).abs() <= tol);

        // Merge order also cannot move a quantile out of its bucket.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(left.quantile_bounds(q), right.quantile_bounds(q));
        }
    }

    /// The reported bucket bounds bracket the true (order-statistic)
    /// quantile of the recorded values.
    #[test]
    fn quantile_bounds_bracket_the_true_quantile(
        values in samples().prop_filter("need data", |v| !v.is_empty()),
        q_milli in 0u32..=1000,
    ) {
        let q = q_milli as f64 / 1000.0;
        let h = fill(&values);

        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let true_q = sorted[rank - 1];

        let (lo, hi) = h.quantile_bounds(q).expect("non-empty histogram");
        if true_q == 0.0 {
            prop_assert_eq!((lo, hi), (0.0, 0.0));
        } else {
            prop_assert!(
                lo <= true_q && true_q < hi,
                "true quantile {} outside bucket [{}, {})", true_q, lo, hi
            );
        }
    }

    /// Whatever spans are recorded, the Chrome export parses and validates,
    /// and retains min(#spans, capacity) events.
    #[test]
    fn chrome_export_always_validates(
        names in vec(0u8..26, 0..40),
        capacity in 1usize..32,
    ) {
        let rec = TraceRecorder::new(capacity);
        let t0 = Instant::now();
        for n in &names {
            rec.record(
                &format!("span-{}", (b'a' + n) as char),
                "prop",
                t0,
                vec![("i".to_string(), serde::json::Value::Number(*n as f64))],
            );
        }
        let json = rec.to_chrome_trace();
        let events = validate_chrome_trace(&json);
        prop_assert_eq!(events, Ok(names.len().min(capacity)));
        prop_assert_eq!(rec.dropped() as usize, names.len().saturating_sub(capacity));
    }

    /// For any random span tree recorded parent-last (the instrumentation
    /// convention: a caller's span closes after all its callees'), every
    /// exported child span nests inside its parent's interval, span ids
    /// are unique, and children share their parent's trace id.
    #[test]
    fn child_spans_nest_inside_their_parents(
        // parents[i] is the parent slot of span i+1, always an earlier slot;
        // slot 0 is the root. This spans chains, stars and bushy trees.
        parents in vec(0usize..32, 1..32),
    ) {
        let rec = TraceRecorder::new(64);
        let n = parents.len() + 1;

        // Allocate identities and start times in index order: a child
        // starts no earlier than its parent.
        let mut ctxs = vec![rec.root_ctx()];
        let mut starts = vec![Instant::now()];
        for (i, parent) in parents.iter().enumerate() {
            ctxs.push(rec.child_ctx(ctxs[parent % (i + 1)]));
            starts.push(Instant::now());
        }
        // Record deepest-first: a child's end time precedes its parent's.
        for i in (0..n).rev() {
            rec.record_ctx(&format!("span-{i}"), "prop", starts[i], ctxs[i], vec![]);
        }

        let json = rec.to_chrome_trace();
        prop_assert_eq!(validate_chrome_trace(&json), Ok(n));
        let doc = serde_json::from_str(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();

        let mut by_id: HashMap<u64, (f64, f64, u64)> = HashMap::new();
        for s in &spans {
            let id = s.get("span_id").unwrap().as_u64().unwrap();
            let ts = s.get("ts").unwrap().as_f64().unwrap();
            let dur = s.get("dur").unwrap().as_f64().unwrap();
            let trace = s.get("trace_id").unwrap().as_u64().unwrap();
            prop_assert!(
                by_id.insert(id, (ts, dur, trace)).is_none(),
                "duplicate span id {}", id
            );
        }
        // Interval arithmetic on exported microseconds is exact only up to
        // f64 round-off; the slack is far below one clock tick.
        let eps = 1e-6;
        for s in &spans {
            let Some(parent_id) = s.get("parent_id").map(|p| p.as_u64().unwrap()) else {
                continue;
            };
            let (ts, dur, trace) = by_id[&s.get("span_id").unwrap().as_u64().unwrap()];
            let (pts, pdur, ptrace) = by_id[&parent_id];
            prop_assert_eq!(trace, ptrace, "child shares its parent's trace");
            prop_assert!(
                ts + eps >= pts && ts + dur <= pts + pdur + eps,
                "child [{}, {}] outside parent [{}, {}]",
                ts, ts + dur, pts, pts + pdur
            );
        }
    }
}
