//! Property tests for the observability surfaces: histogram merge is
//! associative, quantile estimates bracket the true quantile, and the
//! Chrome trace export round-trips through the validator.

use proptest::collection::vec;
use proptest::prelude::*;
use sme_obs::{validate_chrome_trace, HistogramData, TraceRecorder};
use std::time::Instant;

/// Non-negative sample values spanning ten orders of magnitude (with a few
/// exact zeros mixed in via the modulus).
fn samples() -> impl Strategy<Value = Vec<f64>> {
    vec(0u64..u64::MAX, 0..64).prop_map(|raw| {
        raw.into_iter()
            .map(|bits| {
                let magnitude = (bits % 11) as i32 - 1; // -1..=9
                let mantissa = (bits >> 8) % 10_000;
                if magnitude < 0 {
                    0.0
                } else {
                    (1.0 + mantissa as f64 / 10_000.0) * 10f64.powi(magnitude)
                }
            })
            .collect()
    })
}

fn fill(values: &[f64]) -> HistogramData {
    let mut h = HistogramData::default();
    for v in values {
        h.record(*v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): bucket counts are integers, so merge
    /// order cannot change any count.
    #[test]
    fn histogram_merge_is_associative(
        a in samples(),
        b in samples(),
        c in samples(),
    ) {
        let (ha, hb, hc) = (fill(&a), fill(&b), fill(&c));

        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);

        prop_assert_eq!(&left.buckets, &right.buckets);
        prop_assert_eq!(left.zero, right.zero);
        prop_assert_eq!(left.count, right.count);
        // The f64 sum is associative only up to round-off.
        let tol = 1e-9 * left.sum.abs().max(1.0);
        prop_assert!((left.sum - right.sum).abs() <= tol);

        // Merge order also cannot move a quantile out of its bucket.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(left.quantile_bounds(q), right.quantile_bounds(q));
        }
    }

    /// The reported bucket bounds bracket the true (order-statistic)
    /// quantile of the recorded values.
    #[test]
    fn quantile_bounds_bracket_the_true_quantile(
        values in samples().prop_filter("need data", |v| !v.is_empty()),
        q_milli in 0u32..=1000,
    ) {
        let q = q_milli as f64 / 1000.0;
        let h = fill(&values);

        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let true_q = sorted[rank - 1];

        let (lo, hi) = h.quantile_bounds(q).expect("non-empty histogram");
        if true_q == 0.0 {
            prop_assert_eq!((lo, hi), (0.0, 0.0));
        } else {
            prop_assert!(
                lo <= true_q && true_q < hi,
                "true quantile {} outside bucket [{}, {})", true_q, lo, hi
            );
        }
    }

    /// Whatever spans are recorded, the Chrome export parses and validates,
    /// and retains min(#spans, capacity) events.
    #[test]
    fn chrome_export_always_validates(
        names in vec(0u8..26, 0..40),
        capacity in 1usize..32,
    ) {
        let rec = TraceRecorder::new(capacity);
        let t0 = Instant::now();
        for n in &names {
            rec.record(
                &format!("span-{}", (b'a' + n) as char),
                "prop",
                t0,
                vec![("i".to_string(), serde::json::Value::Number(*n as f64))],
            );
        }
        let json = rec.to_chrome_trace();
        let events = validate_chrome_trace(&json);
        prop_assert_eq!(events, Ok(names.len().min(capacity)));
        prop_assert_eq!(rec.dropped() as usize, names.len().saturating_sub(capacity));
    }
}
