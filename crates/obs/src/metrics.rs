//! Metrics: counters, gauges and log-linear histograms with Prometheus
//! text exposition and a JSON snapshot.
//!
//! The registry hands out cheap cloneable handles — a [`Counter`] is an
//! atomic increment, a [`Gauge`] an atomic store, a [`Histogram`] a short
//! mutex around a sparse bucket map — so instrumentation sites pay almost
//! nothing and never block each other for long.
//!
//! The histogram is **log-linear**: each power-of-two octave is split into
//! [`SUB_BUCKETS_PER_OCTAVE`] geometric sub-buckets, giving a fixed
//! relative resolution (`2^(1/8) ≈ 9%`) over any value range with a sparse
//! `BTreeMap` of `u64` counts. Because the state is integer counts, merging
//! two histograms is bucket-wise addition — exactly associative — and
//! [`HistogramData::quantile_bounds`] can guarantee that the true quantile
//! lies inside the returned bucket bounds.

use serde::json::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Geometric sub-buckets per power-of-two octave.
pub const SUB_BUCKETS_PER_OCTAVE: i32 = 8;

/// Worst-k exemplars retained per histogram.
pub const MAX_EXEMPLARS: usize = 4;

/// One tail exemplar: an observed value plus the span that produced it,
/// so a histogram's worst bucket links back to the causal trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exemplar {
    /// The observed value.
    pub value: f64,
    /// The trace the observation belongs to.
    pub trace_id: u64,
    /// The span that recorded it.
    pub span_id: u64,
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle (stores f64 bits atomically).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// The value state of one histogram: sparse log-linear buckets plus count
/// and sum.
///
/// Values are clamped to `>= 0` on record (a dedicated zero bucket holds
/// zero and any clamped negatives/NaNs); positive values land in bucket
/// `i` covering `[2^(i/8), 2^((i+1)/8))`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramData {
    /// Count per log-linear bucket index.
    pub buckets: BTreeMap<i32, u64>,
    /// Count of zero (or clamped non-positive / non-finite) observations.
    pub zero: u64,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (after clamping).
    pub sum: f64,
    /// The worst [`MAX_EXEMPLARS`] observations that carried span identity,
    /// largest first (ties broken by span id, so merge is order-free).
    pub exemplars: Vec<Exemplar>,
}

/// Lower/upper bounds of log-linear bucket `i`.
fn bucket_bounds(i: i32) -> (f64, f64) {
    let sub = SUB_BUCKETS_PER_OCTAVE as f64;
    (2f64.powf(i as f64 / sub), 2f64.powf((i + 1) as f64 / sub))
}

impl HistogramData {
    /// Record one observation.
    pub fn record(&mut self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        self.count += 1;
        self.sum += v;
        if v == 0.0 {
            self.zero += 1;
            return;
        }
        let mut i = (SUB_BUCKETS_PER_OCTAVE as f64 * v.log2()).floor() as i32;
        // powf round-off can put the computed index one bucket off; nudge
        // until the bracketing invariant lo <= v < hi actually holds.
        while v < bucket_bounds(i).0 {
            i -= 1;
        }
        while v >= bucket_bounds(i).1 {
            i += 1;
        }
        *self.buckets.entry(i).or_insert(0) += 1;
    }

    /// Record one observation carrying span identity: the value lands in
    /// its bucket as usual, and additionally competes for the worst-k
    /// exemplar slots.
    pub fn record_exemplar(&mut self, v: f64, trace_id: u64, span_id: u64) {
        self.record(v);
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        self.exemplars.push(Exemplar {
            value: v,
            trace_id,
            span_id,
        });
        Self::retain_worst(&mut self.exemplars);
    }

    /// Keep the `MAX_EXEMPLARS` largest exemplars under a total order
    /// (value descending, span id ascending), so top-k selection commutes
    /// with merging.
    fn retain_worst(exemplars: &mut Vec<Exemplar>) {
        exemplars.sort_by(|a, b| {
            b.value
                .partial_cmp(&a.value)
                .expect("exemplar values are finite")
                .then(a.span_id.cmp(&b.span_id))
        });
        exemplars.truncate(MAX_EXEMPLARS);
    }

    /// Merge another histogram's observations into this one. Bucket counts
    /// are integers, so this is exactly associative and commutative (the
    /// f64 `sum` is associative up to round-off); the exemplar sets merge
    /// by worst-k selection under a total order, which is likewise
    /// order-free.
    pub fn merge(&mut self, other: &HistogramData) {
        for (i, n) in &other.buckets {
            *self.buckets.entry(*i).or_insert(0) += n;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.sum += other.sum;
        self.exemplars.extend_from_slice(&other.exemplars);
        Self::retain_worst(&mut self.exemplars);
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bounds `(lo, hi)` of the bucket holding the `q`-quantile
    /// (`0 <= q <= 1`), or `None` if the histogram is empty. The true
    /// quantile of the observed values is guaranteed to satisfy
    /// `lo <= value < hi` (`lo == hi == 0` for the zero bucket).
    pub fn quantile_bounds(&self, q: f64) -> Option<(f64, f64)> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = self.zero;
        if seen >= rank {
            return Some((0.0, 0.0));
        }
        for (i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(bucket_bounds(*i));
            }
        }
        // Unreachable if count is consistent with the buckets; fall back to
        // the widest upper bucket.
        self.buckets.keys().next_back().map(|i| bucket_bounds(*i))
    }
}

/// A thread-safe histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<Mutex<HistogramData>>);

impl Histogram {
    /// Record one observation.
    pub fn record(&self, v: f64) {
        self.0.lock().unwrap().record(v);
    }

    /// Record one observation with span identity (see
    /// [`HistogramData::record_exemplar`]).
    pub fn record_exemplar(&self, v: f64, trace_id: u64, span_id: u64) {
        self.0.lock().unwrap().record_exemplar(v, trace_id, span_id);
    }

    /// A copy of the current state.
    pub fn snapshot(&self) -> HistogramData {
        self.0.lock().unwrap().clone()
    }
}

/// A registry of named metrics.
///
/// `counter`/`gauge`/`histogram` get-or-create by name and return a handle
/// that can be stored at the instrumentation site, so the registry lock is
/// paid once at attach time, not per event.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histograms
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Look up the counter `name` without creating it.
    pub fn lookup_counter(&self, name: &str) -> Option<Counter> {
        self.counters.lock().unwrap().get(name).cloned()
    }

    /// Look up the gauge `name` without creating it.
    pub fn lookup_gauge(&self, name: &str) -> Option<Gauge> {
        self.gauges.lock().unwrap().get(name).cloned()
    }

    /// Look up the histogram `name` without creating it.
    pub fn lookup_histogram(&self, name: &str) -> Option<Histogram> {
        self.histograms.lock().unwrap().get(name).cloned()
    }

    /// Render every metric in the Prometheus text exposition format
    /// (counters, gauges, and histograms as cumulative `_bucket{le=...}`
    /// series with `_sum` and `_count`).
    ///
    /// Metrics are emitted in globally sorted name order — across kinds,
    /// not merely within each kind — so the exposition is deterministic
    /// and two runs' outputs diff cleanly.
    pub fn render_prometheus(&self) -> String {
        let mut blocks: BTreeMap<String, String> = BTreeMap::new();
        for (name, c) in self.counters.lock().unwrap().iter() {
            blocks.insert(
                name.clone(),
                format!("# TYPE {name} counter\n{name} {}\n", c.get()),
            );
        }
        for (name, g) in self.gauges.lock().unwrap().iter() {
            blocks.insert(
                name.clone(),
                format!("# TYPE {name} gauge\n{name} {}\n", g.get()),
            );
        }
        for (name, h) in self.histograms.lock().unwrap().iter() {
            let data = h.snapshot();
            let mut block = format!("# TYPE {name} histogram\n");
            let mut cumulative = 0u64;
            if data.zero > 0 {
                cumulative += data.zero;
                block.push_str(&format!("{name}_bucket{{le=\"0\"}} {cumulative}\n"));
            }
            for (i, n) in &data.buckets {
                cumulative += n;
                let (_, hi) = bucket_bounds(*i);
                block.push_str(&format!("{name}_bucket{{le=\"{hi}\"}} {cumulative}\n"));
            }
            block.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", data.count));
            block.push_str(&format!("{name}_sum {}\n", data.sum));
            block.push_str(&format!("{name}_count {}\n", data.count));
            blocks.insert(name.clone(), block);
        }
        blocks.into_values().collect()
    }

    /// A JSON snapshot of every metric: counters and gauges by value,
    /// histograms as `{count, sum, mean, p50, p90, p99, exemplars}` with
    /// quantiles as `[lo, hi]` bucket bounds and exemplars as
    /// `{value, trace_id, span_id}` objects, worst first. Each section is
    /// emitted in sorted name order, so snapshots diff cleanly.
    pub fn snapshot_json(&self) -> Value {
        let counters: Vec<(String, Value)> = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, c)| (k.clone(), Value::Number(c.get() as f64)))
            .collect();
        let gauges: Vec<(String, Value)> = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, g)| (k.clone(), Value::Number(g.get())))
            .collect();
        let histograms: Vec<(String, Value)> = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, h)| {
                let data = h.snapshot();
                let quantile = |q: f64| match data.quantile_bounds(q) {
                    Some((lo, hi)) => Value::Array(vec![Value::Number(lo), Value::Number(hi)]),
                    None => Value::Null,
                };
                let exemplars: Vec<Value> = data
                    .exemplars
                    .iter()
                    .map(|e| {
                        Value::Object(vec![
                            ("value".to_string(), Value::Number(e.value)),
                            ("trace_id".to_string(), Value::Number(e.trace_id as f64)),
                            ("span_id".to_string(), Value::Number(e.span_id as f64)),
                        ])
                    })
                    .collect();
                (
                    k.clone(),
                    Value::Object(vec![
                        ("count".to_string(), Value::Number(data.count as f64)),
                        ("sum".to_string(), Value::Number(data.sum)),
                        ("mean".to_string(), Value::Number(data.mean())),
                        ("p50".to_string(), quantile(0.5)),
                        ("p90".to_string(), quantile(0.9)),
                        ("p99".to_string(), quantile(0.99)),
                        ("exemplars".to_string(), Value::Array(exemplars)),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counters)),
            ("gauges".to_string(), Value::Object(gauges)),
            ("histograms".to_string(), Value::Object(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_handles_share_state() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("sme_requests_total");
        let b = reg.counter("sme_requests_total");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("sme_requests_total").get(), 3);

        let g = reg.gauge("sme_hit_ratio");
        g.set(0.75);
        assert_eq!(reg.gauge("sme_hit_ratio").get(), 0.75);
    }

    #[test]
    fn histogram_brackets_recorded_values() {
        let mut h = HistogramData::default();
        for v in [0.0, 0.5, 1.0, 3.0, 1000.0, 1e9] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.zero, 1);
        // p100 must bracket the max.
        let (lo, hi) = h.quantile_bounds(1.0).unwrap();
        assert!(lo <= 1e9 && 1e9 < hi);
        // p-zero-ish lands in the zero bucket.
        assert_eq!(h.quantile_bounds(0.0).unwrap(), (0.0, 0.0));
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = HistogramData::default();
        let mut b = HistogramData::default();
        for v in [1.0, 2.0, 3.0] {
            a.record(v);
        }
        for v in [2.0, 100.0] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count, 5);
        let mut direct = HistogramData::default();
        for v in [1.0, 2.0, 3.0, 2.0, 100.0] {
            direct.record(v);
        }
        assert_eq!(merged.buckets, direct.buckets);
        assert_eq!(merged.zero, direct.zero);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("sme_cache_hits_total").add(5);
        reg.gauge("sme_cache_hit_ratio").set(0.5);
        let h = reg.histogram("sme_group_cycles");
        h.record(100.0);
        h.record(200.0);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE sme_cache_hits_total counter"));
        assert!(text.contains("sme_cache_hits_total 5"));
        assert!(text.contains("# TYPE sme_cache_hit_ratio gauge"));
        assert!(text.contains("# TYPE sme_group_cycles histogram"));
        assert!(text.contains("sme_group_cycles_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("sme_group_cycles_count 2"));
        assert!(text.contains("sme_group_cycles_sum 300"));
    }

    #[test]
    fn prometheus_output_is_globally_name_sorted() {
        let reg = MetricsRegistry::new();
        // Interleave kinds so per-kind grouping would produce unsorted
        // output: the gauge sorts between the two counters.
        reg.counter("sme_a_total").inc();
        reg.counter("sme_z_total").inc();
        reg.gauge("sme_m_ratio").set(0.5);
        reg.histogram("sme_b_cycles").record(1.0);
        let text = reg.render_prometheus();
        let order: Vec<usize> = ["sme_a_total", "sme_b_cycles", "sme_m_ratio", "sme_z_total"]
            .iter()
            .map(|name| text.find(&format!("# TYPE {name} ")).expect(name))
            .collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]), "{text}");
        // Deterministic: two renders are byte-identical.
        assert_eq!(text, reg.render_prometheus());
    }

    #[test]
    fn exemplars_keep_the_worst_k_with_span_identity() {
        let mut h = HistogramData::default();
        for (i, v) in [5.0, 100.0, 1.0, 50.0, 75.0, 2.0].iter().enumerate() {
            h.record_exemplar(*v, 7, i as u64 + 1);
        }
        assert_eq!(h.count, 6);
        let values: Vec<f64> = h.exemplars.iter().map(|e| e.value).collect();
        assert_eq!(
            values,
            vec![100.0, 75.0, 50.0, 5.0],
            "worst-k, largest first"
        );
        assert!(h.exemplars.iter().all(|e| e.trace_id == 7));
        assert_eq!(h.exemplars[0].span_id, 2, "the 100.0 observation's span");

        // Merging unions the exemplar pools and re-selects the worst k —
        // the same set whichever side they arrived on.
        let mut other = HistogramData::default();
        other.record_exemplar(200.0, 9, 40);
        other.record_exemplar(60.0, 9, 41);
        let mut ab = h.clone();
        ab.merge(&other);
        let mut ba = other.clone();
        ba.merge(&h);
        assert_eq!(ab.exemplars, ba.exemplars);
        let merged: Vec<f64> = ab.exemplars.iter().map(|e| e.value).collect();
        assert_eq!(merged, vec![200.0, 100.0, 75.0, 60.0]);

        // The JSON snapshot carries them.
        let reg = MetricsRegistry::new();
        reg.histogram("sme_tail_cycles")
            .record_exemplar(42.0, 3, 11);
        let snap = reg.snapshot_json();
        let exemplars = snap
            .get("histograms")
            .unwrap()
            .get("sme_tail_cycles")
            .unwrap()
            .get("exemplars")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(exemplars.len(), 1);
        assert_eq!(exemplars[0].get("value").unwrap().as_f64(), Some(42.0));
        assert_eq!(exemplars[0].get("trace_id").unwrap().as_u64(), Some(3));
        assert_eq!(exemplars[0].get("span_id").unwrap().as_u64(), Some(11));
    }

    #[test]
    fn json_snapshot_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("sme_batches_total").inc();
        reg.histogram("sme_tick_seconds").record(0.25);
        let snap = reg.snapshot_json();
        assert_eq!(
            snap.get("counters")
                .unwrap()
                .get("sme_batches_total")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        let hist = snap
            .get("histograms")
            .unwrap()
            .get("sme_tick_seconds")
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
        let p50 = hist.get("p50").unwrap().as_array().unwrap();
        let (lo, hi) = (p50[0].as_f64().unwrap(), p50[1].as_f64().unwrap());
        assert!(lo <= 0.25 && 0.25 < hi);
    }
}
