//! Causal span tracing: a bounded ring-buffer recorder with span identity
//! and Chrome trace-event export.
//!
//! Every span carries a [`TraceCtx`] — a per-batch `trace_id`, its own
//! `span_id` and an optional `parent_id` — so one Perfetto load shows a
//! request's full life with correct nesting: `Router::dispatch` opens the
//! batch root, placement / cache compiles / group executions / daemon
//! ticks record children, and a child recorded on a *different thread*
//! (the rayon worker hop) gets a flow arrow from its parent's lane.
//!
//! The recorder is deliberately minimal: instrumentation sites time
//! themselves with a plain [`Instant`] and hand the recorder one complete
//! span per event, so the only synchronisation cost is a single short
//! mutex acquisition per *recorded* span — nothing is paid on the hot path
//! when the span is cheap to build, and the ring bound means a long-running
//! server cannot grow the buffer without limit (old spans are dropped and
//! counted).
//!
//! The export format is the Chrome trace-event JSON array form
//! (`{"traceEvents": [...]}`): thread-name metadata (`"ph": "M"`) first,
//! then all spans as complete `"ph": "X"` events with microsecond
//! timestamps, then flow start/finish pairs (`"ph": "s"` / `"f"`) for
//! cross-thread parent→child edges. It loads directly into Perfetto or
//! `chrome://tracing`.

use serde::json::Value;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Span identity threaded through the serving path: which batch
/// (`trace_id`), which span (`span_id`), and which span caused it
/// (`parent_id`, `None` for a trace root).
///
/// A context is allocated by [`TraceRecorder::root_ctx`] (new trace) or
/// [`TraceRecorder::child_ctx`] (child of an existing span) and handed to
/// [`TraceRecorder::record_ctx`] when the span completes. It is `Copy`, so
/// it crosses thread boundaries (the rayon fan-out) for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The request/batch this span belongs to.
    pub trace_id: u64,
    /// This span's own identity.
    pub span_id: u64,
    /// The span that caused this one (`None` for a trace root).
    pub parent_id: Option<u64>,
}

/// One completed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Event name (e.g. `"router.dispatch"`).
    pub name: String,
    /// Category, used by trace viewers to group/filter rows.
    pub cat: String,
    /// Start time in microseconds since the recorder's origin.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Compact sequential id of the recording thread (see [`current_tid`]).
    pub tid: u64,
    /// The batch this span belongs to.
    pub trace_id: u64,
    /// This span's identity.
    pub span_id: u64,
    /// The causing span, if any.
    pub parent_id: Option<u64>,
    /// Event arguments shown in the viewer's detail pane.
    pub args: Vec<(String, Value)>,
}

/// Process-wide thread registry: compact sequential tids (Chrome trace
/// events need small integer `tid`s, and raw 64-bit thread-id hashes make
/// Perfetto lanes unreadable) plus optional human-readable lane names.
#[derive(Debug, Default)]
struct ThreadRegistry {
    next_tid: u64,
    tids: HashMap<std::thread::ThreadId, u64>,
    names: HashMap<u64, String>,
    /// Per-prefix counters for [`set_thread_name_indexed`].
    prefix_counts: HashMap<String, u64>,
}

fn thread_registry() -> &'static Mutex<ThreadRegistry> {
    static REGISTRY: OnceLock<Mutex<ThreadRegistry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(ThreadRegistry::default()))
}

thread_local! {
    static CACHED_TID: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// The compact sequential id of the current thread: the first thread to
/// record gets 1, the next 2, and so on — stable for the thread's lifetime
/// and small enough to read in a trace viewer.
pub fn current_tid() -> u64 {
    CACHED_TID.with(|cell| {
        if let Some(tid) = cell.get() {
            return tid;
        }
        let mut reg = thread_registry().lock().unwrap();
        let next = reg.next_tid + 1;
        let tid = *reg
            .tids
            .entry(std::thread::current().id())
            .or_insert_with(|| next);
        reg.next_tid = reg.next_tid.max(tid);
        cell.set(Some(tid));
        tid
    })
}

/// Name the current thread's trace lane (first name wins, so repeated
/// registration from a worker loop is idempotent). The name is exported as
/// a Chrome `"ph": "M"` thread-name metadata event.
pub fn set_thread_name(name: &str) {
    let tid = current_tid();
    let mut reg = thread_registry().lock().unwrap();
    reg.names.entry(tid).or_insert_with(|| name.to_string());
}

/// Name the current thread's lane `"{prefix}-{k}"` with `k` counting up
/// per prefix (`rayon-worker-0`, `rayon-worker-1`, …). First name wins;
/// returns the thread's compact tid.
pub fn set_thread_name_indexed(prefix: &str) -> u64 {
    let tid = current_tid();
    let mut reg = thread_registry().lock().unwrap();
    if !reg.names.contains_key(&tid) {
        let k = reg.prefix_counts.entry(prefix.to_string()).or_insert(0);
        let name = format!("{prefix}-{k}");
        *k += 1;
        reg.names.insert(tid, name);
    }
    tid
}

/// The registered lane name of a compact tid, if any.
pub fn thread_name(tid: u64) -> Option<String> {
    thread_registry().lock().unwrap().names.get(&tid).cloned()
}

#[derive(Debug, Default)]
struct Ring {
    spans: VecDeque<SpanRecord>,
    dropped: u64,
}

/// A bounded, thread-safe span recorder with per-recorder id allocation.
#[derive(Debug)]
pub struct TraceRecorder {
    origin: Instant,
    capacity: usize,
    next_trace_id: AtomicU64,
    next_span_id: AtomicU64,
    ring: Mutex<Ring>,
}

impl TraceRecorder {
    /// A recorder keeping at most `capacity` spans (older spans are dropped
    /// and counted once the ring is full).
    pub fn new(capacity: usize) -> Self {
        TraceRecorder {
            origin: Instant::now(),
            capacity: capacity.max(1),
            next_trace_id: AtomicU64::new(1),
            next_span_id: AtomicU64::new(1),
            ring: Mutex::new(Ring::default()),
        }
    }

    /// The instant timestamps are measured against.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Open a new trace: a fresh `trace_id` with a root span id and no
    /// parent. `Router::dispatch` calls this once per batch.
    pub fn root_ctx(&self) -> TraceCtx {
        TraceCtx {
            trace_id: self.next_trace_id.fetch_add(1, Ordering::Relaxed),
            span_id: self.next_span_id.fetch_add(1, Ordering::Relaxed),
            parent_id: None,
        }
    }

    /// A child context of `parent`: same trace, fresh span id, caused by
    /// `parent`'s span. Safe to call from any thread (the rayon workers
    /// allocate their group contexts on the worker side of the hop).
    pub fn child_ctx(&self, parent: TraceCtx) -> TraceCtx {
        TraceCtx {
            trace_id: parent.trace_id,
            span_id: self.next_span_id.fetch_add(1, Ordering::Relaxed),
            parent_id: Some(parent.span_id),
        }
    }

    /// Record one complete span that started at `started` and ends now,
    /// as the root of a fresh trace (sites without a caller-provided
    /// context still get full span identity).
    pub fn record(&self, name: &str, cat: &str, started: Instant, args: Vec<(String, Value)>) {
        self.record_ctx(name, cat, started, self.root_ctx(), args);
    }

    /// Record one complete span with an explicit identity.
    pub fn record_ctx(
        &self,
        name: &str,
        cat: &str,
        started: Instant,
        ctx: TraceCtx,
        args: Vec<(String, Value)>,
    ) {
        let start_us = started.duration_since(self.origin).as_secs_f64() * 1e6;
        let dur_us = started.elapsed().as_secs_f64() * 1e6;
        let span = SpanRecord {
            name: name.to_string(),
            cat: cat.to_string(),
            start_us,
            dur_us,
            tid: current_tid(),
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_id: ctx.parent_id,
            args,
        };
        let mut ring = self.ring.lock().unwrap();
        if ring.spans.len() >= self.capacity {
            ring.spans.pop_front();
            ring.dropped += 1;
        }
        ring.spans.push_back(span);
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().spans.len()
    }

    /// `true` if no spans have been recorded (or all were dropped).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of spans dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }

    /// A copy of the retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.ring.lock().unwrap().spans.iter().cloned().collect()
    }

    /// Export the retained spans as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object form; load it in Perfetto or
    /// `chrome://tracing`).
    ///
    /// The document carries three event kinds: `"ph": "M"` thread-name
    /// metadata for every lane with a registered name, one `"ph": "X"`
    /// complete event per span (with `trace_id` / `span_id` /
    /// `parent_id`), and `"ph": "s"` / `"f"` flow pairs drawing an arrow
    /// from parent to child wherever the two were recorded on different
    /// threads.
    pub fn to_chrome_trace(&self) -> String {
        let spans = self.snapshot();
        let mut events: Vec<Value> = Vec::new();

        // Thread-name metadata first, sorted by tid for determinism.
        let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in &tids {
            if let Some(name) = thread_name(*tid) {
                events.push(Value::Object(vec![
                    ("name".to_string(), Value::String("thread_name".to_string())),
                    ("ph".to_string(), Value::String("M".to_string())),
                    ("pid".to_string(), Value::Number(1.0)),
                    ("tid".to_string(), Value::Number(*tid as f64)),
                    (
                        "args".to_string(),
                        Value::Object(vec![("name".to_string(), Value::String(name))]),
                    ),
                ]));
            }
        }

        // The spans themselves.
        let by_span_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.span_id, s)).collect();
        for s in &spans {
            let mut fields = vec![
                ("name".to_string(), Value::String(s.name.clone())),
                ("cat".to_string(), Value::String(s.cat.clone())),
                ("ph".to_string(), Value::String("X".to_string())),
                ("ts".to_string(), Value::Number(s.start_us)),
                ("dur".to_string(), Value::Number(s.dur_us)),
                ("pid".to_string(), Value::Number(1.0)),
                ("tid".to_string(), Value::Number(s.tid as f64)),
                ("trace_id".to_string(), Value::Number(s.trace_id as f64)),
                ("span_id".to_string(), Value::Number(s.span_id as f64)),
            ];
            if let Some(parent) = s.parent_id {
                fields.push(("parent_id".to_string(), Value::Number(parent as f64)));
            }
            fields.push(("args".to_string(), Value::Object(s.args.clone())));
            events.push(Value::Object(fields));
        }

        // Flow arrows for cross-thread parent→child edges (the rayon hop).
        // The flow id is the child's span id, unique by construction.
        for s in &spans {
            let parent = s.parent_id.and_then(|p| by_span_id.get(&p));
            if let Some(parent) = parent {
                if parent.tid != s.tid {
                    let start_ts = parent.start_us.min(s.start_us);
                    events.push(Value::Object(vec![
                        ("name".to_string(), Value::String("causal".to_string())),
                        ("cat".to_string(), Value::String(s.cat.clone())),
                        ("ph".to_string(), Value::String("s".to_string())),
                        ("ts".to_string(), Value::Number(start_ts)),
                        ("pid".to_string(), Value::Number(1.0)),
                        ("tid".to_string(), Value::Number(parent.tid as f64)),
                        ("id".to_string(), Value::Number(s.span_id as f64)),
                    ]));
                    events.push(Value::Object(vec![
                        ("name".to_string(), Value::String("causal".to_string())),
                        ("cat".to_string(), Value::String(s.cat.clone())),
                        ("ph".to_string(), Value::String("f".to_string())),
                        ("bp".to_string(), Value::String("e".to_string())),
                        ("ts".to_string(), Value::Number(s.start_us)),
                        ("pid".to_string(), Value::Number(1.0)),
                        ("tid".to_string(), Value::Number(s.tid as f64)),
                        ("id".to_string(), Value::Number(s.span_id as f64)),
                    ]));
                }
            }
        }

        Value::Object(vec![
            ("traceEvents".to_string(), Value::Array(events)),
            (
                "displayTimeUnit".to_string(),
                Value::String("ms".to_string()),
            ),
        ])
        .render_compact()
    }
}

/// Validate that `json` is a well-formed causal Chrome trace-event
/// document: a top-level `traceEvents` array whose elements are complete
/// span events (`"ph": "X"`, carrying `name`, `ts`, `dur`, `pid`, `tid`
/// and span identity `trace_id` / `span_id`), thread-name metadata
/// (`"ph": "M"` with a string `args.name`), or flow start/finish pairs
/// (`"ph": "s"` / `"f"` with a numeric `id`). Any other phase is
/// rejected. Returns the number of **span** (`"X"`) events.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let doc = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("missing traceEvents array")?;
    let mut spans = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let field = |name: &str| ev.get(name).ok_or(format!("event {i}: missing {name}"));
        let number = |name: &str| -> Result<f64, String> {
            field(name)?
                .as_f64()
                .ok_or(format!("event {i}: {name} is not a number"))
        };
        match field("ph")?.as_str() {
            Some("X") => {
                if field("name")?.as_str().is_none() {
                    return Err(format!("event {i}: name is not a string"));
                }
                for num in ["ts", "dur", "pid", "tid"] {
                    if number(num)? < 0.0 {
                        return Err(format!("event {i}: negative {num}"));
                    }
                }
                for id in ["trace_id", "span_id"] {
                    number(id)?;
                }
                spans += 1;
            }
            Some("M") => {
                if field("name")?.as_str().is_none() {
                    return Err(format!("event {i}: metadata name is not a string"));
                }
                if field("args")?
                    .get("name")
                    .and_then(|v| v.as_str())
                    .is_none()
                {
                    return Err(format!("event {i}: metadata args.name is not a string"));
                }
            }
            Some("s") | Some("f") => {
                if field("name")?.as_str().is_none() {
                    return Err(format!("event {i}: flow name is not a string"));
                }
                for num in ["ts", "pid", "tid", "id"] {
                    number(num)?;
                }
                if number("ts")? < 0.0 {
                    return Err(format!("event {i}: negative ts"));
                }
            }
            Some(other) => return Err(format!("event {i}: unsupported ph {other:?}")),
            None => return Err(format!("event {i}: ph is not a string")),
        }
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let rec = TraceRecorder::new(4);
        let t0 = Instant::now();
        for i in 0..10 {
            rec.record(&format!("span{i}"), "test", t0, vec![]);
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 6);
        let names: Vec<_> = rec.snapshot().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["span6", "span7", "span8", "span9"]);
        // The export stays valid across the wrap and retains exactly the
        // surviving spans.
        assert_eq!(validate_chrome_trace(&rec.to_chrome_trace()), Ok(4));
    }

    #[test]
    fn spans_carry_identity_and_parentage() {
        let rec = TraceRecorder::new(16);
        let t0 = Instant::now();
        let root = rec.root_ctx();
        assert_eq!(root.parent_id, None);
        let child = rec.child_ctx(root);
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_id, Some(root.span_id));
        assert_ne!(child.span_id, root.span_id);
        rec.record_ctx("child", "test", t0, child, vec![]);
        rec.record_ctx("parent", "test", t0, root, vec![]);
        let spans = rec.snapshot();
        assert_eq!(spans[0].parent_id, Some(spans[1].span_id));
        assert_eq!(spans[0].trace_id, spans[1].trace_id);
        // A fresh root opens a new trace.
        let other = rec.root_ctx();
        assert_ne!(other.trace_id, root.trace_id);
    }

    #[test]
    fn tids_are_compact_and_nameable() {
        let tid = current_tid();
        assert!(tid >= 1, "sequential small integers, not hashes");
        assert_eq!(current_tid(), tid, "stable per thread");
        let other = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(other, tid);
        // Indexed names count per prefix and are idempotent per thread.
        let (a, b) = std::thread::spawn(|| {
            let tid = set_thread_name_indexed("trace-test-worker");
            let first = thread_name(tid).unwrap();
            set_thread_name_indexed("trace-test-worker");
            (first, thread_name(tid).unwrap())
        })
        .join()
        .unwrap();
        assert_eq!(a, b, "first name wins");
        assert!(a.starts_with("trace-test-worker-"), "{a}");
    }

    #[test]
    fn chrome_export_round_trips() {
        let rec = TraceRecorder::new(16);
        let t0 = Instant::now();
        rec.record(
            "cache.fetch",
            "cache",
            t0,
            vec![
                ("hit".to_string(), Value::Bool(true)),
                ("shape".to_string(), Value::String("64x64x64".to_string())),
            ],
        );
        rec.record("router.dispatch", "router", t0, vec![]);
        let json = rec.to_chrome_trace();
        assert_eq!(validate_chrome_trace(&json), Ok(2));
        // Args and span identity survive the export.
        let doc = serde_json::from_str(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let ev = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("cache.fetch"))
            .unwrap();
        assert_eq!(
            ev.get("args").unwrap().get("shape").unwrap().as_str(),
            Some("64x64x64")
        );
        assert!(ev.get("trace_id").unwrap().as_u64().is_some());
        assert!(ev.get("span_id").unwrap().as_u64().is_some());
    }

    #[test]
    fn cross_thread_children_emit_flow_pairs_and_thread_names() {
        let rec = std::sync::Arc::new(TraceRecorder::new(16));
        set_thread_name("trace-test-main");
        let t0 = Instant::now();
        let root = rec.root_ctx();
        let rec2 = rec.clone();
        std::thread::spawn(move || {
            set_thread_name("trace-test-child");
            let ctx = rec2.child_ctx(root);
            rec2.record_ctx("worker", "test", t0, ctx, vec![]);
        })
        .join()
        .unwrap();
        rec.record_ctx("root", "test", t0, root, vec![]);
        let json = rec.to_chrome_trace();
        assert_eq!(validate_chrome_trace(&json), Ok(2));
        let doc = serde_json::from_str(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert!(phases.contains(&"M"), "thread-name metadata present");
        assert!(
            phases.contains(&"s") && phases.contains(&"f"),
            "cross-thread edge gets a flow pair: {phases:?}"
        );
        // The flow pair shares the child's span id across both halves.
        let flow_ids: Vec<u64> = events
            .iter()
            .filter(|e| matches!(e.get("ph").unwrap().as_str(), Some("s") | Some("f")))
            .map(|e| e.get("id").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(flow_ids.len(), 2);
        assert_eq!(flow_ids[0], flow_ids[1]);
        // Metadata events do not occupy ring slots.
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("not json").is_err());
        let missing_dur = r#"{"traceEvents":[{"name":"x","ph":"X","ts":0,"pid":1,"tid":1,"trace_id":1,"span_id":1}]}"#;
        assert!(validate_chrome_trace(missing_dur).is_err());
        let wrong_ph = r#"{"traceEvents":[{"name":"x","ph":"B","ts":0,"dur":1,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(wrong_ph).is_err());
        let missing_identity =
            r#"{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(missing_identity).is_err());
        let bad_metadata = r#"{"traceEvents":[{"name":"thread_name","ph":"M","args":{}}]}"#;
        assert!(validate_chrome_trace(bad_metadata).is_err());
        let bad_flow = r#"{"traceEvents":[{"name":"causal","ph":"s","ts":0,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad_flow).is_err());
        let ok = r#"{"traceEvents":[
            {"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"main"}},
            {"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"trace_id":1,"span_id":1},
            {"name":"causal","ph":"s","ts":0,"pid":1,"tid":1,"id":2},
            {"name":"causal","ph":"f","ts":0,"pid":1,"tid":2,"id":2}
        ]}"#;
        assert_eq!(validate_chrome_trace(ok), Ok(1), "only X events counted");
    }

    #[test]
    fn empty_recorder_exports_a_valid_document() {
        let rec = TraceRecorder::new(8);
        assert!(rec.is_empty());
        assert_eq!(validate_chrome_trace(&rec.to_chrome_trace()), Ok(0));
    }
}
