//! Span tracing: a bounded ring-buffer recorder and Chrome trace-event
//! export.
//!
//! The recorder is deliberately minimal: instrumentation sites time
//! themselves with a plain [`Instant`] and hand the recorder one complete
//! span per event, so the only synchronisation cost is a single short
//! mutex acquisition per *recorded* span — nothing is paid on the hot path
//! when the span is cheap to build, and the ring bound means a long-running
//! server cannot grow the buffer without limit (old spans are dropped and
//! counted).
//!
//! The export format is the Chrome trace-event JSON array form
//! (`{"traceEvents": [...]}`, all spans as complete `"ph": "X"` events with
//! microsecond timestamps), which loads directly into Perfetto or
//! `chrome://tracing`.

use serde::json::Value;
use std::collections::hash_map::DefaultHasher;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;
use std::time::Instant;

/// One completed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Event name (e.g. `"router.dispatch"`).
    pub name: String,
    /// Category, used by trace viewers to group/filter rows.
    pub cat: String,
    /// Start time in microseconds since the recorder's origin.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Thread identifier (a stable hash of the recording thread's id).
    pub tid: u64,
    /// Event arguments shown in the viewer's detail pane.
    pub args: Vec<(String, Value)>,
}

#[derive(Debug, Default)]
struct Ring {
    spans: VecDeque<SpanRecord>,
    dropped: u64,
}

/// A bounded, thread-safe span recorder.
#[derive(Debug)]
pub struct TraceRecorder {
    origin: Instant,
    capacity: usize,
    ring: Mutex<Ring>,
}

/// A stable numeric id for the current thread (Chrome trace events need an
/// integer `tid`).
fn current_tid() -> u64 {
    let mut h = DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    // Keep it readable in the viewer.
    h.finish() % 100_000
}

impl TraceRecorder {
    /// A recorder keeping at most `capacity` spans (older spans are dropped
    /// and counted once the ring is full).
    pub fn new(capacity: usize) -> Self {
        TraceRecorder {
            origin: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(Ring::default()),
        }
    }

    /// The instant timestamps are measured against.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Record one complete span that started at `started` and ends now.
    pub fn record(&self, name: &str, cat: &str, started: Instant, args: Vec<(String, Value)>) {
        let start_us = started.duration_since(self.origin).as_secs_f64() * 1e6;
        let dur_us = started.elapsed().as_secs_f64() * 1e6;
        let span = SpanRecord {
            name: name.to_string(),
            cat: cat.to_string(),
            start_us,
            dur_us,
            tid: current_tid(),
            args,
        };
        let mut ring = self.ring.lock().unwrap();
        if ring.spans.len() >= self.capacity {
            ring.spans.pop_front();
            ring.dropped += 1;
        }
        ring.spans.push_back(span);
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().spans.len()
    }

    /// `true` if no spans have been recorded (or all were dropped).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of spans dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }

    /// A copy of the retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.ring.lock().unwrap().spans.iter().cloned().collect()
    }

    /// Export the retained spans as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object form; load it in Perfetto or
    /// `chrome://tracing`).
    pub fn to_chrome_trace(&self) -> String {
        let events: Vec<Value> = self
            .snapshot()
            .into_iter()
            .map(|s| {
                Value::Object(vec![
                    ("name".to_string(), Value::String(s.name)),
                    ("cat".to_string(), Value::String(s.cat)),
                    ("ph".to_string(), Value::String("X".to_string())),
                    ("ts".to_string(), Value::Number(s.start_us)),
                    ("dur".to_string(), Value::Number(s.dur_us)),
                    ("pid".to_string(), Value::Number(1.0)),
                    ("tid".to_string(), Value::Number(s.tid as f64)),
                    ("args".to_string(), Value::Object(s.args)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("traceEvents".to_string(), Value::Array(events)),
            (
                "displayTimeUnit".to_string(),
                Value::String("ms".to_string()),
            ),
        ])
        .render_compact()
    }
}

/// Validate that `json` is a well-formed Chrome trace-event document: a
/// top-level `traceEvents` array whose every element is a complete
/// (`"ph": "X"`) event carrying `name`, `ts`, `dur`, `pid` and `tid`.
/// Returns the number of events.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let doc = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("missing traceEvents array")?;
    for (i, ev) in events.iter().enumerate() {
        let field = |name: &str| ev.get(name).ok_or(format!("event {i}: missing {name}"));
        if field("ph")?.as_str() != Some("X") {
            return Err(format!("event {i}: ph is not \"X\""));
        }
        if field("name")?.as_str().is_none() {
            return Err(format!("event {i}: name is not a string"));
        }
        for num in ["ts", "dur", "pid", "tid"] {
            if field(num)?.as_f64().is_none() {
                return Err(format!("event {i}: {num} is not a number"));
            }
        }
        if field("ts")?.as_f64().unwrap() < 0.0 || field("dur")?.as_f64().unwrap() < 0.0 {
            return Err(format!("event {i}: negative timestamp"));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let rec = TraceRecorder::new(4);
        let t0 = Instant::now();
        for i in 0..10 {
            rec.record(&format!("span{i}"), "test", t0, vec![]);
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 6);
        let names: Vec<_> = rec.snapshot().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["span6", "span7", "span8", "span9"]);
    }

    #[test]
    fn chrome_export_round_trips() {
        let rec = TraceRecorder::new(16);
        let t0 = Instant::now();
        rec.record(
            "cache.fetch",
            "cache",
            t0,
            vec![
                ("hit".to_string(), Value::Bool(true)),
                ("shape".to_string(), Value::String("64x64x64".to_string())),
            ],
        );
        rec.record("router.dispatch", "router", t0, vec![]);
        let json = rec.to_chrome_trace();
        assert_eq!(validate_chrome_trace(&json), Ok(2));
        // Args survive the export.
        let doc = serde_json::from_str(&json).unwrap();
        let ev = &doc.get("traceEvents").unwrap().as_array().unwrap()[0];
        assert_eq!(
            ev.get("args").unwrap().get("shape").unwrap().as_str(),
            Some("64x64x64")
        );
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("not json").is_err());
        let missing_dur = r#"{"traceEvents":[{"name":"x","ph":"X","ts":0,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(missing_dur).is_err());
        let wrong_ph = r#"{"traceEvents":[{"name":"x","ph":"B","ts":0,"dur":1,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(wrong_ph).is_err());
        let ok = r#"{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]}"#;
        assert_eq!(validate_chrome_trace(ok), Ok(1));
    }

    #[test]
    fn empty_recorder_exports_a_valid_document() {
        let rec = TraceRecorder::new(8);
        assert!(rec.is_empty());
        assert_eq!(validate_chrome_trace(&rec.to_chrome_trace()), Ok(0));
    }
}
