//! The flight recorder: always-on SLO rules over the metrics registry,
//! and a bounded postmortem bundle dumped on breach.
//!
//! A [`Sentinel`] holds declarative [`SloRule`]s — a p99 ceiling on a
//! histogram, a floor under a gauge, a liveness floor under a counter —
//! and [`Sentinel::evaluate`] checks them against a [`MetricsRegistry`].
//! Every breach names the rule, the metric, the observed value and the
//! threshold, so an operator (or CI) can see *which* contract broke, not
//! merely that something did.
//!
//! On breach, [`postmortem_bundle`] assembles one versioned JSON artifact
//! from the shared [`ObsHub`]: the breaching rule, the trace snapshot
//! (already bounded by the ring), the metrics snapshot (with worst-k
//! exemplars linking tail buckets to spans), the telemetry top-shapes and
//! the per-shard cache stats. The last two live above this crate in the
//! dependency graph, so callers pass them in as pre-serialised JSON.

use crate::metrics::MetricsRegistry;
use crate::ObsHub;
use serde::json::Value;

/// Version of the postmortem bundle document format.
pub const POSTMORTEM_VERSION: u64 = 1;

/// One declarative SLO rule.
#[derive(Debug, Clone, PartialEq)]
pub enum SloRule {
    /// The named histogram's p99 upper bucket bound must not exceed
    /// `ceiling`. Vacuously satisfied while the histogram is absent or
    /// empty.
    P99Ceiling {
        /// The histogram's registry name.
        metric: String,
        /// The largest tolerable p99 upper bound.
        ceiling: f64,
    },
    /// The named gauge must not fall below `floor`. Vacuously satisfied
    /// while the gauge is absent.
    GaugeFloor {
        /// The gauge's registry name.
        metric: String,
        /// The smallest tolerable value.
        floor: f64,
    },
    /// The named counter must have reached `floor` by evaluation time —
    /// the liveness shape of rule (a daemon that never ticked breaches).
    CounterFloor {
        /// The counter's registry name.
        metric: String,
        /// The smallest tolerable count.
        floor: u64,
    },
}

impl SloRule {
    /// The metric the rule constrains.
    pub fn metric(&self) -> &str {
        match self {
            SloRule::P99Ceiling { metric, .. }
            | SloRule::GaugeFloor { metric, .. }
            | SloRule::CounterFloor { metric, .. } => metric,
        }
    }

    /// Human-readable statement of the rule (`p99(x) <= y` form).
    pub fn describe(&self) -> String {
        match self {
            SloRule::P99Ceiling { metric, ceiling } => format!("p99({metric}) <= {ceiling}"),
            SloRule::GaugeFloor { metric, floor } => format!("{metric} >= {floor}"),
            SloRule::CounterFloor { metric, floor } => format!("{metric} >= {floor}"),
        }
    }

    /// Evaluate the rule against `metrics`; `Some` describes the breach.
    fn evaluate(&self, metrics: &MetricsRegistry) -> Option<SloBreach> {
        let (observed, threshold) = match self {
            SloRule::P99Ceiling { metric, ceiling } => {
                let data = metrics.lookup_histogram(metric)?.snapshot();
                let (_, hi) = data.quantile_bounds(0.99)?;
                if hi <= *ceiling {
                    return None;
                }
                (hi, *ceiling)
            }
            SloRule::GaugeFloor { metric, floor } => {
                let value = metrics.lookup_gauge(metric)?.get();
                if value >= *floor {
                    return None;
                }
                (value, *floor)
            }
            SloRule::CounterFloor { metric, floor } => {
                let value = metrics
                    .lookup_counter(metric)
                    .map_or(0, |counter| counter.get());
                if value >= *floor {
                    return None;
                }
                (value as f64, *floor as f64)
            }
        };
        Some(SloBreach {
            rule: self.describe(),
            metric: self.metric().to_string(),
            observed,
            threshold,
        })
    }
}

/// One breached rule: what was promised, what was observed.
#[derive(Debug, Clone, PartialEq)]
pub struct SloBreach {
    /// The breaching rule in [`SloRule::describe`] form.
    pub rule: String,
    /// The constrained metric's name.
    pub metric: String,
    /// The observed value that broke the rule.
    pub observed: f64,
    /// The rule's threshold.
    pub threshold: f64,
}

impl SloBreach {
    /// The breach as a JSON object (the `breach` section of the bundle).
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("rule".to_string(), Value::String(self.rule.clone())),
            ("metric".to_string(), Value::String(self.metric.clone())),
            ("observed".to_string(), Value::Number(self.observed)),
            ("threshold".to_string(), Value::Number(self.threshold)),
        ])
    }
}

/// An always-on set of SLO rules (see the module docs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sentinel {
    rules: Vec<SloRule>,
}

impl Sentinel {
    /// A sentinel holding `rules`.
    pub fn new(rules: Vec<SloRule>) -> Self {
        Sentinel { rules }
    }

    /// The serving stack's standing contract: batch-makespan p99 under
    /// `makespan_p99_ceiling` cycles, lifetime cache hit ratio at least
    /// `hit_ratio_floor`, placement improvement of the last batch never
    /// negative, and at least one daemon tick by evaluation time.
    pub fn serving_defaults(makespan_p99_ceiling: f64, hit_ratio_floor: f64) -> Self {
        Sentinel::new(vec![
            SloRule::P99Ceiling {
                metric: "sme_batch_makespan_cycles".to_string(),
                ceiling: makespan_p99_ceiling,
            },
            SloRule::GaugeFloor {
                metric: "sme_cache_hit_ratio".to_string(),
                floor: hit_ratio_floor,
            },
            SloRule::GaugeFloor {
                metric: "sme_placement_improvement_last".to_string(),
                floor: 0.0,
            },
            SloRule::CounterFloor {
                metric: "sme_pretune_ticks_total".to_string(),
                floor: 1,
            },
        ])
    }

    /// The rules under watch.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Evaluate every rule against `metrics`, returning all breaches in
    /// rule order (empty when every promise holds).
    pub fn evaluate(&self, metrics: &MetricsRegistry) -> Vec<SloBreach> {
        self.rules
            .iter()
            .filter_map(|rule| rule.evaluate(metrics))
            .collect()
    }
}

/// Assemble the versioned postmortem bundle for one breach: the breaching
/// rule plus all four snapshots — trace, metrics, telemetry top-shapes,
/// per-shard cache stats. The bundle is bounded by construction: the trace
/// ring caps spans, the exemplar pools cap at worst-k, and the callers
/// pass pre-truncated telemetry/cache sections.
pub fn postmortem_bundle(
    hub: &ObsHub,
    breach: &SloBreach,
    telemetry_top_shapes: Value,
    cache_shards: Value,
) -> Value {
    let trace = serde_json::from_str(&hub.trace.to_chrome_trace()).unwrap_or(Value::Null);
    Value::Object(vec![
        (
            "version".to_string(),
            Value::Number(POSTMORTEM_VERSION as f64),
        ),
        ("breach".to_string(), breach.to_json_value()),
        ("trace".to_string(), trace),
        ("metrics".to_string(), hub.metrics.snapshot_json()),
        ("telemetry_top_shapes".to_string(), telemetry_top_shapes),
        ("cache_shards".to_string(), cache_shards),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_hold_vacuously_on_an_empty_registry() {
        let sentinel = Sentinel::serving_defaults(1e6, 0.5);
        let metrics = MetricsRegistry::new();
        // Histogram/gauge rules are vacuous, but the liveness counter
        // breaches: zero ticks is exactly what liveness must catch.
        let breaches = sentinel.evaluate(&metrics);
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].metric, "sme_pretune_ticks_total");
        assert_eq!(breaches[0].observed, 0.0);
    }

    #[test]
    fn each_rule_kind_detects_its_breach() {
        let metrics = MetricsRegistry::new();
        metrics.histogram("sme_batch_makespan_cycles").record(100.0);
        metrics.gauge("sme_cache_hit_ratio").set(0.25);
        metrics.counter("sme_pretune_ticks_total").add(3);

        // Satisfied rules stay quiet.
        let ok = Sentinel::new(vec![
            SloRule::P99Ceiling {
                metric: "sme_batch_makespan_cycles".to_string(),
                ceiling: 1e6,
            },
            SloRule::GaugeFloor {
                metric: "sme_cache_hit_ratio".to_string(),
                floor: 0.1,
            },
            SloRule::CounterFloor {
                metric: "sme_pretune_ticks_total".to_string(),
                floor: 1,
            },
        ]);
        assert!(ok.evaluate(&metrics).is_empty());

        // Each kind breaches when its threshold is crossed.
        let p99 = SloRule::P99Ceiling {
            metric: "sme_batch_makespan_cycles".to_string(),
            ceiling: 50.0,
        };
        let breach = p99.evaluate(&metrics).expect("p99 over ceiling");
        assert!(breach.observed > 100.0, "upper bucket bound brackets 100");
        assert_eq!(breach.threshold, 50.0);
        assert_eq!(breach.rule, "p99(sme_batch_makespan_cycles) <= 50");

        let floor = SloRule::GaugeFloor {
            metric: "sme_cache_hit_ratio".to_string(),
            floor: 0.5,
        };
        let breach = floor.evaluate(&metrics).expect("gauge under floor");
        assert_eq!((breach.observed, breach.threshold), (0.25, 0.5));

        let liveness = SloRule::CounterFloor {
            metric: "sme_pretune_ticks_total".to_string(),
            floor: 10,
        };
        let breach = liveness.evaluate(&metrics).expect("counter under floor");
        assert_eq!((breach.observed, breach.threshold), (3.0, 10.0));
    }

    #[test]
    fn postmortem_bundle_carries_all_four_snapshots() {
        let hub = ObsHub::new(64);
        hub.metrics.counter("sme_router_batches_total").inc();
        hub.trace.record(
            "router.dispatch",
            "router",
            std::time::Instant::now(),
            vec![],
        );
        let breach = SloBreach {
            rule: "sme_cache_hit_ratio >= 2".to_string(),
            metric: "sme_cache_hit_ratio".to_string(),
            observed: 0.9,
            threshold: 2.0,
        };
        let bundle = postmortem_bundle(
            &hub,
            &breach,
            Value::Array(vec![Value::String("f32 64x64x32".to_string())]),
            Value::Array(vec![]),
        );
        assert_eq!(bundle.get("version").unwrap().as_u64(), Some(1));
        assert_eq!(
            bundle.get("breach").unwrap().get("rule").unwrap().as_str(),
            Some("sme_cache_hit_ratio >= 2")
        );
        let trace_events = bundle
            .get("trace")
            .unwrap()
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(trace_events.len(), 1);
        assert!(bundle
            .get("metrics")
            .unwrap()
            .get("counters")
            .unwrap()
            .get("sme_router_batches_total")
            .is_some());
        assert_eq!(
            bundle
                .get("telemetry_top_shapes")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            1
        );
        assert!(bundle.get("cache_shards").unwrap().as_array().is_some());
        // The bundle is valid JSON end to end.
        let text = bundle.render_pretty();
        assert!(serde_json::from_str(&text).is_ok());
    }
}
