//! # sme-obs
//!
//! Observability for the serving stack: **see every cycle, every span,
//! every counter**.
//!
//! The paper's analysis (Remke & Breuer, SC'24) works because every result
//! is attributed — cycles to load/store/outer-product streams, overheads
//! to ZA transfers. This crate gives the serving layers the same
//! discipline at runtime:
//!
//! * [`TraceRecorder`] — a bounded ring-buffer span recorder with Chrome
//!   trace-event JSON export ([`TraceRecorder::to_chrome_trace`]), loadable
//!   directly in [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`.
//!   Instrumented sites: `Router::dispatch`, `KernelCache::fetch_any`,
//!   `GemmService` group execution, `PretuneDaemon::tick`.
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s and log-linear
//!   [`Histogram`]s with Prometheus text exposition
//!   ([`MetricsRegistry::render_prometheus`]) and a JSON snapshot
//!   ([`MetricsRegistry::snapshot_json`]).
//! * [`ObsHub`] — one shared handle bundling both, attached to the serving
//!   stack with `Router::attach_obs` / `KernelCache::attach_obs`.
//!
//! The cycle-attribution side of observability — *which execution stream a
//! kernel's cycles belong to* — lives in `sme_machine::CycleProfile`,
//! produced by the timing scoreboard; this crate covers the host-side
//! serving path.
//!
//! ```
//! use sme_obs::ObsHub;
//! use std::time::Instant;
//!
//! let hub = ObsHub::shared(1024);
//! let t0 = Instant::now();
//! // ... do work ...
//! hub.trace.record("demo.work", "demo", t0, vec![]);
//! hub.metrics.counter("demo_events_total").inc();
//! assert!(sme_obs::validate_chrome_trace(&hub.trace.to_chrome_trace()).is_ok());
//! assert!(hub.metrics.render_prometheus().contains("demo_events_total 1"));
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramData, MetricsRegistry, SUB_BUCKETS_PER_OCTAVE,
};
pub use trace::{validate_chrome_trace, SpanRecord, TraceRecorder};

use std::sync::Arc;

/// The shared observability hub: one trace recorder plus one metrics
/// registry, handed to every instrumented layer as an `Arc<ObsHub>`.
#[derive(Debug)]
pub struct ObsHub {
    /// The span recorder.
    pub trace: TraceRecorder,
    /// The metrics registry.
    pub metrics: MetricsRegistry,
}

impl ObsHub {
    /// A hub whose trace ring keeps at most `trace_capacity` spans.
    pub fn new(trace_capacity: usize) -> Self {
        ObsHub {
            trace: TraceRecorder::new(trace_capacity),
            metrics: MetricsRegistry::new(),
        }
    }

    /// A shared hub ready to attach to the serving stack.
    pub fn shared(trace_capacity: usize) -> Arc<Self> {
        Arc::new(Self::new(trace_capacity))
    }
}
