//! # sme-obs
//!
//! Observability for the serving stack: **see every cycle, every span,
//! every counter**.
//!
//! The paper's analysis (Remke & Breuer, SC'24) works because every result
//! is attributed — cycles to load/store/outer-product streams, overheads
//! to ZA transfers. This crate gives the serving layers the same
//! discipline at runtime:
//!
//! * [`TraceRecorder`] — a bounded ring-buffer span recorder with *causal
//!   identity*: every span carries a `trace_id`/`span_id`/`parent_id`
//!   triple (threaded through the serving path as a [`TraceCtx`]), and the
//!   Chrome trace-event JSON export ([`TraceRecorder::to_chrome_trace`])
//!   adds thread-name metadata records plus flow events for cross-thread
//!   parent→child edges, loadable directly in
//!   [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`.
//!   Instrumented sites: `Router::dispatch` (the batch root), placement,
//!   `KernelCache::fetch_any`, `GemmService` group execution (parented
//!   across the rayon thread hop), `PretuneDaemon::tick`.
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s and log-linear
//!   [`Histogram`]s with Prometheus text exposition
//!   ([`MetricsRegistry::render_prometheus`]) and a JSON snapshot
//!   ([`MetricsRegistry::snapshot_json`]), both in sorted name order.
//!   Histograms keep worst-k [`Exemplar`]s so a tail bucket links back to
//!   the span that caused it.
//! * [`sentinel`] — the flight recorder: declarative [`SloRule`]s
//!   evaluated by a [`Sentinel`] against the registry; a breach yields a
//!   versioned [`postmortem_bundle`] (trace + metrics + telemetry +
//!   cache snapshots plus the breaching rule).
//! * [`ObsHub`] — one shared handle bundling trace and metrics, attached
//!   to the serving stack with `Router::attach_obs` /
//!   `KernelCache::attach_obs`.
//!
//! The cycle-attribution side of observability — *which execution stream a
//! kernel's cycles belong to* — lives in `sme_machine::CycleProfile`,
//! produced by the timing scoreboard; this crate covers the host-side
//! serving path.
//!
//! ```
//! use sme_obs::ObsHub;
//! use std::time::Instant;
//!
//! let hub = ObsHub::shared(1024);
//! let t0 = Instant::now();
//! // ... do work ...
//! hub.trace.record("demo.work", "demo", t0, vec![]);
//! hub.metrics.counter("demo_events_total").inc();
//! assert!(sme_obs::validate_chrome_trace(&hub.trace.to_chrome_trace()).is_ok());
//! assert!(hub.metrics.render_prometheus().contains("demo_events_total 1"));
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod sentinel;
pub mod trace;

pub use metrics::{
    Counter, Exemplar, Gauge, Histogram, HistogramData, MetricsRegistry, MAX_EXEMPLARS,
    SUB_BUCKETS_PER_OCTAVE,
};
pub use sentinel::{postmortem_bundle, Sentinel, SloBreach, SloRule, POSTMORTEM_VERSION};
pub use trace::{
    set_thread_name, set_thread_name_indexed, validate_chrome_trace, SpanRecord, TraceCtx,
    TraceRecorder,
};

use std::sync::Arc;

/// The shared observability hub: one trace recorder plus one metrics
/// registry, handed to every instrumented layer as an `Arc<ObsHub>`.
#[derive(Debug)]
pub struct ObsHub {
    /// The span recorder.
    pub trace: TraceRecorder,
    /// The metrics registry.
    pub metrics: MetricsRegistry,
}

impl ObsHub {
    /// A hub whose trace ring keeps at most `trace_capacity` spans.
    pub fn new(trace_capacity: usize) -> Self {
        ObsHub {
            trace: TraceRecorder::new(trace_capacity),
            metrics: MetricsRegistry::new(),
        }
    }

    /// A shared hub ready to attach to the serving stack.
    pub fn shared(trace_capacity: usize) -> Arc<Self> {
        Arc::new(Self::new(trace_capacity))
    }
}
