//! Top-level just-in-time kernel generation.

use crate::blocking::{
    pipeline_supported, plan_column_panels, plan_for_config, BlockPlan, PlanCandidate, PlanKind,
};
use crate::config::{BLayout, Backend, Beta, GemmConfig, GemmError, KernelSchedule};
use crate::kernel::{CompiledKernel, RoutedKernel};
use crate::loads::{emit_c_transfer, emit_zero_tiles, TransferDir};
use crate::microkernel::{
    emit_block, emit_block_predicates, emit_c_pointer, emit_pipeline_prologue,
    emit_pipelined_k_loop, xr, BSource, BK_STRIDE, LDA_B, LDB_B, LDC_B, SCRATCH,
};
use crate::transpose::{emit_panel_transpose, scratch_bytes};
use sme_isa::asm::Assembler;
use sme_isa::inst::{ScalarInst, SmeInst};
use sme_isa::regs::XReg;

/// Upper bound on the transpose scratch buffer carved out of the simulated
/// stack (the paper's kernels use K = 512 ⇒ 64 KiB).
const MAX_SCRATCH_BYTES: usize = 512 * 1024;

/// Generate an SME small-GEMM kernel for `cfg`.
///
/// The returned [`CompiledKernel`] owns the finished instruction stream (and
/// can lower it to AArch64 machine code bytes); it is executed on the
/// `sme-machine` simulator.
pub fn generate(cfg: &GemmConfig) -> Result<CompiledKernel, GemmError> {
    generate_with_plan(cfg, None)
}

/// Generate a kernel with an explicit block plan instead of the default
/// heterogeneous plan.
///
/// This is the hook used by the ablation benchmarks (homogeneous blocking
/// only), by the vendor-baseline model in `accel-ref` and by the
/// `sme-runtime` autotuner. A plan override is only meaningful for
/// row-major B: the column-major path transposes B panel by panel through
/// the ZA array, and the contraction loop's scratch addressing is welded to
/// the 32-column panel tiling, so an arbitrary plan cannot be honoured
/// there. Passing `Some(plan)` with a column-major configuration is
/// therefore an error (it used to be silently ignored); pass `None` — or
/// tune the remaining knobs via [`generate_tuned`] with
/// [`PlanKind::ColumnPanels`] — instead.
///
/// # Errors
/// Returns an error if the configuration is invalid, if the supplied plan
/// does not cover the `m × n` iteration space exactly once, or if a plan
/// override is supplied for column-major B.
pub fn generate_with_plan(
    cfg: &GemmConfig,
    plan_override: Option<BlockPlan>,
) -> Result<CompiledKernel, GemmError> {
    cfg.validate()?;
    if cfg.b_layout == BLayout::ColMajor && plan_override.is_some() {
        return Err(GemmError::Unsupported(
            "block-plan overrides are not supported for column-major B: the in-kernel \
             transposition requires the 32-column panel plan"
                .into(),
        ));
    }
    if cfg.b_layout == BLayout::ColMajor && scratch_bytes(cfg.k) > MAX_SCRATCH_BYTES {
        return Err(GemmError::Unsupported(format!(
            "k = {} needs {} bytes of transpose scratch (limit {})",
            cfg.k,
            scratch_bytes(cfg.k),
            MAX_SCRATCH_BYTES
        )));
    }

    let plan = match plan_override {
        Some(p) => {
            if p.m != cfg.m || p.n != cfg.n || !p.covers_exactly_once() {
                return Err(GemmError::Unsupported(
                    "the supplied block plan does not tile the output exactly once".into(),
                ));
            }
            p
        }
        None => plan_for_config(cfg),
    };
    let mut asm = Assembler::new(format!(
        "sme_gemm_{}_{}x{}x{}",
        match cfg.b_layout {
            BLayout::RowMajor => "abt",
            BLayout::ColMajor => "ab",
        },
        cfg.m,
        cfg.n,
        cfg.k
    ));

    // Prologue: enable streaming mode + ZA, materialise the strides.
    asm.push(SmeInst::Smstart { za_only: false });
    asm.mov_imm64(xr(LDA_B), (cfg.lda * 4) as u64);
    asm.mov_imm64(xr(LDC_B), (cfg.ldc * 4) as u64);

    match cfg.b_layout {
        BLayout::RowMajor => {
            asm.mov_imm64(xr(BK_STRIDE), (cfg.ldb * 4) as u64);
            // The pipelined schedule needs even k (the rotated loop retires
            // two steps per trip) and is incompatible with k-unrolling; any
            // configuration outside that envelope falls back to the serial
            // schedule rather than erroring, so a cached plan tuned for a
            // slightly different shape still compiles.
            let pipelined = cfg.schedule == KernelSchedule::Pipelined
                && pipeline_supported(cfg)
                && cfg.k_unroll == 1;
            if pipelined {
                emit_pipeline_prologue(&mut asm, &plan.blocks[0], BSource::RowMajor);
                for (i, block) in plan.blocks.iter().enumerate() {
                    emit_block_predicates(&mut asm, block);
                    emit_c_pointer(&mut asm, cfg, block);
                    match cfg.beta {
                        Beta::Zero => emit_zero_tiles(&mut asm, block),
                        Beta::One => emit_c_transfer(&mut asm, cfg, block, TransferDir::Load),
                    }
                    emit_pipelined_k_loop(&mut asm, cfg, block);
                    // Hoist the next block's step-0 operand loads above this
                    // block's C store: the store stalls on the final outer
                    // products' ZA dependencies while the load/store unit
                    // sits idle, which is exactly when the next operands can
                    // stream in.
                    if let Some(next) = plan.blocks.get(i + 1) {
                        emit_pipeline_prologue(&mut asm, next, BSource::RowMajor);
                    }
                    emit_c_transfer(&mut asm, cfg, block, TransferDir::Store);
                }
            } else {
                for block in &plan.blocks {
                    emit_block(&mut asm, cfg, block, BSource::RowMajor);
                }
            }
        }
        BLayout::ColMajor => {
            // The contraction loop walks the transposed scratch panel with a
            // fixed 32-element (128-byte) row stride; the transposer needs
            // the original column stride of B.
            asm.mov_imm64(xr(BK_STRIDE), (crate::transpose::SCRATCH_LD * 4) as u64);
            asm.mov_imm64(xr(LDB_B), (cfg.ldb * 4) as u64);
            let scratch = scratch_bytes(cfg.k) as u64;
            asm.sub_imm(XReg::SP, XReg::SP, scratch);
            asm.push(ScalarInst::AddImm {
                rd: xr(SCRATCH),
                rn: XReg::SP,
                imm12: 0,
                shift12: false,
            });
            for (panel_col0, panel_cols, panel_plan) in plan_column_panels(cfg.m, cfg.n) {
                emit_panel_transpose(&mut asm, cfg, panel_col0, panel_cols);
                for block in &panel_plan.blocks {
                    emit_block(&mut asm, cfg, block, BSource::Scratch { panel_col0 });
                }
            }
            asm.add_imm(XReg::SP, XReg::SP, scratch);
        }
    }

    // Epilogue.
    asm.push(SmeInst::Smstop { za_only: false });
    asm.ret();

    Ok(CompiledKernel::new(*cfg, plan, asm.finish()))
}

/// Generate a kernel for `cfg` rewritten with a tuning candidate — the
/// dispatch path used by the `sme-runtime` autotuner and kernel cache.
///
/// The candidate's ZA transfer strategy and unroll factor replace the
/// configuration's own, and its [`PlanKind`] selects the block plan. Kinds
/// other than the layout default are routed through the plan override of
/// [`generate_with_plan`]; the layout-default kind passes `None` so this
/// function is exactly `generate` when given
/// [`PlanCandidate::default_for`]`(cfg)`.
///
/// # Errors
/// Returns an error if the rewritten configuration is invalid, if the
/// candidate's plan kind is incompatible with the layout (anything other
/// than [`PlanKind::ColumnPanels`] for column-major B), or if the candidate
/// targets the Neon backend (use [`generate_routed`] for backend-agnostic
/// generation).
pub fn generate_tuned(
    cfg: &GemmConfig,
    candidate: &PlanCandidate,
) -> Result<CompiledKernel, GemmError> {
    if candidate.backend != Backend::Sme {
        return Err(GemmError::Unsupported(format!(
            "generate_tuned emits SME kernels only; a {} candidate must go \
             through generate_routed",
            candidate.backend
        )));
    }
    let tuned_cfg = candidate.apply(cfg);
    let plan_override = if candidate.kind == PlanKind::default_for(&tuned_cfg) {
        None
    } else {
        Some(candidate.kind.build(tuned_cfg.m, tuned_cfg.n))
    };
    generate_with_plan(&tuned_cfg, plan_override)
}

/// Generate the default kernel for `cfg` on the given backend.
///
/// [`Backend::Sme`] is [`generate`]; [`Backend::Neon`] is
/// [`crate::neon::generate_neon_kernel`] (which rejects configurations the
/// Neon generator does not support — see [`crate::neon::neon_supports`]).
pub fn generate_backend(cfg: &GemmConfig, backend: Backend) -> Result<RoutedKernel, GemmError> {
    match backend {
        Backend::Sme => generate(cfg).map(RoutedKernel::Sme),
        Backend::Neon => crate::neon::generate_neon_kernel(cfg).map(RoutedKernel::Neon),
    }
}

/// Generate a kernel for `cfg` from a (possibly cross-backend) tuning
/// candidate — the dispatch path used by the backend-tagged kernel cache
/// and the cross-backend autotuner.
///
/// SME candidates go through [`generate_tuned`]; the Neon candidate's plan
/// kind and knobs are inert (the Neon generator's 16×4 blocking is fixed)
/// and the configuration compiles as-is.
pub fn generate_routed(
    cfg: &GemmConfig,
    candidate: &PlanCandidate,
) -> Result<RoutedKernel, GemmError> {
    match candidate.backend {
        Backend::Sme => generate_tuned(cfg, candidate).map(RoutedKernel::Sme),
        Backend::Neon => crate::neon::generate_neon_kernel(cfg).map(RoutedKernel::Neon),
    }
}

/// Generate the default kernel for a configuration of either datatype on
/// the given backend — the dtype-generic twin of [`generate_backend`].
///
/// FP32 dispatches to [`generate`] / [`crate::neon::generate_neon_kernel`];
/// widening BF16 to [`crate::widening::generate_widening`] /
/// [`crate::neon::generate_neon_widening`]. Each inner generator rejects
/// configurations off its grid (see [`crate::neon::neon_supports`] and
/// [`crate::widening::sme_widening_supports`]).
pub fn generate_any_backend(
    cfg: &crate::AnyGemmConfig,
    backend: Backend,
) -> Result<RoutedKernel, GemmError> {
    match cfg {
        crate::AnyGemmConfig::Fp32(c) => generate_backend(c, backend),
        crate::AnyGemmConfig::WideningBf16(c) => match backend {
            Backend::Sme => crate::widening::generate_widening(c).map(RoutedKernel::WideningSme),
            Backend::Neon => crate::neon::generate_neon_widening(c).map(RoutedKernel::WideningNeon),
        },
    }
}

/// Generate a kernel for a configuration of either datatype from a
/// cross-backend tuning candidate — the dtype-generic twin of
/// [`generate_routed`].
///
/// Widening SME candidates go through
/// [`crate::widening::generate_widening_tuned`]; the widening Neon
/// candidate's plan kind and knobs are inert (the `BFMMLA` generator's 8×2
/// blocking is fixed), exactly like the FP32 Neon candidate.
pub fn generate_any_routed(
    cfg: &crate::AnyGemmConfig,
    candidate: &PlanCandidate,
) -> Result<RoutedKernel, GemmError> {
    match cfg {
        crate::AnyGemmConfig::Fp32(c) => generate_routed(c, candidate),
        crate::AnyGemmConfig::WideningBf16(c) => match candidate.backend {
            Backend::Sme => crate::widening::generate_widening_tuned(c, candidate)
                .map(RoutedKernel::WideningSme),
            Backend::Neon => crate::neon::generate_neon_widening(c).map(RoutedKernel::WideningNeon),
        },
    }
}

/// Generate a kernel and immediately validate it against the reference GEMM
/// on pseudo-random data, returning the kernel and the maximum absolute
/// error (convenience for tests and examples).
pub fn generate_validated(cfg: &GemmConfig) -> Result<(CompiledKernel, f32), GemmError> {
    let kernel = generate(cfg)?;
    let err = kernel.validate(0x5EED);
    Ok((kernel, err))
}

/// Statistics describing a generated kernel (used by reports and the Fig. 6
/// comparison).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Static instruction count.
    pub instructions: usize,
    /// Static FMOPA count.
    pub fmopa_count: usize,
    /// Number of microkernel executions in the block plan.
    pub microkernels: usize,
    /// Code size in bytes.
    pub code_bytes: usize,
}

/// Collect static statistics for a compiled kernel.
pub fn kernel_stats(kernel: &CompiledKernel) -> KernelStats {
    use sme_isa::inst::Inst;
    let program = kernel.program();
    KernelStats {
        instructions: program.len(),
        fmopa_count: program.count_matching(|i| matches!(i, Inst::Sme(SmeInst::Fmopa { .. }))),
        microkernels: kernel.plan().num_microkernels(),
        code_bytes: program.code_bytes(),
    }
}

/// Re-export used by documentation examples.
pub use crate::blocking::plan_heterogeneous;

#[allow(unused_imports)]
use BlockPlan as _BlockPlanDocOnly;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Beta, ZaTransferStrategy};

    #[test]
    fn generates_and_validates_small_full_blocks() {
        for (m, n, k) in [(32, 32, 8), (16, 64, 4), (64, 16, 4), (32, 32, 1)] {
            let cfg = GemmConfig::abt(m, n, k);
            let (kernel, err) = generate_validated(&cfg).expect("generation must succeed");
            assert!(err < 1e-4, "({m},{n},{k}): max abs error {err}");
            assert!(kernel.program().len() > 10);
        }
    }

    #[test]
    fn generates_and_validates_masked_blocks() {
        for (m, n, k) in [
            (7, 5, 3),
            (17, 23, 9),
            (33, 31, 5),
            (80, 80, 4),
            (50, 70, 6),
        ] {
            let cfg = GemmConfig::abt(m, n, k);
            let (_, err) = generate_validated(&cfg).expect("generation must succeed");
            assert!(err < 1e-4, "({m},{n},{k}): max abs error {err}");
        }
    }

    #[test]
    fn generates_and_validates_column_major_b() {
        for (m, n, k) in [(32, 32, 8), (16, 20, 9), (48, 33, 17), (80, 80, 5)] {
            let cfg = GemmConfig::ab(m, n, k);
            let (_, err) = generate_validated(&cfg).expect("generation must succeed");
            assert!(err < 1e-4, "AB ({m},{n},{k}): max abs error {err}");
        }
    }

    #[test]
    fn beta_zero_overwrites_c() {
        let cfg = GemmConfig::abt(20, 20, 4).with_beta(Beta::Zero);
        let (_, err) = generate_validated(&cfg).expect("generation must succeed");
        assert!(err < 1e-4, "beta=0: max abs error {err}");
    }

    #[test]
    fn direct_transfer_strategy_validates() {
        let cfg = GemmConfig::abt(32, 32, 8).with_c_transfer(ZaTransferStrategy::Direct);
        let (_, err) = generate_validated(&cfg).expect("generation must succeed");
        assert!(err < 1e-4, "direct ZA transfers: max abs error {err}");
    }

    #[test]
    fn unrolled_kernels_validate() {
        let cfg = GemmConfig::abt(32, 32, 16).with_k_unroll(4);
        let (_, err) = generate_validated(&cfg).expect("generation must succeed");
        assert!(err < 1e-4);
    }

    #[test]
    fn padded_leading_dimensions_validate() {
        let cfg = GemmConfig::abt(30, 20, 7).with_leading_dims(37, 25, 41);
        let (_, err) = generate_validated(&cfg).expect("generation must succeed");
        assert!(err < 1e-4);
        let cfg = GemmConfig::ab(30, 20, 7).with_leading_dims(37, 11, 41);
        let (_, err) = generate_validated(&cfg).expect("generation must succeed");
        assert!(err < 1e-4);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(generate(&GemmConfig::abt(0, 4, 4)).is_err());
        let huge_k = GemmConfig::ab(16, 16, 8192);
        assert!(matches!(generate(&huge_k), Err(GemmError::Unsupported(_))));
    }

    #[test]
    fn column_major_plan_override_is_rejected() {
        let cfg = GemmConfig::ab(32, 32, 8);
        let plan = crate::blocking::plan_heterogeneous(32, 32);
        match generate_with_plan(&cfg, Some(plan)) {
            Err(GemmError::Unsupported(msg)) => {
                assert!(msg.contains("column-major"), "{msg}");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
        // `None` still works and uses the panel plan.
        assert!(generate_with_plan(&cfg, None).is_ok());
    }

    #[test]
    fn tuned_generation_matches_the_candidate_and_validates() {
        use crate::blocking::{enumerate_candidates, PlanCandidate};
        let cfg = GemmConfig::abt(48, 48, 16);
        for candidate in enumerate_candidates(&cfg) {
            let kernel = generate_routed(&cfg, &candidate).expect("routed generation");
            assert_eq!(kernel.backend(), candidate.backend);
            if candidate.backend == Backend::Sme {
                let kernel_cfg = kernel.fp32_config().expect("FP32 kernel");
                assert_eq!(kernel_cfg.c_transfer, candidate.c_transfer);
                assert_eq!(kernel_cfg.k_unroll, candidate.k_unroll);
            }
            let err = kernel.validate(0xACE);
            assert!(err < 1e-4, "{candidate:?}: max abs error {err}");
        }
        // The default candidate reproduces `generate` exactly.
        let default = generate_tuned(&cfg, &PlanCandidate::default_for(&cfg)).unwrap();
        let plain = generate(&cfg).unwrap();
        assert_eq!(default.program().len(), plain.program().len());
        assert_eq!(default.plan(), plain.plan());
    }

    #[test]
    fn tuned_generation_rejects_mismatched_column_major_kinds() {
        use crate::blocking::PlanCandidate;
        let cfg = GemmConfig::ab(32, 32, 8);
        let bad = PlanCandidate {
            backend: Backend::Sme,
            kind: PlanKind::Heterogeneous,
            c_transfer: cfg.c_transfer,
            k_unroll: 1,
            schedule: KernelSchedule::Serial,
        };
        assert!(matches!(
            generate_tuned(&cfg, &bad),
            Err(GemmError::Unsupported(_))
        ));
        let good = PlanCandidate::default_for(&cfg);
        assert!(generate_tuned(&cfg, &good).is_ok());
    }

    #[test]
    fn backend_generation_routes_to_the_matching_generator() {
        // A shape both backends support.
        let cfg = GemmConfig::abt(32, 16, 8);
        let sme = generate_backend(&cfg, Backend::Sme).unwrap();
        assert_eq!(sme.backend(), Backend::Sme);
        assert!(sme.as_sme().is_some());
        let neon = generate_backend(&cfg, Backend::Neon).unwrap();
        assert_eq!(neon.backend(), Backend::Neon);
        assert!(neon.as_sme().is_none());
        assert!(sme.validate(11) < 1e-4);
        assert!(neon.validate(11) < 1e-4);
        assert_eq!(sme.flops(), neon.flops());

        // A Neon candidate refused by generate_tuned is accepted by
        // generate_routed.
        let neon_candidate = PlanCandidate::neon_for(&cfg).expect("neon-supported shape");
        assert!(matches!(
            generate_tuned(&cfg, &neon_candidate),
            Err(GemmError::Unsupported(_))
        ));
        assert_eq!(
            generate_routed(&cfg, &neon_candidate)
                .expect("routed generation")
                .backend(),
            Backend::Neon
        );

        // Ragged shapes compile on both backends (the Neon generator is
        // total over row-major B); only column-major B stays SME-only.
        let ragged = GemmConfig::abt(33, 47, 8);
        assert!(generate_backend(&ragged, Backend::Sme).is_ok());
        let ragged_neon = generate_backend(&ragged, Backend::Neon).expect("odd shapes compile");
        assert!(ragged_neon.validate(13) < 1e-4);
        assert!(matches!(
            generate_backend(&GemmConfig::ab(33, 47, 8), Backend::Neon),
            Err(GemmError::Unsupported(_))
        ));
    }

    #[test]
    fn stats_reflect_the_plan() {
        let cfg = GemmConfig::abt(80, 80, 8);
        let kernel = generate(&cfg).unwrap();
        let stats = kernel_stats(&kernel);
        assert_eq!(stats.microkernels, 7);
        assert!(stats.fmopa_count > 0);
        assert_eq!(stats.code_bytes, stats.instructions * 4);
    }
}
