//! In-kernel transposition of column-major B panels (§IV-C, Lst. 5).
//!
//! For the `C += A·B` case the contraction loop needs rows of B, but a
//! column-major B stores consecutive row elements `ldb` apart. Following the
//! paper (and the SME Programmer's Guide), the generator transposes one
//! `K × 32` panel of B at a time into a scratch buffer on the stack, 16×16
//! block by 16×16 block, by writing each block into a ZA tile through the
//! horizontal view and reading it back through the vertical view.

use crate::blocking::TILE;
use crate::config::GemmConfig;
use crate::microkernel::{xr, zr, ARG_B, BK_STRIDE, COL_PTR, LDB_B, SCRATCH, TMP0, TMP1, W12};
use sme_isa::asm::Assembler;
use sme_isa::inst::{ScalarInst, SmeInst, SveInst};
use sme_isa::regs::{PReg, TileSliceDir, XReg, ZaTile};
use sme_isa::types::ElementType;

/// Leading dimension (in elements) of the transposed scratch panel. Fixed at
/// 32 so the microkernel's B stride is a compile-time constant and every row
/// starts 128-byte aligned, the alignment §III-G identifies as ideal.
pub const SCRATCH_LD: usize = 32;

/// Bytes of stack scratch needed to transpose panels of a `k`-deep B.
pub fn scratch_bytes(k: usize) -> usize {
    // One K × 32 panel of f32 values, padded to a 64-byte multiple.
    (k * SCRATCH_LD * 4 + 63) & !63
}

/// Predicate used for the partial K extent of a 16×16 transpose block.
fn k_pred() -> PReg {
    PReg::new(6)
}

/// Predicate used for the partial column extent of a 16×16 transpose block.
fn col_pred_t() -> PReg {
    PReg::new(7)
}

fn emit_lane_predicate(asm: &mut Assembler, pred: PReg, lanes: usize) {
    asm.push(ScalarInst::mov_imm16(xr(TMP1), lanes as u16));
    asm.push(SveInst::Whilelt {
        pd: pred,
        elem: ElementType::F32,
        rn: XReg::XZR,
        rm: xr(TMP1),
    });
}

/// Emit code that transposes the B panel covering columns
/// `panel_col0 .. panel_col0 + panel_cols` (at most 32) into the scratch
/// buffer pointed to by the `SCRATCH` register.
///
/// After this code runs, scratch element `(kk, j)` (row-major with leading
/// dimension [`SCRATCH_LD`]) holds `B[kk, panel_col0 + j]`.
pub fn emit_panel_transpose(
    asm: &mut Assembler,
    cfg: &GemmConfig,
    panel_col0: usize,
    panel_cols: usize,
) {
    assert!(
        panel_cols <= SCRATCH_LD,
        "panels are at most {SCRATCH_LD} columns wide"
    );
    let k = cfg.k;

    asm.push(ScalarInst::mov_imm16(xr(W12), 0));

    for j0 in (0..panel_cols).step_by(TILE) {
        let jw = TILE.min(panel_cols - j0);
        for k0 in (0..k).step_by(TILE) {
            let kw = TILE.min(k - k0);

            emit_lane_predicate(asm, k_pred(), kw);
            emit_lane_predicate(asm, col_pred_t(), jw);

            // Load the 16 (or fewer) columns of this block into z0..z15.
            // Column c lives at B + ((panel_col0 + j0 + c) * ldb + k0) * 4.
            let first_off = (cfg.b_offset(k0, panel_col0 + j0)) as u64;
            asm.push(ScalarInst::MovReg {
                rd: xr(COL_PTR),
                rn: xr(ARG_B),
            });
            if first_off > 0 {
                if first_off < (1 << 24) {
                    asm.add_imm(xr(COL_PTR), xr(COL_PTR), first_off);
                } else {
                    asm.mov_imm64(xr(TMP0), first_off);
                    asm.push(ScalarInst::AddReg {
                        rd: xr(COL_PTR),
                        rn: xr(COL_PTR),
                        rm: xr(TMP0),
                        shift: None,
                    });
                }
            }
            for c in 0..jw {
                asm.push(SveInst::ld1w(zr(c as u8), k_pred(), xr(COL_PTR), 0));
                if c + 1 < jw {
                    asm.push(ScalarInst::AddReg {
                        rd: xr(COL_PTR),
                        rn: xr(COL_PTR),
                        rm: xr(LDB_B),
                        shift: None,
                    });
                }
            }

            // Lst. 5: copy z0..z15 into za0 through the horizontal view …
            for g in 0..4u8 {
                asm.push(SmeInst::MovaToTile {
                    tile: ZaTile::s(0),
                    dir: TileSliceDir::Horizontal,
                    rs: xr(W12),
                    offset: g * 4,
                    zt: zr(g * 4),
                    count: 4,
                });
            }
            // … and copy it back through the vertical view into z16..z31.
            for g in 0..4u8 {
                asm.push(SmeInst::MovaFromTile {
                    tile: ZaTile::s(0),
                    dir: TileSliceDir::Vertical,
                    rs: xr(W12),
                    offset: g * 4,
                    zt: zr(16 + g * 4),
                    count: 4,
                });
            }

            // Store the transposed rows into the scratch panel: row (k0 + r)
            // starts at scratch + (k0 + r) * SCRATCH_LD * 4 + j0 * 4.
            let scratch_off = (k0 * SCRATCH_LD + j0) * 4;
            asm.push(ScalarInst::MovReg {
                rd: xr(COL_PTR),
                rn: xr(SCRATCH),
            });
            if scratch_off > 0 {
                asm.add_imm(xr(COL_PTR), xr(COL_PTR), scratch_off as u64);
            }
            for r in 0..kw {
                asm.push(SveInst::st1w(
                    zr(16 + r as u8),
                    col_pred_t(),
                    xr(COL_PTR),
                    0,
                ));
                if r + 1 < kw {
                    asm.push(ScalarInst::AddReg {
                        rd: xr(COL_PTR),
                        rn: xr(COL_PTR),
                        rm: xr(BK_STRIDE),
                        shift: None,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sme_isa::inst::Inst;

    #[test]
    fn scratch_size_is_padded() {
        assert_eq!(scratch_bytes(512), 512 * 32 * 4);
        assert_eq!(scratch_bytes(1) % 64, 0);
        assert!(scratch_bytes(3) >= 3 * 32 * 4);
    }

    #[test]
    fn full_panel_uses_the_listing_five_idiom() {
        let cfg = GemmConfig::ab(64, 64, 32);
        let mut asm = Assembler::new("transpose");
        emit_panel_transpose(&mut asm, &cfg, 0, 32);
        let p = asm.finish();
        // 2 column blocks × 2 k blocks = 4 tile transposes, each with four
        // horizontal MOVA-in and four vertical MOVA-out group moves.
        let mova_in = p.count_matching(|i| {
            matches!(
                i,
                Inst::Sme(SmeInst::MovaToTile {
                    dir: TileSliceDir::Horizontal,
                    count: 4,
                    ..
                })
            )
        });
        let mova_out = p.count_matching(|i| {
            matches!(
                i,
                Inst::Sme(SmeInst::MovaFromTile {
                    dir: TileSliceDir::Vertical,
                    count: 4,
                    ..
                })
            )
        });
        assert_eq!(mova_in, 16);
        assert_eq!(mova_out, 16);
        // 16 loads and 16 stores per 16x16 block.
        assert_eq!(
            p.count_matching(|i| matches!(i, Inst::Sve(SveInst::Ld1 { .. }))),
            64
        );
        assert_eq!(
            p.count_matching(|i| matches!(i, Inst::Sve(SveInst::St1 { .. }))),
            64
        );
    }

    #[test]
    fn partial_panels_emit_partial_predicates() {
        let cfg = GemmConfig::ab(16, 20, 9);
        let mut asm = Assembler::new("partial");
        emit_panel_transpose(&mut asm, &cfg, 0, 20);
        let p = asm.finish();
        let movs: Vec<u16> = p
            .insts()
            .iter()
            .filter_map(|i| match i {
                Inst::Scalar(ScalarInst::MovZ { imm16, .. }) => Some(*imm16),
                _ => None,
            })
            .collect();
        // K remainder 9 and column remainder 4 both appear as predicate
        // limits.
        assert!(movs.contains(&9));
        assert!(movs.contains(&4));
    }

    #[test]
    #[should_panic(expected = "at most 32")]
    fn panels_wider_than_scratch_are_rejected() {
        let cfg = GemmConfig::ab(16, 64, 16);
        let mut asm = Assembler::new("too_wide");
        emit_panel_transpose(&mut asm, &cfg, 0, 48);
    }
}
