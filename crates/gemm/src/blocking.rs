//! Register-blocking strategies and block plans.
//!
//! The ZA array holds four 16×16 FP32 tiles, which the generator can arrange
//! as a 32×32, 16×64 or 64×16 accumulator block (§IV-B). A [`BlockPlan`]
//! covers the M×N iteration space of one GEMM with a set of
//! [`BlockInstance`]s, mixing strategies so that fewer microkernel
//! executions (and fewer A/B loads) are needed than with a single
//! homogeneous blocking — the Fig. 7 example needs seven heterogeneous
//! executions instead of nine to ten homogeneous ones.

use crate::config::{BLayout, Backend, GemmConfig, KernelSchedule, ZaTransferStrategy};
use serde::{Deserialize, Serialize};

/// Width/height of one ZA tile in FP32 elements on an SVL-512 machine.
pub const TILE: usize = 16;

/// One of the three register-blocking strategies of §IV-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegisterBlocking {
    /// 32×32 accumulator: 2×2 tiles, 64 A/B values loaded per update.
    B32x32,
    /// 16×64 accumulator: 1×4 tiles, 80 A/B values loaded per update.
    B16x64,
    /// 64×16 accumulator: 4×1 tiles, 80 A/B values loaded per update.
    B64x16,
}

impl RegisterBlocking {
    /// Accumulator rows (the M extent of the block).
    pub const fn rows(self) -> usize {
        match self {
            RegisterBlocking::B32x32 => 32,
            RegisterBlocking::B16x64 => 16,
            RegisterBlocking::B64x16 => 64,
        }
    }

    /// Accumulator columns (the N extent of the block).
    pub const fn cols(self) -> usize {
        match self {
            RegisterBlocking::B32x32 => 32,
            RegisterBlocking::B16x64 => 64,
            RegisterBlocking::B64x16 => 16,
        }
    }

    /// Number of 16-row groups (vectors of A loaded per k step).
    pub const fn row_groups(self) -> usize {
        self.rows() / TILE
    }

    /// Number of 16-column groups (vectors of B loaded per k step).
    pub const fn col_groups(self) -> usize {
        self.cols() / TILE
    }

    /// A and B elements loaded per accumulator update (the paper quotes 64
    /// for the 32×32 blocking and 80 for the other two).
    pub const fn loads_per_update(self) -> usize {
        self.rows() + self.cols()
    }

    /// ZA tile index used for row group `rg` and column group `cg`.
    ///
    /// The mapping follows Lst. 4: tiles are numbered down the rows first,
    /// then across the column groups, so that the tiles of one column group
    /// are consecutive (which lets the direct `ldr za`/`str za` transfer use
    /// its paired vector-index/address offset).
    pub fn tile_index(self, rg: usize, cg: usize) -> u8 {
        assert!(
            rg < self.row_groups(),
            "row group {rg} out of range for {self:?}"
        );
        assert!(
            cg < self.col_groups(),
            "column group {cg} out of range for {self:?}"
        );
        (cg * self.row_groups() + rg) as u8
    }

    /// All three strategies.
    pub const fn all() -> [RegisterBlocking; 3] {
        [
            RegisterBlocking::B32x32,
            RegisterBlocking::B16x64,
            RegisterBlocking::B64x16,
        ]
    }
}

/// One microkernel execution: a rectangle of C computed with one register
/// blocking (possibly masked when `rows`/`cols` are smaller than the
/// blocking's extent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockInstance {
    /// First row of C covered.
    pub row0: usize,
    /// First column of C covered.
    pub col0: usize,
    /// Rows actually computed (≤ `blocking.rows()`).
    pub rows: usize,
    /// Columns actually computed (≤ `blocking.cols()`).
    pub cols: usize,
    /// Register blocking used.
    pub blocking: RegisterBlocking,
}

impl BlockInstance {
    /// `true` if the block uses the blocking's full extent (no masking).
    pub fn is_full(&self) -> bool {
        self.rows == self.blocking.rows() && self.cols == self.blocking.cols()
    }

    /// Row groups actually touched (masked blocks may use fewer).
    pub fn active_row_groups(&self) -> usize {
        self.rows.div_ceil(TILE)
    }

    /// Column groups actually touched.
    pub fn active_col_groups(&self) -> usize {
        self.cols.div_ceil(TILE)
    }

    /// A and B elements loaded per k step for this block.
    pub fn loads_per_update(&self) -> usize {
        self.active_row_groups() * TILE + self.active_col_groups() * TILE
    }
}

/// A complete tiling of the M×N iteration space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockPlan {
    /// Problem rows.
    pub m: usize,
    /// Problem columns.
    pub n: usize,
    /// Microkernel executions in generation order.
    pub blocks: Vec<BlockInstance>,
}

impl BlockPlan {
    /// Number of microkernel executions.
    pub fn num_microkernels(&self) -> usize {
        self.blocks.len()
    }

    /// Total A/B elements loaded per contraction step, summed over blocks —
    /// the quantity the heterogeneous blocking minimises.
    pub fn loads_per_k_step(&self) -> usize {
        self.blocks.iter().map(|b| b.loads_per_update()).sum()
    }

    /// Verify that the plan covers every element of C exactly once.
    pub fn covers_exactly_once(&self) -> bool {
        let mut hit = vec![0u8; self.m * self.n];
        for b in &self.blocks {
            for c in b.col0..b.col0 + b.cols {
                for r in b.row0..b.row0 + b.rows {
                    if r >= self.m || c >= self.n {
                        return false;
                    }
                    hit[c * self.m + r] += 1;
                }
            }
        }
        hit.iter().all(|&h| h == 1)
    }

    /// Breakdown of block counts per strategy.
    pub fn strategy_histogram(&self) -> [(RegisterBlocking, usize); 3] {
        let mut out = [
            (RegisterBlocking::B32x32, 0),
            (RegisterBlocking::B16x64, 0),
            (RegisterBlocking::B64x16, 0),
        ];
        for b in &self.blocks {
            for entry in out.iter_mut() {
                if entry.0 == b.blocking {
                    entry.1 += 1;
                }
            }
        }
        out
    }
}

/// Build the heterogeneous plan of §IV-B for an `m × n` output.
///
/// The bulk of the matrix is covered with 32×32 blocks; a bottom strip of at
/// most 16 rows uses 16×64 blocks, a right strip of at most 16 columns uses
/// 64×16 blocks, and the corner uses a single masked block. Remainders
/// larger than 16 fall back to masked 32×32 blocks.
pub fn plan_heterogeneous(m: usize, n: usize) -> BlockPlan {
    let mut blocks = Vec::new();

    // Split each dimension into a "main" part covered by 32-wide blocks and
    // a remainder handled by the thin strategies (only when ≤ 16).
    let (m_main, m_rem) = split_main(m);
    let (n_main, n_rem) = split_main(n);

    // Main region: 32×32 blocks (masked at the main-region edge when the
    // remainder was folded into a 17–31 wide last block).
    for col0 in (0..n_main).step_by(32) {
        let cols = 32.min(n_main - col0);
        for row0 in (0..m_main).step_by(32) {
            let rows = 32.min(m_main - row0);
            blocks.push(BlockInstance {
                row0,
                col0,
                rows,
                cols,
                blocking: RegisterBlocking::B32x32,
            });
        }
    }

    // Bottom strip (≤ 16 rows): 16×64 blocks across the main columns.
    if m_rem > 0 {
        for col0 in (0..n_main).step_by(64) {
            let cols = 64.min(n_main - col0);
            blocks.push(BlockInstance {
                row0: m_main,
                col0,
                rows: m_rem,
                cols,
                blocking: RegisterBlocking::B16x64,
            });
        }
    }

    // Right strip (≤ 16 columns): 64×16 blocks down the main rows.
    if n_rem > 0 {
        for row0 in (0..m_main).step_by(64) {
            let rows = 64.min(m_main - row0);
            blocks.push(BlockInstance {
                row0,
                col0: n_main,
                rows,
                cols: n_rem,
                blocking: RegisterBlocking::B64x16,
            });
        }
    }

    // Corner (≤ 16 × ≤ 16): one heavily masked 64×16 block, as in Fig. 7.
    if m_rem > 0 && n_rem > 0 {
        blocks.push(BlockInstance {
            row0: m_main,
            col0: n_main,
            rows: m_rem,
            cols: n_rem,
            blocking: RegisterBlocking::B64x16,
        });
    }

    BlockPlan { m, n, blocks }
}

/// Split a dimension into a part covered by 32-wide blocks and a thin
/// remainder (≤ 16) handled by the 16-wide strategies. Remainders of 17–31
/// are folded into the last (masked) 32-wide block.
fn split_main(extent: usize) -> (usize, usize) {
    let rem = extent % 32;
    if rem == 0 || extent < 32 {
        if extent < 32 && extent > 16 {
            // A single masked 32-wide block covers 17..31.
            (extent, 0)
        } else if extent <= 16 && extent > 0 {
            (0, extent)
        } else {
            (extent, 0)
        }
    } else if rem <= 16 {
        (extent - rem, rem)
    } else {
        // 17..=31: cover with a masked 32×32 block instead of two thin ones.
        (extent, 0)
    }
}

/// Build a homogeneous plan that uses a single strategy everywhere (masked
/// at the edges) — the left-hand side of Fig. 7, used as the ablation
/// baseline.
pub fn plan_homogeneous(m: usize, n: usize, blocking: RegisterBlocking) -> BlockPlan {
    let mut blocks = Vec::new();
    for col0 in (0..n).step_by(blocking.cols()) {
        let cols = blocking.cols().min(n - col0);
        for row0 in (0..m).step_by(blocking.rows()) {
            let rows = blocking.rows().min(m - row0);
            blocks.push(BlockInstance {
                row0,
                col0,
                rows,
                cols,
                blocking,
            });
        }
    }
    BlockPlan { m, n, blocks }
}

/// Plan used when B is column-major and must be transposed panel by panel:
/// the N dimension is processed in panels of at most 32 columns (the width
/// of one transposed scratch panel, §IV-C), and within each panel the rows
/// are covered by (possibly masked) 32×32 blocks.
pub fn plan_column_panels(m: usize, n: usize) -> Vec<(usize, usize, BlockPlan)> {
    let mut panels = Vec::new();
    for col0 in (0..n).step_by(32) {
        let cols = 32.min(n - col0);
        let mut plan = plan_heterogeneous(m, cols);
        // Shift the panel-local plan to the panel's absolute columns.
        for b in &mut plan.blocks {
            b.col0 += col0;
        }
        plan.n = n;
        panels.push((col0, cols, plan));
    }
    panels
}

/// Identifier of one block-plan shape — the part of a tuning candidate that
/// selects how the M×N iteration space is tiled.
///
/// Unlike a concrete [`BlockPlan`], a `PlanKind` is a small copyable token
/// that can be persisted (the autotuner's plan store records kinds, not
/// block lists) and re-expanded deterministically with [`PlanKind::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlanKind {
    /// The default heterogeneous plan of §IV-B (Fig. 7).
    Heterogeneous,
    /// A homogeneous plan using a single register blocking everywhere.
    Homogeneous(RegisterBlocking),
    /// The panel-wise plan used for column-major B (§IV-C): 32-column
    /// panels, each tiled heterogeneously.
    ColumnPanels,
}

impl PlanKind {
    /// Expand the kind into a concrete plan for an `m × n` output.
    pub fn build(self, m: usize, n: usize) -> BlockPlan {
        match self {
            PlanKind::Heterogeneous => plan_heterogeneous(m, n),
            PlanKind::Homogeneous(blocking) => plan_homogeneous(m, n, blocking),
            PlanKind::ColumnPanels => {
                let mut blocks = Vec::new();
                for (_, _, panel_plan) in plan_column_panels(m, n) {
                    blocks.extend(panel_plan.blocks);
                }
                BlockPlan { m, n, blocks }
            }
        }
    }

    /// Stable textual name (used by the plan store's JSON format).
    pub fn name(self) -> &'static str {
        match self {
            PlanKind::Heterogeneous => "Heterogeneous",
            PlanKind::Homogeneous(RegisterBlocking::B32x32) => "Homogeneous32x32",
            PlanKind::Homogeneous(RegisterBlocking::B16x64) => "Homogeneous16x64",
            PlanKind::Homogeneous(RegisterBlocking::B64x16) => "Homogeneous64x16",
            PlanKind::ColumnPanels => "ColumnPanels",
        }
    }

    /// Inverse of [`PlanKind::name`].
    pub fn from_name(name: &str) -> Option<PlanKind> {
        match name {
            "Heterogeneous" => Some(PlanKind::Heterogeneous),
            "Homogeneous32x32" => Some(PlanKind::Homogeneous(RegisterBlocking::B32x32)),
            "Homogeneous16x64" => Some(PlanKind::Homogeneous(RegisterBlocking::B16x64)),
            "Homogeneous64x16" => Some(PlanKind::Homogeneous(RegisterBlocking::B64x16)),
            "ColumnPanels" => Some(PlanKind::ColumnPanels),
            _ => None,
        }
    }

    /// The kind the generator picks by default for a configuration.
    pub fn default_for(cfg: &GemmConfig) -> PlanKind {
        match cfg.b_layout {
            BLayout::RowMajor => PlanKind::Heterogeneous,
            BLayout::ColMajor => PlanKind::ColumnPanels,
        }
    }
}

/// One autotuning candidate: the execution backend, a block-plan shape and
/// the code-generation knobs the tuner may vary ([`ZaTransferStrategy`] and
/// the contraction-loop unroll factor).
///
/// The plan kind and knobs only steer SME code generation; a
/// [`Backend::Neon`] candidate carries the configuration's own knob values
/// (the Neon generator's 16×4 blocking is fixed), so exactly one Neon
/// candidate exists per configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlanCandidate {
    /// Which engine executes the kernel.
    pub backend: Backend,
    /// How the M×N iteration space is tiled (SME only).
    pub kind: PlanKind,
    /// How C blocks move between memory and the ZA array (SME only).
    pub c_transfer: ZaTransferStrategy,
    /// Contraction-loop unroll factor (1, 2 or 4; SME only).
    pub k_unroll: usize,
    /// Instruction schedule of the block sequence (SME only).
    pub schedule: KernelSchedule,
}

impl PlanCandidate {
    /// The candidate the generator would use for `cfg` with no tuning: the
    /// SME backend with the layout's default plan kind and the
    /// configuration's own knobs.
    pub fn default_for(cfg: &GemmConfig) -> PlanCandidate {
        PlanCandidate {
            backend: Backend::Sme,
            kind: PlanKind::default_for(cfg),
            c_transfer: cfg.c_transfer,
            k_unroll: cfg.k_unroll,
            schedule: cfg.schedule,
        }
    }

    /// The single Neon candidate for `cfg`, if the Neon generator supports
    /// the configuration (see [`crate::neon::neon_supports`]).
    pub fn neon_for(cfg: &GemmConfig) -> Option<PlanCandidate> {
        crate::neon::neon_supports(cfg).ok()?;
        Some(PlanCandidate {
            backend: Backend::Neon,
            ..PlanCandidate::default_for(cfg)
        })
    }

    /// Rewrite `cfg` with this candidate's code-generation knobs (the plan
    /// kind is applied separately, through the generator's plan override).
    pub fn apply(&self, cfg: &GemmConfig) -> GemmConfig {
        cfg.with_c_transfer(self.c_transfer)
            .with_k_unroll(self.k_unroll)
            .with_schedule(self.schedule)
    }
}

/// Enumerate the tuning candidates for a configuration.
///
/// The SME candidates are the cross product of plan kinds, ZA transfer
/// strategies and unroll factors valid for `cfg`:
///
/// * row-major B: the heterogeneous plan and all three homogeneous plans;
/// * column-major B: only [`PlanKind::ColumnPanels`] — the in-kernel
///   transposition requires the panel-wise plan, and
///   [`crate::generate_with_plan`] rejects overrides for this layout;
/// * both [`ZaTransferStrategy`] variants;
/// * unroll factors from {1, 2, 4} that divide `k` (the generator falls
///   back to unroll 1 for non-dividing factors, so enumerating them would
///   only duplicate the unroll-1 candidate).
///
/// When the Neon generator supports `cfg`, the single [`Backend::Neon`]
/// candidate is appended, so a tuner scoring this list compares across
/// engines (the Fig. 1 crossover).
///
/// The list always contains [`PlanCandidate::default_for`]`(cfg)`, so an
/// argmin over the candidates' scores can never be worse than the default.
pub fn enumerate_candidates(cfg: &GemmConfig) -> Vec<PlanCandidate> {
    let kinds: Vec<PlanKind> = match cfg.b_layout {
        BLayout::RowMajor => vec![
            PlanKind::Heterogeneous,
            PlanKind::Homogeneous(RegisterBlocking::B32x32),
            PlanKind::Homogeneous(RegisterBlocking::B16x64),
            PlanKind::Homogeneous(RegisterBlocking::B64x16),
        ],
        BLayout::ColMajor => vec![PlanKind::ColumnPanels],
    };
    let transfers = [ZaTransferStrategy::TwoStep, ZaTransferStrategy::Direct];
    let mut candidates = Vec::new();
    for &kind in &kinds {
        for &c_transfer in &transfers {
            for k_unroll in [1usize, 2, 4] {
                // Skip unrolls that do not divide k — the generator falls
                // back to unroll 1 for those, so they would duplicate the
                // unroll-1 candidate — but never drop the configuration's
                // own setting (so the default candidate is always present).
                if !cfg.k.is_multiple_of(k_unroll) && k_unroll != cfg.k_unroll {
                    continue;
                }
                candidates.push(PlanCandidate {
                    backend: Backend::Sme,
                    kind,
                    c_transfer,
                    k_unroll,
                    schedule: KernelSchedule::Serial,
                });
                // The pipelined schedule pairs with unroll 1 only: its
                // rotated loop body already interleaves two contraction
                // steps per trip.
                if k_unroll == 1 && pipeline_supported(cfg) {
                    candidates.push(PlanCandidate {
                        backend: Backend::Sme,
                        kind,
                        c_transfer,
                        k_unroll,
                        schedule: KernelSchedule::Pipelined,
                    });
                }
            }
        }
    }
    // A configuration may carry a schedule the support gate rejects (the
    // generator falls back to serial emission for it); keep the default
    // candidate present regardless, mirroring the unroll handling above.
    let default = PlanCandidate::default_for(cfg);
    if !candidates.contains(&default) {
        candidates.insert(0, default);
    }
    candidates.extend(PlanCandidate::neon_for(cfg));
    debug_assert!(candidates.contains(&PlanCandidate::default_for(cfg)));
    candidates
}

/// `true` if the generator can emit the software-pipelined schedule for
/// `cfg`: row-major B (the column-panel transpose path keeps its serial
/// schedule) and an even contraction depth, which the rotated two-step
/// loop body requires. The schedule additionally pairs with `k_unroll == 1`
/// only; [`enumerate_candidates`] enumerates it under unroll 1 and
/// [`crate::generate_with_plan`] falls back to serial emission elsewhere.
pub fn pipeline_supported(cfg: &GemmConfig) -> bool {
    cfg.b_layout == BLayout::RowMajor && cfg.k.is_multiple_of(2)
}

/// Analytic contraction-step cost of a plan, in performance-core cycles.
///
/// Per k step, every block issues one (possibly multi-vector) A load, one B
/// load and one FMOPA per active tile (Lst. 4). The load cost uses the
/// machine's calibrated per-strategy transfer rates — this is what makes
/// the pre-filter honest about the 4-register `ld1w` being ~1.8× faster
/// per element than the 2-register form, so a 64×16 blocking can beat a
/// 32×32 blocking despite loading more elements per step.
pub fn analytic_k_step_cycles(plan: &BlockPlan, machine: &sme_machine::MachineConfig) -> f64 {
    use sme_machine::OpKind;
    analytic_plan_step_cycles(
        plan,
        machine,
        machine.p_core.op(OpKind::SmeFmopaF32).interval(),
    )
}

/// Analytic contraction-**pair** cost of a widening plan, in
/// performance-core cycles — the BF16 twin of [`analytic_k_step_cycles`].
///
/// Per contraction pair every block issues one (possibly multi-vector)
/// packed-A load, one packed-B load and one widening BFMOPA per active
/// tile. The packed BF16 layout stores two elements per row and pair, so a
/// 16-lane group moves the same 64 bytes per load as in FP32 and the
/// shared load-cost model applies unchanged; only the outer-product issue
/// interval differs.
pub fn analytic_widening_k_pair_cycles(
    plan: &BlockPlan,
    machine: &sme_machine::MachineConfig,
) -> f64 {
    use sme_machine::OpKind;
    analytic_plan_step_cycles(
        plan,
        machine,
        machine.p_core.op(OpKind::SmeFmopaWide).interval(),
    )
}

/// Cycles one (possibly multi-vector) operand load spends moving `groups`
/// sixteen-lane vector groups of 64 bytes each: one load instruction
/// covers 1, 2 or 4 vectors (three groups round up to a four-register
/// load, mirroring the microkernel), at the machine's calibrated
/// per-strategy transfer rate. The packed BF16 pair layouts move the same
/// bytes per group, so the table serves both datatypes — and it lives
/// here, once, so the tuner's analytic pre-filter and the router's
/// closed-form estimates can never disagree about the load model.
pub fn group_load_cycles(groups: usize, machine: &sme_machine::MachineConfig) -> f64 {
    use sme_machine::OpKind;
    match groups {
        0 | 1 => 64.0 / machine.mem.rate(OpKind::LoadLd1Single),
        2 => 128.0 / machine.mem.rate(OpKind::LoadLd1Multi2),
        _ => 256.0 / machine.mem.rate(OpKind::LoadLd1Multi4),
    }
}

/// Shared core of the per-step plan costs: bandwidth-weighted operand
/// loads plus one outer product per active tile at `mopa_interval`.
fn analytic_plan_step_cycles(
    plan: &BlockPlan,
    machine: &sme_machine::MachineConfig,
    mopa_interval: f64,
) -> f64 {
    plan.blocks
        .iter()
        .map(|b| {
            group_load_cycles(b.active_row_groups(), machine)
                + group_load_cycles(b.active_col_groups(), machine)
                + (b.active_row_groups() * b.active_col_groups()) as f64 * mopa_interval
        })
        .sum()
}

/// Analytic pre-filter for tuning candidates: drop SME candidates whose
/// block plan is **dominated** within their knob group.
///
/// Timing-simulating a candidate costs orders of magnitude more than
/// expanding its plan, and for a fixed ZA-transfer strategy and unroll
/// factor the simulated cycle count grows with two quantities the plan
/// determines analytically: the per-contraction-step issue cost
/// ([`analytic_k_step_cycles`], covering loads-per-k-step weighted by the
/// load strategy's bandwidth plus the FMOPA issue slots) and the number of
/// microkernel executions ([`BlockPlan::num_microkernels`], each paying the
/// accumulator load/store and loop setup). A candidate that is no better
/// than another same-knob candidate on *both* metrics and strictly worse on
/// at least one therefore cannot win the argmin, and is pruned before
/// simulation. Costs are evaluated on the calibrated M4 model — the same
/// machine the tuner simulates on.
///
/// The default candidate and non-SME candidates are never pruned, so the
/// tuner's "never worse than the default" and cross-backend guarantees are
/// preserved.
pub fn prune_dominated_candidates(
    cfg: &GemmConfig,
    candidates: Vec<PlanCandidate>,
) -> Vec<PlanCandidate> {
    let machine = sme_machine::MachineConfig::default();
    prune_dominated_by(
        cfg.m,
        cfg.n,
        PlanCandidate::default_for(cfg),
        candidates,
        |plan| analytic_k_step_cycles(plan, &machine),
    )
}

/// Shared domination filter behind [`prune_dominated_candidates`] and
/// [`crate::widening::prune_dominated_widening_candidates`]: `step_cost`
/// supplies the datatype's per-contraction-step plan cost.
pub(crate) fn prune_dominated_by(
    m: usize,
    n: usize,
    default: PlanCandidate,
    candidates: Vec<PlanCandidate>,
    step_cost: impl Fn(&BlockPlan) -> f64,
) -> Vec<PlanCandidate> {
    let metrics: Vec<Option<(f64, usize)>> = candidates
        .iter()
        .map(|c| {
            (c.backend == Backend::Sme).then(|| {
                let plan = c.kind.build(m, n);
                (step_cost(&plan), plan.num_microkernels())
            })
        })
        .collect();
    candidates
        .iter()
        .enumerate()
        .filter(|(i, c)| {
            let Some((cost, microkernels)) = metrics[*i] else {
                return true; // non-SME candidates have no plan to compare
            };
            // Protect the default plan regardless of schedule: the analytic
            // cost model is schedule-blind, so a schedule twin of the default
            // must survive whenever the default does or the pre-filter would
            // hide pipelined wins from the timing sweep.
            let mut normalized = **c;
            normalized.schedule = default.schedule;
            if normalized == default {
                return true;
            }
            !candidates.iter().enumerate().any(|(j, other)| {
                j != *i
                    && other.backend == Backend::Sme
                    && other.c_transfer == c.c_transfer
                    && other.k_unroll == c.k_unroll
                    && other.schedule == c.schedule
                    && match metrics[j] {
                        Some((other_cost, other_microkernels)) => {
                            other_cost <= cost
                                && other_microkernels <= microkernels
                                && (other_cost < cost || other_microkernels < microkernels)
                        }
                        None => false,
                    }
            })
        })
        .map(|(_, c)| *c)
        .collect()
}

/// Pick the plan the generator uses for a configuration.
pub fn plan_for_config(cfg: &GemmConfig) -> BlockPlan {
    match cfg.b_layout {
        BLayout::RowMajor => plan_heterogeneous(cfg.m, cfg.n),
        BLayout::ColMajor => {
            let mut blocks = Vec::new();
            for (_, _, panel_plan) in plan_column_panels(cfg.m, cfg.n) {
                blocks.extend(panel_plan.blocks);
            }
            BlockPlan {
                m: cfg.m,
                n: cfg.n,
                blocks,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_geometry_matches_the_paper() {
        assert_eq!(RegisterBlocking::B32x32.loads_per_update(), 64);
        assert_eq!(RegisterBlocking::B16x64.loads_per_update(), 80);
        assert_eq!(RegisterBlocking::B64x16.loads_per_update(), 80);
        assert_eq!(RegisterBlocking::B32x32.row_groups(), 2);
        assert_eq!(RegisterBlocking::B32x32.col_groups(), 2);
        assert_eq!(RegisterBlocking::B16x64.col_groups(), 4);
        assert_eq!(RegisterBlocking::B64x16.row_groups(), 4);
    }

    #[test]
    fn tile_indices_are_consecutive_within_a_column_group() {
        let b = RegisterBlocking::B32x32;
        assert_eq!(b.tile_index(0, 0), 0);
        assert_eq!(b.tile_index(1, 0), 1);
        assert_eq!(b.tile_index(0, 1), 2);
        assert_eq!(b.tile_index(1, 1), 3);
        let b = RegisterBlocking::B64x16;
        assert_eq!(b.tile_index(3, 0), 3);
        let b = RegisterBlocking::B16x64;
        assert_eq!(b.tile_index(0, 3), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tile_index_bounds() {
        let _ = RegisterBlocking::B16x64.tile_index(1, 0);
    }

    #[test]
    fn figure_seven_example() {
        // M = N = 80: seven heterogeneous microkernel executions…
        let plan = plan_heterogeneous(80, 80);
        assert_eq!(plan.num_microkernels(), 7, "{:#?}", plan.blocks);
        assert!(plan.covers_exactly_once());
        let hist = plan.strategy_histogram();
        assert_eq!(hist[0], (RegisterBlocking::B32x32, 4));
        assert_eq!(hist[1], (RegisterBlocking::B16x64, 1));
        assert_eq!(hist[2], (RegisterBlocking::B64x16, 2));
        // …versus nine to ten with the homogeneous 32×32 blocking.
        let homogeneous = plan_homogeneous(80, 80, RegisterBlocking::B32x32);
        assert!(homogeneous.num_microkernels() >= 9);
        assert!(homogeneous.covers_exactly_once());
        assert!(plan.num_microkernels() < homogeneous.num_microkernels());
    }

    #[test]
    fn heterogeneous_plans_cover_every_size_exactly_once() {
        for m in [1, 5, 16, 17, 31, 32, 33, 48, 64, 80, 96, 100, 128, 130] {
            for n in [1, 7, 16, 20, 32, 40, 64, 80, 81, 96, 127, 128] {
                let plan = plan_heterogeneous(m, n);
                assert!(plan.covers_exactly_once(), "m={m} n={n}: {:?}", plan.blocks);
                // No block may be empty.
                assert!(plan.blocks.iter().all(|b| b.rows > 0 && b.cols > 0));
            }
        }
    }

    #[test]
    fn homogeneous_plans_cover_exactly_once() {
        for blocking in RegisterBlocking::all() {
            for (m, n) in [(80, 80), (33, 65), (16, 16), (130, 70)] {
                let plan = plan_homogeneous(m, n, blocking);
                assert!(plan.covers_exactly_once(), "{blocking:?} m={m} n={n}");
            }
        }
    }

    #[test]
    fn heterogeneous_never_needs_more_loads_than_homogeneous() {
        for (m, n) in [(80, 80), (96, 48), (64, 80), (112, 112), (48, 48)] {
            let het = plan_heterogeneous(m, n);
            let hom = plan_homogeneous(m, n, RegisterBlocking::B32x32);
            assert!(
                het.loads_per_k_step() <= hom.loads_per_k_step(),
                "m={m} n={n}: het {} hom {}",
                het.loads_per_k_step(),
                hom.loads_per_k_step()
            );
        }
    }

    #[test]
    fn column_panel_plans_are_32_wide_and_cover_everything() {
        let panels = plan_column_panels(100, 130);
        assert_eq!(panels.len(), 5);
        assert!(panels.iter().all(|(_, cols, _)| *cols <= 32));
        let mut blocks = Vec::new();
        for (_, _, p) in &panels {
            blocks.extend(p.blocks.clone());
        }
        let combined = BlockPlan {
            m: 100,
            n: 130,
            blocks,
        };
        assert!(combined.covers_exactly_once());
        // Every block stays within its panel.
        for (col0, cols, p) in &panels {
            for b in &p.blocks {
                assert!(b.col0 >= *col0 && b.col0 + b.cols <= col0 + cols);
            }
        }
    }

    #[test]
    fn config_plan_dispatches_on_layout() {
        let abt = plan_for_config(&GemmConfig::abt(80, 80, 8));
        assert_eq!(abt.num_microkernels(), 7);
        let ab = plan_for_config(&GemmConfig::ab(80, 80, 8));
        assert!(ab.covers_exactly_once());
        // Column panels: every block at most 32 columns wide.
        assert!(ab.blocks.iter().all(|b| b.cols <= 32));
    }

    #[test]
    fn masked_blocks_report_active_groups() {
        let b = BlockInstance {
            row0: 64,
            col0: 64,
            rows: 9,
            cols: 16,
            blocking: RegisterBlocking::B64x16,
        };
        assert!(!b.is_full());
        assert_eq!(b.active_row_groups(), 1);
        assert_eq!(b.active_col_groups(), 1);
        assert_eq!(b.loads_per_update(), 32);
    }

    #[test]
    fn plan_kinds_round_trip_names_and_build_valid_plans() {
        let kinds = [
            PlanKind::Heterogeneous,
            PlanKind::Homogeneous(RegisterBlocking::B32x32),
            PlanKind::Homogeneous(RegisterBlocking::B16x64),
            PlanKind::Homogeneous(RegisterBlocking::B64x16),
            PlanKind::ColumnPanels,
        ];
        for kind in kinds {
            assert_eq!(PlanKind::from_name(kind.name()), Some(kind));
            let plan = kind.build(80, 80);
            assert!(plan.covers_exactly_once(), "{kind:?}");
        }
        assert_eq!(PlanKind::from_name("NoSuchPlan"), None);
        assert_eq!(
            PlanKind::Heterogeneous.build(80, 80),
            plan_heterogeneous(80, 80)
        );
    }

    #[test]
    fn candidate_enumeration_covers_the_knob_space() {
        let abt = GemmConfig::abt(64, 64, 64);
        let candidates = enumerate_candidates(&abt);
        // 4 kinds × 2 transfers × 3 unrolls serial, plus a pipelined twin
        // of each unroll-1 candidate (4 kinds × 2 transfers; k = 64 is
        // even and B is row-major), plus the single Neon candidate
        // (64 % 16 == 0 and 64 % 4 == 0, so the Neon generator applies).
        assert_eq!(candidates.len(), 33);
        assert_eq!(
            candidates
                .iter()
                .filter(|c| c.schedule == KernelSchedule::Pipelined)
                .count(),
            8
        );
        assert!(candidates.contains(&PlanCandidate::default_for(&abt)));
        assert_eq!(
            candidates
                .iter()
                .filter(|c| c.backend == Backend::Neon)
                .count(),
            1
        );
        // All distinct.
        for (i, a) in candidates.iter().enumerate() {
            assert!(!candidates[i + 1..].contains(a));
        }

        // Column-major B: only the panel plan may be used, and the Neon
        // generator (row-major B only) contributes no candidate.
        let ab = GemmConfig::ab(64, 64, 64);
        let candidates = enumerate_candidates(&ab);
        assert_eq!(candidates.len(), 6);
        assert!(candidates.iter().all(|c| c.kind == PlanKind::ColumnPanels));
        assert!(candidates.iter().all(|c| c.backend == Backend::Sme));
        assert!(candidates.contains(&PlanCandidate::default_for(&ab)));

        // Ragged shapes are on the Neon grid too now (the single-lane
        // `ldr s`/`str s` tails made the Neon generator total over
        // row-major B), so they get a Neon candidate; column-major B is
        // still SME-only.
        let ragged = GemmConfig::abt(33, 47, 64);
        assert!(enumerate_candidates(&ragged)
            .iter()
            .any(|c| c.backend == Backend::Neon));
        assert!(PlanCandidate::neon_for(&ragged).is_some());
        assert_eq!(PlanCandidate::neon_for(&GemmConfig::ab(33, 47, 64)), None);

        // Non-dividing unrolls are dropped (they alias the unroll-1
        // kernel): k = 2 keeps {1, 2}, an odd k keeps only 1…
        let shallow = GemmConfig::abt(32, 32, 2);
        assert!(enumerate_candidates(&shallow)
            .iter()
            .all(|c| c.k_unroll <= 2));
        let odd = GemmConfig::abt(32, 32, 5);
        assert!(enumerate_candidates(&odd).iter().all(|c| c.k_unroll == 1));
        // …but never the configuration's own setting.
        let forced = GemmConfig::abt(32, 32, 2).with_k_unroll(4);
        assert!(enumerate_candidates(&forced).contains(&PlanCandidate::default_for(&forced)));
    }

    #[test]
    fn candidate_apply_rewrites_only_the_codegen_knobs() {
        let cfg = GemmConfig::abt(48, 48, 32);
        let candidate = PlanCandidate {
            backend: Backend::Sme,
            kind: PlanKind::Homogeneous(RegisterBlocking::B16x64),
            c_transfer: ZaTransferStrategy::Direct,
            k_unroll: 4,
            schedule: KernelSchedule::Serial,
        };
        let rewritten = candidate.apply(&cfg);
        assert_eq!(rewritten.c_transfer, ZaTransferStrategy::Direct);
        assert_eq!(rewritten.k_unroll, 4);
        assert_eq!((rewritten.m, rewritten.n, rewritten.k), (48, 48, 32));
        assert_eq!(rewritten.b_layout, cfg.b_layout);
    }

    #[test]
    fn dominated_candidates_are_pruned_but_default_and_neon_survive() {
        // 64×16 output: the B64x16 homogeneous plan covers it with one
        // unmasked block; B16x64 needs four heavily masked blocks and
        // B32x32 two — both dominated on analytic cost *and* microkernel
        // count, so they must be pruned.
        let cfg = GemmConfig::abt(64, 16, 32);
        let before = enumerate_candidates(&cfg);
        let after = prune_dominated_candidates(&cfg, before.clone());
        assert!(after.len() < before.len(), "something must be pruned");
        assert!(after.contains(&PlanCandidate::default_for(&cfg)));
        assert!(!after
            .iter()
            .any(|c| c.kind == PlanKind::Homogeneous(RegisterBlocking::B16x64)));
        // The sole Neon candidate is exempt from plan-based pruning.
        assert_eq!(
            before.iter().filter(|c| c.backend == Backend::Neon).count(),
            1
        );
        assert!(after.iter().any(|c| c.backend == Backend::Neon));
        // Pruning is per knob group: no surviving SME candidate is
        // dominated by another survivor with the same knobs.
        let machine = sme_machine::MachineConfig::default();
        for c in after.iter().filter(|c| c.backend == Backend::Sme) {
            let plan = c.kind.build(cfg.m, cfg.n);
            let (cost, mks) = (
                analytic_k_step_cycles(&plan, &machine),
                plan.num_microkernels(),
            );
            for other in after
                .iter()
                .filter(|o| *o != c && o.backend == Backend::Sme)
                .filter(|o| o.c_transfer == c.c_transfer && o.k_unroll == c.k_unroll)
            {
                let other_plan = other.kind.build(cfg.m, cfg.n);
                let (other_cost, other_mks) = (
                    analytic_k_step_cycles(&other_plan, &machine),
                    other_plan.num_microkernels(),
                );
                let dominated = other_cost <= cost
                    && other_mks <= mks
                    && (other_cost < cost || other_mks < mks);
                assert!(
                    !dominated || *c == PlanCandidate::default_for(&cfg),
                    "{c:?} is dominated by {other:?} but survived"
                );
            }
        }
    }

    #[test]
    fn small_sizes_use_single_masked_blocks() {
        let plan = plan_heterogeneous(10, 10);
        assert_eq!(plan.num_microkernels(), 1);
        assert!(plan.covers_exactly_once());
        let plan = plan_heterogeneous(20, 20);
        assert_eq!(
            plan.num_microkernels(),
            1,
            "17..31 folds into one masked 32x32 block"
        );
        assert!(plan.covers_exactly_once());
    }
}
