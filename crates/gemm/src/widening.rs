//! Reduced-precision (BF16 → FP32) GEMM kernels — the paper's §V outlook.
//!
//! The paper notes that higher reduced-precision throughput "could further
//! accelerate CPU-native machine learning inference"; on M4 the widening
//! BFMOPA has the *same* FLOP rate as the FP32 FMOPA (Table I), so a BF16
//! kernel mainly halves operand memory traffic. This module implements that
//! kernel generation path as an extension of the FP32 generator:
//!
//! * operands are **pre-packed** into the 2-way interleaved layout the
//!   widening outer product consumes (`pack_a_bf16` / `pack_b_bf16`), the
//!   same approach production libraries use for VNNI/BF16 kernels;
//! * the generated kernel accumulates 32×32 FP32 blocks in the four ZA
//!   tiles, consuming **two contraction steps per BFMOPA**;
//! * the fast path below requires `m` and `n` to be multiples of 32 and `k`
//!   to be even; remainder handling would follow the FP32 generator's
//!   predication scheme and is intentionally left to future work, mirroring
//!   the paper's own scoping.

use crate::blocking::{BlockInstance, RegisterBlocking};
use crate::config::GemmConfig;
use crate::config::GemmError;
use crate::loads::{emit_c_transfer, TransferDir};
use crate::microkernel::{
    a_counter, b_counter, xr, zr, ARG_A, ARG_B, ARG_C, A_PTR, BK_STRIDE, B_PTR, C_PTR, K_CNT,
    LDA_B, LDC_B, W12, ZA_A, ZB_B,
};
use crate::reference::max_abs_diff;
use serde::{Deserialize, Serialize};
use sme_isa::asm::Assembler;
use sme_isa::inst::{ScalarInst, SmeInst, SveInst};
use sme_isa::regs::short::p;
use sme_isa::types::ElementType;
use sme_isa::Program;
use sme_machine::exec::{RunOptions, Simulator};

/// Configuration of a BF16 → FP32 small GEMM (`C += A · Bᵀ` semantics with
/// pre-packed BF16 operands and an FP32, column-major C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WideningGemmConfig {
    /// Rows of C (multiple of 32 in the fast path).
    pub m: usize,
    /// Columns of C (multiple of 32 in the fast path).
    pub n: usize,
    /// Contraction dimension (even).
    pub k: usize,
}

impl WideningGemmConfig {
    /// Construct and validate a configuration.
    pub fn new(m: usize, n: usize, k: usize) -> Result<Self, GemmError> {
        if m == 0 || n == 0 || k == 0 {
            return Err(GemmError::InvalidDimension(
                "dimensions must be non-zero".into(),
            ));
        }
        if !m.is_multiple_of(32) || !n.is_multiple_of(32) {
            return Err(GemmError::Unsupported(
                "the BF16 fast path requires m and n to be multiples of 32".into(),
            ));
        }
        if !k.is_multiple_of(2) {
            return Err(GemmError::Unsupported(
                "the BF16 fast path requires an even k".into(),
            ));
        }
        Ok(WideningGemmConfig { m, n, k })
    }

    /// Floating-point operations per kernel execution.
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Packed-A buffer length in BF16 elements.
    pub fn packed_a_len(&self) -> usize {
        self.m * self.k
    }

    /// Packed-B buffer length in BF16 elements.
    pub fn packed_b_len(&self) -> usize {
        self.n * self.k
    }
}

/// Round an `f32` slice to BF16 precision (returns the raw BF16 bits).
fn to_bf16_bits(values: &[f32]) -> Vec<u16> {
    values
        .iter()
        .map(|v| sme_machine::exec::fp::f32_to_bf16(*v))
        .collect()
}

/// Pack a column-major `m × k` FP32 A into the 2-way interleaved BF16
/// layout consumed by the widening kernel: element `(r, kk)` lands at
/// `packed[(kk / 2) * 2 * m + r * 2 + (kk % 2)]`.
pub fn pack_a_bf16(a: &[f32], m: usize, lda: usize, k: usize) -> Vec<u16> {
    let mut packed = vec![0u16; m * k];
    for kk in 0..k {
        for r in 0..m {
            let v = sme_machine::exec::fp::f32_to_bf16(a[kk * lda + r]);
            packed[(kk / 2) * 2 * m + r * 2 + (kk % 2)] = v;
        }
    }
    packed
}

/// Pack a row-major `k × n` FP32 B (the `Bᵀ` operand) into the 2-way
/// interleaved BF16 layout: element `(kk, c)` lands at
/// `packed[(kk / 2) * 2 * n + c * 2 + (kk % 2)]`.
pub fn pack_b_bf16(b: &[f32], k: usize, ldb: usize, n: usize) -> Vec<u16> {
    let mut packed = vec![0u16; n * k];
    for kk in 0..k {
        for c in 0..n {
            let v = sme_machine::exec::fp::f32_to_bf16(b[kk * ldb + c]);
            packed[(kk / 2) * 2 * n + c * 2 + (kk % 2)] = v;
        }
    }
    packed
}

/// A generated BF16 → FP32 kernel.
#[derive(Debug, Clone)]
pub struct WideningKernel {
    cfg: WideningGemmConfig,
    program: Program,
}

impl WideningKernel {
    /// The configuration.
    pub fn config(&self) -> &WideningGemmConfig {
        &self.cfg
    }

    /// The generated instruction stream.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Assembly listing.
    pub fn disassembly(&self) -> String {
        sme_isa::disasm::disassemble_program(&self.program)
    }

    /// Execute functionally on pre-packed operands already placed in the
    /// simulator's memory.
    pub fn run(&self, sim: &mut Simulator, a: u64, b: u64, c: u64, opts: &RunOptions) {
        sim.run(&self.program, &[a, b, c], opts);
    }

    /// Validate against an FP32 reference computed on BF16-rounded inputs;
    /// returns the maximum absolute error.
    pub fn validate(&self, seed: u64) -> f32 {
        let cfg = self.cfg;
        let mut a = vec![0.0f32; cfg.m * cfg.k];
        let mut b = vec![0.0f32; cfg.k * cfg.n];
        let mut c = vec![0.0f32; cfg.m * cfg.n];
        crate::reference::fill_matrix(seed, &mut a);
        crate::reference::fill_matrix(seed + 1, &mut b);
        crate::reference::fill_matrix(seed + 2, &mut c);

        let packed_a = pack_a_bf16(&a, cfg.m, cfg.m, cfg.k);
        let packed_b = pack_b_bf16(&b, cfg.k, cfg.n, cfg.n);

        let mut sim = Simulator::m4_performance();
        let a_addr = sim.mem.alloc(packed_a.len() as u64 * 2, 128);
        let b_addr = sim.mem.alloc(packed_b.len() as u64 * 2, 128);
        write_u16_slice(&mut sim, a_addr, &packed_a);
        write_u16_slice(&mut sim, b_addr, &packed_b);
        let c_addr = sim.mem.alloc_f32(&c, 128);

        self.run(
            &mut sim,
            a_addr,
            b_addr,
            c_addr,
            &RunOptions::functional_only(),
        );
        let c_out = sim.mem.read_f32_slice(c_addr, cfg.m * cfg.n);

        // Reference on BF16-rounded inputs.
        let a_r: Vec<f32> = to_bf16_bits(&a)
            .iter()
            .map(|&x| sme_machine::exec::fp::bf16_to_f32(x))
            .collect();
        let b_r: Vec<f32> = to_bf16_bits(&b)
            .iter()
            .map(|&x| sme_machine::exec::fp::bf16_to_f32(x))
            .collect();
        let mut c_ref = c;
        for col in 0..cfg.n {
            for row in 0..cfg.m {
                let mut acc = c_ref[col * cfg.m + row];
                for kk in 0..cfg.k {
                    acc += a_r[kk * cfg.m + row] * b_r[kk * cfg.n + col];
                }
                c_ref[col * cfg.m + row] = acc;
            }
        }
        max_abs_diff(&c_out, &c_ref)
    }

    /// Modelled throughput (GFLOPS) on one performance core.
    pub fn model_gflops(&self) -> f64 {
        let cfg = self.cfg;
        let mut sim = Simulator::m4_performance();
        let a = sim.mem.alloc(cfg.packed_a_len() as u64 * 2, 128);
        let b = sim.mem.alloc(cfg.packed_b_len() as u64 * 2, 128);
        let c = sim.mem.alloc_f32_zeroed(cfg.m * cfg.n, 128);
        let result = sim.run(&self.program, &[a, b, c], &RunOptions::timing_only());
        cfg.flops() as f64 / result.stats.seconds() / 1e9
    }
}

fn write_u16_slice(sim: &mut Simulator, addr: u64, data: &[u16]) {
    let mut bytes = Vec::with_capacity(data.len() * 2);
    for v in data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    sim.mem.write_bytes(addr, &bytes);
}

/// Generate a BF16 → FP32 kernel.
pub fn generate_widening(cfg: &WideningGemmConfig) -> Result<WideningKernel, GemmError> {
    // Re-validate (the constructor validates too, but the config is `Copy`).
    let cfg = WideningGemmConfig::new(cfg.m, cfg.n, cfg.k)?;
    let mut asm = Assembler::new(format!("sme_gemm_bf16_{}x{}x{}", cfg.m, cfg.n, cfg.k));

    // Prologue: streaming mode, all-true predicates, strides.
    asm.push(SmeInst::Smstart { za_only: false });
    asm.push(SveInst::ptrue(p(0), ElementType::I8));
    asm.push(SveInst::ptrue(p(1), ElementType::I8));
    asm.push(SveInst::ptrue(p(4), ElementType::I8));
    asm.push(SveInst::ptrue_cnt(a_counter(), ElementType::F32));
    asm.push(SveInst::ptrue_cnt(b_counter(), ElementType::F32));
    // Per contraction *pair*, A advances by 2*m BF16 elements and B by 2*n.
    asm.mov_imm64(xr(LDA_B), (2 * cfg.m * 2) as u64);
    asm.mov_imm64(xr(BK_STRIDE), (2 * cfg.n * 2) as u64);
    asm.mov_imm64(xr(LDC_B), (cfg.m * 4) as u64);

    // The C handling reuses the FP32 machinery (C is FP32 either way).
    let c_cfg = GemmConfig::abt(cfg.m, cfg.n, cfg.k);

    for col0 in (0..cfg.n).step_by(32) {
        for row0 in (0..cfg.m).step_by(32) {
            let block = BlockInstance {
                row0,
                col0,
                rows: 32,
                cols: 32,
                blocking: RegisterBlocking::B32x32,
            };
            // Pointers into the packed operands and C.
            asm.push(ScalarInst::MovReg {
                rd: xr(A_PTR),
                rn: xr(ARG_A),
            });
            if row0 > 0 {
                asm.add_imm(xr(A_PTR), xr(A_PTR), (row0 * 2 * 2) as u64);
            }
            asm.push(ScalarInst::MovReg {
                rd: xr(B_PTR),
                rn: xr(ARG_B),
            });
            if col0 > 0 {
                asm.add_imm(xr(B_PTR), xr(B_PTR), (col0 * 2 * 2) as u64);
            }
            asm.push(ScalarInst::MovReg {
                rd: xr(C_PTR),
                rn: xr(ARG_C),
            });
            let c_off = c_cfg.c_offset(row0, col0) as u64;
            if c_off > 0 {
                asm.add_imm(xr(C_PTR), xr(C_PTR), c_off);
            }

            // Load the FP32 accumulator block.
            asm.push(ScalarInst::mov_imm16(xr(W12), 0));
            emit_c_transfer(&mut asm, &c_cfg, &block, TransferDir::Load);

            // Contraction loop over k *pairs*.
            asm.mov_imm64(xr(K_CNT), (cfg.k / 2) as u64);
            let top = asm.new_label();
            asm.bind(top);
            asm.push(ScalarInst::SubImm {
                rd: xr(K_CNT),
                rn: xr(K_CNT),
                imm12: 1,
                shift12: false,
            });
            // 64 packed BF16 values of A (32 rows × 2 k-steps) and of B.
            asm.push(SveInst::Ld1Multi {
                zt: zr(ZA_A),
                count: 2,
                elem: ElementType::F16,
                pn: a_counter(),
                rn: xr(A_PTR),
                imm_vl: 0,
            });
            asm.push(SveInst::Ld1Multi {
                zt: zr(ZB_B),
                count: 2,
                elem: ElementType::F16,
                pn: b_counter(),
                rn: xr(B_PTR),
                imm_vl: 0,
            });
            asm.push(ScalarInst::AddReg {
                rd: xr(A_PTR),
                rn: xr(A_PTR),
                rm: xr(LDA_B),
                shift: None,
            });
            asm.push(ScalarInst::AddReg {
                rd: xr(B_PTR),
                rn: xr(B_PTR),
                rm: xr(BK_STRIDE),
                shift: None,
            });
            for cg in 0..2u8 {
                for rg in 0..2u8 {
                    asm.push(SmeInst::FmopaWide {
                        tile: cg * 2 + rg,
                        from: ElementType::BF16,
                        pn: p(1),
                        pm: p(0),
                        zn: zr(ZB_B + cg),
                        zm: zr(ZA_A + rg),
                    });
                }
            }
            asm.cbnz(xr(K_CNT), top);

            // Store the FP32 accumulator block.
            emit_c_transfer(&mut asm, &c_cfg, &block, TransferDir::Store);
        }
    }

    asm.push(SmeInst::Smstop { za_only: false });
    asm.ret();
    Ok(WideningKernel {
        cfg,
        program: asm.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(WideningGemmConfig::new(32, 32, 2).is_ok());
        assert!(WideningGemmConfig::new(31, 32, 2).is_err());
        assert!(WideningGemmConfig::new(32, 48, 2).is_err());
        assert!(WideningGemmConfig::new(32, 32, 3).is_err());
        assert!(WideningGemmConfig::new(0, 32, 2).is_err());
        let c = WideningGemmConfig::new(64, 32, 10).unwrap();
        assert_eq!(c.flops(), 2 * 64 * 32 * 10);
        assert_eq!(c.packed_a_len(), 640);
        assert_eq!(c.packed_b_len(), 320);
    }

    #[test]
    fn packing_layout() {
        // A = 2x2 column-major: [[1,3],[2,4]] (a[0]=1, a[1]=2 first column).
        let a = vec![1.0f32, 2.0, 3.0, 4.0];
        let packed = pack_a_bf16(&a, 2, 2, 2);
        // packed[(kk/2)*2m + r*2 + kk%2]: (r=0,k=0)->0, (r=0,k=1)->1,
        // (r=1,k=0)->2, (r=1,k=1)->3.
        let vals: Vec<f32> = packed
            .iter()
            .map(|&x| sme_machine::exec::fp::bf16_to_f32(x))
            .collect();
        assert_eq!(vals, vec![1.0, 3.0, 2.0, 4.0]);
        // B = 2x2 row-major identity.
        let b = vec![1.0f32, 0.0, 0.0, 1.0];
        let packed = pack_b_bf16(&b, 2, 2, 2);
        let vals: Vec<f32> = packed
            .iter()
            .map(|&x| sme_machine::exec::fp::bf16_to_f32(x))
            .collect();
        assert_eq!(vals, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn widening_kernels_validate() {
        for (m, n, k) in [(32, 32, 2), (32, 32, 16), (64, 32, 8), (64, 64, 24)] {
            let cfg = WideningGemmConfig::new(m, n, k).unwrap();
            let kernel = generate_widening(&cfg).expect("generation");
            let err = kernel.validate(5);
            assert!(err < 1e-2, "({m},{n},{k}): {err}");
        }
    }

    #[test]
    fn widening_kernel_contains_bfmopa() {
        use sme_isa::inst::Inst;
        let cfg = WideningGemmConfig::new(32, 32, 8).unwrap();
        let kernel = generate_widening(&cfg).unwrap();
        let bfmopas = kernel
            .program()
            .count_matching(|i| matches!(i, Inst::Sme(SmeInst::FmopaWide { .. })));
        assert_eq!(bfmopas, 4);
        assert!(kernel.disassembly().contains("bfmopa"));
    }

    #[test]
    fn widening_throughput_matches_the_fp32_centric_conclusion() {
        // On M4, BFMOPA has the same FLOP rate as the FP32 FMOPA, so the
        // BF16 kernel should land in the same throughput region as the FP32
        // kernel (no 2x gain — the paper's "FP32-centric" conclusion), while
        // halving the streamed operand bytes.
        let cfg = WideningGemmConfig::new(128, 128, 256).unwrap();
        let kernel = generate_widening(&cfg).unwrap();
        let bf16 = kernel.model_gflops();
        let fp32 = crate::generate(&GemmConfig::abt(128, 128, 256))
            .unwrap()
            .model_gflops();
        assert!(bf16 > 0.85 * fp32, "bf16 {bf16} vs fp32 {fp32}");
        assert!(bf16 < 1.3 * fp32, "bf16 {bf16} vs fp32 {fp32}");
    }
}
