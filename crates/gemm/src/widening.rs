//! Reduced-precision (BF16 → FP32) GEMM kernels — the paper's §V outlook.
//!
//! The paper notes that higher reduced-precision throughput "could further
//! accelerate CPU-native machine learning inference"; on M4 the widening
//! BFMOPA has the *same* FLOP rate as the FP32 FMOPA (Table I), so a BF16
//! kernel mainly halves operand memory traffic. This module implements that
//! kernel generation path as a first-class datatype of the stack:
//!
//! * operands are **pre-packed** into the 2-way interleaved layout the
//!   widening outer product consumes (`pack_a_bf16` / `pack_b_bf16`), the
//!   same approach production libraries use for VNNI/BF16 kernels (the Neon
//!   `BFMMLA` baseline consumes its own 4-deep packing,
//!   [`pack_a_bf16_mmla`] / [`pack_b_bf16_mmla`]);
//! * the generated SME kernel accumulates FP32 blocks in the four ZA tiles,
//!   consuming **two contraction steps per BFMOPA**, with the same
//!   register-blocking, ZA-transfer and unroll candidate space as the FP32
//!   generator ([`enumerate_widening_candidates`]), including the
//!   heterogeneous edge-bearing plans;
//! * remainder rows/columns off the 32×32 accumulator grid are handled with
//!   **`whilelt`-predicated partial tiles**, exactly like the FP32
//!   microkernel: F32 lane predicates gate the outer products and the
//!   FP32 C transfers, while halfword predicates/counters mask the packed
//!   BF16 operand loads (two packed elements per row/column pair), whose
//!   zeroing predication keeps the masked BFMOPA lanes garbage-free. The
//!   SME path is therefore **total over the envelope grid**
//!   ([`sme_widening_supports`]), and the SME/Neon `BFMMLA` split —
//!   [`crate::neon::generate_neon_widening`] covers the same grid — is a
//!   pure performance decision made by the `sme-router`.

use crate::blocking::{BlockInstance, PlanCandidate, PlanKind, RegisterBlocking};
use crate::config::{Backend, GemmConfig, GemmError, KernelSchedule, ZaTransferStrategy};
use crate::loads::{emit_c_transfer, TransferDir};
use crate::microkernel::{
    a_counter, col_pred, emit_counter_predicate, emit_lane_predicate, load_vectors, row_pred,
    wa_counter, wa_pred, wb_counter, wb_pred, xr, zr, ARG_A, ARG_B, ARG_C, A_PTR, BK_STRIDE, B_PTR,
    C_PTR, K_CNT, LDA_B, LDC_B, TMP0, ZA_A, ZB_B,
};
use crate::reference::{fill_matrix, max_rel_diff};
use serde::{Deserialize, Serialize};
use sme_isa::asm::Assembler;
use sme_isa::inst::{ScalarInst, SmeInst, SveInst};
use sme_isa::types::ElementType;
use sme_isa::Program;
use sme_machine::exec::{RunOptions, Simulator};
use sme_machine::ExecStats;

/// Relative-error bound the widening validation paths assert against.
///
/// The SME kernel accumulates each C element in contraction order with
/// unfused FP32 multiply-adds — bit-identical to the scalar BF16-rounded
/// oracle — but the Neon `BFMMLA` sums four products per instruction before
/// folding them into the accumulator, so its rounding differs from the
/// sequential oracle by at most a few ULP per contraction step. The bound
/// leaves an order of magnitude of headroom over the worst reassociation
/// error at the supported depths.
pub const WIDENING_REL_TOL: f32 = 1e-2;

/// Absolute floor below which differences are ignored by
/// [`widening_rel_error`] (accumulated values are O(1) by construction of
/// the test operands).
const WIDENING_REL_FLOOR: f32 = 1e-5;

/// The relative-error metric both widening backends validate with (see
/// [`WIDENING_REL_TOL`]).
pub fn widening_rel_error(out: &[f32], reference: &[f32]) -> f32 {
    max_rel_diff(out, reference, WIDENING_REL_FLOOR)
}

/// Configuration of a BF16 → FP32 small GEMM (`C += A · Bᵀ` semantics with
/// pre-packed BF16 operands and an FP32, column-major C).
///
/// The constructor enforces the **envelope** grid both widening generators
/// share: `m % 8 == 0`, `n % 2 == 0` (the Neon `BFMMLA` baseline's blocking)
/// and an even `k` (the 2-way interleaved packing). Both engines cover the
/// whole envelope — the SME generator masks remainder tiles off its 32×32
/// accumulator grid with predicates ([`sme_widening_supports`]) — so which
/// engine serves a shape is purely a routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WideningGemmConfig {
    /// Rows of C (multiple of 8).
    pub m: usize,
    /// Columns of C (multiple of 2).
    pub n: usize,
    /// Contraction dimension (even).
    pub k: usize,
    /// How C blocks are moved in and out of the ZA array (SME only).
    pub c_transfer: ZaTransferStrategy,
    /// Unroll factor of the contraction-pair loop (1, 2 or 4; SME only).
    pub k_unroll: usize,
}

impl WideningGemmConfig {
    /// Construct and validate a configuration (default tuning knobs).
    pub fn new(m: usize, n: usize, k: usize) -> Result<Self, GemmError> {
        let cfg = WideningGemmConfig {
            m,
            n,
            k,
            c_transfer: ZaTransferStrategy::TwoStep,
            k_unroll: 1,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Validate the configuration (the type is `Copy`, so fields may have
    /// been rewritten after construction).
    pub fn validate(&self) -> Result<(), GemmError> {
        const MAX_DIM: usize = 1 << 20;
        for (name, v) in [("m", self.m), ("n", self.n), ("k", self.k)] {
            if v == 0 || v > MAX_DIM {
                return Err(GemmError::InvalidDimension(format!(
                    "{name} = {v} must be in 1..={MAX_DIM}"
                )));
            }
        }
        if !self.m.is_multiple_of(8) || !self.n.is_multiple_of(2) {
            return Err(GemmError::Unsupported(format!(
                "widening kernels require m % 8 == 0 and n % 2 == 0 (got {}x{})",
                self.m, self.n
            )));
        }
        if !self.k.is_multiple_of(2) {
            return Err(GemmError::Unsupported(
                "widening kernels require an even k (2-way interleaved packing)".into(),
            ));
        }
        if !matches!(self.k_unroll, 1 | 2 | 4) {
            return Err(GemmError::Unsupported(format!(
                "k_unroll = {} (supported: 1, 2, 4)",
                self.k_unroll
            )));
        }
        Ok(())
    }

    /// Builder: set the ZA transfer strategy for C blocks (SME only).
    pub fn with_c_transfer(mut self, strategy: ZaTransferStrategy) -> Self {
        self.c_transfer = strategy;
        self
    }

    /// Builder: set the contraction-pair unroll factor (SME only).
    pub fn with_k_unroll(mut self, unroll: usize) -> Self {
        self.k_unroll = unroll;
        self
    }

    /// Floating-point operations per kernel execution.
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Packed-A buffer length in BF16 elements (2-way interleaved layout).
    pub fn packed_a_len(&self) -> usize {
        packed_interleaved_len(self.m, self.k)
    }

    /// Packed-B buffer length in BF16 elements (2-way interleaved layout).
    pub fn packed_b_len(&self) -> usize {
        packed_interleaved_len(self.n, self.k)
    }

    /// Packed-A buffer length in BF16 elements (`BFMMLA` layout).
    pub fn packed_a_mmla_len(&self) -> usize {
        packed_mmla_len(self.m, self.k)
    }

    /// Packed-B buffer length in BF16 elements (`BFMMLA` layout).
    pub fn packed_b_mmla_len(&self) -> usize {
        packed_mmla_len(self.n, self.k)
    }

    /// Number of `f32` elements the C buffer holds (tight, column-major).
    pub fn c_len(&self) -> usize {
        self.m * self.n
    }
}

impl std::fmt::Display for WideningGemmConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "C += A*B^T (BF16 widening) m={} n={} k={}",
            self.m, self.n, self.k
        )
    }
}

/// Check whether the SME widening generator supports `cfg`.
///
/// Since the predicated edge-tile path, this is **total over the envelope
/// grid** [`WideningGemmConfig::validate`] enforces: shapes off the 32×32
/// accumulator grid are covered by `whilelt`-masked partial tiles (the FP32
/// microkernel's machinery, reused for the interleaved BF16 packed layout),
/// so `m % 32` / `n % 32` remainders no longer reject a shape. The function
/// is kept as the explicit support predicate the `sme-router`, cache and
/// plan store consult — the symmetric twin of
/// [`crate::neon::neon_widening_supports`] — so a future narrowing shows up
/// in exactly one place.
pub fn sme_widening_supports(cfg: &WideningGemmConfig) -> Result<(), GemmError> {
    cfg.validate()
}

/// Length in BF16 elements of the 2-way interleaved packed layout for an
/// `extent × k` operand (odd `k` is padded to the next contraction pair).
pub fn packed_interleaved_len(extent: usize, k: usize) -> usize {
    extent * k.next_multiple_of(2)
}

/// Length in BF16 elements of the `BFMMLA` packed layout for an
/// `extent × k` operand (`extent` must be even; `k` is padded to the next
/// multiple of 4).
pub fn packed_mmla_len(extent: usize, k: usize) -> usize {
    assert!(
        extent.is_multiple_of(2),
        "mmla packing requires even extent"
    );
    (extent / 2) * k.div_ceil(4) * 8
}

/// Round an `f32` slice to BF16 precision (returns the raw BF16 bits).
fn to_bf16_bits(values: &[f32]) -> Vec<u16> {
    values
        .iter()
        .map(|v| sme_machine::exec::fp::f32_to_bf16(*v))
        .collect()
}

/// Pack a column-major `m × k` FP32 A into the 2-way interleaved BF16
/// layout consumed by the widening BFMOPA kernel: element `(r, kk)` lands
/// at `packed[(kk / 2) * 2 * m + r * 2 + (kk % 2)]`. An odd `k` is padded
/// with zeros to the next contraction pair.
pub fn pack_a_bf16(a: &[f32], m: usize, lda: usize, k: usize) -> Vec<u16> {
    let mut packed = vec![0u16; packed_interleaved_len(m, k)];
    for kk in 0..k {
        for r in 0..m {
            let v = sme_machine::exec::fp::f32_to_bf16(a[kk * lda + r]);
            packed[(kk / 2) * 2 * m + r * 2 + (kk % 2)] = v;
        }
    }
    packed
}

/// Pack a row-major `k × n` FP32 B (the `Bᵀ` operand) into the 2-way
/// interleaved BF16 layout: element `(kk, c)` lands at
/// `packed[(kk / 2) * 2 * n + c * 2 + (kk % 2)]`. An odd `k` is padded with
/// zeros to the next contraction pair.
pub fn pack_b_bf16(b: &[f32], k: usize, ldb: usize, n: usize) -> Vec<u16> {
    let mut packed = vec![0u16; packed_interleaved_len(n, k)];
    for kk in 0..k {
        for c in 0..n {
            let v = sme_machine::exec::fp::f32_to_bf16(b[kk * ldb + c]);
            packed[(kk / 2) * 2 * n + c * 2 + (kk % 2)] = v;
        }
    }
    packed
}

/// Pack a column-major `m × k` FP32 A into the `BFMMLA` layout the Neon
/// widening baseline consumes: element `(r, kk)` lands at
/// `packed[((kk / 4) * (m / 2) + r / 2) * 8 + (r % 2) * 4 + (kk % 4)]`,
/// i.e. one 128-bit register holds a row pair × one contraction quad. `k`
/// is padded with zeros to the next multiple of 4 (zero products contribute
/// nothing to the FP32 accumulation).
pub fn pack_a_bf16_mmla(a: &[f32], m: usize, lda: usize, k: usize) -> Vec<u16> {
    let mut packed = vec![0u16; packed_mmla_len(m, k)];
    for kk in 0..k {
        for r in 0..m {
            let v = sme_machine::exec::fp::f32_to_bf16(a[kk * lda + r]);
            packed[((kk / 4) * (m / 2) + r / 2) * 8 + (r % 2) * 4 + (kk % 4)] = v;
        }
    }
    packed
}

/// Pack a row-major `k × n` FP32 B into the `BFMMLA` layout: element
/// `(kk, c)` lands at
/// `packed[((kk / 4) * (n / 2) + c / 2) * 8 + (c % 2) * 4 + (kk % 4)]` (one
/// register holds a column pair × one contraction quad, zero-padded like A).
pub fn pack_b_bf16_mmla(b: &[f32], k: usize, ldb: usize, n: usize) -> Vec<u16> {
    let mut packed = vec![0u16; packed_mmla_len(n, k)];
    for kk in 0..k {
        for c in 0..n {
            let v = sme_machine::exec::fp::f32_to_bf16(b[kk * ldb + c]);
            packed[((kk / 4) * (n / 2) + c / 2) * 8 + (c % 2) * 4 + (kk % 4)] = v;
        }
    }
    packed
}

/// The scalar oracle both widening backends are validated against: round A
/// and B to BF16 (the precision the packed operands carry), then accumulate
/// in FP32 **sequentially in contraction order** — `c` is updated in place.
///
/// `a` is column-major `m × k` (tight), `b` row-major `k × n` (tight), `c`
/// column-major `m × n` (tight).
pub fn widening_reference(cfg: &WideningGemmConfig, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= cfg.m * cfg.k, "A buffer too small");
    assert!(b.len() >= cfg.k * cfg.n, "B buffer too small");
    assert!(c.len() >= cfg.c_len(), "C buffer too small");
    let a_r: Vec<f32> = to_bf16_bits(a)
        .iter()
        .map(|&x| sme_machine::exec::fp::bf16_to_f32(x))
        .collect();
    let b_r: Vec<f32> = to_bf16_bits(b)
        .iter()
        .map(|&x| sme_machine::exec::fp::bf16_to_f32(x))
        .collect();
    for col in 0..cfg.n {
        for row in 0..cfg.m {
            let mut acc = c[col * cfg.m + row];
            for kk in 0..cfg.k {
                acc += a_r[kk * cfg.m + row] * b_r[kk * cfg.n + col];
            }
            c[col * cfg.m + row] = acc;
        }
    }
}

/// Which packed operand layout a widening kernel consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WideningPackLayout {
    /// The 2-way interleaved BFMOPA layout ([`pack_a_bf16`]).
    Interleaved,
    /// The 4-deep `BFMMLA` layout ([`pack_a_bf16_mmla`]).
    Mmla,
}

/// Allocate (and optionally fill) one widening operand triple in the
/// simulator's memory: packed BF16 A and B in `layout`, FP32 C.
///
/// With a seed, the underlying FP32 operands follow the same scheme as the
/// FP32 kernels' [`crate::kernel::GemmBuffers`] seeding (`seed`,
/// `seed ^ 0x1111_1111`, `seed ^ 0x2222_2222`), so a test oracle can
/// reproduce them with [`crate::reference::fill_matrix`] and
/// [`widening_reference`].
pub(crate) fn allocate_widening_buffers(
    cfg: &WideningGemmConfig,
    sim: &mut Simulator,
    seed: Option<u64>,
    layout: WideningPackLayout,
) -> crate::kernel::GemmBuffers {
    let align = 128;
    let (a_len, b_len) = match layout {
        WideningPackLayout::Interleaved => (cfg.packed_a_len(), cfg.packed_b_len()),
        WideningPackLayout::Mmla => (cfg.packed_a_mmla_len(), cfg.packed_b_mmla_len()),
    };
    match seed {
        Some(s) => {
            let mut a = vec![0.0f32; cfg.m * cfg.k];
            let mut b = vec![0.0f32; cfg.k * cfg.n];
            let mut c = vec![0.0f32; cfg.c_len()];
            fill_matrix(s, &mut a);
            fill_matrix(s ^ 0x1111_1111, &mut b);
            fill_matrix(s ^ 0x2222_2222, &mut c);
            let (packed_a, packed_b) = match layout {
                WideningPackLayout::Interleaved => (
                    pack_a_bf16(&a, cfg.m, cfg.m, cfg.k),
                    pack_b_bf16(&b, cfg.k, cfg.n, cfg.n),
                ),
                WideningPackLayout::Mmla => (
                    pack_a_bf16_mmla(&a, cfg.m, cfg.m, cfg.k),
                    pack_b_bf16_mmla(&b, cfg.k, cfg.n, cfg.n),
                ),
            };
            let a_addr = sim.mem.alloc(a_len as u64 * 2, align);
            let b_addr = sim.mem.alloc(b_len as u64 * 2, align);
            write_u16_slice(sim, a_addr, &packed_a);
            write_u16_slice(sim, b_addr, &packed_b);
            crate::kernel::GemmBuffers {
                a: a_addr,
                b: b_addr,
                c: sim.mem.alloc_f32(&c, align),
            }
        }
        None => crate::kernel::GemmBuffers {
            a: sim.mem.alloc(a_len as u64 * 2, align),
            b: sim.mem.alloc(b_len as u64 * 2, align),
            c: sim.mem.alloc_f32_zeroed(cfg.c_len(), align),
        },
    }
}

/// Execute `program` functionally on seeded packed operands and return the
/// maximum relative error against the scalar BF16-rounded oracle.
pub(crate) fn validate_widening_program(
    cfg: &WideningGemmConfig,
    program: &Program,
    seed: u64,
    layout: WideningPackLayout,
) -> f32 {
    let mut sim = Simulator::m4_performance();
    let bufs = allocate_widening_buffers(cfg, &mut sim, Some(seed), layout);
    sim.run(
        program,
        &[bufs.a, bufs.b, bufs.c],
        &RunOptions::functional_only(),
    );
    let c_out = sim.mem.read_f32_slice(bufs.c, cfg.c_len());

    let mut a = vec![0.0f32; cfg.m * cfg.k];
    let mut b = vec![0.0f32; cfg.k * cfg.n];
    let mut c_ref = vec![0.0f32; cfg.c_len()];
    fill_matrix(seed, &mut a);
    fill_matrix(seed ^ 0x1111_1111, &mut b);
    fill_matrix(seed ^ 0x2222_2222, &mut c_ref);
    widening_reference(cfg, &a, &b, &mut c_ref);
    widening_rel_error(&c_out, &c_ref)
}

/// Timing-only run of `program` on untouched packed operands.
pub(crate) fn model_widening_program_stats(
    cfg: &WideningGemmConfig,
    program: &Program,
    layout: WideningPackLayout,
) -> ExecStats {
    let mut sim = Simulator::m4_performance();
    let bufs = allocate_widening_buffers(cfg, &mut sim, None, layout);
    let result = sim.run(
        program,
        &[bufs.a, bufs.b, bufs.c],
        &RunOptions::timing_only(),
    );
    result.stats
}

/// Materialise the packed BF16 A/B operand images for `seed` in the given
/// pack layout (the packing step of [`allocate_widening_buffers`], without
/// a simulator).
pub(crate) fn pack_widening_images(
    cfg: &WideningGemmConfig,
    seed: u64,
    layout: WideningPackLayout,
) -> crate::kernel::OperandImages {
    let mut a = vec![0.0f32; cfg.m * cfg.k];
    let mut b = vec![0.0f32; cfg.k * cfg.n];
    fill_matrix(seed, &mut a);
    fill_matrix(seed ^ 0x1111_1111, &mut b);
    let (packed_a, packed_b) = match layout {
        WideningPackLayout::Interleaved => (
            pack_a_bf16(&a, cfg.m, cfg.m, cfg.k),
            pack_b_bf16(&b, cfg.k, cfg.n, cfg.n),
        ),
        WideningPackLayout::Mmla => (
            pack_a_bf16_mmla(&a, cfg.m, cfg.m, cfg.k),
            pack_b_bf16_mmla(&b, cfg.k, cfg.n, cfg.n),
        ),
    };
    crate::kernel::OperandImages {
        a: u16_le_bytes(&packed_a),
        b: u16_le_bytes(&packed_b),
    }
}

/// Allocate widening operand buffers from pre-packed A/B images, seeding a
/// fresh FP32 C. Bit-identical to the seeded arm of
/// [`allocate_widening_buffers`] when `images` came from
/// [`pack_widening_images`] with the same seed and layout.
pub(crate) fn allocate_widening_buffers_from_images(
    cfg: &WideningGemmConfig,
    sim: &mut Simulator,
    seed: u64,
    images: &crate::kernel::OperandImages,
) -> crate::kernel::GemmBuffers {
    let align = 128;
    let a = sim.mem.alloc(images.a.len() as u64, align);
    sim.mem.write_bytes(a, &images.a);
    let b = sim.mem.alloc(images.b.len() as u64, align);
    sim.mem.write_bytes(b, &images.b);
    let mut c = vec![0.0f32; cfg.c_len()];
    fill_matrix(seed ^ 0x2222_2222, &mut c);
    crate::kernel::GemmBuffers {
        a,
        b,
        c: sim.mem.alloc_f32(&c, align),
    }
}

/// Little-endian byte image of a `u16` slice.
fn u16_le_bytes(data: &[u16]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(data.len() * 2);
    for v in data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

fn write_u16_slice(sim: &mut Simulator, addr: u64, data: &[u16]) {
    let mut bytes = Vec::with_capacity(data.len() * 2);
    for v in data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    sim.mem.write_bytes(addr, &bytes);
}

/// A generated SME BF16 → FP32 kernel.
#[derive(Debug, Clone)]
pub struct WideningKernel {
    cfg: WideningGemmConfig,
    candidate: PlanCandidate,
    program: Program,
}

impl WideningKernel {
    /// The configuration (with the candidate's knobs applied).
    pub fn config(&self) -> &WideningGemmConfig {
        &self.cfg
    }

    /// The tuning candidate the kernel was generated from.
    pub fn candidate(&self) -> &PlanCandidate {
        &self.candidate
    }

    /// The generated instruction stream.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Assembly listing.
    pub fn disassembly(&self) -> String {
        sme_isa::disasm::disassemble_program(&self.program)
    }

    /// Floating-point operations per kernel execution.
    pub fn flops(&self) -> u64 {
        self.cfg.flops()
    }

    /// Execute functionally on pre-packed operands already placed in the
    /// simulator's memory.
    pub fn run(&self, sim: &mut Simulator, a: u64, b: u64, c: u64, opts: &RunOptions) {
        sim.run(&self.program, &[a, b, c], opts);
    }

    /// Validate against the scalar BF16-rounded oracle
    /// ([`widening_reference`]); returns the maximum **relative** error
    /// (assert it below [`WIDENING_REL_TOL`]).
    pub fn validate(&self, seed: u64) -> f32 {
        validate_widening_program(
            &self.cfg,
            &self.program,
            seed,
            WideningPackLayout::Interleaved,
        )
    }

    /// Timing-only execution statistics on one performance core.
    pub fn model_stats(&self) -> ExecStats {
        model_widening_program_stats(&self.cfg, &self.program, WideningPackLayout::Interleaved)
    }

    /// Modelled throughput (GFLOPS) on one performance core.
    pub fn model_gflops(&self) -> f64 {
        let seconds = self.model_stats().seconds();
        if seconds == 0.0 {
            0.0
        } else {
            self.cfg.flops() as f64 / seconds / 1e9
        }
    }
}

/// The candidate the widening generators use with no tuning: the SME
/// backend with the 32×32 homogeneous plan (edge tiles masked), the
/// baseline an argmin over [`enumerate_widening_candidates`] can never lose
/// to.
pub fn default_widening_candidate(cfg: &WideningGemmConfig) -> PlanCandidate {
    PlanCandidate {
        backend: Backend::Sme,
        kind: PlanKind::Homogeneous(RegisterBlocking::B32x32),
        c_transfer: cfg.c_transfer,
        k_unroll: cfg.k_unroll,
        schedule: KernelSchedule::Serial,
    }
}

/// Enumerate the tuning candidates for a widening configuration, mirroring
/// the FP32 row-major space ([`crate::enumerate_candidates`]):
///
/// * the heterogeneous plan and all three homogeneous register blockings —
///   the predicated edge-tile path masks remainder rows/columns, so
///   edge-bearing blockings are real candidates on every envelope shape
///   (a 40×40 output, say, genuinely chooses between one masked-edge
///   heterogeneous cover and four masked 32×32 blocks);
/// * both [`ZaTransferStrategy`] variants;
/// * contraction-**pair** unroll factors from {1, 2, 4} that divide `k / 2`
///   (non-dividing factors fall back to unroll 1 in the generator and would
///   only duplicate candidates), never dropping the configuration's own
///   setting;
/// * the single Neon `BFMMLA` candidate, so the tuner compares across
///   engines.
///
/// The list always contains [`default_widening_candidate`]`(cfg)`.
pub fn enumerate_widening_candidates(cfg: &WideningGemmConfig) -> Vec<PlanCandidate> {
    let mut candidates = Vec::new();
    let kinds = [
        PlanKind::Heterogeneous,
        PlanKind::Homogeneous(RegisterBlocking::B32x32),
        PlanKind::Homogeneous(RegisterBlocking::B16x64),
        PlanKind::Homogeneous(RegisterBlocking::B64x16),
    ];
    let pairs = cfg.k / 2;
    for &kind in &kinds {
        for c_transfer in [ZaTransferStrategy::TwoStep, ZaTransferStrategy::Direct] {
            for k_unroll in [1usize, 2, 4] {
                if !pairs.is_multiple_of(k_unroll) && k_unroll != cfg.k_unroll {
                    continue;
                }
                candidates.push(PlanCandidate {
                    backend: Backend::Sme,
                    kind,
                    c_transfer,
                    k_unroll,
                    schedule: KernelSchedule::Serial,
                });
            }
        }
    }
    candidates.push(PlanCandidate {
        backend: Backend::Neon,
        kind: PlanKind::Homogeneous(RegisterBlocking::B32x32),
        c_transfer: cfg.c_transfer,
        k_unroll: cfg.k_unroll,
        schedule: KernelSchedule::Serial,
    });
    debug_assert!(candidates.contains(&default_widening_candidate(cfg)));
    candidates
}

/// Analytic pre-filter for widening tuning candidates — the BF16 twin of
/// [`crate::prune_dominated_candidates`], using the contraction-**pair**
/// cost of [`crate::analytic_widening_k_pair_cycles`]. The default and Neon
/// candidates always survive.
pub fn prune_dominated_widening_candidates(
    cfg: &WideningGemmConfig,
    candidates: Vec<PlanCandidate>,
) -> Vec<PlanCandidate> {
    let machine = sme_machine::MachineConfig::default();
    crate::blocking::prune_dominated_by(
        cfg.m,
        cfg.n,
        default_widening_candidate(cfg),
        candidates,
        |plan| crate::blocking::analytic_widening_k_pair_cycles(plan, &machine),
    )
}

/// Generate the default SME BF16 → FP32 kernel for `cfg` (the 32×32
/// homogeneous plan with the configuration's own knobs; remainder tiles
/// are masked).
pub fn generate_widening(cfg: &WideningGemmConfig) -> Result<WideningKernel, GemmError> {
    generate_widening_tuned(cfg, &default_widening_candidate(cfg))
}

/// Generate an SME BF16 → FP32 kernel from a tuning candidate — the
/// dispatch path used by the runtime's cache and cross-backend tuner.
///
/// Blocks whose extent exceeds the remaining rows/columns are emitted as
/// **predicated partial tiles**: per-group `whilelt` predicates gate the
/// widening outer products and the FP32 accumulator transfers, and
/// halfword predicates/counters mask the packed BF16 operand loads so
/// nothing is read past the block's rows/columns (zeroing predication keeps
/// the unused lanes garbage-free).
///
/// # Errors
/// Returns an error if the configuration is off the envelope grid, if the
/// candidate targets the Neon backend (use [`crate::generate_any_routed`]),
/// or if the candidate's plan kind is [`PlanKind::ColumnPanels`] (the
/// packed operands have no column-major variant to transpose).
pub fn generate_widening_tuned(
    cfg: &WideningGemmConfig,
    candidate: &PlanCandidate,
) -> Result<WideningKernel, GemmError> {
    if candidate.backend != Backend::Sme {
        return Err(GemmError::Unsupported(format!(
            "generate_widening_tuned emits SME kernels only; a {} candidate must go \
             through generate_any_routed",
            candidate.backend
        )));
    }
    let cfg = WideningGemmConfig {
        c_transfer: candidate.c_transfer,
        k_unroll: candidate.k_unroll,
        ..*cfg
    };
    sme_widening_supports(&cfg)?;
    if !matches!(
        candidate.kind,
        PlanKind::Homogeneous(_) | PlanKind::Heterogeneous
    ) {
        return Err(GemmError::Unsupported(format!(
            "plan kind `{}` is not supported by the widening generator \
             (the packed operands have no column-major panels)",
            candidate.kind.name()
        )));
    }

    let mut asm = Assembler::new(format!("sme_gemm_bf16_{}x{}x{}", cfg.m, cfg.n, cfg.k));

    // Prologue: streaming mode and strides (predicates are per block).
    asm.push(SmeInst::Smstart { za_only: false });
    // Per contraction *pair*, A advances by 2*m BF16 elements and B by 2*n.
    asm.mov_imm64(xr(LDA_B), (2 * cfg.m * 2) as u64);
    asm.mov_imm64(xr(BK_STRIDE), (2 * cfg.n * 2) as u64);
    asm.mov_imm64(xr(LDC_B), (cfg.m * 4) as u64);

    // The C handling reuses the FP32 machinery (C is FP32 either way).
    let c_cfg = GemmConfig::abt(cfg.m, cfg.n, cfg.k).with_c_transfer(cfg.c_transfer);

    let plan = candidate.kind.build(cfg.m, cfg.n);
    let pairs = cfg.k / 2;
    let unroll = if cfg.k_unroll > 1 && pairs.is_multiple_of(cfg.k_unroll) {
        cfg.k_unroll
    } else {
        1
    };
    for block in &plan.blocks {
        emit_widening_block_predicates(&mut asm, block);

        // Pointers into the packed operands and C.
        asm.push(ScalarInst::MovReg {
            rd: xr(A_PTR),
            rn: xr(ARG_A),
        });
        if block.row0 > 0 {
            asm.add_imm(xr(A_PTR), xr(A_PTR), (block.row0 * 2 * 2) as u64);
        }
        asm.push(ScalarInst::MovReg {
            rd: xr(B_PTR),
            rn: xr(ARG_B),
        });
        if block.col0 > 0 {
            asm.add_imm(xr(B_PTR), xr(B_PTR), (block.col0 * 2 * 2) as u64);
        }
        asm.push(ScalarInst::MovReg {
            rd: xr(C_PTR),
            rn: xr(ARG_C),
        });
        let c_off = c_cfg.c_offset(block.row0, block.col0) as u64;
        if c_off > 0 {
            if c_off < (1 << 24) {
                asm.add_imm(xr(C_PTR), xr(C_PTR), c_off);
            } else {
                asm.mov_imm64(xr(TMP0), c_off);
                asm.push(ScalarInst::AddReg {
                    rd: xr(C_PTR),
                    rn: xr(C_PTR),
                    rm: xr(TMP0),
                    shift: None,
                });
            }
        }

        // Load the FP32 accumulator block.
        emit_c_transfer(&mut asm, &c_cfg, block, TransferDir::Load);

        // Contraction loop over k *pairs*.
        asm.mov_imm64(xr(K_CNT), (pairs / unroll) as u64);
        let top = asm.new_label();
        asm.bind(top);
        asm.push(ScalarInst::SubImm {
            rd: xr(K_CNT),
            rn: xr(K_CNT),
            imm12: 1,
            shift12: false,
        });
        for _ in 0..unroll {
            emit_widening_k_pair(&mut asm, block);
        }
        asm.cbnz(xr(K_CNT), top);

        // Store the FP32 accumulator block.
        emit_c_transfer(&mut asm, &c_cfg, block, TransferDir::Store);
    }

    asm.push(SmeInst::Smstop { za_only: false });
    asm.ret();
    Ok(WideningKernel {
        cfg,
        candidate: *candidate,
        program: asm.finish(),
    })
}

/// Emit the predicate setup for one widening block.
///
/// Two predicate families cover the two element widths in play:
///
/// * **F32 lane predicates** (`row_pred`/`col_pred`, plus the `a_counter`
///   governing multi-vector C transfers) mask the FP32 side — the widening
///   FMOPA's tile rows/columns and the accumulator loads/stores — exactly
///   as in the FP32 microkernel ([`crate::microkernel`]);
/// * **halfword predicates/counters** (`wa_*`/`wb_*`) mask the packed BF16
///   operand loads: the 2-way interleaved layout stores two BF16 elements
///   per row (resp. column), so the first `2 × rows` halfword lanes are
///   exactly the block's rows and zeroing predication fills the rest with
///   zeros, which contribute nothing to the masked outer products.
fn emit_widening_block_predicates(asm: &mut Assembler, block: &BlockInstance) {
    use crate::blocking::TILE;
    let rows = block.rows;
    let cols = block.cols;
    let rg_count = block.active_row_groups();
    let cg_count = block.active_col_groups();
    for rg in 0..rg_count {
        let lanes = TILE.min(rows - rg * TILE);
        emit_lane_predicate(asm, row_pred(rg), lanes, ElementType::F32);
    }
    for cg in 0..cg_count {
        let lanes = TILE.min(cols - cg * TILE);
        emit_lane_predicate(asm, col_pred(cg), lanes, ElementType::F32);
    }
    // The C transfer moves `rows` FP32 elements per column.
    if load_vectors(rg_count) > 1 {
        emit_counter_predicate(
            asm,
            a_counter(),
            rows,
            load_vectors(rg_count),
            ElementType::F32,
        );
    }
    // The operand loads move `2 × rows` / `2 × cols` packed BF16 elements
    // per contraction pair.
    if load_vectors(rg_count) > 1 {
        emit_counter_predicate(
            asm,
            wa_counter(),
            2 * rows,
            load_vectors(rg_count),
            ElementType::F16,
        );
    } else {
        emit_lane_predicate(asm, wa_pred(), 2 * rows, ElementType::F16);
    }
    if load_vectors(cg_count) > 1 {
        emit_counter_predicate(
            asm,
            wb_counter(),
            2 * cols,
            load_vectors(cg_count),
            ElementType::F16,
        );
    } else {
        emit_lane_predicate(asm, wb_pred(), 2 * cols, ElementType::F16);
    }
}

/// One contraction pair: masked packed operand loads (one 32-BF16 vector
/// per 16-row/-column group), cursor bumps, one predicated widening BFMOPA
/// per active tile.
fn emit_widening_k_pair(asm: &mut Assembler, block: &BlockInstance) {
    let rg_count = block.active_row_groups();
    let cg_count = block.active_col_groups();
    if load_vectors(rg_count) == 1 {
        asm.push(SveInst::Ld1 {
            zt: zr(ZA_A),
            elem: ElementType::F16,
            pg: wa_pred(),
            rn: xr(A_PTR),
            imm_vl: 0,
        });
    } else {
        asm.push(SveInst::Ld1Multi {
            zt: zr(ZA_A),
            count: load_vectors(rg_count) as u8,
            elem: ElementType::F16,
            pn: wa_counter(),
            rn: xr(A_PTR),
            imm_vl: 0,
        });
    }
    if load_vectors(cg_count) == 1 {
        asm.push(SveInst::Ld1 {
            zt: zr(ZB_B),
            elem: ElementType::F16,
            pg: wb_pred(),
            rn: xr(B_PTR),
            imm_vl: 0,
        });
    } else {
        asm.push(SveInst::Ld1Multi {
            zt: zr(ZB_B),
            count: load_vectors(cg_count) as u8,
            elem: ElementType::F16,
            pn: wb_counter(),
            rn: xr(B_PTR),
            imm_vl: 0,
        });
    }
    asm.push(ScalarInst::AddReg {
        rd: xr(A_PTR),
        rn: xr(A_PTR),
        rm: xr(LDA_B),
        shift: None,
    });
    asm.push(ScalarInst::AddReg {
        rd: xr(B_PTR),
        rn: xr(B_PTR),
        rm: xr(BK_STRIDE),
        shift: None,
    });
    for cg in 0..cg_count {
        for rg in 0..rg_count {
            asm.push(SmeInst::FmopaWide {
                tile: block.blocking.tile_index(rg, cg),
                from: ElementType::BF16,
                pn: col_pred(cg),
                pm: row_pred(rg),
                zn: zr(ZB_B + cg as u8),
                zm: zr(ZA_A + rg as u8),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(WideningGemmConfig::new(32, 32, 2).is_ok());
        assert!(WideningGemmConfig::new(16, 4, 8).is_ok(), "Neon 8x2 grid");
        assert!(WideningGemmConfig::new(8, 2, 2).is_ok());
        assert!(WideningGemmConfig::new(31, 32, 2).is_err(), "m % 8 != 0");
        assert!(WideningGemmConfig::new(32, 3, 2).is_err(), "n % 2 != 0");
        assert!(WideningGemmConfig::new(32, 32, 3).is_err(), "odd k");
        assert!(WideningGemmConfig::new(0, 32, 2).is_err());
        let c = WideningGemmConfig::new(64, 32, 10).unwrap();
        assert_eq!(c.flops(), 2 * 64 * 32 * 10);
        assert_eq!(c.packed_a_len(), 640);
        assert_eq!(c.packed_b_len(), 320);
        assert_eq!(c.packed_a_mmla_len(), 64 / 2 * 3 * 8);
        assert!(c.with_k_unroll(3).validate().is_err());
    }

    #[test]
    fn sme_support_is_total_over_the_envelope_grid() {
        // The predicated edge-tile path makes the SME widening generator
        // cover exactly the envelope grid the config enforces — the same
        // coverage as the Neon BFMMLA baseline.
        for (m, n, k) in [(32, 32, 4), (16, 4, 4), (40, 32, 4), (8, 2, 2), (40, 6, 14)] {
            let cfg = WideningGemmConfig::new(m, n, k).unwrap();
            assert!(sme_widening_supports(&cfg).is_ok(), "({m},{n},{k})");
            assert!(crate::neon::neon_widening_supports(&cfg).is_ok());
        }
        // Off the envelope grid, neither engine (nor the config) accepts.
        assert!(WideningGemmConfig::new(12, 4, 8).is_err());
    }

    #[test]
    fn packing_layout() {
        // A = 2x2 column-major: [[1,3],[2,4]] (a[0]=1, a[1]=2 first column).
        let a = vec![1.0f32, 2.0, 3.0, 4.0];
        let packed = pack_a_bf16(&a, 2, 2, 2);
        // packed[(kk/2)*2m + r*2 + kk%2]: (r=0,k=0)->0, (r=0,k=1)->1,
        // (r=1,k=0)->2, (r=1,k=1)->3.
        let vals: Vec<f32> = packed
            .iter()
            .map(|&x| sme_machine::exec::fp::bf16_to_f32(x))
            .collect();
        assert_eq!(vals, vec![1.0, 3.0, 2.0, 4.0]);
        // B = 2x2 row-major identity.
        let b = vec![1.0f32, 0.0, 0.0, 1.0];
        let packed = pack_b_bf16(&b, 2, 2, 2);
        let vals: Vec<f32> = packed
            .iter()
            .map(|&x| sme_machine::exec::fp::bf16_to_f32(x))
            .collect();
        assert_eq!(vals, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn mmla_packing_layout_and_padding() {
        // A = 2x2 column-major: one row pair, one (padded) quad.
        let a = vec![1.0f32, 2.0, 3.0, 4.0];
        let packed = pack_a_bf16_mmla(&a, 2, 2, 2);
        assert_eq!(packed.len(), 8, "one register, k padded 2 -> 4");
        let vals: Vec<f32> = packed
            .iter()
            .map(|&x| sme_machine::exec::fp::bf16_to_f32(x))
            .collect();
        // Row 0 of the register: A[0, 0..2] then zero padding; row 1: A[1, ..].
        assert_eq!(vals, vec![1.0, 3.0, 0.0, 0.0, 2.0, 4.0, 0.0, 0.0]);
        let b = vec![1.0f32, 0.0, 0.0, 1.0];
        let packed = pack_b_bf16_mmla(&b, 2, 2, 2);
        let vals: Vec<f32> = packed
            .iter()
            .map(|&x| sme_machine::exec::fp::bf16_to_f32(x))
            .collect();
        assert_eq!(vals, vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn widening_kernels_validate() {
        for (m, n, k) in [(32, 32, 2), (32, 32, 16), (64, 32, 8), (64, 64, 24)] {
            let cfg = WideningGemmConfig::new(m, n, k).unwrap();
            let kernel = generate_widening(&cfg).expect("generation");
            let err = kernel.validate(5);
            assert!(err < WIDENING_REL_TOL, "({m},{n},{k}): {err}");
        }
    }

    #[test]
    fn masked_edge_kernels_are_bit_identical_to_the_oracle() {
        // Off-grid shapes exercise every masking combination: partial row
        // groups, partial column groups, single- and multi-vector operand
        // loads, and the 8x2 envelope minimum. The masked BFMOPA still
        // accumulates each active element in contraction order with unfused
        // multiply-adds, so the output matches the sequential oracle bit
        // for bit — exactly like the full-tile path.
        for (m, n, k) in [
            (40, 40, 8),  // one masked row and column group
            (48, 40, 16), // masked columns only
            (40, 64, 6),  // masked rows only
            (16, 4, 8),   // thin: a single heavily masked block
            (8, 2, 2),    // the envelope minimum
            (40, 6, 14),  // off both 32-grid dimensions
            (96, 72, 10), // multiple full blocks plus edges
        ] {
            let cfg = WideningGemmConfig::new(m, n, k).unwrap();
            let kernel = generate_widening(&cfg).expect("generation");
            assert_eq!(kernel.validate(5), 0.0, "({m},{n},{k})");
        }
    }

    #[test]
    fn masked_widening_kernels_encode_and_disassemble() {
        // The masked operand loads must use governing predicates in P0-P7
        // (ld1h has a 3-bit Pg field) — a kernel that only simulates but
        // cannot be encoded could never run on real hardware. Exercise
        // every load shape: single-vector masked A and B (thin shapes),
        // and the multi-vector counter forms (edge strips).
        for (m, n, k) in [(16, 4, 8), (8, 2, 2), (40, 40, 8), (40, 6, 14)] {
            let cfg = WideningGemmConfig::new(m, n, k).unwrap();
            let kernel = generate_widening(&cfg).unwrap();
            let disasm = kernel.disassembly();
            assert!(disasm.contains("whilelt"), "({m},{n},{k})");
            assert!(disasm.contains("bfmopa"), "({m},{n},{k})");
            assert_eq!(
                kernel.program().encode_bytes().len(),
                kernel.program().len() * 4,
                "({m},{n},{k}): every instruction must encode"
            );
        }
    }

    #[test]
    fn edge_bearing_blockings_validate_across_kinds() {
        // Every enumerated SME candidate — including the heterogeneous plan
        // and the thin blockings, all masked on this 40x40 shape — must
        // generate and stay bit-identical to the oracle.
        let cfg = WideningGemmConfig::new(40, 40, 8).unwrap();
        let mut sme_seen = 0;
        for candidate in enumerate_widening_candidates(&cfg) {
            if candidate.backend != Backend::Sme {
                continue;
            }
            let kernel = generate_widening_tuned(&cfg, &candidate).expect("tuned generation");
            assert_eq!(kernel.validate(0xED6E), 0.0, "{candidate:?}");
            sme_seen += 1;
        }
        assert!(sme_seen >= 8, "all four kinds must be real candidates");
    }

    #[test]
    fn widening_candidates_mirror_the_fp32_space() {
        // 64x64: 4 plan kinds x 2 transfers x unrolls {1,2,4} (k=8 -> 4
        // pairs, all divide) + the Neon candidate — the same shape as the
        // FP32 row-major space.
        let cfg = WideningGemmConfig::new(64, 64, 8).unwrap();
        let candidates = enumerate_widening_candidates(&cfg);
        assert_eq!(candidates.len(), 4 * 2 * 3 + 1);
        assert!(candidates.contains(&default_widening_candidate(&cfg)));
        assert_eq!(
            candidates
                .iter()
                .filter(|c| c.backend == Backend::Neon)
                .count(),
            1
        );
        for (i, a) in candidates.iter().enumerate() {
            assert!(!candidates[i + 1..].contains(a), "duplicate {a:?}");
        }

        // Off the 32-grid the SME candidates remain (edge-bearing
        // blockings are real candidates now), and the default stays SME.
        let thin = WideningGemmConfig::new(16, 4, 4).unwrap();
        let candidates = enumerate_widening_candidates(&thin);
        assert!(candidates.iter().any(|c| c.backend == Backend::Sme));
        assert!(candidates.iter().any(|c| c.backend == Backend::Neon));
        assert_eq!(default_widening_candidate(&thin).backend, Backend::Sme);

        // k = 2 (one pair): only unroll 1 survives.
        let shallow = WideningGemmConfig::new(32, 32, 2).unwrap();
        assert!(enumerate_widening_candidates(&shallow)
            .iter()
            .all(|c| c.k_unroll == 1));
    }

    #[test]
    fn widening_prefilter_prunes_without_dropping_default_or_neon() {
        // A 64x16 output: the B64x16 blocking covers it with one unmasked
        // block, dominating the thin 16x64 cover on both metrics.
        let cfg = WideningGemmConfig::new(64, 16, 32).unwrap();
        let before = enumerate_widening_candidates(&cfg);
        let after = prune_dominated_widening_candidates(&cfg, before.clone());
        assert!(after.len() < before.len(), "something must be pruned");
        assert!(after.contains(&default_widening_candidate(&cfg)));
        assert!(after.iter().any(|c| c.backend == Backend::Neon));
        assert!(!after
            .iter()
            .any(|c| c.kind == PlanKind::Homogeneous(RegisterBlocking::B16x64)));
    }

    #[test]
    fn tuned_widening_kernels_validate_across_the_candidate_space() {
        let cfg = WideningGemmConfig::new(64, 64, 8).unwrap();
        for candidate in enumerate_widening_candidates(&cfg) {
            if candidate.backend != Backend::Sme {
                continue;
            }
            let kernel = generate_widening_tuned(&cfg, &candidate).expect("tuned generation");
            assert_eq!(kernel.config().c_transfer, candidate.c_transfer);
            assert_eq!(kernel.config().k_unroll, candidate.k_unroll);
            let err = kernel.validate(0xACE);
            assert!(err < WIDENING_REL_TOL, "{candidate:?}: {err}");
        }
    }

    #[test]
    fn sme_widening_output_is_bit_identical_to_the_sequential_oracle() {
        // BFMOPA accumulates each element in contraction order with unfused
        // FP32 multiply-adds — exactly the oracle's arithmetic.
        let cfg = WideningGemmConfig::new(32, 64, 12).unwrap();
        let kernel = generate_widening(&cfg).unwrap();
        assert_eq!(kernel.validate(42), 0.0);
    }

    #[test]
    fn widening_generator_rejects_bad_candidates() {
        let cfg = WideningGemmConfig::new(32, 32, 4).unwrap();
        // Neon candidates must go through the routed path.
        let neon = PlanCandidate {
            backend: Backend::Neon,
            ..default_widening_candidate(&cfg)
        };
        assert!(generate_widening_tuned(&cfg, &neon).is_err());
        // Column panels have no meaning for the pre-packed operands.
        let panels = PlanCandidate {
            kind: PlanKind::ColumnPanels,
            ..default_widening_candidate(&cfg)
        };
        assert!(generate_widening_tuned(&cfg, &panels).is_err());
        // Heterogeneous plans and edge-bearing blockings now generate.
        let het = PlanCandidate {
            kind: PlanKind::Heterogeneous,
            ..default_widening_candidate(&cfg)
        };
        assert!(generate_widening_tuned(&cfg, &het).is_ok());
        let wide = PlanCandidate {
            kind: PlanKind::Homogeneous(RegisterBlocking::B16x64),
            ..default_widening_candidate(&cfg)
        };
        assert!(generate_widening_tuned(&cfg, &wide).is_ok(), "masked cols");
        // Off-grid shapes compile through the masked path.
        let thin = WideningGemmConfig::new(16, 4, 4).unwrap();
        assert!(generate_widening(&thin).is_ok());
    }

    #[test]
    fn widening_kernel_contains_bfmopa() {
        use sme_isa::inst::Inst;
        let cfg = WideningGemmConfig::new(32, 32, 8).unwrap();
        let kernel = generate_widening(&cfg).unwrap();
        let bfmopas = kernel
            .program()
            .count_matching(|i| matches!(i, Inst::Sme(SmeInst::FmopaWide { .. })));
        assert_eq!(bfmopas, 4);
        assert!(kernel.disassembly().contains("bfmopa"));
    }

    #[test]
    fn unrolled_widening_kernels_replicate_the_pair_body() {
        use sme_isa::inst::Inst;
        let cfg = WideningGemmConfig::new(32, 32, 16).unwrap();
        let candidate = PlanCandidate {
            k_unroll: 4,
            ..default_widening_candidate(&cfg)
        };
        let kernel = generate_widening_tuned(&cfg, &candidate).unwrap();
        let branches = kernel
            .program()
            .count_matching(|i| matches!(i, Inst::Scalar(ScalarInst::Cbnz { .. })));
        assert_eq!(branches, 1);
        let bfmopas = kernel
            .program()
            .count_matching(|i| matches!(i, Inst::Sme(SmeInst::FmopaWide { .. })));
        assert_eq!(bfmopas, 16, "4 tiles x unroll 4");
        assert!(kernel.validate(9) < WIDENING_REL_TOL);
    }

    #[test]
    fn widening_throughput_matches_the_fp32_centric_conclusion() {
        // On M4, BFMOPA has the same FLOP rate as the FP32 FMOPA, so the
        // BF16 kernel should land in the same throughput region as the FP32
        // kernel (no 2x gain — the paper's "FP32-centric" conclusion), while
        // halving the streamed operand bytes.
        let cfg = WideningGemmConfig::new(128, 128, 256).unwrap();
        let kernel = generate_widening(&cfg).unwrap();
        let bf16 = kernel.model_gflops();
        let fp32 = crate::generate(&GemmConfig::abt(128, 128, 256))
            .unwrap()
            .model_gflops();
        assert!(bf16 > 0.85 * fp32, "bf16 {bf16} vs fp32 {fp32}");
        assert!(bf16 < 1.3 * fp32, "bf16 {bf16} vs fp32 {fp32}");
    }
}
