//! The datatype dimension of the serving stack.
//!
//! PR 3 made the execution *backend* a first-class dimension of every layer
//! (candidates, cache keys, routing, telemetry); this module does the same
//! for the *datatype*. [`AnyGemmConfig`] is the unified configuration key
//! the runtime cache, plan store, tuner, service and router are keyed on:
//! an FP32 kernel ([`GemmConfig`]) or a BF16 → FP32 widening kernel
//! ([`WideningGemmConfig`]) — the paper's §IV.D / §V second workload
//! family. Code that is generic over the datatype matches once here and
//! never again downstream.

use crate::blocking::PlanCandidate;
use crate::config::{GemmConfig, GemmError};
use crate::widening::WideningGemmConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The datatype family of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dtype {
    /// FP32 inputs, FP32 accumulation (`FMOPA` / Neon `FMLA`).
    Fp32,
    /// BF16 inputs, FP32 accumulation (`BFMOPA` / Neon `BFMMLA`).
    WideningBf16,
}

impl Dtype {
    /// Stable textual name (used by the plan store's JSON format and the
    /// telemetry snapshot).
    pub fn name(self) -> &'static str {
        match self {
            Dtype::Fp32 => "Fp32",
            Dtype::WideningBf16 => "WideningBf16",
        }
    }

    /// Inverse of [`Dtype::name`].
    pub fn from_name(name: &str) -> Option<Dtype> {
        match name {
            "Fp32" => Some(Dtype::Fp32),
            "WideningBf16" => Some(Dtype::WideningBf16),
            _ => None,
        }
    }
}

impl fmt::Display for Dtype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The unified configuration key: one GEMM of either datatype family.
///
/// This is what the `sme-runtime` kernel cache and plan store key on, what
/// `GemmService` batches carry, and what the `sme-router` routes and counts
/// — so a serving deployment can mix FP32 and BF16 traffic through one
/// stack without parallel plumbing per datatype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnyGemmConfig {
    /// An FP32 kernel configuration.
    Fp32(GemmConfig),
    /// A BF16 → FP32 widening kernel configuration.
    WideningBf16(WideningGemmConfig),
}

impl AnyGemmConfig {
    /// The datatype family.
    pub fn dtype(&self) -> Dtype {
        match self {
            AnyGemmConfig::Fp32(_) => Dtype::Fp32,
            AnyGemmConfig::WideningBf16(_) => Dtype::WideningBf16,
        }
    }

    /// Rows of C.
    pub fn m(&self) -> usize {
        match self {
            AnyGemmConfig::Fp32(c) => c.m,
            AnyGemmConfig::WideningBf16(c) => c.m,
        }
    }

    /// Columns of C.
    pub fn n(&self) -> usize {
        match self {
            AnyGemmConfig::Fp32(c) => c.n,
            AnyGemmConfig::WideningBf16(c) => c.n,
        }
    }

    /// Contraction dimension.
    pub fn k(&self) -> usize {
        match self {
            AnyGemmConfig::Fp32(c) => c.k,
            AnyGemmConfig::WideningBf16(c) => c.k,
        }
    }

    /// Floating-point operations per kernel execution.
    pub fn flops(&self) -> u64 {
        match self {
            AnyGemmConfig::Fp32(c) => c.flops(),
            AnyGemmConfig::WideningBf16(c) => c.flops(),
        }
    }

    /// Number of `f32` elements the C output buffer holds.
    pub fn c_len(&self) -> usize {
        match self {
            AnyGemmConfig::Fp32(c) => c.c_len(),
            AnyGemmConfig::WideningBf16(c) => c.c_len(),
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), GemmError> {
        match self {
            AnyGemmConfig::Fp32(c) => c.validate(),
            AnyGemmConfig::WideningBf16(c) => c.validate(),
        }
    }

    /// The FP32 configuration, when this is the FP32 family.
    pub fn as_fp32(&self) -> Option<&GemmConfig> {
        match self {
            AnyGemmConfig::Fp32(c) => Some(c),
            AnyGemmConfig::WideningBf16(_) => None,
        }
    }

    /// The widening configuration, when this is the BF16 family.
    pub fn as_widening(&self) -> Option<&WideningGemmConfig> {
        match self {
            AnyGemmConfig::Fp32(_) => None,
            AnyGemmConfig::WideningBf16(c) => Some(c),
        }
    }

    /// Deterministic ordering key — datatype first, then shape and the
    /// FP32-only layout fields — shared by everything that needs a stable
    /// order over mixed-datatype configurations (the plan store's
    /// serialization, the telemetry ranking's tie-break).
    #[allow(clippy::type_complexity)]
    pub fn ordering_key(&self) -> (u8, usize, usize, usize, usize, usize, usize, bool, bool) {
        match self {
            AnyGemmConfig::Fp32(c) => (
                0,
                c.m,
                c.n,
                c.k,
                c.lda,
                c.ldb,
                c.ldc,
                c.b_layout == crate::config::BLayout::ColMajor,
                c.beta == crate::config::Beta::One,
            ),
            AnyGemmConfig::WideningBf16(c) => (1, c.m, c.n, c.k, 0, 0, 0, false, false),
        }
    }
}

impl From<GemmConfig> for AnyGemmConfig {
    fn from(cfg: GemmConfig) -> Self {
        AnyGemmConfig::Fp32(cfg)
    }
}

impl From<WideningGemmConfig> for AnyGemmConfig {
    fn from(cfg: WideningGemmConfig) -> Self {
        AnyGemmConfig::WideningBf16(cfg)
    }
}

impl fmt::Display for AnyGemmConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnyGemmConfig::Fp32(c) => write!(f, "{c}"),
            AnyGemmConfig::WideningBf16(c) => write!(f, "{c}"),
        }
    }
}

/// Enumerate the tuning candidates for a configuration of either datatype
/// (see [`crate::enumerate_candidates`] for the FP32 space and
/// [`crate::widening::enumerate_widening_candidates`] for the widening
/// space).
pub fn enumerate_any_candidates(cfg: &AnyGemmConfig) -> Vec<PlanCandidate> {
    match cfg {
        AnyGemmConfig::Fp32(c) => crate::blocking::enumerate_candidates(c),
        AnyGemmConfig::WideningBf16(c) => crate::widening::enumerate_widening_candidates(c),
    }
}

/// The candidate a datatype's generator would use with no tuning — the
/// baseline an argmin over [`enumerate_any_candidates`] can never lose to.
pub fn default_any_candidate(cfg: &AnyGemmConfig) -> PlanCandidate {
    match cfg {
        AnyGemmConfig::Fp32(c) => PlanCandidate::default_for(c),
        AnyGemmConfig::WideningBf16(c) => crate::widening::default_widening_candidate(c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_dispatch_on_the_family() {
        let fp32: AnyGemmConfig = GemmConfig::abt(32, 16, 8).into();
        assert_eq!(fp32.dtype(), Dtype::Fp32);
        assert_eq!((fp32.m(), fp32.n(), fp32.k()), (32, 16, 8));
        assert_eq!(fp32.flops(), 2 * 32 * 16 * 8);
        assert_eq!(fp32.c_len(), 32 * 16);
        assert!(fp32.as_fp32().is_some());
        assert!(fp32.as_widening().is_none());
        assert!(fp32.validate().is_ok());

        let wide: AnyGemmConfig = WideningGemmConfig::new(32, 32, 4).unwrap().into();
        assert_eq!(wide.dtype(), Dtype::WideningBf16);
        assert_eq!((wide.m(), wide.n(), wide.k()), (32, 32, 4));
        assert!(wide.as_widening().is_some());
        assert!(wide.as_fp32().is_none());
        assert!(wide.to_string().contains("BF16"));
    }

    #[test]
    fn dtype_names_round_trip() {
        for dtype in [Dtype::Fp32, Dtype::WideningBf16] {
            assert_eq!(Dtype::from_name(dtype.name()), Some(dtype));
        }
        assert_eq!(Dtype::from_name("Fp64"), None);
    }

    #[test]
    fn keys_of_different_dtypes_never_collide() {
        use std::collections::HashSet;
        let fp32: AnyGemmConfig = GemmConfig::abt(32, 32, 4).into();
        let wide: AnyGemmConfig = WideningGemmConfig::new(32, 32, 4).unwrap().into();
        assert_ne!(fp32, wide, "same shape, different dtype, distinct key");
        let set: HashSet<AnyGemmConfig> = [fp32, wide].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn candidate_enumeration_covers_both_families() {
        let fp32: AnyGemmConfig = GemmConfig::abt(64, 64, 64).into();
        assert!(!enumerate_any_candidates(&fp32).is_empty());
        assert!(enumerate_any_candidates(&fp32).contains(&default_any_candidate(&fp32)));
        let wide: AnyGemmConfig = WideningGemmConfig::new(64, 64, 8).unwrap().into();
        let candidates = enumerate_any_candidates(&wide);
        assert!(candidates.contains(&default_any_candidate(&wide)));
    }
}
