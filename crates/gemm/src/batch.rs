//! Batched execution of generated small-GEMM kernels.
//!
//! LIBXSMM's small GEMMs are typically executed many times per time step —
//! for example once per element in a high-order finite-element code. This
//! module provides a thin batched driver over a single [`CompiledKernel`]:
//! one kernel, many operand triples, aggregated statistics.

use crate::config::GemmConfig;
use crate::config::GemmError;
use crate::generator::generate;
use crate::kernel::{CompiledKernel, GemmBuffers};
use crate::reference::fill_matrix;
use sme_machine::exec::{RunOptions, Simulator};
use sme_machine::ExecStats;

/// A batch of identical small GEMMs sharing one generated kernel.
#[derive(Debug, Clone)]
pub struct BatchedGemm {
    kernel: CompiledKernel,
}

impl BatchedGemm {
    /// Generate the kernel for `cfg`.
    pub fn new(cfg: &GemmConfig) -> Result<Self, GemmError> {
        Ok(BatchedGemm {
            kernel: generate(cfg)?,
        })
    }

    /// The underlying kernel.
    pub fn kernel(&self) -> &CompiledKernel {
        &self.kernel
    }

    /// Allocate `count` operand triples in the simulator's memory, filled
    /// with deterministic pseudo-random data derived from `seed`.
    pub fn allocate_batch(&self, sim: &mut Simulator, count: usize, seed: u64) -> Vec<GemmBuffers> {
        let cfg = self.kernel.config();
        (0..count)
            .map(|i| {
                let mut a = vec![0.0f32; cfg.a_len()];
                let mut b = vec![0.0f32; cfg.b_len()];
                let mut c = vec![0.0f32; cfg.c_len()];
                let s = seed.wrapping_add(i as u64 * 3);
                fill_matrix(s, &mut a);
                fill_matrix(s + 1, &mut b);
                fill_matrix(s + 2, &mut c);
                GemmBuffers {
                    a: sim.mem.alloc_f32(&a, 128),
                    b: sim.mem.alloc_f32(&b, 128),
                    c: sim.mem.alloc_f32(&c, 128),
                }
            })
            .collect()
    }

    /// Execute the kernel once per triple and return the aggregated
    /// statistics.
    pub fn execute(
        &self,
        sim: &mut Simulator,
        batch: &[GemmBuffers],
        opts: &RunOptions,
    ) -> ExecStats {
        let mut total = ExecStats::default();
        for bufs in batch {
            let result = self.kernel.run(sim, *bufs, opts);
            total.merge(&result.stats);
        }
        total
    }

    /// Total floating-point operations for a batch of the given size.
    pub fn batch_flops(&self, count: usize) -> u64 {
        self.kernel.flops() * count as u64
    }

    /// Modelled throughput (GFLOPS) of a batch executed back to back on a
    /// single performance core.
    pub fn model_batch_gflops(&self, count: usize) -> f64 {
        let mut sim = Simulator::m4_performance();
        let batch = self.allocate_batch(&mut sim, count, 99);
        let stats = self.execute(&mut sim, &batch, &RunOptions::timing_only());
        let seconds = stats.seconds();
        if seconds == 0.0 {
            0.0
        } else {
            self.batch_flops(count) as f64 / seconds / 1e9
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{gemm_reference, max_abs_diff};

    #[test]
    fn batch_executes_every_problem_functionally() {
        let cfg = GemmConfig::abt(20, 12, 6);
        let batch = BatchedGemm::new(&cfg).unwrap();
        let mut sim = Simulator::m4_performance();
        let triples = batch.allocate_batch(&mut sim, 4, 7);
        // Snapshot the inputs before execution.
        let inputs: Vec<_> = triples
            .iter()
            .map(|t| {
                (
                    sim.mem.read_f32_slice(t.a, cfg.a_len()),
                    sim.mem.read_f32_slice(t.b, cfg.b_len()),
                    sim.mem.read_f32_slice(t.c, cfg.c_len()),
                )
            })
            .collect();
        let stats = batch.execute(&mut sim, &triples, &RunOptions::functional_only());
        assert!(stats.instructions > 0);
        for (t, (a, b, c0)) in triples.iter().zip(inputs) {
            let mut c_ref = c0;
            gemm_reference(&cfg, &a, &b, &mut c_ref);
            let c_out = sim.mem.read_f32_slice(t.c, cfg.c_len());
            assert!(max_abs_diff(&c_out, &c_ref) < 1e-4);
        }
    }

    #[test]
    fn batch_throughput_is_comparable_to_single_kernel_throughput() {
        let cfg = GemmConfig::abt(64, 64, 64);
        let batch = BatchedGemm::new(&cfg).unwrap();
        let single = batch.kernel().model_gflops();
        let batched = batch.model_batch_gflops(3);
        assert!(batched > 0.5 * single);
        assert_eq!(batch.batch_flops(3), 3 * 2 * 64 * 64 * 64);
    }
}
