//! Batched execution of generated small-GEMM kernels.
//!
//! LIBXSMM's small GEMMs are typically executed many times per time step —
//! for example once per element in a high-order finite-element code. This
//! module provides a thin batched driver over a single [`CompiledKernel`]:
//! one kernel, many operand triples, aggregated statistics.

use crate::config::GemmConfig;
use crate::config::GemmError;
use crate::generator::generate;
use crate::kernel::{CompiledKernel, GemmBuffers};
use crate::reference::fill_matrix;
use sme_machine::exec::{RunOptions, Simulator};
use sme_machine::ExecStats;

/// A batch of identical small GEMMs sharing one generated kernel.
#[derive(Debug, Clone)]
pub struct BatchedGemm {
    kernel: CompiledKernel,
}

impl BatchedGemm {
    /// Generate the kernel for `cfg`.
    pub fn new(cfg: &GemmConfig) -> Result<Self, GemmError> {
        Ok(BatchedGemm {
            kernel: generate(cfg)?,
        })
    }

    /// The underlying kernel.
    pub fn kernel(&self) -> &CompiledKernel {
        &self.kernel
    }

    /// Allocate `count` operand triples in the simulator's memory, filled
    /// with deterministic pseudo-random data derived from `seed`.
    pub fn allocate_batch(&self, sim: &mut Simulator, count: usize, seed: u64) -> Vec<GemmBuffers> {
        let cfg = self.kernel.config();
        (0..count)
            .map(|i| {
                let mut a = vec![0.0f32; cfg.a_len()];
                let mut b = vec![0.0f32; cfg.b_len()];
                let mut c = vec![0.0f32; cfg.c_len()];
                let s = seed.wrapping_add(i as u64 * 3);
                fill_matrix(s, &mut a);
                fill_matrix(s + 1, &mut b);
                fill_matrix(s + 2, &mut c);
                GemmBuffers {
                    a: sim.mem.alloc_f32(&a, 128),
                    b: sim.mem.alloc_f32(&b, 128),
                    c: sim.mem.alloc_f32(&c, 128),
                }
            })
            .collect()
    }

    /// Execute the kernel once per triple and return the aggregated
    /// statistics.
    pub fn execute(
        &self,
        sim: &mut Simulator,
        batch: &[GemmBuffers],
        opts: &RunOptions,
    ) -> ExecStats {
        let mut total = ExecStats::default();
        for bufs in batch {
            let result = self.kernel.run(sim, *bufs, opts);
            total.merge(&result.stats);
        }
        total
    }

    /// Total floating-point operations for a batch of the given size.
    pub fn batch_flops(&self, count: usize) -> u64 {
        self.kernel.flops() * count as u64
    }

    /// Modelled throughput (GFLOPS) of a batch executed back to back on a
    /// single performance core.
    pub fn model_batch_gflops(&self, count: usize) -> f64 {
        let mut sim = Simulator::m4_performance();
        let batch = self.allocate_batch(&mut sim, count, 99);
        let stats = self.execute(&mut sim, &batch, &RunOptions::timing_only());
        let seconds = stats.seconds();
        if seconds == 0.0 {
            0.0
        } else {
            self.batch_flops(count) as f64 / seconds / 1e9
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{gemm_reference, max_abs_diff};

    #[test]
    fn batch_executes_every_problem_functionally() {
        let cfg = GemmConfig::abt(20, 12, 6);
        let batch = BatchedGemm::new(&cfg).unwrap();
        let mut sim = Simulator::m4_performance();
        let triples = batch.allocate_batch(&mut sim, 4, 7);
        // Snapshot the inputs before execution.
        let inputs: Vec<_> = triples
            .iter()
            .map(|t| {
                (
                    sim.mem.read_f32_slice(t.a, cfg.a_len()),
                    sim.mem.read_f32_slice(t.b, cfg.b_len()),
                    sim.mem.read_f32_slice(t.c, cfg.c_len()),
                )
            })
            .collect();
        let stats = batch.execute(&mut sim, &triples, &RunOptions::functional_only());
        assert!(stats.instructions > 0);
        for (t, (a, b, c0)) in triples.iter().zip(inputs) {
            let mut c_ref = c0;
            gemm_reference(&cfg, &a, &b, &mut c_ref);
            let c_out = sim.mem.read_f32_slice(t.c, cfg.c_len());
            assert!(max_abs_diff(&c_out, &c_ref) < 1e-4);
        }
    }

    #[test]
    fn batch_stats_aggregate_across_the_whole_batch() {
        let cfg = GemmConfig::abt(24, 16, 8);
        let batch = BatchedGemm::new(&cfg).unwrap();

        // One kernel execution's counters…
        let mut sim = Simulator::m4_performance();
        let single_triple = batch.allocate_batch(&mut sim, 1, 5);
        let single = batch.execute(&mut sim, &single_triple, &RunOptions::timing_only());

        // …must scale exactly by the batch size: the kernel is
        // branch-resolved, so every execution retires the same instruction
        // stream and touches the same number of bytes.
        let mut sim = Simulator::m4_performance();
        let triples = batch.allocate_batch(&mut sim, 5, 5);
        let total = batch.execute(&mut sim, &triples, &RunOptions::timing_only());
        assert_eq!(total.instructions, 5 * single.instructions);
        assert_eq!(total.arith_ops, 5 * single.arith_ops);
        assert_eq!(total.bytes_loaded, 5 * single.bytes_loaded);
        assert_eq!(total.bytes_stored, 5 * single.bytes_stored);
        assert!((total.cycles - 5.0 * single.cycles).abs() < 1e-6 * total.cycles.max(1.0));
        assert_eq!(total.clock_ghz, single.clock_ghz);
        for (class, count) in &total.instructions_by_class {
            assert_eq!(
                *count,
                5 * single.instructions_by_class[class],
                "class {class}"
            );
        }
    }

    #[test]
    fn empty_batch_produces_empty_stats() {
        let cfg = GemmConfig::abt(16, 16, 4);
        let batch = BatchedGemm::new(&cfg).unwrap();
        let mut sim = Simulator::m4_performance();
        let stats = batch.execute(&mut sim, &[], &RunOptions::timing_only());
        assert_eq!(stats, ExecStats::default());
        assert_eq!(batch.batch_flops(0), 0);
    }

    #[test]
    fn batch_triples_are_distinct_and_deterministic() {
        let cfg = GemmConfig::abt(8, 8, 4);
        let batch = BatchedGemm::new(&cfg).unwrap();
        let mut sim = Simulator::m4_performance();
        let triples = batch.allocate_batch(&mut sim, 3, 42);
        // Distinct, non-overlapping allocations per problem.
        let mut addrs: Vec<u64> = triples.iter().flat_map(|t| [t.a, t.b, t.c]).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 9);
        // Same seed ⇒ same data in a fresh simulator.
        let mut sim2 = Simulator::m4_performance();
        let triples2 = batch.allocate_batch(&mut sim2, 3, 42);
        for (t1, t2) in triples.iter().zip(&triples2) {
            assert_eq!(
                sim.mem.read_f32_slice(t1.a, cfg.a_len()),
                sim2.mem.read_f32_slice(t2.a, cfg.a_len())
            );
        }
        // Different problems get different data.
        let a0 = sim.mem.read_f32_slice(triples[0].a, cfg.a_len());
        let a1 = sim.mem.read_f32_slice(triples[1].a, cfg.a_len());
        assert_ne!(a0, a1);
    }

    #[test]
    fn batch_throughput_is_comparable_to_single_kernel_throughput() {
        let cfg = GemmConfig::abt(64, 64, 64);
        let batch = BatchedGemm::new(&cfg).unwrap();
        let single = batch.kernel().model_gflops();
        let batched = batch.model_batch_gflops(3);
        assert!(batched > 0.5 * single);
        assert_eq!(batch.batch_flops(3), 3 * 2 * 64 * 64 * 64);
    }
}
