//! GEMM problem configuration.
//!
//! A [`GemmConfig`] fully describes one small-GEMM kernel: shapes, leading
//! dimensions, operand layouts and accumulation mode. Like LIBXSMM, the
//! generator hard-wires all of this into the emitted code — there are no
//! runtime shape parameters in the generated kernel.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Storage layout of the B operand.
///
/// A and C are always column-major (the LIBXSMM convention used by the
/// paper); B may be row-major (the `C += A·Bᵀ` case of Fig. 8, where outer
/// products can consume B directly) or column-major (the `C += A·B` case of
/// Fig. 9, which requires the in-kernel transposition of §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BLayout {
    /// B is stored row-major: element (k, n) is at `B[k * ldb + n]`.
    RowMajor,
    /// B is stored column-major: element (k, n) is at `B[n * ldb + k]`.
    ColMajor,
}

/// Accumulation mode of the generated kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Beta {
    /// `C = A · B(ᵀ)` — the accumulators are zero-initialised.
    Zero,
    /// `C += A · B(ᵀ)` — the existing C block is loaded first (the paper's
    /// setting).
    One,
}

/// The execution engine a kernel is generated for.
///
/// The paper's Fig. 1 shows the two engine classes of the M4: the **SME**
/// outer-product units (two, shared per cluster) and the core-private
/// **Neon** FMLA pipes. Small or awkwardly-shaped GEMMs amortise the SME
/// kernels' fixed streaming-mode and ZA-transfer overheads poorly and run
/// faster on Neon; large shapes saturate the SME units. The `sme-router`
/// crate picks a backend per request; the autotuner scores candidates of
/// both backends on the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Backend {
    /// The SME outer-product generator ([`crate::generate`]).
    Sme,
    /// The Neon FMLA-by-element generator ([`crate::neon::generate_neon`]).
    Neon,
}

impl Backend {
    /// Both backends, SME first.
    pub const fn all() -> [Backend; 2] {
        [Backend::Sme, Backend::Neon]
    }

    /// Stable textual name (used by the plan store's JSON format).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Sme => "Sme",
            Backend::Neon => "Neon",
        }
    }

    /// Inverse of [`Backend::name`].
    pub fn from_name(name: &str) -> Option<Backend> {
        match name {
            "Sme" => Some(Backend::Sme),
            "Neon" => Some(Backend::Neon),
            _ => None,
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Strategy for moving C blocks between memory and the ZA array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ZaTransferStrategy {
    /// Direct `ldr za` / `str za` array-vector transfers.
    Direct,
    /// Two-step transfers through Z registers (`ld1w`/`st1w` + `mova`), the
    /// faster load path identified in §III-G.
    TwoStep,
}

/// Instruction schedule of the generated kernel's block sequence.
///
/// The serial schedule emits each output block as load → compute → store.
/// The software-pipelined schedule double-buffers the packed A/B operand
/// loads: the first contraction step of the *next* block is loaded into a
/// secondary register set (`z16`–`z23`) before the current block's C store
/// retires, so the store's ZA read-after-write stall no longer delays the
/// next block's first outer products on the shared load/store unit. The
/// tuner treats the schedule as a fourth knob (plan × transfer × unroll ×
/// schedule) and only keeps it where simulated cycles actually drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelSchedule {
    /// Load → compute → store, one block at a time.
    Serial,
    /// Double-buffered: the next block's first operand loads are hoisted
    /// above the current block's C store.
    Pipelined,
}

impl KernelSchedule {
    /// Both schedules, serial first.
    pub const fn all() -> [KernelSchedule; 2] {
        [KernelSchedule::Serial, KernelSchedule::Pipelined]
    }

    /// Stable textual name (used by the plan store's JSON format).
    pub fn name(self) -> &'static str {
        match self {
            KernelSchedule::Serial => "Serial",
            KernelSchedule::Pipelined => "Pipelined",
        }
    }

    /// Inverse of [`KernelSchedule::name`].
    pub fn from_name(name: &str) -> Option<KernelSchedule> {
        match name {
            "Serial" => Some(KernelSchedule::Serial),
            "Pipelined" => Some(KernelSchedule::Pipelined),
            _ => None,
        }
    }
}

impl fmt::Display for KernelSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors reported while validating a configuration or generating a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GemmError {
    /// A dimension was zero or exceeds the supported range.
    InvalidDimension(String),
    /// A leading dimension is smaller than the corresponding extent.
    InvalidLeadingDimension(String),
    /// The requested feature is not supported by this generator.
    Unsupported(String),
}

impl fmt::Display for GemmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GemmError::InvalidDimension(msg) => write!(f, "invalid dimension: {msg}"),
            GemmError::InvalidLeadingDimension(msg) => {
                write!(f, "invalid leading dimension: {msg}")
            }
            GemmError::Unsupported(msg) => write!(f, "unsupported configuration: {msg}"),
        }
    }
}

impl std::error::Error for GemmError {}

/// Description of one small-GEMM kernel.
///
/// Shapes follow BLAS conventions: `C` is `m × n`, `A` is `m × k`, `B` is
/// `k × n`. A and C are column-major with leading dimensions `lda` and
/// `ldc`; the layout of B is selected by [`BLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmConfig {
    /// Rows of C and A.
    pub m: usize,
    /// Columns of C and B.
    pub n: usize,
    /// Contraction dimension (columns of A, rows of B).
    pub k: usize,
    /// Leading dimension of A (≥ m).
    pub lda: usize,
    /// Leading dimension of B (≥ n for row-major, ≥ k for column-major).
    pub ldb: usize,
    /// Leading dimension of C (≥ m).
    pub ldc: usize,
    /// Layout of B.
    pub b_layout: BLayout,
    /// Accumulation mode.
    pub beta: Beta,
    /// How C blocks are moved in and out of the ZA array.
    pub c_transfer: ZaTransferStrategy,
    /// Unroll factor of the contraction loop (1, 2 or 4).
    pub k_unroll: usize,
    /// Instruction schedule of the block sequence.
    pub schedule: KernelSchedule,
}

impl GemmConfig {
    /// A `C += A·Bᵀ` configuration (row-major B) with tight leading
    /// dimensions — the Fig. 8 setting.
    pub fn abt(m: usize, n: usize, k: usize) -> Self {
        GemmConfig {
            m,
            n,
            k,
            lda: m,
            ldb: n,
            ldc: m,
            b_layout: BLayout::RowMajor,
            beta: Beta::One,
            c_transfer: ZaTransferStrategy::TwoStep,
            k_unroll: 1,
            schedule: KernelSchedule::Serial,
        }
    }

    /// A `C += A·B` configuration (column-major B) with tight leading
    /// dimensions — the Fig. 9 setting.
    pub fn ab(m: usize, n: usize, k: usize) -> Self {
        GemmConfig {
            ldb: k,
            b_layout: BLayout::ColMajor,
            ..Self::abt(m, n, k)
        }
    }

    /// Builder: set explicit leading dimensions.
    pub fn with_leading_dims(mut self, lda: usize, ldb: usize, ldc: usize) -> Self {
        self.lda = lda;
        self.ldb = ldb;
        self.ldc = ldc;
        self
    }

    /// Builder: set the accumulation mode.
    pub fn with_beta(mut self, beta: Beta) -> Self {
        self.beta = beta;
        self
    }

    /// Builder: set the ZA transfer strategy for C blocks.
    pub fn with_c_transfer(mut self, strategy: ZaTransferStrategy) -> Self {
        self.c_transfer = strategy;
        self
    }

    /// Builder: set the contraction-loop unroll factor.
    pub fn with_k_unroll(mut self, unroll: usize) -> Self {
        self.k_unroll = unroll;
        self
    }

    /// Builder: set the instruction schedule of the block sequence.
    pub fn with_schedule(mut self, schedule: KernelSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Number of floating-point operations one kernel execution performs.
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), GemmError> {
        const MAX_DIM: usize = 1 << 20;
        for (name, v) in [("m", self.m), ("n", self.n), ("k", self.k)] {
            if v == 0 || v > MAX_DIM {
                return Err(GemmError::InvalidDimension(format!(
                    "{name} = {v} must be in 1..={MAX_DIM}"
                )));
            }
        }
        if self.lda < self.m {
            return Err(GemmError::InvalidLeadingDimension(format!(
                "lda = {} must be >= m = {}",
                self.lda, self.m
            )));
        }
        if self.ldc < self.m {
            return Err(GemmError::InvalidLeadingDimension(format!(
                "ldc = {} must be >= m = {}",
                self.ldc, self.m
            )));
        }
        let min_ldb = match self.b_layout {
            BLayout::RowMajor => self.n,
            BLayout::ColMajor => self.k,
        };
        if self.ldb < min_ldb {
            return Err(GemmError::InvalidLeadingDimension(format!(
                "ldb = {} must be >= {} for {:?} B",
                self.ldb, min_ldb, self.b_layout
            )));
        }
        if !matches!(self.k_unroll, 1 | 2 | 4) {
            return Err(GemmError::Unsupported(format!(
                "k_unroll = {} (supported: 1, 2, 4)",
                self.k_unroll
            )));
        }
        Ok(())
    }

    /// Byte offset of element (row, col) of A.
    pub fn a_offset(&self, row: usize, col: usize) -> usize {
        (col * self.lda + row) * 4
    }

    /// Byte offset of element (k, n) of B.
    pub fn b_offset(&self, k: usize, n: usize) -> usize {
        match self.b_layout {
            BLayout::RowMajor => (k * self.ldb + n) * 4,
            BLayout::ColMajor => (n * self.ldb + k) * 4,
        }
    }

    /// Byte offset of element (row, col) of C.
    pub fn c_offset(&self, row: usize, col: usize) -> usize {
        (col * self.ldc + row) * 4
    }

    /// Number of `f32` elements the A buffer must hold.
    pub fn a_len(&self) -> usize {
        self.lda * self.k
    }

    /// Number of `f32` elements the B buffer must hold.
    pub fn b_len(&self) -> usize {
        match self.b_layout {
            BLayout::RowMajor => self.ldb * self.k,
            BLayout::ColMajor => self.ldb * self.n,
        }
    }

    /// Number of `f32` elements the C buffer must hold.
    pub fn c_len(&self) -> usize {
        self.ldc * self.n
    }
}

impl fmt::Display for GemmConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = match self.b_layout {
            BLayout::RowMajor => "B^T (row-major B)",
            BLayout::ColMajor => "B (column-major B)",
        };
        write!(
            f,
            "C{} A*{} m={} n={} k={} lda={} ldb={} ldc={}",
            if self.beta == Beta::One { " +=" } else { " =" },
            b,
            self.m,
            self.n,
            self.k,
            self.lda,
            self.ldb,
            self.ldc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_valid_configs() {
        let c = GemmConfig::abt(80, 80, 512);
        assert!(c.validate().is_ok());
        assert_eq!(c.b_layout, BLayout::RowMajor);
        assert_eq!(c.ldb, 80);
        let c = GemmConfig::ab(33, 47, 512);
        assert!(c.validate().is_ok());
        assert_eq!(c.b_layout, BLayout::ColMajor);
        assert_eq!(c.ldb, 512);
        assert_eq!(c.flops(), 2 * 33 * 47 * 512);
    }

    #[test]
    fn leading_dimension_checks() {
        let c = GemmConfig::abt(32, 32, 64).with_leading_dims(16, 32, 32);
        assert!(matches!(
            c.validate(),
            Err(GemmError::InvalidLeadingDimension(_))
        ));
        let c = GemmConfig::abt(32, 32, 64).with_leading_dims(32, 16, 32);
        assert!(matches!(
            c.validate(),
            Err(GemmError::InvalidLeadingDimension(_))
        ));
        let c = GemmConfig::ab(32, 32, 64).with_leading_dims(32, 32, 32);
        assert!(matches!(
            c.validate(),
            Err(GemmError::InvalidLeadingDimension(_))
        ));
        let c = GemmConfig::abt(32, 32, 64).with_leading_dims(40, 40, 48);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn zero_dimensions_rejected() {
        let c = GemmConfig::abt(0, 32, 64);
        assert!(matches!(c.validate(), Err(GemmError::InvalidDimension(_))));
    }

    #[test]
    fn unroll_validation() {
        assert!(GemmConfig::abt(32, 32, 64)
            .with_k_unroll(3)
            .validate()
            .is_err());
        assert!(GemmConfig::abt(32, 32, 64)
            .with_k_unroll(4)
            .validate()
            .is_ok());
    }

    #[test]
    fn offsets_follow_layouts() {
        let c = GemmConfig::abt(8, 8, 8).with_leading_dims(10, 12, 14);
        assert_eq!(c.a_offset(3, 2), (2 * 10 + 3) * 4);
        assert_eq!(c.c_offset(3, 2), (2 * 14 + 3) * 4);
        assert_eq!(c.b_offset(5, 7), (5 * 12 + 7) * 4, "row-major B");
        let c = GemmConfig::ab(8, 8, 8).with_leading_dims(10, 12, 14);
        assert_eq!(c.b_offset(5, 7), (7 * 12 + 5) * 4, "column-major B");
    }

    #[test]
    fn buffer_lengths() {
        let c = GemmConfig::abt(8, 6, 4).with_leading_dims(10, 7, 9);
        assert_eq!(c.a_len(), 40);
        assert_eq!(c.b_len(), 28);
        assert_eq!(c.c_len(), 54);
        let c = GemmConfig::ab(8, 6, 4).with_leading_dims(10, 5, 9);
        assert_eq!(c.b_len(), 30);
    }

    #[test]
    fn display_mentions_shape() {
        let text = GemmConfig::abt(80, 80, 512).to_string();
        assert!(text.contains("m=80"));
        assert!(text.contains("B^T"));
    }

    #[test]
    fn error_display() {
        let e = GemmError::Unsupported("bf16".into());
        assert!(e.to_string().contains("bf16"));
    }
}
