//! Accumulator (C block) transfers between memory and the ZA array.
//!
//! §III-G of the paper shows that ZA transfers can either go directly
//! through `ldr za` / `str za` array-vector instructions or in two steps
//! through the Z registers. Both strategies are implemented here; the
//! two-step path additionally supports predication, which the direct path
//! cannot, so masked blocks always use it.

use crate::blocking::{BlockInstance, TILE};
use crate::config::{GemmConfig, ZaTransferStrategy};
use crate::microkernel::{
    a_counter, col_pred, load_vectors, row_pred, xr, zr, COL_PTR, C_PTR, LDC_B, W12, ZC_STAGE,
};
use sme_isa::asm::Assembler;
use sme_isa::inst::{ScalarInst, SmeInst, SveInst};
use sme_isa::regs::{TileSliceDir, ZaTile};

/// Direction of an accumulator transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDir {
    /// Memory → ZA (before the contraction loop, `beta = 1`).
    Load,
    /// ZA → memory (after the contraction loop).
    Store,
}

/// Emit `zero { … }` for every tile used by the block (the `beta = 0` path).
pub fn emit_zero_tiles(asm: &mut Assembler, block: &BlockInstance) {
    let mut tiles = Vec::new();
    for cg in 0..block.active_col_groups() {
        for rg in 0..block.active_row_groups() {
            tiles.push(block.blocking.tile_index(rg, cg));
        }
    }
    let mask = SmeInst::zero_mask_for_s_tiles(&tiles);
    asm.push(SmeInst::ZeroZa { mask });
}

/// Whether the direct array-vector path may be used for this block: the
/// direct instructions cannot be masked, so every touched row group must be
/// complete.
fn direct_allowed(cfg: &GemmConfig, block: &BlockInstance) -> bool {
    cfg.c_transfer == ZaTransferStrategy::Direct && block.rows.is_multiple_of(TILE)
}

/// Emit the transfer of the block's C columns between memory and the ZA
/// tiles.
///
/// Column `j` of the block lives at `C_PTR + j * ldc * 4` and maps to
/// horizontal slice `j mod 16` of tile `tile_index(rg, j / 16)` for each
/// 16-row group `rg` — a direct consequence of the operand order in Lst. 4
/// (the tile holds the block transposed, so C columns are tile rows and can
/// be moved with contiguous transfers).
pub fn emit_c_transfer(
    asm: &mut Assembler,
    cfg: &GemmConfig,
    block: &BlockInstance,
    dir: TransferDir,
) {
    let rg_count = block.active_row_groups();
    let direct = direct_allowed(cfg, block);

    // Column cursor.
    asm.push(ScalarInst::MovReg {
        rd: xr(COL_PTR),
        rn: xr(C_PTR),
    });
    if !direct {
        // The two-step path addresses slices as W12 + immediate.
        asm.push(ScalarInst::mov_imm16(xr(W12), 0));
    }

    for j in 0..block.cols {
        let cg = j / TILE;
        let slice = j % TILE;
        if direct {
            // The vector index of tile(rg, cg) slice `slice` is
            // slice * 4 + tile_index(0, cg) + rg, and consecutive row groups
            // are consecutive array vectors, so one base W12 value plus the
            // paired offset of `ldr/str za` walks both the tiles and the
            // 64-byte chunks of the column.
            let base = slice * 4 + block.blocking.tile_index(0, cg) as usize;
            asm.push(ScalarInst::mov_imm16(xr(W12), base as u16));
            for rg in 0..rg_count {
                match dir {
                    TransferDir::Load => asm.push(SmeInst::LdrZa {
                        rs: xr(W12),
                        offset: rg as u8,
                        rn: xr(COL_PTR),
                    }),
                    TransferDir::Store => asm.push(SmeInst::StrZa {
                        rs: xr(W12),
                        offset: rg as u8,
                        rn: xr(COL_PTR),
                    }),
                }
            }
        } else {
            let vecs = load_vectors(rg_count);
            match dir {
                TransferDir::Load => {
                    if vecs == 1 {
                        asm.push(SveInst::ld1w(zr(ZC_STAGE), row_pred(0), xr(COL_PTR), 0));
                    } else {
                        asm.push(SveInst::ld1w_multi(
                            zr(ZC_STAGE),
                            vecs as u8,
                            a_counter(),
                            xr(COL_PTR),
                            0,
                        ));
                    }
                    for rg in 0..rg_count {
                        let tile = ZaTile::s(block.blocking.tile_index(rg, cg));
                        asm.push(SmeInst::MovaToTile {
                            tile,
                            dir: TileSliceDir::Horizontal,
                            rs: xr(W12),
                            offset: slice as u8,
                            zt: zr(ZC_STAGE + rg as u8),
                            count: 1,
                        });
                    }
                }
                TransferDir::Store => {
                    for rg in 0..rg_count {
                        let tile = ZaTile::s(block.blocking.tile_index(rg, cg));
                        asm.push(SmeInst::MovaFromTile {
                            tile,
                            dir: TileSliceDir::Horizontal,
                            rs: xr(W12),
                            offset: slice as u8,
                            zt: zr(ZC_STAGE + rg as u8),
                            count: 1,
                        });
                    }
                    if vecs == 1 {
                        asm.push(SveInst::st1w(zr(ZC_STAGE), row_pred(0), xr(COL_PTR), 0));
                    } else {
                        asm.push(SveInst::st1w_multi(
                            zr(ZC_STAGE),
                            vecs as u8,
                            a_counter(),
                            xr(COL_PTR),
                            0,
                        ));
                    }
                }
            }
        }
        // Advance to the next column unless this was the last one.
        if j + 1 < block.cols {
            asm.push(ScalarInst::AddReg {
                rd: xr(COL_PTR),
                rn: xr(COL_PTR),
                rm: xr(LDC_B),
                shift: None,
            });
        }
    }

    // The remaining FMOPA columns (cols..blocking.cols()) keep whatever the
    // tiles contained, but are never written back and their predicates mask
    // the outer products, so no extra work is needed.
    let _ = col_pred(0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::RegisterBlocking;
    use sme_isa::inst::Inst;

    fn block(rows: usize, cols: usize, blocking: RegisterBlocking) -> BlockInstance {
        BlockInstance {
            row0: 0,
            col0: 0,
            rows,
            cols,
            blocking,
        }
    }

    fn count<F: FnMut(&Inst) -> bool>(p: &sme_isa::Program, f: F) -> usize {
        p.count_matching(f)
    }

    #[test]
    fn zero_path_covers_all_used_tiles() {
        let mut asm = Assembler::new("zero");
        emit_zero_tiles(&mut asm, &block(32, 32, RegisterBlocking::B32x32));
        let p = asm.finish();
        match p.insts()[0] {
            Inst::Sme(SmeInst::ZeroZa { mask }) => assert_eq!(mask, 0xff),
            ref other => panic!("unexpected {other:?}"),
        }
        let mut asm = Assembler::new("zero16");
        emit_zero_tiles(&mut asm, &block(16, 16, RegisterBlocking::B32x32));
        let p = asm.finish();
        match p.insts()[0] {
            Inst::Sme(SmeInst::ZeroZa { mask }) => {
                assert_eq!(mask, SmeInst::zero_mask_for_s_tiles(&[0]))
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn direct_transfer_uses_paired_array_vector_stores() {
        let cfg = GemmConfig::abt(32, 32, 8).with_c_transfer(ZaTransferStrategy::Direct);
        let b = block(32, 32, RegisterBlocking::B32x32);
        let mut asm = Assembler::new("direct_store");
        emit_c_transfer(&mut asm, &cfg, &b, TransferDir::Store);
        let p = asm.finish();
        // 32 columns × 2 row groups = 64 STR ZA instructions, no MOVA.
        assert_eq!(
            count(&p, |i| matches!(i, Inst::Sme(SmeInst::StrZa { .. }))),
            64
        );
        assert_eq!(
            count(&p, |i| matches!(i, Inst::Sme(SmeInst::MovaFromTile { .. }))),
            0
        );
    }

    #[test]
    fn two_step_transfer_moves_through_z_registers() {
        let cfg = GemmConfig::abt(32, 32, 8); // TwoStep is the default
        let b = block(32, 32, RegisterBlocking::B32x32);
        let mut asm = Assembler::new("twostep_load");
        emit_c_transfer(&mut asm, &cfg, &b, TransferDir::Load);
        let p = asm.finish();
        assert_eq!(
            count(&p, |i| matches!(i, Inst::Sve(SveInst::Ld1Multi { .. }))),
            32
        );
        assert_eq!(
            count(&p, |i| matches!(i, Inst::Sme(SmeInst::MovaToTile { .. }))),
            64
        );
        assert_eq!(
            count(&p, |i| matches!(i, Inst::Sme(SmeInst::LdrZa { .. }))),
            0
        );
    }

    #[test]
    fn masked_blocks_force_the_predicated_path() {
        let cfg = GemmConfig::abt(100, 100, 8).with_c_transfer(ZaTransferStrategy::Direct);
        let b = block(20, 32, RegisterBlocking::B32x32);
        let mut asm = Assembler::new("masked_store");
        emit_c_transfer(&mut asm, &cfg, &b, TransferDir::Store);
        let p = asm.finish();
        // Rows = 20 is not a multiple of 16, so the direct path is illegal.
        assert_eq!(
            count(&p, |i| matches!(i, Inst::Sme(SmeInst::StrZa { .. }))),
            0
        );
        assert_eq!(
            count(&p, |i| matches!(i, Inst::Sve(SveInst::St1Multi { .. }))),
            32
        );
    }

    #[test]
    fn single_group_blocks_use_single_vector_transfers() {
        let cfg = GemmConfig::abt(16, 64, 8);
        let b = block(16, 64, RegisterBlocking::B16x64);
        let mut asm = Assembler::new("b16x64_store");
        emit_c_transfer(&mut asm, &cfg, &b, TransferDir::Store);
        let p = asm.finish();
        assert_eq!(
            count(&p, |i| matches!(i, Inst::Sve(SveInst::St1 { .. }))),
            64
        );
        assert_eq!(
            count(&p, |i| matches!(i, Inst::Sme(SmeInst::MovaFromTile { .. }))),
            64
        );
    }

    #[test]
    fn column_cursor_advances_between_columns() {
        let cfg = GemmConfig::abt(32, 8, 8);
        let b = block(32, 8, RegisterBlocking::B32x32);
        let mut asm = Assembler::new("cursor");
        emit_c_transfer(&mut asm, &cfg, &b, TransferDir::Load);
        let p = asm.finish();
        let bumps = count(&p, |i| matches!(i, Inst::Scalar(ScalarInst::AddReg { .. })));
        assert_eq!(
            bumps, 7,
            "one bump between each pair of consecutive columns"
        );
    }
}
