//! Reference GEMM implementations used for validating generated kernels and
//! as a portable scalar baseline.

use crate::config::{BLayout, Beta, GemmConfig};

/// Compute the reference result of `cfg` on column-major A/C buffers (and B
/// in the layout selected by the config), updating `c` in place.
///
/// Buffers are indexed exactly as the generated kernel indexes simulated
/// memory, including leading dimensions, so the reference exercises the
/// same aliasing rules.
pub fn gemm_reference(cfg: &GemmConfig, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= cfg.a_len(), "A buffer too small");
    assert!(b.len() >= cfg.b_len(), "B buffer too small");
    assert!(c.len() >= cfg.c_len(), "C buffer too small");
    for col in 0..cfg.n {
        for row in 0..cfg.m {
            let mut acc = match cfg.beta {
                Beta::One => c[col * cfg.ldc + row],
                Beta::Zero => 0.0,
            };
            for kk in 0..cfg.k {
                let a_val = a[kk * cfg.lda + row];
                let b_val = match cfg.b_layout {
                    BLayout::RowMajor => b[kk * cfg.ldb + col],
                    BLayout::ColMajor => b[col * cfg.ldb + kk],
                };
                acc += a_val * b_val;
            }
            c[col * cfg.ldc + row] = acc;
        }
    }
}

/// A cache-blocked scalar GEMM (purely for host-side comparisons and
/// property tests against the naive loop above).
pub fn gemm_blocked_reference(cfg: &GemmConfig, a: &[f32], b: &[f32], c: &mut [f32]) {
    const BLOCK: usize = 32;
    assert!(a.len() >= cfg.a_len(), "A buffer too small");
    assert!(b.len() >= cfg.b_len(), "B buffer too small");
    assert!(c.len() >= cfg.c_len(), "C buffer too small");
    if cfg.beta == Beta::Zero {
        for col in 0..cfg.n {
            for row in 0..cfg.m {
                c[col * cfg.ldc + row] = 0.0;
            }
        }
    }
    for col0 in (0..cfg.n).step_by(BLOCK) {
        let cols = BLOCK.min(cfg.n - col0);
        for row0 in (0..cfg.m).step_by(BLOCK) {
            let rows = BLOCK.min(cfg.m - row0);
            for k0 in (0..cfg.k).step_by(BLOCK) {
                let ks = BLOCK.min(cfg.k - k0);
                for col in col0..col0 + cols {
                    for kk in k0..k0 + ks {
                        let b_val = match cfg.b_layout {
                            BLayout::RowMajor => b[kk * cfg.ldb + col],
                            BLayout::ColMajor => b[col * cfg.ldb + kk],
                        };
                        if b_val == 0.0 {
                            continue;
                        }
                        for row in row0..row0 + rows {
                            c[col * cfg.ldc + row] += a[kk * cfg.lda + row] * b_val;
                        }
                    }
                }
            }
        }
    }
}

/// Maximum absolute difference between two buffers (used by validation).
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// Maximum relative difference between two buffers with an absolute floor
/// (differences below `floor` count as zero).
pub fn max_rel_diff(a: &[f32], b: &[f32], floor: f32) -> f32 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = (x - y).abs();
            if d <= floor {
                0.0
            } else {
                d / x.abs().max(y.abs()).max(floor)
            }
        })
        .fold(0.0, f32::max)
}

/// Deterministic pseudo-random matrix fill used by tests, examples and
/// benchmarks (xorshift; avoids pulling `rand` into the library itself).
pub fn fill_matrix(seed: u64, data: &mut [f32]) {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    for v in data.iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        // Map to [-1, 1) with a few bits of mantissa to keep FP32 sums exact
        // enough for tight validation tolerances.
        *v = ((state >> 40) as i32 - (1 << 23)) as f32 / (1 << 23) as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_problem(cfg: &GemmConfig, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut a = vec![0.0; cfg.a_len()];
        let mut b = vec![0.0; cfg.b_len()];
        let mut c = vec![0.0; cfg.c_len()];
        fill_matrix(seed, &mut a);
        fill_matrix(seed + 1, &mut b);
        fill_matrix(seed + 2, &mut c);
        (a, b, c)
    }

    #[test]
    fn identity_times_matrix_is_matrix() {
        let cfg = GemmConfig::abt(4, 4, 4).with_beta(Beta::Zero);
        // A = I (column-major), B row-major = M.
        let mut a = vec![0.0; 16];
        for i in 0..4 {
            a[i * 4 + i] = 1.0;
        }
        let b: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let mut c = vec![7.0; 16];
        gemm_reference(&cfg, &a, &b, &mut c);
        // C[row][col] = B[row*ldb + col] transposed into column-major C.
        for row in 0..4 {
            for col in 0..4 {
                assert_eq!(c[col * 4 + row], b[row * 4 + col]);
            }
        }
    }

    #[test]
    fn beta_one_accumulates() {
        let cfg = GemmConfig::abt(3, 3, 1);
        let a = vec![1.0; 3];
        let b = vec![1.0; 3];
        let mut c = vec![10.0; 9];
        gemm_reference(&cfg, &a, &b, &mut c);
        assert!(c.iter().all(|&v| v == 11.0));
    }

    #[test]
    fn layouts_agree_when_b_is_symmetric() {
        // With a symmetric B, A·B == A·Bᵀ; check both layouts give the same
        // result on the same logical matrix.
        let m = 8;
        let n = 8;
        let k = 8;
        let mut sym = vec![0.0f32; k * n];
        for i in 0..k {
            for j in 0..n {
                let v = ((i * 31 + j * 17) % 13) as f32 - 6.0;
                sym[i * n + j] = v;
                sym[j * n + i] = v;
            }
        }
        let cfg_abt = GemmConfig::abt(m, n, k).with_beta(Beta::Zero);
        let cfg_ab = GemmConfig::ab(m, n, k).with_beta(Beta::Zero);
        let mut a = vec![0.0; cfg_abt.a_len()];
        fill_matrix(3, &mut a);
        let mut c1 = vec![0.0; cfg_abt.c_len()];
        let mut c2 = vec![0.0; cfg_ab.c_len()];
        // Row-major view of sym equals column-major view of sym.
        gemm_reference(&cfg_abt, &a, &sym, &mut c1);
        gemm_reference(&cfg_ab, &a, &sym, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn blocked_matches_naive() {
        for (m, n, k) in [
            (1, 1, 1),
            (5, 7, 9),
            (32, 32, 32),
            (33, 47, 21),
            (64, 16, 80),
        ] {
            for layout in [BLayout::RowMajor, BLayout::ColMajor] {
                let mut cfg = GemmConfig::abt(m, n, k).with_beta(Beta::One);
                if layout == BLayout::ColMajor {
                    cfg = GemmConfig::ab(m, n, k).with_beta(Beta::One);
                }
                let (a, b, c0) = random_problem(&cfg, 42);
                let mut c_naive = c0.clone();
                let mut c_blocked = c0.clone();
                gemm_reference(&cfg, &a, &b, &mut c_naive);
                // The blocked version zeroes on Beta::Zero only; with
                // Beta::One it accumulates like the naive one.
                gemm_blocked_reference(&cfg, &a, &b, &mut c_blocked);
                let diff = max_abs_diff(&c_naive, &c_blocked);
                assert!(diff < 1e-4, "({m},{n},{k},{layout:?}): diff {diff}");
            }
        }
    }

    #[test]
    fn leading_dimensions_respected() {
        let cfg = GemmConfig::abt(3, 2, 2).with_leading_dims(5, 4, 6);
        let (a, b, mut c) = random_problem(&cfg, 7);
        let sentinel = c[3]; // row 3 of column 0 is padding (m = 3).
        gemm_reference(&cfg, &a, &b, &mut c);
        assert_eq!(c[3], sentinel, "padding rows must not be written");
    }

    #[test]
    fn diff_helpers() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 2.0]), 0.5);
        let rel = max_rel_diff(&[100.0], &[101.0], 1e-6);
        assert!((rel - 1.0 / 101.0).abs() < 1e-6);
        assert_eq!(max_rel_diff(&[1.0], &[1.0], 1e-6), 0.0);
    }

    #[test]
    fn fill_is_deterministic_and_bounded() {
        let mut a = vec![0.0; 100];
        let mut b = vec![0.0; 100];
        fill_matrix(9, &mut a);
        fill_matrix(9, &mut b);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.abs() <= 1.0));
        assert!(a.iter().any(|v| *v != 0.0));
    }
}
