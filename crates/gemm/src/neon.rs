//! Traditional Neon (ASIMD) small-GEMM generation.
//!
//! The paper's Fig. 6 contrasts a classic LIBXSMM Neon microkernel — a 16×6
//! block of C held in 24 128-bit registers, updated with FMLA-by-element —
//! with the SME 32×32 microkernel. This module provides
//!
//! * [`emit_neon_16x6_k_step`], the exact Fig. 6 microkernel body, used for
//!   the instruction-mix comparison, and
//! * [`generate_neon`], a complete Neon GEMM kernel (16×4 blocking, which
//!   avoids over-reading B rows) used as the non-SME baseline in ablation
//!   benchmarks.

use crate::config::{BLayout, Beta, GemmConfig, GemmError};
use crate::microkernel::{
    xr, ARG_A, ARG_B, ARG_C, A_PTR, BK_STRIDE, B_PTR, COL_PTR, C_PTR, K_CNT, LDA_B, LDC_B, TMP0,
};
use crate::widening::{WideningGemmConfig, WideningPackLayout};
use sme_isa::asm::Assembler;
use sme_isa::inst::{NeonInst, ScalarInst};
use sme_isa::regs::VReg;
use sme_isa::types::NeonArrangement;
use sme_isa::Program;

fn vr(n: u8) -> VReg {
    VReg::new(n)
}

/// Emit one contraction step of the Fig. 6 Neon microkernel: a 16×6 block of
/// C in `v4`–`v27`, one column of A in `v0`–`v3`, six broadcast values of B
/// read into `v28`–`v29`, updated with 24 FMLA-by-element instructions.
pub fn emit_neon_16x6_k_step(asm: &mut Assembler) {
    // Load the 16-element A column (64 bytes).
    asm.push(NeonInst::LdpQ {
        vt1: vr(0),
        vt2: vr(1),
        rn: xr(A_PTR),
        imm: 0,
    });
    asm.push(NeonInst::LdpQ {
        vt1: vr(2),
        vt2: vr(3),
        rn: xr(A_PTR),
        imm: 32,
    });
    // Load six B values (two quads; the second overlaps the first by two
    // lanes so only six distinct values are consumed).
    asm.push(NeonInst::LdrQ {
        vt: vr(28),
        rn: xr(B_PTR),
        imm: 0,
    });
    asm.push(NeonInst::LdrQ {
        vt: vr(29),
        rn: xr(B_PTR),
        imm: 16,
    });
    // 6 columns × 4 register quads of C.
    for col in 0..6u8 {
        let (src, lane) = if col < 4 { (28, col) } else { (29, col - 4) };
        for quad in 0..4u8 {
            asm.push(NeonInst::fmla_elem(
                vr(4 + col * 4 + quad),
                vr(quad),
                vr(src),
                lane,
                NeonArrangement::S4,
            ));
        }
    }
}

/// Static description of the Fig. 6 microkernel comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MicrokernelComparison {
    /// Accumulator elements held by the Neon microkernel (16 × 6).
    pub neon_accumulator: usize,
    /// Accumulator registers used by the Neon microkernel.
    pub neon_accum_registers: usize,
    /// FMLA instructions per contraction step.
    pub neon_fmla_per_step: usize,
    /// Multiply-accumulate lanes per Neon FMLA.
    pub neon_macs_per_inst: usize,
    /// Accumulator elements held by the SME microkernel (32 × 32).
    pub sme_accumulator: usize,
    /// FMOPA instructions per contraction step.
    pub sme_fmopa_per_step: usize,
    /// Multiply-accumulate lanes per FMOPA.
    pub sme_macs_per_inst: usize,
}

impl MicrokernelComparison {
    /// The Fig. 6 figures for SVL = 512.
    pub fn figure6() -> Self {
        MicrokernelComparison {
            neon_accumulator: 16 * 6,
            neon_accum_registers: 24,
            neon_fmla_per_step: 24,
            neon_macs_per_inst: 4,
            sme_accumulator: 32 * 32,
            sme_fmopa_per_step: 4,
            sme_macs_per_inst: 256,
        }
    }

    /// Average number of Neon FMLA instructions needed to match the work of
    /// one FMOPA (the paper states 64).
    pub fn fmla_per_fmopa(&self) -> usize {
        self.sme_macs_per_inst / self.neon_macs_per_inst
    }
}

/// Check whether the Neon generator supports `cfg`.
///
/// The only restriction (documented baseline, not the paper's
/// contribution) is the layout: A and C column-major, B row-major. The
/// residual-block path covers everything off the 16×4 register-blocking
/// grid down to single rows and columns — `ldr q`/`ldr d`/`ldr s` move
/// quad, pair and single-lane fragments respectively — so the generator is
/// **total** over valid FP32 `C += A·Bᵀ` configurations, exactly like the
/// SME generator, and the SME/Neon split is a pure performance decision.
/// Both accumulation modes compile ([`Beta::Zero`] zero-initialises the
/// accumulators with `movi`). The `sme-router` consults this before
/// offering the Neon backend for a shape.
pub fn neon_supports(cfg: &GemmConfig) -> Result<(), GemmError> {
    cfg.validate()?;
    if cfg.b_layout != BLayout::RowMajor {
        return Err(GemmError::Unsupported(
            "the Neon baseline generator only supports row-major B".into(),
        ));
    }
    Ok(())
}

/// Generate a complete Neon GEMM kernel for `C += A·Bᵀ` (or `C = A·Bᵀ`
/// under [`Beta::Zero`]).
///
/// The output is tiled with 16×4 register blocks; residual rows (`m % 16`)
/// shrink the last block row to quad/pair/single column segments and
/// residual columns (`n % 4`) shrink the last block column to a narrower
/// block whose B values arrive through `ldr d`/`ldr s` — every valid
/// row-major-B shape compiles ([`neon_supports`]), making the SME/Neon
/// split a pure performance decision.
pub fn generate_neon(cfg: &GemmConfig) -> Result<Program, GemmError> {
    neon_supports(cfg)?;

    let mut asm = Assembler::new(format!("neon_gemm_abt_{}x{}x{}", cfg.m, cfg.n, cfg.k));
    asm.mov_imm64(xr(LDA_B), (cfg.lda * 4) as u64);
    asm.mov_imm64(xr(LDC_B), (cfg.ldc * 4) as u64);

    for col0 in (0..cfg.n).step_by(4) {
        let cols = 4.min(cfg.n - col0);
        for row0 in (0..cfg.m).step_by(16) {
            let rows = 16.min(cfg.m - row0);
            emit_neon_block(&mut asm, cfg, row0, col0, rows, cols);
        }
    }
    asm.ret();
    Ok(asm.finish())
}

/// The V registers covering one `rows`-deep column segment: full quads
/// first, then at most one row pair, then at most one single row
/// (`rows` ≤ 16).
fn segment_regs(rows: usize) -> (usize, usize, usize) {
    (rows / 4, (rows % 4) / 2, rows % 2)
}

/// Emit loads of a `rows`-deep f32 column segment at `ptr` into the
/// consecutive V registers starting at `base`: paired `ldp q` for adjacent
/// quads, `ldr q` for a leftover quad, `ldr d` for a trailing row pair and
/// `ldr s` for a trailing single row (both zero the unused upper lanes,
/// keeping tail FMLA lanes garbage-free).
fn emit_segment_load(asm: &mut Assembler, base: u8, rows: usize, ptr: u8) {
    let (quads, pairs, singles) = segment_regs(rows);
    let mut q = 0;
    while q + 1 < quads {
        asm.push(NeonInst::LdpQ {
            vt1: vr(base + q as u8),
            vt2: vr(base + q as u8 + 1),
            rn: xr(ptr),
            imm: (q * 16) as i32,
        });
        q += 2;
    }
    if q < quads {
        asm.push(NeonInst::LdrQ {
            vt: vr(base + q as u8),
            rn: xr(ptr),
            imm: (q * 16) as u32,
        });
    }
    if pairs > 0 {
        asm.push(NeonInst::LdrD {
            vt: vr(base + quads as u8),
            rn: xr(ptr),
            imm: (quads * 16) as u32,
        });
    }
    if singles > 0 {
        asm.push(NeonInst::LdrS {
            vt: vr(base + (quads + pairs) as u8),
            rn: xr(ptr),
            imm: (quads * 16 + pairs * 8) as u32,
        });
    }
}

/// Store counterpart of [`emit_segment_load`] (`str d`/`str s` write only
/// the row pair's 8 / single row's 4 bytes, so nothing beyond the segment
/// is touched).
fn emit_segment_store(asm: &mut Assembler, base: u8, rows: usize, ptr: u8) {
    let (quads, pairs, singles) = segment_regs(rows);
    let mut q = 0;
    while q + 1 < quads {
        asm.push(NeonInst::StpQ {
            vt1: vr(base + q as u8),
            vt2: vr(base + q as u8 + 1),
            rn: xr(ptr),
            imm: (q * 16) as i32,
        });
        q += 2;
    }
    if q < quads {
        asm.push(NeonInst::StrQ {
            vt: vr(base + q as u8),
            rn: xr(ptr),
            imm: (q * 16) as u32,
        });
    }
    if pairs > 0 {
        asm.push(NeonInst::StrD {
            vt: vr(base + quads as u8),
            rn: xr(ptr),
            imm: (quads * 16) as u32,
        });
    }
    if singles > 0 {
        asm.push(NeonInst::StrS {
            vt: vr(base + (quads + pairs) as u8),
            rn: xr(ptr),
            imm: (quads * 16 + pairs * 8) as u32,
        });
    }
}

/// One `rows × cols` block (`rows` ≤ 16, `cols` ∈ {1, 2, 3, 4}):
/// initialise the accumulators (load C, or `movi #0` under
/// [`Beta::Zero`]), run the contraction loop, store C.
///
/// Register budget: A segment in `v0..`, accumulators from
/// `max(4, segs)` (one column = `segs` registers, at most 4 × 5), B row
/// segment in `v28` (three-wide tails spill the third value to `v29`) —
/// the full 16×4 case reproduces the historical layout (and instruction
/// stream) exactly.
fn emit_neon_block(
    asm: &mut Assembler,
    cfg: &GemmConfig,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
) {
    let (quads, pairs, singles) = segment_regs(rows);
    let segs = (quads + pairs + singles) as u8;
    // A 15-row segment needs five registers (3 quads + pair + single), so
    // the accumulators start past the A segment rather than at the
    // historical v4.
    let acc_base = 4u8.max(segs);
    let acc = |col: usize, seg: usize| vr(acc_base + col as u8 * segs + seg as u8);

    // Pointers.
    asm.push(ScalarInst::MovReg {
        rd: xr(A_PTR),
        rn: xr(ARG_A),
    });
    if row0 > 0 {
        asm.add_imm(xr(A_PTR), xr(A_PTR), (row0 * 4) as u64);
    }
    asm.push(ScalarInst::MovReg {
        rd: xr(B_PTR),
        rn: xr(ARG_B),
    });
    if col0 > 0 {
        asm.add_imm(xr(B_PTR), xr(B_PTR), (col0 * 4) as u64);
    }
    asm.push(ScalarInst::MovReg {
        rd: xr(C_PTR),
        rn: xr(ARG_C),
    });
    let c_off = cfg.c_offset(row0, col0) as u64;
    if c_off > 0 {
        asm.add_imm(xr(C_PTR), xr(C_PTR), c_off);
    }

    // Initialise the accumulators: column segments of C, or zeros.
    match cfg.beta {
        Beta::One => {
            asm.push(ScalarInst::MovReg {
                rd: xr(COL_PTR),
                rn: xr(C_PTR),
            });
            for col in 0..cols {
                emit_segment_load(asm, acc_base + col as u8 * segs, rows, COL_PTR);
                if col + 1 < cols {
                    asm.push(ScalarInst::AddReg {
                        rd: xr(COL_PTR),
                        rn: xr(COL_PTR),
                        rm: xr(LDC_B),
                        shift: None,
                    });
                }
            }
        }
        Beta::Zero => {
            for col in 0..cols {
                for seg in 0..segs as usize {
                    asm.push(NeonInst::MoviZero {
                        vd: acc(col, seg),
                        arrangement: NeonArrangement::S4,
                    });
                }
            }
        }
    }

    // Contraction loop.
    asm.mov_imm64(xr(K_CNT), cfg.k as u64);
    let top = asm.new_label();
    asm.bind(top);
    asm.push(ScalarInst::SubImm {
        rd: xr(K_CNT),
        rn: xr(K_CNT),
        imm12: 1,
        shift12: false,
    });
    // A column segment (`rows` values).
    emit_segment_load(asm, 0, rows, A_PTR);
    // B row segment (`cols` values; each tail width loads exactly the
    // values it consumes — `ldr q`/`ldr d`/`ldr s` for 4/2/1, and a
    // three-wide tail pairs `ldr d` with an `ldr s` of the third value
    // into v29 — so nothing past the row's end is read).
    match cols {
        4 => asm.push(NeonInst::LdrQ {
            vt: vr(28),
            rn: xr(B_PTR),
            imm: 0,
        }),
        3 => {
            asm.push(NeonInst::LdrD {
                vt: vr(28),
                rn: xr(B_PTR),
                imm: 0,
            });
            asm.push(NeonInst::LdrS {
                vt: vr(29),
                rn: xr(B_PTR),
                imm: 8,
            });
        }
        2 => asm.push(NeonInst::LdrD {
            vt: vr(28),
            rn: xr(B_PTR),
            imm: 0,
        }),
        _ => asm.push(NeonInst::LdrS {
            vt: vr(28),
            rn: xr(B_PTR),
            imm: 0,
        }),
    }
    asm.push(ScalarInst::AddReg {
        rd: xr(A_PTR),
        rn: xr(A_PTR),
        rm: xr(LDA_B),
        shift: None,
    });
    // B advances by one row: ldb * 4 bytes. Reuse TMP via an immediate add.
    asm.add_imm(xr(B_PTR), xr(B_PTR), (cfg.ldb * 4) as u64);
    for col in 0..cols {
        // A three-wide tail holds its third B value in lane 0 of v29.
        let (b_reg, b_lane) = if cols == 3 && col == 2 {
            (29u8, 0u8)
        } else {
            (28u8, col as u8)
        };
        for seg in 0..segs as usize {
            asm.push(NeonInst::fmla_elem(
                acc(col, seg),
                vr(seg as u8),
                vr(b_reg),
                b_lane,
                NeonArrangement::S4,
            ));
        }
    }
    asm.cbnz(xr(K_CNT), top);

    // Store the C block back.
    asm.push(ScalarInst::MovReg {
        rd: xr(COL_PTR),
        rn: xr(C_PTR),
    });
    for col in 0..cols {
        emit_segment_store(asm, acc_base + col as u8 * segs, rows, COL_PTR);
        if col + 1 < cols {
            asm.push(ScalarInst::AddReg {
                rd: xr(COL_PTR),
                rn: xr(COL_PTR),
                rm: xr(LDC_B),
                shift: None,
            });
        }
    }
}

/// A generated Neon GEMM kernel with the same execution surface as the SME
/// [`crate::CompiledKernel`].
///
/// The Neon backend has no block plan or ZA-transfer knobs — the 16×4
/// register blocking is fixed — so the handle carries only the
/// configuration and the instruction stream. It is normally reached through
/// [`crate::RoutedKernel`], the backend-agnostic kernel the runtime cache
/// stores.
#[derive(Debug, Clone)]
pub struct NeonKernel {
    cfg: GemmConfig,
    program: Program,
}

impl NeonKernel {
    /// The configuration the kernel was generated for.
    pub fn config(&self) -> &GemmConfig {
        &self.cfg
    }

    /// The generated instruction stream.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Floating-point operations per kernel execution.
    pub fn flops(&self) -> u64 {
        self.cfg.flops()
    }

    /// Execute the kernel functionally on pseudo-random operands (same
    /// seeding scheme as [`crate::CompiledKernel::validate`]) and return
    /// the maximum absolute difference from the reference GEMM.
    pub fn validate(&self, seed: u64) -> f32 {
        crate::kernel::validate_program(&self.cfg, &self.program, seed)
    }

    /// Model the kernel's performance on a single performance core.
    pub fn model_stats(&self) -> sme_machine::ExecStats {
        crate::kernel::model_program_stats(&self.cfg, &self.program)
    }
}

/// Generate a Neon kernel behind the [`NeonKernel`] handle — the dispatch
/// path used by the `sme-runtime` cache for Neon-routed configurations.
pub fn generate_neon_kernel(cfg: &GemmConfig) -> Result<NeonKernel, GemmError> {
    let program = generate_neon(cfg)?;
    Ok(NeonKernel { cfg: *cfg, program })
}

/// Validate a Neon-generated kernel against the reference GEMM and return
/// the maximum absolute error.
pub fn validate_neon(cfg: &GemmConfig, seed: u64) -> Result<f32, GemmError> {
    use crate::reference::{fill_matrix, gemm_reference, max_abs_diff};
    use sme_machine::exec::{RunOptions, Simulator};

    let program = generate_neon(cfg)?;
    let mut sim = Simulator::m4_performance();
    let mut a = vec![0.0f32; cfg.a_len()];
    let mut b = vec![0.0f32; cfg.b_len()];
    let mut c = vec![0.0f32; cfg.c_len()];
    fill_matrix(seed, &mut a);
    fill_matrix(seed + 1, &mut b);
    fill_matrix(seed + 2, &mut c);
    let a_addr = sim.mem.alloc_f32(&a, 128);
    let b_addr = sim.mem.alloc_f32(&b, 128);
    let c_addr = sim.mem.alloc_f32(&c, 128);
    sim.run(
        &program,
        &[a_addr, b_addr, c_addr],
        &RunOptions::functional_only(),
    );
    let c_out = sim.mem.read_f32_slice(c_addr, cfg.c_len());
    let mut c_ref = c;
    gemm_reference(cfg, &a, &b, &mut c_ref);
    Ok(max_abs_diff(&c_out, &c_ref))
}

/// Check whether the Neon widening (`BFMMLA`) generator supports `cfg`.
///
/// Total over the envelope grid, like its twin
/// [`crate::widening::sme_widening_supports`]: the 8×2 register blocking
/// steps whole row/column pairs and zero-padded contraction quads, so its
/// grid is exactly the `m % 8` / `n % 2` / even-`k` envelope
/// [`WideningGemmConfig::validate`] enforces. The grid is checked
/// explicitly here — not left implicit in `validate` — so the two
/// `*_supports` functions read symmetrically and a future blocking change
/// has one obvious place to narrow.
pub fn neon_widening_supports(cfg: &WideningGemmConfig) -> Result<(), GemmError> {
    cfg.validate()?;
    if !cfg.m.is_multiple_of(8) || !cfg.n.is_multiple_of(2) || !cfg.k.is_multiple_of(2) {
        return Err(GemmError::Unsupported(format!(
            "the Neon BFMMLA blocking requires m % 8 == 0, n % 2 == 0 and an even k \
             (got {}x{}x{})",
            cfg.m, cfg.n, cfg.k
        )));
    }
    Ok(())
}

/// A generated Neon BF16 → FP32 widening kernel (`BFMMLA`), sharing the
/// validation/modelling surface of [`crate::widening::WideningKernel`].
///
/// It consumes the `BFMMLA`-packed operands of
/// [`crate::widening::pack_a_bf16_mmla`] /
/// [`crate::widening::pack_b_bf16_mmla`]; which packing a buffer carries is
/// a per-backend detail hidden behind [`crate::RoutedKernel`]'s buffer
/// allocation, exactly like the FP32 backends' differing access patterns.
#[derive(Debug, Clone)]
pub struct NeonWideningKernel {
    cfg: WideningGemmConfig,
    program: Program,
}

impl NeonWideningKernel {
    /// The configuration the kernel was generated for.
    pub fn config(&self) -> &WideningGemmConfig {
        &self.cfg
    }

    /// The generated instruction stream.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Assembly listing.
    pub fn disassembly(&self) -> String {
        sme_isa::disasm::disassemble_program(&self.program)
    }

    /// Floating-point operations per kernel execution.
    pub fn flops(&self) -> u64 {
        self.cfg.flops()
    }

    /// Validate against the scalar BF16-rounded oracle
    /// ([`crate::widening::widening_reference`]); returns the maximum
    /// **relative** error (assert it below
    /// [`crate::widening::WIDENING_REL_TOL`]).
    pub fn validate(&self, seed: u64) -> f32 {
        crate::widening::validate_widening_program(
            &self.cfg,
            &self.program,
            seed,
            WideningPackLayout::Mmla,
        )
    }

    /// Timing-only execution statistics on one performance core.
    pub fn model_stats(&self) -> sme_machine::ExecStats {
        crate::widening::model_widening_program_stats(
            &self.cfg,
            &self.program,
            WideningPackLayout::Mmla,
        )
    }
}

/// Generate a Neon `BFMMLA` widening kernel for `C += A·Bᵀ` on BF16-packed
/// operands.
///
/// Each `BFMMLA` multiplies a row pair of A by a column pair of B over one
/// contraction quad into a 2×2 FP32 accumulator; the kernel blocks C as
/// 8 rows × 2 columns (four accumulators), so one A fetch (two `ldp q`) and
/// one B fetch (`ldr q`) feed four matrix instructions per quad. Operand
/// order is chosen so each accumulator's 64-bit halves are contiguous
/// column fragments of the column-major C, moved with `ldr d`/`str d` plus
/// one `ins`/`dup` lane shuffle per row pair.
pub fn generate_neon_widening(cfg: &WideningGemmConfig) -> Result<NeonWideningKernel, GemmError> {
    neon_widening_supports(cfg)?;
    let mut asm = Assembler::new(format!("neon_gemm_bf16_{}x{}x{}", cfg.m, cfg.n, cfg.k));
    // Per contraction quad, packed A advances by (m/2) registers of 16
    // bytes and packed B by (n/2).
    asm.mov_imm64(xr(LDA_B), (cfg.m * 8) as u64);
    asm.mov_imm64(xr(BK_STRIDE), (cfg.n * 8) as u64);
    asm.mov_imm64(xr(LDC_B), (cfg.m * 4) as u64);
    for col0 in (0..cfg.n).step_by(2) {
        for row0 in (0..cfg.m).step_by(8) {
            emit_neon_widening_8x2_block(&mut asm, cfg, row0, col0);
        }
    }
    asm.ret();
    Ok(NeonWideningKernel {
        cfg: *cfg,
        program: asm.finish(),
    })
}

/// One 8×2 widening block: load C, run the contraction-quad loop, store C.
///
/// Accumulator `v4+p` (row pair `p`) holds
/// `[C[r0+2p, j0], C[r0+2p+1, j0], C[r0+2p, j0+1], C[r0+2p+1, j0+1]]` —
/// each half a contiguous 8-byte fragment of one C column.
fn emit_neon_widening_8x2_block(
    asm: &mut Assembler,
    cfg: &WideningGemmConfig,
    row0: usize,
    col0: usize,
) {
    // Pointers into the packed operands: the block's first row pair /
    // column pair of contraction quad 0.
    asm.push(ScalarInst::MovReg {
        rd: xr(A_PTR),
        rn: xr(ARG_A),
    });
    if row0 > 0 {
        asm.add_imm(xr(A_PTR), xr(A_PTR), (row0 / 2 * 16) as u64);
    }
    asm.push(ScalarInst::MovReg {
        rd: xr(B_PTR),
        rn: xr(ARG_B),
    });
    if col0 > 0 {
        asm.add_imm(xr(B_PTR), xr(B_PTR), (col0 / 2 * 16) as u64);
    }
    asm.push(ScalarInst::MovReg {
        rd: xr(C_PTR),
        rn: xr(ARG_C),
    });
    let c_off = ((col0 * cfg.m + row0) * 4) as u64;
    if c_off > 0 {
        if c_off < (1 << 24) {
            asm.add_imm(xr(C_PTR), xr(C_PTR), c_off);
        } else {
            asm.mov_imm64(xr(TMP0), c_off);
            asm.push(ScalarInst::AddReg {
                rd: xr(C_PTR),
                rn: xr(C_PTR),
                rm: xr(TMP0),
                shift: None,
            });
        }
    }

    // Load the 8x2 C block into v4..v7: column j0 fragments into the low
    // halves, column j0+1 fragments inserted into the high halves.
    asm.push(ScalarInst::MovReg {
        rd: xr(COL_PTR),
        rn: xr(C_PTR),
    });
    for pair in 0..4u8 {
        asm.push(NeonInst::LdrD {
            vt: vr(4 + pair),
            rn: xr(COL_PTR),
            imm: pair as u32 * 8,
        });
    }
    asm.push(ScalarInst::AddReg {
        rd: xr(COL_PTR),
        rn: xr(COL_PTR),
        rm: xr(LDC_B),
        shift: None,
    });
    for pair in 0..4u8 {
        asm.push(NeonInst::LdrD {
            vt: vr(8),
            rn: xr(COL_PTR),
            imm: pair as u32 * 8,
        });
        asm.push(NeonInst::InsElemD {
            vd: vr(4 + pair),
            vn: vr(8),
            dst: 1,
            src: 0,
        });
    }

    // Contraction loop over k quads (the packing zero-pads a trailing
    // half-quad).
    asm.mov_imm64(xr(K_CNT), cfg.k.div_ceil(4) as u64);
    let top = asm.new_label();
    asm.bind(top);
    asm.push(ScalarInst::SubImm {
        rd: xr(K_CNT),
        rn: xr(K_CNT),
        imm12: 1,
        shift12: false,
    });
    // Four A row pairs (64 bytes) and one B column pair (16 bytes).
    asm.push(NeonInst::LdpQ {
        vt1: vr(0),
        vt2: vr(1),
        rn: xr(A_PTR),
        imm: 0,
    });
    asm.push(NeonInst::LdpQ {
        vt1: vr(2),
        vt2: vr(3),
        rn: xr(A_PTR),
        imm: 32,
    });
    asm.push(NeonInst::LdrQ {
        vt: vr(28),
        rn: xr(B_PTR),
        imm: 0,
    });
    asm.push(ScalarInst::AddReg {
        rd: xr(A_PTR),
        rn: xr(A_PTR),
        rm: xr(LDA_B),
        shift: None,
    });
    asm.push(ScalarInst::AddReg {
        rd: xr(B_PTR),
        rn: xr(B_PTR),
        rm: xr(BK_STRIDE),
        shift: None,
    });
    // vn = B column pair, vm = A row pair: the result lanes land so that
    // each 64-bit half of the accumulator is one column fragment.
    for pair in 0..4u8 {
        asm.push(NeonInst::Bfmmla {
            vd: vr(4 + pair),
            vn: vr(28),
            vm: vr(pair),
        });
    }
    asm.cbnz(xr(K_CNT), top);

    // Store the block back: low halves to column j0, high halves (via a
    // D-lane broadcast) to column j0+1.
    asm.push(ScalarInst::MovReg {
        rd: xr(COL_PTR),
        rn: xr(C_PTR),
    });
    for pair in 0..4u8 {
        asm.push(NeonInst::StrD {
            vt: vr(4 + pair),
            rn: xr(COL_PTR),
            imm: pair as u32 * 8,
        });
    }
    asm.push(ScalarInst::AddReg {
        rd: xr(COL_PTR),
        rn: xr(COL_PTR),
        rm: xr(LDC_B),
        shift: None,
    });
    for pair in 0..4u8 {
        asm.push(NeonInst::DupElem {
            vd: vr(8),
            vn: vr(4 + pair),
            index: 1,
            arrangement: NeonArrangement::D2,
        });
        asm.push(NeonInst::StrD {
            vt: vr(8),
            rn: xr(COL_PTR),
            imm: pair as u32 * 8,
        });
    }
}

/// Modelled single-performance-core throughput of the Neon baseline kernel.
pub fn model_neon_gflops(cfg: &GemmConfig) -> Result<f64, GemmError> {
    use sme_machine::exec::{RunOptions, Simulator};
    let program = generate_neon(cfg)?;
    let mut sim = Simulator::m4_performance();
    let a = sim.mem.alloc_f32_zeroed(cfg.a_len(), 128);
    let b = sim.mem.alloc_f32_zeroed(cfg.b_len(), 128);
    let c = sim.mem.alloc_f32_zeroed(cfg.c_len(), 128);
    let result = sim.run(&program, &[a, b, c], &RunOptions::timing_only());
    let seconds = result.stats.seconds();
    Ok(cfg.flops() as f64 / seconds / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sme_isa::inst::Inst;

    #[test]
    fn figure6_comparison_numbers() {
        let cmp = MicrokernelComparison::figure6();
        assert_eq!(cmp.neon_accum_registers, 24);
        assert_eq!(
            cmp.fmla_per_fmopa(),
            64,
            "the paper quotes 64 FMLA per FMOPA"
        );
        assert_eq!(cmp.sme_accumulator, 1024);
        assert_eq!(cmp.neon_accumulator, 96);
    }

    #[test]
    fn microkernel_step_instruction_mix() {
        let mut asm = Assembler::new("fig6_neon");
        emit_neon_16x6_k_step(&mut asm);
        let p = asm.finish();
        let fmla = p.count_matching(|i| matches!(i, Inst::Neon(NeonInst::FmlaElem { .. })));
        let loads = p.count_matching(|i| {
            matches!(
                i,
                Inst::Neon(NeonInst::LdpQ { .. }) | Inst::Neon(NeonInst::LdrQ { .. })
            )
        });
        assert_eq!(fmla, 24, "24 FMLA (by element) per step");
        assert_eq!(loads, 4);
    }

    #[test]
    fn neon_kernel_validates() {
        for (m, n, k) in [(16, 4, 8), (32, 8, 16), (48, 12, 7)] {
            let cfg = GemmConfig::abt(m, n, k);
            let err = validate_neon(&cfg, 3).expect("generation must succeed");
            assert!(err < 1e-4, "({m},{n},{k}): {err}");
        }
    }

    #[test]
    fn neon_edge_blocks_validate() {
        // Shapes off the 16x4 grid: residual row segments (quad and pair
        // tails), the two-wide column tail, and their combinations down to
        // the 2x2 envelope minimum.
        for (m, n, k) in [
            (18, 4, 8),  // one row pair below the block
            (16, 6, 8),  // two-wide column tail
            (34, 10, 7), // both residuals, odd depth
            (2, 2, 4),   // envelope minimum
            (46, 14, 5), // 14-row tail: quad + quad + quad + pair
            (8, 4, 16),  // sub-block rows only
            (12, 2, 3),  // three quads, single two-wide column
        ] {
            let cfg = GemmConfig::abt(m, n, k);
            let err = validate_neon(&cfg, 11).expect("generation must succeed");
            assert!(err < 1e-4, "({m},{n},{k}): {err}");
            // Padded leading dimensions exercise the same masked blocks
            // with non-tight strides.
            let padded = cfg.with_leading_dims(m + 6, n + 2, m + 4);
            let err = validate_neon(&padded, 12).expect("generation must succeed");
            assert!(err < 1e-4, "padded ({m},{n},{k}): {err}");
        }
    }

    #[test]
    fn neon_beta_zero_overwrites_c() {
        for (m, n, k) in [(16, 4, 8), (18, 6, 5), (2, 2, 3)] {
            let cfg = GemmConfig::abt(m, n, k).with_beta(Beta::Zero);
            let err = validate_neon(&cfg, 21).expect("beta = 0 must compile");
            assert!(err < 1e-4, "({m},{n},{k}) beta=0: {err}");
        }
        // The zero path emits movi instead of accumulator loads.
        let program = generate_neon(&GemmConfig::abt(16, 4, 8).with_beta(Beta::Zero)).unwrap();
        assert!(program.count_matching(|i| matches!(i, Inst::Neon(NeonInst::MoviZero { .. }))) > 0);
    }

    #[test]
    fn neon_restrictions_are_reported() {
        // Only the layout restriction remains: column-major B is rejected.
        assert!(generate_neon(&GemmConfig::ab(16, 4, 8)).is_err());
        // The beta = 1 restriction is gone; even off-grid shapes compile.
        assert!(generate_neon(&GemmConfig::abt(16, 4, 8).with_beta(Beta::Zero)).is_ok());
        assert!(generate_neon(&GemmConfig::abt(18, 6, 8)).is_ok());
    }

    #[test]
    fn neon_odd_shapes_compile_and_match_the_oracle() {
        // Previously rejected with "requires even m and n"; the `ldr s` /
        // `str s` single-row machinery makes the generator total over
        // row-major-B FP32 shapes.
        for (m, n, k) in [
            (17, 4, 8),  // odd m: single-row tail segment
            (16, 5, 8),  // odd n: one-wide column tail
            (9, 3, 5),   // odd m and three-wide column tail
            (15, 7, 6),  // quad + pair + single rows, 3-wide tail
            (1, 1, 4),   // envelope minimum
            (33, 31, 9), // off-grid in every dimension
        ] {
            let cfg = GemmConfig::abt(m, n, k);
            let err = validate_neon(&cfg, 17).expect("odd shapes must compile");
            assert!(err < 1e-4, "({m},{n},{k}): {err}");
            let padded = cfg.with_leading_dims(m + 3, n + 1, m + 5);
            let err = validate_neon(&padded, 18).expect("padded odd shapes must compile");
            assert!(err < 1e-4, "padded ({m},{n},{k}): {err}");
            let beta0 = cfg.with_beta(Beta::Zero);
            let err = validate_neon(&beta0, 19).expect("beta = 0 odd shapes must compile");
            assert!(err < 1e-4, "beta=0 ({m},{n},{k}): {err}");
        }
    }

    #[test]
    fn neon_widening_kernel_validates_across_the_envelope_grid() {
        use crate::widening::WIDENING_REL_TOL;
        for (m, n, k) in [
            (8, 2, 2),
            (16, 4, 8),
            (16, 4, 10), // k % 4 == 2: exercises the zero-padded quad
            (32, 32, 16),
            (40, 6, 12),
        ] {
            let cfg = WideningGemmConfig::new(m, n, k).unwrap();
            let kernel = generate_neon_widening(&cfg).expect("generation");
            let err = kernel.validate(7);
            assert!(err < WIDENING_REL_TOL, "({m},{n},{k}): {err}");
        }
    }

    #[test]
    fn neon_widening_kernel_uses_bfmmla() {
        let cfg = WideningGemmConfig::new(16, 4, 8).unwrap();
        let kernel = generate_neon_widening(&cfg).unwrap();
        let bfmmlas = kernel
            .program()
            .count_matching(|i| matches!(i, Inst::Neon(NeonInst::Bfmmla { .. })));
        // Static count: (16/8) * (4/2) blocks x 4 row pairs in the loop body.
        assert_eq!(bfmmlas, 2 * 2 * 4);
        assert!(kernel.disassembly().contains("bfmmla"));
        assert!(kernel.disassembly().contains("ldr d"));
    }

    #[test]
    fn neon_widening_rejects_off_grid_shapes() {
        assert!(WideningGemmConfig::new(12, 4, 8).is_err(), "m % 8");
        assert!(WideningGemmConfig::new(16, 3, 8).is_err(), "n % 2");
        assert!(WideningGemmConfig::new(16, 4, 7).is_err(), "odd k");
    }

    #[test]
    fn neon_is_far_slower_than_sme_for_the_same_problem() {
        let cfg = GemmConfig::abt(64, 64, 64);
        let neon = model_neon_gflops(&cfg).unwrap();
        let sme = crate::generate(&cfg).unwrap().model_gflops();
        assert!(
            neon < 120.0,
            "Neon baseline {neon} must stay near the 113 GFLOPS peak"
        );
        assert!(
            sme > 4.0 * neon,
            "SME ({sme}) must be several times faster than Neon ({neon})"
        );
    }
}
