//! Microkernel emission: the register conventions of the generated kernels
//! and the code for one block instance (predicate setup, accumulator
//! load/zero, the contraction loop of Lst. 4, accumulator store).

use crate::blocking::{BlockInstance, TILE};
use crate::config::{Beta, GemmConfig};
use crate::loads::{emit_c_transfer, emit_zero_tiles, TransferDir};
use sme_isa::asm::Assembler;
use sme_isa::inst::{ScalarInst, SmeInst, SveInst};
use sme_isa::regs::{PReg, PnReg, XReg, ZReg};
use sme_isa::types::ElementType;

// Register conventions shared by all emitted kernels. The calling
// convention follows LIBXSMM: X0 = A, X1 = B, X2 = C (all simulated
// addresses). The remaining assignments are internal to the generator.

/// Pointer to A (kernel argument 0).
pub(crate) const ARG_A: u8 = 0;
/// Pointer to B (kernel argument 1).
pub(crate) const ARG_B: u8 = 1;
/// Pointer to C (kernel argument 2).
pub(crate) const ARG_C: u8 = 2;
/// Per-block cursor into A.
pub(crate) const A_PTR: u8 = 3;
/// Per-block cursor into B (or the transposed scratch panel).
pub(crate) const B_PTR: u8 = 4;
/// Per-block base pointer into C.
pub(crate) const C_PTR: u8 = 5;
/// Base of the transposed-B scratch buffer (column-major B only).
pub(crate) const SCRATCH: u8 = 6;
/// Contraction-loop counter.
pub(crate) const K_CNT: u8 = 7;
/// Scratch register for immediate materialisation.
pub(crate) const TMP0: u8 = 8;
/// A column stride in bytes (`lda * 4`).
pub(crate) const LDA_B: u8 = 9;
/// B contraction-step stride in bytes (`ldb * 4`, or 128 for the scratch
/// panel).
pub(crate) const BK_STRIDE: u8 = 10;
/// C column stride in bytes (`ldc * 4`).
pub(crate) const LDC_B: u8 = 11;
/// ZA slice-index register (the architectural W12).
pub(crate) const W12: u8 = 12;
/// Per-column cursor used by accumulator transfers and the transposer.
pub(crate) const COL_PTR: u8 = 13;
/// Scratch register (whilelt limits).
pub(crate) const TMP1: u8 = 14;
/// Original B column stride in bytes (`ldb * 4`) for the transposer.
pub(crate) const LDB_B: u8 = 17;

/// First Z register holding A values (one per 16-row group).
pub(crate) const ZA_A: u8 = 0;
/// First Z register holding B values (one per 16-column group).
pub(crate) const ZB_B: u8 = 4;
/// First Z register used to stage accumulator columns during two-step
/// transfers.
pub(crate) const ZC_STAGE: u8 = 8;
/// First Z register of the secondary (double-buffered) A set used by the
/// pipelined schedule.
pub(crate) const ZA_ALT: u8 = 16;
/// First Z register of the secondary (double-buffered) B set used by the
/// pipelined schedule.
pub(crate) const ZB_ALT: u8 = 20;

/// Predicate register for row group `rg` (masks A values / C rows).
pub(crate) fn row_pred(rg: usize) -> PReg {
    PReg::new(rg as u8)
}

/// Predicate register for column group `cg` (masks B values / C columns).
pub(crate) fn col_pred(cg: usize) -> PReg {
    PReg::new(4 + cg as u8)
}

/// Predicate-as-counter register governing multi-vector A / C-column loads.
pub(crate) fn a_counter() -> PnReg {
    PnReg::new(8)
}

/// Predicate-as-counter register governing multi-vector B loads.
pub(crate) fn b_counter() -> PnReg {
    PnReg::new(9)
}

/// Predicate register masking single-vector packed-BF16 A loads of the
/// widening microkernel (halfword lanes: two packed elements per row).
///
/// `ld1h`'s governing-predicate field is 3 bits, so this must sit in
/// P0–P7. P3 is free whenever the register is actually consumed: a
/// single-vector A load means one active row group, so of the row
/// predicates only [`row_pred`]`(0)` is live (more groups switch the load
/// to the counter-governed multi-vector form, which never reads this).
pub(crate) fn wa_pred() -> PReg {
    PReg::new(3)
}

/// Predicate register masking single-vector packed-BF16 B loads of the
/// widening microkernel. P7 by the same argument as [`wa_pred`]: a
/// single-vector B load means only [`col_pred`]`(0)` is live.
pub(crate) fn wb_pred() -> PReg {
    PReg::new(7)
}

/// Counter register governing multi-vector packed-BF16 A loads of the
/// widening microkernel (counts halfword elements, i.e. `2 × rows`).
pub(crate) fn wa_counter() -> PnReg {
    PnReg::new(12)
}

/// Counter register governing multi-vector packed-BF16 B loads of the
/// widening microkernel.
pub(crate) fn wb_counter() -> PnReg {
    PnReg::new(13)
}

/// Counter register governing the pipelined schedule's secondary A loads.
///
/// The secondary loads are always counter-governed (even one-group blocks
/// use a two-vector counted load): a single-vector `ld1w`'s governing
/// predicate must sit in P0–P7, which are owned by the *current* block's
/// row/column masks while the next block's operands stream in.
pub(crate) fn alt_a_counter() -> PnReg {
    PnReg::new(10)
}

/// Counter register governing the pipelined schedule's secondary B loads.
pub(crate) fn alt_b_counter() -> PnReg {
    PnReg::new(11)
}

pub(crate) fn xr(n: u8) -> XReg {
    XReg::new(n)
}

pub(crate) fn zr(n: u8) -> ZReg {
    ZReg::new(n)
}

/// Where the microkernel reads B from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BSource {
    /// Directly from the row-major B operand (the `C += A·Bᵀ` case).
    RowMajor,
    /// From the transposed scratch panel built by
    /// [`crate::transpose::emit_panel_transpose`]; the payload is the first
    /// column of the panel.
    Scratch {
        /// Absolute index of the panel's first column.
        panel_col0: usize,
    },
}

/// Emit `mov <reg>, #value; whilelt <pred>.<t>, xzr, <reg>` — a predicate
/// covering the first `value` lanes of width `elem`.
pub(crate) fn emit_lane_predicate(
    asm: &mut Assembler,
    pred: PReg,
    lanes: usize,
    elem: ElementType,
) {
    asm.push(ScalarInst::mov_imm16(xr(TMP1), lanes as u16));
    asm.push(SveInst::Whilelt {
        pd: pred,
        elem,
        rn: XReg::XZR,
        rm: xr(TMP1),
    });
}

/// Emit a predicate-as-counter covering the first `count` lanes of width
/// `elem` across a `vecs`-vector group.
pub(crate) fn emit_counter_predicate(
    asm: &mut Assembler,
    pn: PnReg,
    count: usize,
    vecs: usize,
    elem: ElementType,
) {
    asm.push(ScalarInst::mov_imm16(xr(TMP1), count as u16));
    asm.push(SveInst::WhileltCnt {
        pn,
        elem,
        rn: XReg::XZR,
        rm: xr(TMP1),
        vl: if vecs >= 4 { 4 } else { 2 },
    });
}

/// Number of vector registers used by a multi-vector load covering `groups`
/// 16-lane groups (1, 2 or 4; three groups round up to a four-register
/// load).
pub(crate) fn load_vectors(groups: usize) -> usize {
    match groups {
        0 | 1 => 1,
        2 => 2,
        _ => 4,
    }
}

/// Emit the predicate setup for one block: per-group lane predicates plus
/// the multi-vector load counters.
pub(crate) fn emit_block_predicates(asm: &mut Assembler, block: &BlockInstance) {
    let rows = block.rows;
    let cols = block.cols;
    for rg in 0..block.active_row_groups() {
        let lanes = TILE.min(rows - rg * TILE);
        emit_lane_predicate(asm, row_pred(rg), lanes, ElementType::F32);
    }
    for cg in 0..block.active_col_groups() {
        let lanes = TILE.min(cols - cg * TILE);
        emit_lane_predicate(asm, col_pred(cg), lanes, ElementType::F32);
    }
    if load_vectors(block.active_row_groups()) > 1 {
        emit_counter_predicate(
            asm,
            a_counter(),
            rows,
            load_vectors(block.active_row_groups()),
            ElementType::F32,
        );
    }
    if load_vectors(block.active_col_groups()) > 1 {
        emit_counter_predicate(
            asm,
            b_counter(),
            cols,
            load_vectors(block.active_col_groups()),
            ElementType::F32,
        );
    }
}

/// Emit a load of `groups` 16-lane groups starting at Z register `z_first`
/// from the pointer register `ptr` (the Lst. 4 operand loads).
pub(crate) fn emit_operand_load(
    asm: &mut Assembler,
    z_first: u8,
    groups: usize,
    single_pred: PReg,
    counter: PnReg,
    ptr: u8,
) {
    let vecs = load_vectors(groups);
    if vecs == 1 {
        asm.push(SveInst::ld1w(zr(z_first), single_pred, xr(ptr), 0));
    } else {
        asm.push(SveInst::ld1w_multi(
            zr(z_first),
            vecs as u8,
            counter,
            xr(ptr),
            0,
        ));
    }
}

/// Emit the pointer initialisation for one block.
pub(crate) fn emit_block_pointers(
    asm: &mut Assembler,
    cfg: &GemmConfig,
    block: &BlockInstance,
    b_source: BSource,
) {
    emit_ab_pointers(asm, block, b_source);
    emit_c_pointer(asm, cfg, block);
}

/// Emit the A/B cursor initialisation for one block. Split from
/// [`emit_block_pointers`] so the pipelined schedule can reset the operand
/// cursors early (before the previous block's C store) while the C pointer
/// is still in use.
pub(crate) fn emit_ab_pointers(asm: &mut Assembler, block: &BlockInstance, b_source: BSource) {
    // A cursor: column 0 of the block's rows.
    asm.push(ScalarInst::MovReg {
        rd: xr(A_PTR),
        rn: xr(ARG_A),
    });
    if block.row0 > 0 {
        asm.add_imm(xr(A_PTR), xr(A_PTR), (block.row0 * 4) as u64);
    }
    // B cursor.
    match b_source {
        BSource::RowMajor => {
            asm.push(ScalarInst::MovReg {
                rd: xr(B_PTR),
                rn: xr(ARG_B),
            });
            if block.col0 > 0 {
                asm.add_imm(xr(B_PTR), xr(B_PTR), (block.col0 * 4) as u64);
            }
        }
        BSource::Scratch { panel_col0 } => {
            asm.push(ScalarInst::MovReg {
                rd: xr(B_PTR),
                rn: xr(SCRATCH),
            });
            let off = (block.col0 - panel_col0) * 4;
            if off > 0 {
                asm.add_imm(xr(B_PTR), xr(B_PTR), off as u64);
            }
        }
    }
}

/// Emit the C base-pointer initialisation for one block (the other half of
/// [`emit_block_pointers`]).
pub(crate) fn emit_c_pointer(asm: &mut Assembler, cfg: &GemmConfig, block: &BlockInstance) {
    // C base pointer.
    let c_off = cfg.c_offset(block.row0, block.col0) as u64;
    asm.push(ScalarInst::MovReg {
        rd: xr(C_PTR),
        rn: xr(ARG_C),
    });
    if c_off > 0 {
        if c_off < (1 << 24) {
            asm.add_imm(xr(C_PTR), xr(C_PTR), c_off);
        } else {
            asm.mov_imm64(xr(TMP0), c_off);
            asm.push(ScalarInst::AddReg {
                rd: xr(C_PTR),
                rn: xr(C_PTR),
                rm: xr(TMP0),
                shift: None,
            });
        }
    }
}

/// Emit the contraction loop (Lst. 4): per step, load one column of A and
/// one row of B, bump the cursors and issue one FMOPA per active tile.
pub(crate) fn emit_k_loop(asm: &mut Assembler, cfg: &GemmConfig, block: &BlockInstance) {
    let k = cfg.k;
    let unroll = if cfg.k_unroll > 1 && k.is_multiple_of(cfg.k_unroll) {
        cfg.k_unroll
    } else {
        1
    };
    let trips = k / unroll;

    asm.mov_imm64(xr(K_CNT), trips as u64);
    let top = asm.new_label();
    asm.bind(top);
    asm.push(ScalarInst::SubImm {
        rd: xr(K_CNT),
        rn: xr(K_CNT),
        imm12: 1,
        shift12: false,
    });
    for _ in 0..unroll {
        emit_k_step(asm, block);
    }
    asm.cbnz(xr(K_CNT), top);
}

/// One contraction step: operand loads, cursor bumps, FMOPAs.
fn emit_k_step(asm: &mut Assembler, block: &BlockInstance) {
    emit_k_step_loads(asm, block);
    emit_k_step_fmopas(asm, block, ZA_A, ZB_B);
}

/// The load half of one contraction step: primary-register operand loads
/// followed by the cursor bumps.
fn emit_k_step_loads(asm: &mut Assembler, block: &BlockInstance) {
    emit_operand_load(
        asm,
        ZA_A,
        block.active_row_groups(),
        row_pred(0),
        a_counter(),
        A_PTR,
    );
    emit_operand_load(
        asm,
        ZB_B,
        block.active_col_groups(),
        col_pred(0),
        b_counter(),
        B_PTR,
    );
    emit_ab_bump(asm);
}

/// Advance the A/B cursors by one contraction step.
fn emit_ab_bump(asm: &mut Assembler) {
    asm.push(ScalarInst::AddReg {
        rd: xr(A_PTR),
        rn: xr(A_PTR),
        rm: xr(LDA_B),
        shift: None,
    });
    asm.push(ScalarInst::AddReg {
        rd: xr(B_PTR),
        rn: xr(B_PTR),
        rm: xr(BK_STRIDE),
        shift: None,
    });
}

/// The compute half of one contraction step: one FMOPA per active tile,
/// reading A from `za_first..` and B from `zb_first..` (the primary or
/// secondary register set).
fn emit_k_step_fmopas(asm: &mut Assembler, block: &BlockInstance, za_first: u8, zb_first: u8) {
    for cg in 0..block.active_col_groups() {
        for rg in 0..block.active_row_groups() {
            let tile = block.blocking.tile_index(rg, cg);
            asm.push(SmeInst::fmopa_f32(
                tile,
                col_pred(cg),
                row_pred(rg),
                zr(zb_first + cg as u8),
                zr(za_first + rg as u8),
            ));
        }
    }
}

/// Emit the pipelined schedule's block prologue for `block`: set the A/B
/// cursors, program the secondary load counters (`pn10`/`pn11`) and stream
/// contraction step 0 into the secondary registers (`z16`–`z23`), leaving
/// the cursors pointing at step 1.
///
/// This is emitted *before the previous block's C store* (or at kernel
/// start for the first block): it touches only `A_PTR`, `B_PTR`, `TMP1`,
/// the secondary counters and the secondary Z registers, none of which the
/// C-transfer path reads or writes, so the hoisted loads fill the
/// load/store unit's dead time while the store drains the last outer
/// products' ZA dependencies.
pub(crate) fn emit_pipeline_prologue(
    asm: &mut Assembler,
    block: &BlockInstance,
    b_source: BSource,
) {
    let a_vecs = load_vectors(block.active_row_groups()).max(2);
    let b_vecs = load_vectors(block.active_col_groups()).max(2);
    emit_counter_predicate(asm, alt_a_counter(), block.rows, a_vecs, ElementType::F32);
    emit_counter_predicate(asm, alt_b_counter(), block.cols, b_vecs, ElementType::F32);
    emit_ab_pointers(asm, block, b_source);
    emit_alt_loads(asm, block);
}

/// Load one contraction step into the secondary registers and bump the
/// cursors. Always counter-governed (see [`alt_a_counter`]); a one-group
/// operand uses a two-vector counted load whose second register is masked
/// off by the counter.
fn emit_alt_loads(asm: &mut Assembler, block: &BlockInstance) {
    let a_vecs = load_vectors(block.active_row_groups()).max(2);
    let b_vecs = load_vectors(block.active_col_groups()).max(2);
    asm.push(SveInst::ld1w_multi(
        zr(ZA_ALT),
        a_vecs as u8,
        alt_a_counter(),
        xr(A_PTR),
        0,
    ));
    asm.push(SveInst::ld1w_multi(
        zr(ZB_ALT),
        b_vecs as u8,
        alt_b_counter(),
        xr(B_PTR),
        0,
    ));
    emit_ab_bump(asm);
}

/// Emit the software-pipelined contraction loop.
///
/// On entry the secondary registers hold contraction step 0 (loaded by
/// [`emit_pipeline_prologue`]) and the cursors point at step 1. Each trip
/// of the rotated loop retires two steps, always loading one step ahead of
/// the outer products so an FMOPA never waits on a load issued in its own
/// trip:
///
/// ```text
/// load step 2t+1 → primary      (z0–z7)
/// fmopa step 2t  ← secondary    (z16–z23)
/// load step 2t+2 → secondary
/// fmopa step 2t+1 ← primary
/// ```
///
/// The epilogue loads step `k-1` into the primary set and retires the two
/// in-flight steps. Requires even `k` (see
/// [`crate::blocking::pipeline_supported`]); `k == 2` skips the loop
/// entirely — the do-while form would otherwise execute its body once.
pub(crate) fn emit_pipelined_k_loop(asm: &mut Assembler, cfg: &GemmConfig, block: &BlockInstance) {
    debug_assert!(cfg.k.is_multiple_of(2));
    let trips = cfg.k / 2 - 1;
    if trips > 0 {
        asm.mov_imm64(xr(K_CNT), trips as u64);
        let top = asm.new_label();
        asm.bind(top);
        asm.push(ScalarInst::SubImm {
            rd: xr(K_CNT),
            rn: xr(K_CNT),
            imm12: 1,
            shift12: false,
        });
        emit_k_step_loads(asm, block);
        emit_k_step_fmopas(asm, block, ZA_ALT, ZB_ALT);
        emit_alt_loads(asm, block);
        emit_k_step_fmopas(asm, block, ZA_A, ZB_B);
        asm.cbnz(xr(K_CNT), top);
    }
    emit_k_step_loads(asm, block);
    emit_k_step_fmopas(asm, block, ZA_ALT, ZB_ALT);
    emit_k_step_fmopas(asm, block, ZA_A, ZB_B);
}

/// Emit the complete code for one block instance: predicates, pointers,
/// accumulator initialisation, contraction loop and write-back.
pub fn emit_block(asm: &mut Assembler, cfg: &GemmConfig, block: &BlockInstance, b_source: BSource) {
    emit_block_predicates(asm, block);
    emit_block_pointers(asm, cfg, block, b_source);
    match cfg.beta {
        Beta::Zero => emit_zero_tiles(asm, block),
        Beta::One => emit_c_transfer(asm, cfg, block, TransferDir::Load),
    }
    emit_k_loop(asm, cfg, block);
    emit_c_transfer(asm, cfg, block, TransferDir::Store);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::RegisterBlocking;
    use sme_isa::inst::Inst;

    fn full_block(blocking: RegisterBlocking) -> BlockInstance {
        BlockInstance {
            row0: 0,
            col0: 0,
            rows: blocking.rows(),
            cols: blocking.cols(),
            blocking,
        }
    }

    #[test]
    fn load_vector_rounding() {
        assert_eq!(load_vectors(1), 1);
        assert_eq!(load_vectors(2), 2);
        assert_eq!(load_vectors(3), 4);
        assert_eq!(load_vectors(4), 4);
    }

    #[test]
    fn k_step_matches_listing_four_shape() {
        // A full 32x32 block must generate the Lst. 4 inner loop: two
        // multi-vector loads, two address bumps, four FMOPAs per step.
        let cfg = GemmConfig::abt(32, 32, 8);
        let block = full_block(RegisterBlocking::B32x32);
        let mut asm = Assembler::new("k_step");
        emit_k_step(&mut asm, &block);
        let program = asm.finish();
        let loads = program.count_matching(|i| matches!(i, Inst::Sve(SveInst::Ld1Multi { .. })));
        let fmopas = program.count_matching(|i| matches!(i, Inst::Sme(SmeInst::Fmopa { .. })));
        let adds = program.count_matching(|i| matches!(i, Inst::Scalar(ScalarInst::AddReg { .. })));
        assert_eq!(loads, 2);
        assert_eq!(fmopas, 4);
        assert_eq!(adds, 2);
        assert_eq!(program.len(), 8);
        let _ = cfg;
    }

    #[test]
    fn tile_and_operand_wiring_follows_listing_four() {
        let block = full_block(RegisterBlocking::B32x32);
        let mut asm = Assembler::new("wiring");
        emit_k_step(&mut asm, &block);
        let program = asm.finish();
        let fmopas: Vec<_> = program
            .insts()
            .iter()
            .filter_map(|i| match i {
                Inst::Sme(SmeInst::Fmopa { tile, zn, zm, .. }) => {
                    Some((*tile, zn.index(), zm.index()))
                }
                _ => None,
            })
            .collect();
        // Tiles 0..3 each updated once; zn comes from the B registers (z4+),
        // zm from the A registers (z0+), matching
        //   fmopa za0.s, …, z2.s, z0.s   (paper Lst. 4, adjusted registers).
        assert_eq!(fmopas.len(), 4);
        let mut tiles: Vec<u8> = fmopas.iter().map(|f| f.0).collect();
        tiles.sort_unstable();
        assert_eq!(tiles, vec![0, 1, 2, 3]);
        for (_, zn, zm) in fmopas {
            assert!((4..8).contains(&zn), "B operand register z{zn}");
            assert!(zm < 4, "A operand register z{zm}");
        }
    }

    #[test]
    fn thin_blockings_use_the_right_load_shapes() {
        let mut asm = Assembler::new("b16x64");
        emit_k_step(&mut asm, &full_block(RegisterBlocking::B16x64));
        let program = asm.finish();
        let single = program.count_matching(|i| matches!(i, Inst::Sve(SveInst::Ld1 { .. })));
        let multi4 =
            program.count_matching(|i| matches!(i, Inst::Sve(SveInst::Ld1Multi { count: 4, .. })));
        let fmopas = program.count_matching(|i| matches!(i, Inst::Sme(SmeInst::Fmopa { .. })));
        assert_eq!(single, 1, "A is one 16-element vector");
        assert_eq!(multi4, 1, "B is a four-vector group");
        assert_eq!(fmopas, 4);

        let mut asm = Assembler::new("b64x16");
        emit_k_step(&mut asm, &full_block(RegisterBlocking::B64x16));
        let program = asm.finish();
        let single = program.count_matching(|i| matches!(i, Inst::Sve(SveInst::Ld1 { .. })));
        let multi4 =
            program.count_matching(|i| matches!(i, Inst::Sve(SveInst::Ld1Multi { count: 4, .. })));
        assert_eq!(single, 1, "B is one 16-element vector");
        assert_eq!(multi4, 1, "A is a four-vector group");
    }

    #[test]
    fn masked_blocks_emit_partial_predicates() {
        let block = BlockInstance {
            row0: 64,
            col0: 64,
            rows: 9,
            cols: 13,
            blocking: RegisterBlocking::B32x32,
        };
        let mut asm = Assembler::new("masked");
        emit_block_predicates(&mut asm, &block);
        let program = asm.finish();
        // One row-group predicate and one column-group predicate, each set
        // up with a mov of the partial count.
        let whilelts = program.count_matching(|i| matches!(i, Inst::Sve(SveInst::Whilelt { .. })));
        assert_eq!(whilelts, 2);
        let movs: Vec<u16> = program
            .insts()
            .iter()
            .filter_map(|i| match i {
                Inst::Scalar(ScalarInst::MovZ { imm16, .. }) => Some(*imm16),
                _ => None,
            })
            .collect();
        assert!(movs.contains(&9));
        assert!(movs.contains(&13));
    }

    #[test]
    fn unrolled_k_loop_replicates_the_body() {
        let cfg = GemmConfig::abt(32, 32, 64).with_k_unroll(4);
        let block = full_block(RegisterBlocking::B32x32);
        let mut asm1 = Assembler::new("u1");
        emit_k_loop(&mut asm1, &GemmConfig::abt(32, 32, 64), &block);
        let mut asm4 = Assembler::new("u4");
        emit_k_loop(&mut asm4, &cfg, &block);
        let p1 = asm1.finish();
        let p4 = asm4.finish();
        let fmopas = |p: &sme_isa::Program| {
            p.count_matching(|i| matches!(i, Inst::Sme(SmeInst::Fmopa { .. })))
        };
        assert_eq!(fmopas(&p1), 4);
        assert_eq!(fmopas(&p4), 16);
    }

    #[test]
    fn odd_k_with_unroll_falls_back_to_single_steps() {
        let cfg = GemmConfig::abt(32, 32, 63).with_k_unroll(4);
        let block = full_block(RegisterBlocking::B32x32);
        let mut asm = Assembler::new("odd");
        emit_k_loop(&mut asm, &cfg, &block);
        let program = asm.finish();
        let fmopas = program.count_matching(|i| matches!(i, Inst::Sme(SmeInst::Fmopa { .. })));
        assert_eq!(fmopas, 4, "falls back to a single-step loop body");
    }
}
