//! The compiled-kernel handle: execution, validation and performance
//! modelling of a generated GEMM kernel.

use crate::blocking::BlockPlan;
use crate::config::{Beta, GemmConfig};
use crate::reference::{fill_matrix, gemm_reference, max_abs_diff};
use sme_isa::Program;
use sme_machine::exec::{RunOptions, RunResult, Simulator};
use sme_machine::ExecStats;

/// Simulated addresses of one (A, B, C) operand triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmBuffers {
    /// Address of A (column-major, `lda × k` elements).
    pub a: u64,
    /// Address of B (layout per the configuration).
    pub b: u64,
    /// Address of C (column-major, `ldc × n` elements).
    pub c: u64,
}

/// A generated, branch-resolved GEMM kernel.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    cfg: GemmConfig,
    plan: BlockPlan,
    program: Program,
}

impl CompiledKernel {
    pub(crate) fn new(cfg: GemmConfig, plan: BlockPlan, program: Program) -> Self {
        CompiledKernel { cfg, plan, program }
    }

    /// The configuration the kernel was generated for.
    pub fn config(&self) -> &GemmConfig {
        &self.cfg
    }

    /// The block plan the generator chose.
    pub fn plan(&self) -> &BlockPlan {
        &self.plan
    }

    /// The generated instruction stream.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The kernel lowered to little-endian AArch64 machine-code bytes (what
    /// a real JIT would write into an executable buffer).
    pub fn machine_code(&self) -> Vec<u8> {
        self.program.encode_bytes()
    }

    /// Assembly listing with encodings.
    pub fn disassembly(&self) -> String {
        sme_isa::disasm::disassemble_program(&self.program)
    }

    /// Floating-point operations per kernel execution.
    pub fn flops(&self) -> u64 {
        self.cfg.flops()
    }

    /// Allocate operand buffers in the simulator's memory, 128-byte aligned.
    /// If `seed` is given, A, B and C are filled with deterministic
    /// pseudo-random values; otherwise they are zero.
    pub fn allocate_buffers(&self, sim: &mut Simulator, seed: Option<u64>) -> GemmBuffers {
        let align = 128;
        let a_len = self.cfg.a_len();
        let b_len = self.cfg.b_len();
        let c_len = self.cfg.c_len();
        match seed {
            Some(s) => {
                let mut a = vec![0.0f32; a_len];
                let mut b = vec![0.0f32; b_len];
                let mut c = vec![0.0f32; c_len];
                fill_matrix(s, &mut a);
                fill_matrix(s ^ 0x1111_1111, &mut b);
                fill_matrix(s ^ 0x2222_2222, &mut c);
                GemmBuffers {
                    a: sim.mem.alloc_f32(&a, align),
                    b: sim.mem.alloc_f32(&b, align),
                    c: sim.mem.alloc_f32(&c, align),
                }
            }
            None => GemmBuffers {
                a: sim.mem.alloc_f32_zeroed(a_len, align),
                b: sim.mem.alloc_f32_zeroed(b_len, align),
                c: sim.mem.alloc_f32_zeroed(c_len, align),
            },
        }
    }

    /// Execute the kernel once on the given simulator and operand buffers.
    pub fn run(&self, sim: &mut Simulator, bufs: GemmBuffers, opts: &RunOptions) -> RunResult {
        sim.run(&self.program, &[bufs.a, bufs.b, bufs.c], opts)
    }

    /// Execute the kernel functionally on pseudo-random operands and return
    /// the maximum absolute difference from the reference GEMM.
    pub fn validate(&self, seed: u64) -> f32 {
        let mut sim = Simulator::m4_performance();
        let bufs = self.allocate_buffers(&mut sim, Some(seed));
        // Capture the inputs for the reference computation.
        let a = sim.mem.read_f32_slice(bufs.a, self.cfg.a_len());
        let b = sim.mem.read_f32_slice(bufs.b, self.cfg.b_len());
        let mut c_ref = sim.mem.read_f32_slice(bufs.c, self.cfg.c_len());

        self.run(&mut sim, bufs, &RunOptions::functional_only());
        let c_out = sim.mem.read_f32_slice(bufs.c, self.cfg.c_len());

        gemm_reference(&self.cfg, &a, &b, &mut c_ref);
        max_abs_diff(&c_out, &c_ref)
    }

    /// Model the kernel's performance on a single performance core and
    /// return the execution statistics (timing-only run on untouched
    /// operands).
    pub fn model_stats(&self) -> ExecStats {
        let mut sim = Simulator::m4_performance();
        let bufs = self.allocate_buffers(&mut sim, None);
        let result = self.run(&mut sim, bufs, &RunOptions::timing_only());
        result.stats
    }

    /// Modelled FP32 throughput in GFLOPS on a single performance core.
    ///
    /// Note that the simulator only counts the arithmetic the kernel
    /// actually performs; the returned figure uses the nominal `2·m·n·k`
    /// operation count of the problem, exactly as the paper's plots do.
    pub fn model_gflops(&self) -> f64 {
        let stats = self.model_stats();
        let seconds = stats.seconds();
        if seconds == 0.0 {
            0.0
        } else {
            self.flops() as f64 / seconds / 1e9
        }
    }

    /// Effective beta of the kernel (convenience accessor).
    pub fn beta(&self) -> Beta {
        self.cfg.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn model_gflops_is_positive_and_bounded_by_the_machine_peak() {
        let kernel = generate(&GemmConfig::abt(64, 64, 64)).unwrap();
        let gflops = kernel.model_gflops();
        assert!(gflops > 100.0, "{gflops}");
        assert!(gflops < 2100.0, "{gflops} must not exceed the FMOPA peak");
    }

    #[test]
    fn larger_k_amortises_the_accumulator_traffic() {
        let short = generate(&GemmConfig::abt(64, 64, 16))
            .unwrap()
            .model_gflops();
        let long = generate(&GemmConfig::abt(64, 64, 256))
            .unwrap()
            .model_gflops();
        assert!(long > short, "K=256 ({long}) must beat K=16 ({short})");
    }

    #[test]
    fn machine_code_and_disassembly_are_consistent() {
        let kernel = generate(&GemmConfig::abt(32, 32, 4)).unwrap();
        let code = kernel.machine_code();
        assert_eq!(code.len(), kernel.program().len() * 4);
        let disasm = kernel.disassembly();
        assert!(disasm.contains("fmopa"));
        assert!(disasm.contains("smstart"));
        assert!(!disasm.is_empty());
        assert_eq!(kernel.flops(), 2 * 32 * 32 * 4);
    }

    #[test]
    fn stats_report_instruction_and_memory_counts() {
        let kernel = generate(&GemmConfig::abt(32, 32, 32)).unwrap();
        let stats = kernel.model_stats();
        assert!(stats.instructions > 0);
        assert!(stats.bytes_loaded > 0);
        assert!(stats.bytes_stored > 0);
        assert!(stats.cycles > 0.0);
    }
}
