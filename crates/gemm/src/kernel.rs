//! The compiled-kernel handle: execution, validation and performance
//! modelling of a generated GEMM kernel.

use crate::blocking::BlockPlan;
use crate::config::{Backend, Beta, GemmConfig};
use crate::dtype::{AnyGemmConfig, Dtype};
use crate::neon::{NeonKernel, NeonWideningKernel};
use crate::reference::{fill_matrix, gemm_reference, max_abs_diff};
use crate::widening::{allocate_widening_buffers, WideningKernel, WideningPackLayout};
use sme_isa::Program;
use sme_machine::exec::{RunOptions, RunResult, Simulator};
use sme_machine::ExecStats;

/// Simulated addresses of one (A, B, C) operand triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmBuffers {
    /// Address of A (column-major, `lda × k` elements).
    pub a: u64,
    /// Address of B (layout per the configuration).
    pub b: u64,
    /// Address of C (column-major, `ldc × n` elements).
    pub c: u64,
}

/// Byte images of the A and B operands of one request, exactly as
/// [`RoutedKernel::allocate_buffers`] would materialise them in simulator
/// memory: plain column-/row-major little-endian FP32 for the FP32
/// backends, packed BF16 (interleaved or MMLA layout, per the backend) for
/// the widening backends.
///
/// Producing an image is the *packing* step of a dispatch; a runtime that
/// serves the same operands repeatedly (e.g. fixed weights) can cache the
/// images and replay them with
/// [`RoutedKernel::allocate_buffers_packed`], skipping the repack. The C
/// buffer is deliberately absent: it is an output and must be refreshed
/// from its seed on every dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperandImages {
    /// The A operand's memory image.
    pub a: Vec<u8>,
    /// The B operand's memory image.
    pub b: Vec<u8>,
}

impl OperandImages {
    /// Total heap footprint of the images in bytes (cache accounting).
    pub fn bytes(&self) -> usize {
        self.a.len() + self.b.len()
    }
}

/// Little-endian byte image of an `f32` slice (the layout
/// `Memory::alloc_f32` writes).
pub(crate) fn f32_le_bytes(data: &[f32]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(data.len() * 4);
    for v in data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

/// Materialise the FP32 A/B operand images for `seed` (the packing step of
/// [`allocate_gemm_buffers`], without a simulator).
pub(crate) fn pack_gemm_images(cfg: &GemmConfig, seed: u64) -> OperandImages {
    let mut a = vec![0.0f32; cfg.a_len()];
    let mut b = vec![0.0f32; cfg.b_len()];
    fill_matrix(seed, &mut a);
    fill_matrix(seed ^ 0x1111_1111, &mut b);
    OperandImages {
        a: f32_le_bytes(&a),
        b: f32_le_bytes(&b),
    }
}

/// Allocate operand buffers for `cfg` from pre-packed A/B images, seeding a
/// fresh C. Bit-identical to the seeded arm of [`allocate_gemm_buffers`]
/// when `images` came from [`pack_gemm_images`] with the same seed.
pub(crate) fn allocate_gemm_buffers_from_images(
    cfg: &GemmConfig,
    sim: &mut Simulator,
    seed: u64,
    images: &OperandImages,
) -> GemmBuffers {
    let align = 128;
    let a = sim.mem.alloc(images.a.len() as u64, align);
    sim.mem.write_bytes(a, &images.a);
    let b = sim.mem.alloc(images.b.len() as u64, align);
    sim.mem.write_bytes(b, &images.b);
    let mut c = vec![0.0f32; cfg.c_len()];
    fill_matrix(seed ^ 0x2222_2222, &mut c);
    GemmBuffers {
        a,
        b,
        c: sim.mem.alloc_f32(&c, align),
    }
}

/// Allocate operand buffers for `cfg` in the simulator's memory, 128-byte
/// aligned, optionally filled with seeded pseudo-random values (shared by
/// the SME and Neon kernel handles so both backends see bit-identical
/// operands for the same seed).
pub(crate) fn allocate_gemm_buffers(
    cfg: &GemmConfig,
    sim: &mut Simulator,
    seed: Option<u64>,
) -> GemmBuffers {
    let align = 128;
    let a_len = cfg.a_len();
    let b_len = cfg.b_len();
    let c_len = cfg.c_len();
    match seed {
        Some(s) => {
            let mut a = vec![0.0f32; a_len];
            let mut b = vec![0.0f32; b_len];
            let mut c = vec![0.0f32; c_len];
            fill_matrix(s, &mut a);
            fill_matrix(s ^ 0x1111_1111, &mut b);
            fill_matrix(s ^ 0x2222_2222, &mut c);
            GemmBuffers {
                a: sim.mem.alloc_f32(&a, align),
                b: sim.mem.alloc_f32(&b, align),
                c: sim.mem.alloc_f32(&c, align),
            }
        }
        None => GemmBuffers {
            a: sim.mem.alloc_f32_zeroed(a_len, align),
            b: sim.mem.alloc_f32_zeroed(b_len, align),
            c: sim.mem.alloc_f32_zeroed(c_len, align),
        },
    }
}

/// Execute `program` functionally on seeded operands and return the maximum
/// absolute difference from the reference GEMM.
pub(crate) fn validate_program(cfg: &GemmConfig, program: &Program, seed: u64) -> f32 {
    let mut sim = Simulator::m4_performance();
    let bufs = allocate_gemm_buffers(cfg, &mut sim, Some(seed));
    let a = sim.mem.read_f32_slice(bufs.a, cfg.a_len());
    let b = sim.mem.read_f32_slice(bufs.b, cfg.b_len());
    let mut c_ref = sim.mem.read_f32_slice(bufs.c, cfg.c_len());

    sim.run(
        program,
        &[bufs.a, bufs.b, bufs.c],
        &RunOptions::functional_only(),
    );
    let c_out = sim.mem.read_f32_slice(bufs.c, cfg.c_len());

    gemm_reference(cfg, &a, &b, &mut c_ref);
    max_abs_diff(&c_out, &c_ref)
}

/// Timing-only run of `program` on untouched operands (single performance
/// core).
pub(crate) fn model_program_stats(cfg: &GemmConfig, program: &Program) -> ExecStats {
    let mut sim = Simulator::m4_performance();
    let bufs = allocate_gemm_buffers(cfg, &mut sim, None);
    let result = sim.run(
        program,
        &[bufs.a, bufs.b, bufs.c],
        &RunOptions::timing_only(),
    );
    result.stats
}

/// A generated, branch-resolved GEMM kernel.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    cfg: GemmConfig,
    plan: BlockPlan,
    program: Program,
}

impl CompiledKernel {
    pub(crate) fn new(cfg: GemmConfig, plan: BlockPlan, program: Program) -> Self {
        CompiledKernel { cfg, plan, program }
    }

    /// The configuration the kernel was generated for.
    pub fn config(&self) -> &GemmConfig {
        &self.cfg
    }

    /// The block plan the generator chose.
    pub fn plan(&self) -> &BlockPlan {
        &self.plan
    }

    /// The generated instruction stream.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The kernel lowered to little-endian AArch64 machine-code bytes (what
    /// a real JIT would write into an executable buffer).
    pub fn machine_code(&self) -> Vec<u8> {
        self.program.encode_bytes()
    }

    /// Assembly listing with encodings.
    pub fn disassembly(&self) -> String {
        sme_isa::disasm::disassemble_program(&self.program)
    }

    /// Floating-point operations per kernel execution.
    pub fn flops(&self) -> u64 {
        self.cfg.flops()
    }

    /// Allocate operand buffers in the simulator's memory, 128-byte aligned.
    /// If `seed` is given, A, B and C are filled with deterministic
    /// pseudo-random values; otherwise they are zero.
    pub fn allocate_buffers(&self, sim: &mut Simulator, seed: Option<u64>) -> GemmBuffers {
        allocate_gemm_buffers(&self.cfg, sim, seed)
    }

    /// Execute the kernel once on the given simulator and operand buffers.
    pub fn run(&self, sim: &mut Simulator, bufs: GemmBuffers, opts: &RunOptions) -> RunResult {
        sim.run(&self.program, &[bufs.a, bufs.b, bufs.c], opts)
    }

    /// Execute the kernel functionally on pseudo-random operands and return
    /// the maximum absolute difference from the reference GEMM.
    pub fn validate(&self, seed: u64) -> f32 {
        validate_program(&self.cfg, &self.program, seed)
    }

    /// Model the kernel's performance on a single performance core and
    /// return the execution statistics (timing-only run on untouched
    /// operands).
    pub fn model_stats(&self) -> ExecStats {
        model_program_stats(&self.cfg, &self.program)
    }

    /// Modelled FP32 throughput in GFLOPS on a single performance core.
    ///
    /// Note that the simulator only counts the arithmetic the kernel
    /// actually performs; the returned figure uses the nominal `2·m·n·k`
    /// operation count of the problem, exactly as the paper's plots do.
    pub fn model_gflops(&self) -> f64 {
        let stats = self.model_stats();
        let seconds = stats.seconds();
        if seconds == 0.0 {
            0.0
        } else {
            self.flops() as f64 / seconds / 1e9
        }
    }

    /// Effective beta of the kernel (convenience accessor).
    pub fn beta(&self) -> Beta {
        self.cfg.beta
    }
}

/// A kernel compiled for one execution backend and one datatype family.
///
/// This is the unit the `sme-runtime` kernel cache stores and the
/// `sme-router` dispatches: all four (backend × dtype) kernels share the
/// execution, validation and modelling surface, so routing code never
/// matches on the variant except to reach variant-specific detail (e.g.
/// the SME block plan).
///
/// Which packed operand layout a widening kernel consumes is a per-variant
/// detail hidden behind [`RoutedKernel::allocate_buffers`]: a caller seeds
/// the buffers, runs the kernel and reads C, whatever the engine.
#[derive(Debug, Clone)]
pub enum RoutedKernel {
    /// An SME FP32 outer-product kernel ([`crate::generate`] /
    /// [`crate::generate_tuned`]).
    Sme(CompiledKernel),
    /// A Neon FP32 FMLA-by-element kernel
    /// ([`crate::neon::generate_neon_kernel`]).
    Neon(NeonKernel),
    /// An SME BF16 → FP32 widening (BFMOPA) kernel
    /// ([`crate::widening::generate_widening`]).
    WideningSme(WideningKernel),
    /// A Neon BF16 → FP32 widening (`BFMMLA`) kernel
    /// ([`crate::neon::generate_neon_widening`]).
    WideningNeon(NeonWideningKernel),
}

impl RoutedKernel {
    /// Which backend the kernel targets.
    pub fn backend(&self) -> Backend {
        match self {
            RoutedKernel::Sme(_) | RoutedKernel::WideningSme(_) => Backend::Sme,
            RoutedKernel::Neon(_) | RoutedKernel::WideningNeon(_) => Backend::Neon,
        }
    }

    /// Which datatype family the kernel computes.
    pub fn dtype(&self) -> Dtype {
        match self {
            RoutedKernel::Sme(_) | RoutedKernel::Neon(_) => Dtype::Fp32,
            RoutedKernel::WideningSme(_) | RoutedKernel::WideningNeon(_) => Dtype::WideningBf16,
        }
    }

    /// The unified configuration key the kernel was generated for.
    pub fn any_config(&self) -> AnyGemmConfig {
        match self {
            RoutedKernel::Sme(k) => AnyGemmConfig::Fp32(*k.config()),
            RoutedKernel::Neon(k) => AnyGemmConfig::Fp32(*k.config()),
            RoutedKernel::WideningSme(k) => AnyGemmConfig::WideningBf16(*k.config()),
            RoutedKernel::WideningNeon(k) => AnyGemmConfig::WideningBf16(*k.config()),
        }
    }

    /// The FP32 configuration, when this is an FP32 kernel.
    pub fn fp32_config(&self) -> Option<&GemmConfig> {
        match self {
            RoutedKernel::Sme(k) => Some(k.config()),
            RoutedKernel::Neon(k) => Some(k.config()),
            _ => None,
        }
    }

    /// The widening configuration, when this is a BF16 kernel.
    pub fn widening_config(&self) -> Option<&crate::widening::WideningGemmConfig> {
        match self {
            RoutedKernel::WideningSme(k) => Some(k.config()),
            RoutedKernel::WideningNeon(k) => Some(k.config()),
            _ => None,
        }
    }

    /// The generated instruction stream.
    pub fn program(&self) -> &Program {
        match self {
            RoutedKernel::Sme(k) => k.program(),
            RoutedKernel::Neon(k) => k.program(),
            RoutedKernel::WideningSme(k) => k.program(),
            RoutedKernel::WideningNeon(k) => k.program(),
        }
    }

    /// The SME FP32 kernel handle, when this is that variant (block-plan
    /// introspection is SME-specific).
    pub fn as_sme(&self) -> Option<&CompiledKernel> {
        match self {
            RoutedKernel::Sme(k) => Some(k),
            _ => None,
        }
    }

    /// Floating-point operations per kernel execution.
    pub fn flops(&self) -> u64 {
        self.any_config().flops()
    }

    /// Number of `f32` elements the C output buffer holds.
    pub fn c_len(&self) -> usize {
        self.any_config().c_len()
    }

    /// Allocate operand buffers in the simulator's memory for this kernel's
    /// datatype and packing.
    ///
    /// Both FP32 backends use the same seeding scheme, so their results are
    /// comparable bit for bit; the widening variants derive their packed
    /// BF16 operands from FP32 matrices filled with the same scheme, so a
    /// scalar oracle ([`crate::widening::widening_reference`]) can
    /// reproduce them from the seed alone.
    pub fn allocate_buffers(&self, sim: &mut Simulator, seed: Option<u64>) -> GemmBuffers {
        match self {
            RoutedKernel::Sme(k) => allocate_gemm_buffers(k.config(), sim, seed),
            RoutedKernel::Neon(k) => allocate_gemm_buffers(k.config(), sim, seed),
            RoutedKernel::WideningSme(k) => {
                allocate_widening_buffers(k.config(), sim, seed, WideningPackLayout::Interleaved)
            }
            RoutedKernel::WideningNeon(k) => {
                allocate_widening_buffers(k.config(), sim, seed, WideningPackLayout::Mmla)
            }
        }
    }

    /// Materialise the packed A/B operand byte images for `seed` without a
    /// simulator — the repack step a packed-operand cache skips on a hit.
    /// The images follow this kernel's datatype and pack layout, so they
    /// replay only on kernels with the same [`OperandImages`] layout.
    pub fn pack_operands(&self, seed: u64) -> OperandImages {
        match self {
            RoutedKernel::Sme(k) => pack_gemm_images(k.config(), seed),
            RoutedKernel::Neon(k) => pack_gemm_images(k.config(), seed),
            RoutedKernel::WideningSme(k) => crate::widening::pack_widening_images(
                k.config(),
                seed,
                WideningPackLayout::Interleaved,
            ),
            RoutedKernel::WideningNeon(k) => {
                crate::widening::pack_widening_images(k.config(), seed, WideningPackLayout::Mmla)
            }
        }
    }

    /// Allocate operand buffers from pre-packed A/B images (see
    /// [`RoutedKernel::pack_operands`]); C is always freshly seeded, being
    /// an output. Bit-identical to `allocate_buffers(sim, Some(seed))`
    /// when `images == self.pack_operands(seed)`.
    pub fn allocate_buffers_packed(
        &self,
        sim: &mut Simulator,
        seed: u64,
        images: &OperandImages,
    ) -> GemmBuffers {
        match self {
            RoutedKernel::Sme(k) => {
                allocate_gemm_buffers_from_images(k.config(), sim, seed, images)
            }
            RoutedKernel::Neon(k) => {
                allocate_gemm_buffers_from_images(k.config(), sim, seed, images)
            }
            RoutedKernel::WideningSme(k) => crate::widening::allocate_widening_buffers_from_images(
                k.config(),
                sim,
                seed,
                images,
            ),
            RoutedKernel::WideningNeon(k) => {
                crate::widening::allocate_widening_buffers_from_images(
                    k.config(),
                    sim,
                    seed,
                    images,
                )
            }
        }
    }

    /// Execute the kernel once on the given simulator and operand buffers.
    pub fn run(&self, sim: &mut Simulator, bufs: GemmBuffers, opts: &RunOptions) -> RunResult {
        sim.run(self.program(), &[bufs.a, bufs.b, bufs.c], opts)
    }

    /// Execute the kernel functionally on pseudo-random operands and return
    /// its validation error: the maximum **absolute** difference from the
    /// reference GEMM for FP32 kernels, the maximum **relative** error
    /// against the BF16-rounded oracle (bounded by
    /// [`crate::widening::WIDENING_REL_TOL`]) for widening kernels.
    pub fn validate(&self, seed: u64) -> f32 {
        match self {
            RoutedKernel::Sme(k) => k.validate(seed),
            RoutedKernel::Neon(k) => k.validate(seed),
            RoutedKernel::WideningSme(k) => k.validate(seed),
            RoutedKernel::WideningNeon(k) => k.validate(seed),
        }
    }

    /// Model the kernel's performance on a single performance core.
    pub fn model_stats(&self) -> ExecStats {
        match self {
            RoutedKernel::Sme(k) => k.model_stats(),
            RoutedKernel::Neon(k) => k.model_stats(),
            RoutedKernel::WideningSme(k) => k.model_stats(),
            RoutedKernel::WideningNeon(k) => k.model_stats(),
        }
    }

    /// Modelled throughput in GFLOPS on a single performance core.
    pub fn model_gflops(&self) -> f64 {
        let stats = self.model_stats();
        let seconds = stats.seconds();
        if seconds == 0.0 {
            0.0
        } else {
            self.flops() as f64 / seconds / 1e9
        }
    }
}

impl From<CompiledKernel> for RoutedKernel {
    fn from(kernel: CompiledKernel) -> Self {
        RoutedKernel::Sme(kernel)
    }
}

impl From<NeonKernel> for RoutedKernel {
    fn from(kernel: NeonKernel) -> Self {
        RoutedKernel::Neon(kernel)
    }
}

impl From<WideningKernel> for RoutedKernel {
    fn from(kernel: WideningKernel) -> Self {
        RoutedKernel::WideningSme(kernel)
    }
}

impl From<NeonWideningKernel> for RoutedKernel {
    fn from(kernel: NeonWideningKernel) -> Self {
        RoutedKernel::WideningNeon(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn model_gflops_is_positive_and_bounded_by_the_machine_peak() {
        let kernel = generate(&GemmConfig::abt(64, 64, 64)).unwrap();
        let gflops = kernel.model_gflops();
        assert!(gflops > 100.0, "{gflops}");
        assert!(gflops < 2100.0, "{gflops} must not exceed the FMOPA peak");
    }

    #[test]
    fn larger_k_amortises_the_accumulator_traffic() {
        let short = generate(&GemmConfig::abt(64, 64, 16))
            .unwrap()
            .model_gflops();
        let long = generate(&GemmConfig::abt(64, 64, 256))
            .unwrap()
            .model_gflops();
        assert!(long > short, "K=256 ({long}) must beat K=16 ({short})");
    }

    #[test]
    fn machine_code_and_disassembly_are_consistent() {
        let kernel = generate(&GemmConfig::abt(32, 32, 4)).unwrap();
        let code = kernel.machine_code();
        assert_eq!(code.len(), kernel.program().len() * 4);
        let disasm = kernel.disassembly();
        assert!(disasm.contains("fmopa"));
        assert!(disasm.contains("smstart"));
        assert!(!disasm.is_empty());
        assert_eq!(kernel.flops(), 2 * 32 * 32 * 4);
    }

    #[test]
    fn stats_report_instruction_and_memory_counts() {
        let kernel = generate(&GemmConfig::abt(32, 32, 32)).unwrap();
        let stats = kernel.model_stats();
        assert!(stats.instructions > 0);
        assert!(stats.bytes_loaded > 0);
        assert!(stats.bytes_stored > 0);
        assert!(stats.cycles > 0.0);
    }
}
