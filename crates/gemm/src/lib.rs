//! # sme-gemm
//!
//! A just-in-time code generator for SME-based small matrix-matrix
//! multiplications — the primary contribution of *"Hello SME! Generating
//! Fast Matrix Multiplication Kernels Using the Scalable Matrix Extension"*
//! (SC'24), reproduced as a Rust library.
//!
//! Like the LIBXSMM extension described in the paper, the generator
//! hard-wires the matrix sizes, leading dimensions and operand layouts into
//! each kernel and emits genuine AArch64 instruction streams (see
//! [`sme_isa`]). Kernels execute on the Apple-M4-like simulator provided by
//! [`sme_machine`], which substitutes for the paper's hardware testbed.
//!
//! ## Quick start
//!
//! ```
//! use sme_gemm::{generate, GemmConfig};
//!
//! // C += A * B^T with M = N = 64, K = 64 (column-major A and C,
//! // row-major B — the Fig. 8 setting).
//! let cfg = GemmConfig::abt(64, 64, 64);
//! let kernel = generate(&cfg).expect("valid configuration");
//!
//! // Numerical validation against a reference GEMM …
//! assert!(kernel.validate(7) < 1e-4);
//! // … and modelled performance on one M4 performance core.
//! let gflops = kernel.model_gflops();
//! assert!(gflops > 100.0);
//! ```
//!
//! ## Structure
//!
//! * [`config`] — kernel descriptions ([`GemmConfig`]) and error types;
//! * [`blocking`] — the 32×32 / 16×64 / 64×16 register blockings and the
//!   heterogeneous block plan of §IV-B (Fig. 7);
//! * [`microkernel`] — emission of the Lst. 4 contraction loop;
//! * [`loads`] — accumulator transfers between memory and the ZA array
//!   (direct vs. two-step, §III-G);
//! * [`transpose`] — in-kernel transposition of column-major B panels
//!   through the ZA array (§IV-C, Lst. 5);
//! * [`generator`] / [`kernel`] — the public entry points;
//! * [`neon`] — the traditional Neon (FMLA by element) microkernel
//!   generator used as the Fig. 6 comparison point and as a non-SME
//!   baseline;
//! * [`batch`] — a batched small-GEMM driver mirroring how LIBXSMM kernels
//!   are used by tensor-processing frameworks;
//! * [`widening`] — BF16 → FP32 kernels built on the widening BFMOPA (the
//!   paper's §V outlook on reduced-precision inference), with the same
//!   candidate space and backend pair (a Neon `BFMMLA` baseline) as FP32;
//! * [`dtype`] — the unified configuration key ([`AnyGemmConfig`]) the
//!   serving stack is keyed on, making the datatype a first-class dimension
//!   alongside the backend;
//! * [`mod@reference`] — scalar reference implementations used for validation.

#![warn(missing_docs)]

pub mod batch;
pub mod blocking;
pub mod config;
pub mod dtype;
pub mod generator;
pub mod kernel;
pub mod loads;
pub mod microkernel;
pub mod neon;
pub mod reference;
pub mod transpose;
pub mod widening;

pub use blocking::{
    analytic_k_step_cycles, analytic_widening_k_pair_cycles, enumerate_candidates,
    group_load_cycles, pipeline_supported, plan_heterogeneous, plan_homogeneous,
    prune_dominated_candidates, BlockPlan, PlanCandidate, PlanKind, RegisterBlocking,
};
pub use config::{
    BLayout, Backend, Beta, GemmConfig, GemmError, KernelSchedule, ZaTransferStrategy,
};
pub use dtype::{default_any_candidate, enumerate_any_candidates, AnyGemmConfig, Dtype};
pub use generator::{
    generate, generate_any_backend, generate_any_routed, generate_backend, generate_routed,
    generate_tuned, generate_validated, generate_with_plan, kernel_stats, KernelStats,
};
pub use kernel::{CompiledKernel, GemmBuffers, OperandImages, RoutedKernel};
pub use neon::{
    generate_neon_kernel, generate_neon_widening, neon_supports, neon_widening_supports,
    validate_neon, NeonKernel, NeonWideningKernel,
};
pub use widening::{
    default_widening_candidate, enumerate_widening_candidates, generate_widening,
    generate_widening_tuned, pack_a_bf16, pack_a_bf16_mmla, pack_b_bf16, pack_b_bf16_mmla,
    prune_dominated_widening_candidates, sme_widening_supports, widening_reference,
    widening_rel_error, WideningGemmConfig, WideningKernel, WIDENING_REL_TOL,
};
