//! Property-based tests of the BF16 packing layouts.
//!
//! The widening kernels never see the original FP32 matrices — only the
//! packed BF16 operands — so the packing functions are the correctness
//! boundary of the whole BF16 path. The properties pin down, over arbitrary
//! `m`/`n`/`k`/`lda`/`ldb`:
//!
//! * **length invariants** — packed buffer lengths match the published
//!   `packed_*_len` formulas (and the config accessors where the shape is a
//!   valid [`WideningGemmConfig`]);
//! * **round-trip** — every logical element `(r, kk)` of A (and `(kk, c)`
//!   of B) lands at exactly the documented index, carrying the BF16
//!   rounding of the source value, so unpacking recovers the BF16-rounded
//!   matrix exactly;
//! * **padding** — every packed position not covered by a logical element
//!   (odd-`k` tails of the interleaved layout, `k % 4` tails of the
//!   `BFMMLA` layout) is zero, so padded contraction steps contribute
//!   nothing.

use proptest::prelude::*;
use sme_gemm::widening::{packed_interleaved_len, packed_mmla_len};
use sme_gemm::{pack_a_bf16, pack_a_bf16_mmla, pack_b_bf16, pack_b_bf16_mmla, WideningGemmConfig};
use sme_machine::exec::fp::f32_to_bf16;

/// A deterministic, value-diverse fill (no NaNs; includes zeros and values
/// that round under BF16).
fn source(len: usize, seed: u64) -> Vec<f32> {
    let mut data = vec![0.0f32; len];
    sme_gemm::reference::fill_matrix(seed.max(1), &mut data);
    data
}

/// Shape strategy for A-like operands: extent m (even, as the mmla layout
/// requires), contraction k, leading dimension lda ≥ m.
fn a_shape() -> impl Strategy<Value = (usize, usize, usize, u64)> {
    (1usize..=24, 1usize..=17, 0usize..=5, 0u64..1000)
        .prop_map(|(half_m, k, pad, seed)| (2 * half_m, k, 2 * half_m + pad, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The interleaved A packing is a bijection from the logical elements
    /// onto the non-padding positions, with zero tails for odd k.
    #[test]
    fn interleaved_a_round_trips_with_zero_tails(shape in a_shape()) {
        let (m, k, lda, seed) = shape;
        let a = source(lda * k, seed);
        let packed = pack_a_bf16(&a, m, lda, k);
        prop_assert_eq!(packed.len(), packed_interleaved_len(m, k));
        prop_assert_eq!(packed.len(), m * k.next_multiple_of(2));
        // Round trip: each element carries the BF16 rounding of its source.
        let mut covered = vec![false; packed.len()];
        for kk in 0..k {
            for r in 0..m {
                let index = (kk / 2) * 2 * m + r * 2 + (kk % 2);
                prop_assert_eq!(packed[index], f32_to_bf16(a[kk * lda + r]),
                    "A({}, {}) mispacked", r, kk);
                prop_assert!(!covered[index], "index {} written twice", index);
                covered[index] = true;
            }
        }
        // Padding: every uncovered position is zero.
        for (index, covered) in covered.iter().enumerate() {
            if !covered {
                prop_assert_eq!(packed[index], 0, "padding at {} not zero", index);
            }
        }
        // Odd k pads exactly one trailing contraction step.
        let expected_pad = if k % 2 == 1 { m } else { 0 };
        prop_assert_eq!(covered.iter().filter(|c| !**c).count(), expected_pad);
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The interleaved B packing mirrors A with rows and columns swapped.
    #[test]
    fn interleaved_b_round_trips_with_zero_tails(
        shape in (1usize..=24, 1usize..=17, 0usize..=5, 0u64..1000),
    ) {
        let (n, k, ldb_pad, seed) = shape;
        let n = 2 * n;
        let ldb = n + ldb_pad;
        let b = source(k * ldb, seed);
        let packed = pack_b_bf16(&b, k, ldb, n);
        prop_assert_eq!(packed.len(), packed_interleaved_len(n, k));
        for kk in 0..k {
            for c in 0..n {
                let index = (kk / 2) * 2 * n + c * 2 + (kk % 2);
                prop_assert_eq!(packed[index], f32_to_bf16(b[kk * ldb + c]),
                    "B({}, {}) mispacked", kk, c);
            }
        }
        if k % 2 == 1 {
            // The padded half-pair of the last slab is zero.
            let last_slab = (k / 2) * 2 * n;
            for c in 0..n {
                prop_assert_eq!(packed[last_slab + c * 2 + 1], 0);
            }
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The BFMMLA A packing covers every logical element at its documented
    /// register position and zero-pads the contraction tail to a quad.
    #[test]
    fn mmla_a_round_trips_with_zero_tails(shape in a_shape()) {
        let (m, k, lda, seed) = shape;
        let a = source(lda * k, seed);
        let packed = pack_a_bf16_mmla(&a, m, lda, k);
        prop_assert_eq!(packed.len(), packed_mmla_len(m, k));
        prop_assert_eq!(packed.len(), (m / 2) * k.div_ceil(4) * 8);
        let mut covered = vec![false; packed.len()];
        for kk in 0..k {
            for r in 0..m {
                let index = ((kk / 4) * (m / 2) + r / 2) * 8 + (r % 2) * 4 + (kk % 4);
                prop_assert_eq!(packed[index], f32_to_bf16(a[kk * lda + r]),
                    "A({}, {}) mispacked", r, kk);
                covered[index] = true;
            }
        }
        for (index, covered) in covered.iter().enumerate() {
            if !covered {
                prop_assert_eq!(packed[index], 0, "padding at {} not zero", index);
            }
        }
        // The tail pads (4 - k % 4) % 4 contraction steps across m rows.
        let expected_pad = (k.next_multiple_of(4) - k) * m;
        prop_assert_eq!(covered.iter().filter(|c| !**c).count(), expected_pad);
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The BFMMLA B packing mirrors A with columns as the paired extent.
    #[test]
    fn mmla_b_round_trips_with_zero_tails(
        shape in (1usize..=24, 1usize..=17, 0usize..=5, 0u64..1000),
    ) {
        let (n, k, ldb_pad, seed) = shape;
        let n = 2 * n;
        let ldb = n + ldb_pad;
        let b = source(k * ldb, seed);
        let packed = pack_b_bf16_mmla(&b, k, ldb, n);
        prop_assert_eq!(packed.len(), packed_mmla_len(n, k));
        for kk in 0..k {
            for c in 0..n {
                let index = ((kk / 4) * (n / 2) + c / 2) * 8 + (c % 2) * 4 + (kk % 4);
                prop_assert_eq!(packed[index], f32_to_bf16(b[kk * ldb + c]),
                    "B({}, {}) mispacked", kk, c);
            }
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// On valid widening configurations the free length formulas agree with
    /// the config accessors, for both layouts.
    #[test]
    fn packed_lengths_match_the_config_accessors(
        shape in (1usize..=8, 1usize..=32, 1usize..=64),
    ) {
        let (m8, n2, k2) = shape;
        let cfg = WideningGemmConfig::new(8 * m8, 2 * n2, 2 * k2).expect("on the envelope grid");
        let a = source(cfg.m * cfg.k, 7);
        let b = source(cfg.k * cfg.n, 8);
        prop_assert_eq!(pack_a_bf16(&a, cfg.m, cfg.m, cfg.k).len(), cfg.packed_a_len());
        prop_assert_eq!(pack_b_bf16(&b, cfg.k, cfg.n, cfg.n).len(), cfg.packed_b_len());
        prop_assert_eq!(
            pack_a_bf16_mmla(&a, cfg.m, cfg.m, cfg.k).len(),
            cfg.packed_a_mmla_len()
        );
        prop_assert_eq!(
            pack_b_bf16_mmla(&b, cfg.k, cfg.n, cfg.n).len(),
            cfg.packed_b_mmla_len()
        );
    }
}
