//! Property-based sweep of the software-pipelined kernel schedule.
//!
//! A pipelined kernel hoists the next block's step-0 packed loads above the
//! current block's ZA→C store and rotates the contraction loop so each
//! trip's loads fetch one k-step ahead of its FMOPAs. Reordering *loads*
//! must never change *arithmetic*: the FMOPAs still consume the same
//! operands in the same contraction order, so over the whole supported
//! envelope (row-major B, even `k`, unit unroll — [`pipeline_supported`])
//! a pipelined kernel must produce a C buffer **bit-identical** to its
//! serial twin's, and both must validate against the scalar reference.

use proptest::prelude::*;
use sme_gemm::{
    generate_routed, pipeline_supported, Beta, GemmConfig, KernelSchedule, PlanCandidate,
    RoutedKernel,
};
use sme_machine::exec::{RunOptions, Simulator};

/// Run a routed kernel functionally on its seeded operands and read C back.
fn kernel_output(kernel: &RoutedKernel, seed: u64) -> Vec<f32> {
    let mut sim = Simulator::m4_performance();
    let bufs = kernel.allocate_buffers(&mut sim, Some(seed));
    kernel.run(&mut sim, bufs, &RunOptions::functional_only());
    sim.mem.read_f32_slice(bufs.c, kernel.c_len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pipelined schedules are bit-identical to their serial twins (and
    /// hence to the oracle the serial kernels validate against) over
    /// arbitrary supported shapes, paddings and accumulation modes.
    #[test]
    fn pipelined_schedules_match_their_serial_twins_bit_for_bit(
        shape in (1usize..=80, 1usize..=80, 1usize..=16, 0usize..=5,
                  any::<bool>(), 0u64..1000),
    ) {
        let (m, n, k2, lda_pad, beta_zero, seed) = shape;
        let k = 2 * k2;
        let mut cfg = GemmConfig::abt(m, n, k).with_leading_dims(m + lda_pad, n, m);
        if beta_zero {
            cfg = cfg.with_beta(Beta::Zero);
        }
        prop_assert!(pipeline_supported(&cfg), "{}: even-k row-major shapes pipeline", cfg);

        let serial = PlanCandidate::default_for(&cfg);
        let pipelined = PlanCandidate {
            schedule: KernelSchedule::Pipelined,
            ..serial
        };
        let serial = generate_routed(&cfg, &serial).expect("serial default compiles");
        let pipelined = generate_routed(&cfg, &pipelined).expect("pipelined twin compiles");

        let err = pipelined.validate(seed.max(1));
        prop_assert!(err < 1e-4, "{}: pipelined error {} vs the oracle", cfg, err);
        prop_assert_eq!(
            kernel_output(&serial, seed),
            kernel_output(&pipelined, seed),
            "{}: schedules must agree bit for bit", cfg
        );
    }
}
