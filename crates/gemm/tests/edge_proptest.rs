//! Property-based sweeps of the predicated edge-tile paths.
//!
//! Both tentpole relaxations — masked SME widening tiles and the Neon FP32
//! residual blocks — are exercised over *arbitrary* envelope shapes, not
//! multiples of the register blockings:
//!
//! * **widening**: any `m % 8`, `n % 2`, even-`k` shape through both
//!   widening engines against the scalar BF16-rounded oracle. The SME
//!   kernel must be **bit-identical** (masked BFMOPA tiles accumulate each
//!   active element in contraction order with unfused multiply-adds,
//!   exactly like the oracle); the Neon `BFMMLA` kernel reassociates four
//!   products per instruction and is held to the shared relative bound;
//!   the engines must also agree with each other, which is what makes
//!   routing a shape between them numerically safe;
//! * **FP32 Neon**: any even-`m`/`n` shape (including padded leading
//!   dimensions and both accumulation modes) against the scalar reference,
//!   under the absolute bound the aligned path has always used.

use proptest::prelude::*;
use sme_gemm::{
    generate_any_backend, validate_neon, widening_rel_error, AnyGemmConfig, Backend, Beta,
    GemmConfig, RoutedKernel, WideningGemmConfig, WIDENING_REL_TOL,
};
use sme_machine::exec::{RunOptions, Simulator};

/// Run a routed kernel functionally on its own packed seeded operands and
/// read C back.
fn kernel_output(kernel: &RoutedKernel, seed: u64) -> Vec<f32> {
    let mut sim = Simulator::m4_performance();
    let bufs = kernel.allocate_buffers(&mut sim, Some(seed));
    kernel.run(&mut sim, bufs, &RunOptions::functional_only());
    sim.mem.read_f32_slice(bufs.c, kernel.c_len())
}

/// Arbitrary widening envelope shapes, biased towards off-32-grid extents
/// (only one in sixteen drawn (m, n) pairs is fully 32-aligned).
fn widening_shape() -> impl Strategy<Value = (usize, usize, usize, u64)> {
    (1usize..=12, 1usize..=32, 1usize..=12, 0u64..1000)
        .prop_map(|(m8, n2, k2, seed)| (8 * m8, 2 * n2, 2 * k2, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Masked SME widening edges are bit-identical to the sequential
    /// oracle; the Neon BFMMLA baseline stays within the shared bound; and
    /// the two engines agree with each other.
    #[test]
    fn widening_edges_match_the_oracle_on_both_engines(shape in widening_shape()) {
        let (m, n, k, seed) = shape;
        let cfg = WideningGemmConfig::new(m, n, k).expect("on the envelope grid");
        let any = AnyGemmConfig::WideningBf16(cfg);

        let sme = generate_any_backend(&any, Backend::Sme)
            .expect("the SME widening path is total over the envelope grid");
        prop_assert_eq!(sme.validate(seed), 0.0, "{}: SME must be bit-identical", cfg);

        let neon = generate_any_backend(&any, Backend::Neon)
            .expect("the Neon widening path is total over the envelope grid");
        let neon_err = neon.validate(seed);
        prop_assert!(
            neon_err < WIDENING_REL_TOL,
            "{}: Neon error {} exceeds {}", cfg, neon_err, WIDENING_REL_TOL
        );

        let cross = widening_rel_error(&kernel_output(&sme, seed), &kernel_output(&neon, seed));
        prop_assert!(
            cross < WIDENING_REL_TOL,
            "{}: cross-engine error {}", cfg, cross
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The Neon FP32 residual blocks validate against the scalar reference
    /// over arbitrary even extents, paddings and both accumulation modes.
    #[test]
    fn fp32_neon_edges_match_the_reference(
        shape in (1usize..=24, 1usize..=12, 1usize..=12, 0usize..=5, 0usize..=3,
                  any::<bool>(), 0u64..1000),
    ) {
        let (m2, n2, k, lda_pad, ldc_pad, beta_zero, seed) = shape;
        let (m, n) = (2 * m2, 2 * n2);
        let mut cfg = GemmConfig::abt(m, n, k)
            .with_leading_dims(m + lda_pad, n, m + ldc_pad);
        if beta_zero {
            cfg = cfg.with_beta(Beta::Zero);
        }
        let err = validate_neon(&cfg, seed.max(1)).expect("even extents compile");
        prop_assert!(err < 1e-4, "{}: Neon edge error {}", cfg, err);
    }
}
