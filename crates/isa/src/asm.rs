//! Assembler: builds instruction streams with symbolic labels and resolves
//! them into finished [`Program`]s.
//!
//! The just-in-time GEMM generator and the microbenchmark kernels both build
//! code through this interface, exactly as the LIBXSMM backend described in
//! the paper builds AArch64 machine code buffers.

use crate::encode;
use crate::inst::scalar::BranchTarget;
use crate::inst::{Inst, ScalarInst};
use crate::regs::XReg;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A symbolic branch target created by [`Assembler::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Label(pub(crate) u32);

/// A finished, branch-resolved instruction stream.
///
/// Programs are position-independent: branches are stored as instruction
/// offsets relative to the branch itself. A program can be executed directly
/// by the `sme-machine` simulator or lowered to AArch64 machine code bytes
/// via [`Program::encode`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
}

impl Program {
    /// The program's instructions in order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The program's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Code size in bytes (four bytes per instruction, as in the real ISA).
    pub fn code_bytes(&self) -> usize {
        self.insts.len() * 4
    }

    /// Lower the program to AArch64 machine-code words.
    pub fn encode(&self) -> Vec<u32> {
        self.insts.iter().map(encode::encode).collect()
    }

    /// Lower the program to little-endian machine-code bytes, as a JIT would
    /// write them into an executable buffer.
    pub fn encode_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.insts.len() * 4);
        for word in self.encode() {
            out.extend_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Count instructions matching a predicate (used by tests and the
    /// Fig. 6 instruction-mix comparison).
    pub fn count_matching(&self, mut pred: impl FnMut(&Inst) -> bool) -> usize {
        self.insts.iter().filter(|i| pred(i)).count()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// {} ({} instructions)", self.name, self.insts.len())?;
        for (idx, inst) in self.insts.iter().enumerate() {
            writeln!(f, "{idx:5}:  {inst}")?;
        }
        Ok(())
    }
}

/// Incremental builder for [`Program`]s.
///
/// ```
/// use sme_isa::asm::Assembler;
/// use sme_isa::inst::{ScalarInst, SmeInst};
/// use sme_isa::regs::short::*;
///
/// let mut a = Assembler::new("repeat_loop");
/// let top = a.new_label();
/// a.bind(top);
/// a.push(ScalarInst::SubImm { rd: x(0), rn: x(0), imm12: 1, shift12: false });
/// a.push(SmeInst::fmopa_f32(0, p(0), p(1), z(0), z(1)));
/// a.cbnz(x(0), top);
/// a.ret();
/// let program = a.finish();
/// assert_eq!(program.len(), 4);
/// ```
#[derive(Debug)]
pub struct Assembler {
    name: String,
    insts: Vec<Inst>,
    next_label: u32,
    bound: HashMap<u32, usize>,
}

impl Assembler {
    /// Create an empty assembler for a kernel with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Assembler {
            name: name.into(),
            insts: Vec::new(),
            next_label: 0,
            bound: HashMap::new(),
        }
    }

    /// Allocate a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Bind `label` to the current position (the next emitted instruction).
    ///
    /// # Panics
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let prev = self.bound.insert(label.0, self.insts.len());
        assert!(prev.is_none(), "label {:?} bound twice", label);
    }

    /// Append any instruction.
    pub fn push(&mut self, inst: impl Into<Inst>) {
        self.insts.push(inst.into());
    }

    /// Append several instructions.
    pub fn extend(&mut self, insts: impl IntoIterator<Item = Inst>) {
        self.insts.extend(insts);
    }

    /// Current instruction count (useful for emitting position annotations).
    pub fn position(&self) -> usize {
        self.insts.len()
    }

    /// `cbnz xn, label`.
    pub fn cbnz(&mut self, rn: XReg, label: Label) {
        self.push(ScalarInst::Cbnz {
            rn,
            target: BranchTarget::Label(label.0),
        });
    }

    /// `cbz xn, label`.
    pub fn cbz(&mut self, rn: XReg, label: Label) {
        self.push(ScalarInst::Cbz {
            rn,
            target: BranchTarget::Label(label.0),
        });
    }

    /// `b label`.
    pub fn b(&mut self, label: Label) {
        self.push(ScalarInst::B {
            target: BranchTarget::Label(label.0),
        });
    }

    /// `b.cond label`.
    pub fn b_cond(&mut self, cond: crate::types::Cond, label: Label) {
        self.push(ScalarInst::BCond {
            cond,
            target: BranchTarget::Label(label.0),
        });
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.push(ScalarInst::Ret);
    }

    /// Load an arbitrary 64-bit immediate into `rd` using the minimal
    /// `movz`/`movk` sequence (1–4 instructions).
    pub fn mov_imm64(&mut self, rd: XReg, value: u64) {
        let chunks: [u16; 4] = [
            (value & 0xffff) as u16,
            ((value >> 16) & 0xffff) as u16,
            ((value >> 32) & 0xffff) as u16,
            ((value >> 48) & 0xffff) as u16,
        ];
        // Always emit the movz for the lowest chunk so that the register is
        // fully defined, then movk the non-zero higher chunks.
        self.push(ScalarInst::MovZ {
            rd,
            imm16: chunks[0],
            hw: 0,
        });
        for (hw, &chunk) in chunks.iter().enumerate().skip(1) {
            if chunk != 0 {
                self.push(ScalarInst::MovK {
                    rd,
                    imm16: chunk,
                    hw: hw as u8,
                });
            }
        }
    }

    /// Add a (possibly large) unsigned immediate to a register using one or
    /// two `add` instructions (low 12 bits, then the next 12 shifted).
    ///
    /// # Panics
    /// Panics if the immediate does not fit in 24 bits.
    pub fn add_imm(&mut self, rd: XReg, rn: XReg, imm: u64) {
        assert!(imm < (1 << 24), "add_imm immediate too large: {imm}");
        let low = (imm & 0xfff) as u16;
        let high = ((imm >> 12) & 0xfff) as u16;
        if high != 0 {
            self.push(ScalarInst::AddImm {
                rd,
                rn,
                imm12: high,
                shift12: true,
            });
            if low != 0 {
                self.push(ScalarInst::AddImm {
                    rd,
                    rn: rd,
                    imm12: low,
                    shift12: false,
                });
            }
        } else {
            self.push(ScalarInst::AddImm {
                rd,
                rn,
                imm12: low,
                shift12: false,
            });
        }
    }

    /// Subtract a (possibly large) unsigned immediate from a register.
    ///
    /// # Panics
    /// Panics if the immediate does not fit in 24 bits.
    pub fn sub_imm(&mut self, rd: XReg, rn: XReg, imm: u64) {
        assert!(imm < (1 << 24), "sub_imm immediate too large: {imm}");
        let low = (imm & 0xfff) as u16;
        let high = ((imm >> 12) & 0xfff) as u16;
        if high != 0 {
            self.push(ScalarInst::SubImm {
                rd,
                rn,
                imm12: high,
                shift12: true,
            });
            if low != 0 {
                self.push(ScalarInst::SubImm {
                    rd,
                    rn: rd,
                    imm12: low,
                    shift12: false,
                });
            }
        } else {
            self.push(ScalarInst::SubImm {
                rd,
                rn,
                imm12: low,
                shift12: false,
            });
        }
    }

    /// Resolve all labels and produce the finished [`Program`].
    ///
    /// # Panics
    /// Panics if a branch references a label that was never bound.
    pub fn finish(self) -> Program {
        let Assembler {
            name,
            mut insts,
            bound,
            ..
        } = self;
        for (idx, inst) in insts.iter_mut().enumerate() {
            if let Inst::Scalar(ref mut s) = inst {
                if let Some(BranchTarget::Label(l)) = s.branch_target() {
                    let target_idx = *bound
                        .get(&l)
                        .unwrap_or_else(|| panic!("branch references unbound label L{l}"));
                    let offset = target_idx as i64 - idx as i64;
                    s.set_branch_target(BranchTarget::Offset(
                        i32::try_from(offset).expect("branch offset out of range"),
                    ));
                }
            }
        }
        Program { name, insts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{NeonInst, SmeInst};
    use crate::regs::short::*;
    use crate::types::NeonArrangement;

    #[test]
    fn backward_branch_resolution() {
        let mut a = Assembler::new("loop");
        let top = a.new_label();
        a.bind(top);
        a.push(ScalarInst::SubImm {
            rd: x(0),
            rn: x(0),
            imm12: 1,
            shift12: false,
        });
        a.push(NeonInst::fmla_vec(v(0), v(30), v(31), NeonArrangement::S4));
        a.cbnz(x(0), top);
        a.ret();
        let p = a.finish();
        assert_eq!(p.len(), 4);
        match p.insts()[2] {
            Inst::Scalar(ScalarInst::Cbnz { target, .. }) => assert_eq!(target.offset(), -2),
            ref other => panic!("unexpected instruction {other:?}"),
        }
    }

    #[test]
    fn forward_branch_resolution() {
        let mut a = Assembler::new("skip");
        let done = a.new_label();
        a.cbz(x(1), done);
        a.push(SmeInst::fmopa_f32(0, p(0), p(1), z(0), z(1)));
        a.bind(done);
        a.ret();
        let prog = a.finish();
        match prog.insts()[0] {
            Inst::Scalar(ScalarInst::Cbz { target, .. }) => assert_eq!(target.offset(), 2),
            ref other => panic!("unexpected instruction {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Assembler::new("bad");
        let l = a.new_label();
        a.b(l);
        let _ = a.finish();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Assembler::new("bad");
        let l = a.new_label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn mov_imm64_sequences() {
        let mut a = Assembler::new("imm");
        a.mov_imm64(x(0), 30 * 8);
        let small = a.position();
        assert_eq!(small, 1, "small immediates need a single movz");
        a.mov_imm64(x(1), 0x0001_0000);
        assert_eq!(
            a.position() - small,
            2,
            "17-bit immediate needs movz + movk"
        );
        a.mov_imm64(x(2), 0xdead_beef_cafe_f00d);
        let p = a.finish();
        // 1 + 2 + 4 instructions in total.
        assert_eq!(p.len(), 7);
    }

    #[test]
    fn add_sub_imm_split() {
        let mut a = Assembler::new("addr");
        a.add_imm(x(0), x(0), 64); // single add
        assert_eq!(a.position(), 1);
        a.add_imm(x(0), x(0), 4096); // single shifted add
        assert_eq!(a.position(), 2);
        a.add_imm(x(0), x(0), 4096 + 12); // shifted + low
        assert_eq!(a.position(), 4);
        a.sub_imm(x(1), x(1), 8192 + 5);
        let p = a.finish();
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn program_metadata_and_encode() {
        let mut a = Assembler::new("meta");
        a.push(ScalarInst::Nop);
        a.ret();
        let p = a.finish();
        assert_eq!(p.name(), "meta");
        assert_eq!(p.code_bytes(), 8);
        assert!(!p.is_empty());
        let words = p.encode();
        assert_eq!(words.len(), 2);
        let bytes = p.encode_bytes();
        assert_eq!(bytes.len(), 8);
        assert_eq!(&bytes[0..4], &words[0].to_le_bytes());
        let text = p.to_string();
        assert!(text.contains("nop"));
        assert!(text.contains("ret"));
    }

    #[test]
    fn count_matching_instructions() {
        let mut a = Assembler::new("count");
        for _ in 0..5 {
            a.push(SmeInst::fmopa_f32(0, p(0), p(1), z(0), z(1)));
        }
        a.ret();
        let prog = a.finish();
        let fmopas = prog.count_matching(|i| matches!(i, Inst::Sme(SmeInst::Fmopa { .. })));
        assert_eq!(fmopas, 5);
    }
}
